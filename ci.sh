#!/usr/bin/env bash
# CI gate: build, test, lint, and format-check the whole workspace.
# Run from the repo root.  Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> perf smoke (bsmp-repro bench)"
rm -f BENCH_engines.json
cargo run --release -q -p bsmp-cli -- bench --iters 3 --meta "ci-perf-smoke"
if [ ! -s BENCH_engines.json ]; then
    echo "perf smoke FAILED: BENCH_engines.json missing or empty" >&2
    exit 1
fi
grep -q '"schema": "bsmp-bench-engines/v1"' BENCH_engines.json || {
    echo "perf smoke FAILED: BENCH_engines.json malformed (schema tag missing)" >&2
    exit 1
}
grep -q '"mean_s"' BENCH_engines.json || {
    echo "perf smoke FAILED: BENCH_engines.json malformed (no cases)" >&2
    exit 1
}

echo "CI OK"
