#!/usr/bin/env bash
# CI gate: build, test, lint, and format-check the whole workspace.
# Run from the repo root.  Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

# Scratch area for CI artifacts: the committed BENCH_engines.json is a
# baseline to diff against, never something a CI run may overwrite.
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
STATUS_BEFORE="$(git status --porcelain)"

echo "==> perf smoke + regression gate (bsmp-repro bench --against)"
# Runs the full points/sec suite with counters, then gates the fresh
# throughput against the committed baseline: >20% best-iteration
# points/sec regression on any gated case (tiled pool-crossing, every
# dnc/multi engine, and the sparse event-core cases) fails CI inside
# the bench binary.
SMOKE="$SCRATCH/bench_smoke.json"
cargo run --release -q -p bsmp-cli -- bench --iters 3 --meta "ci-perf-smoke" \
    --trace-counters --out "$SMOKE" --against BENCH_engines.json
if [ ! -s "$SMOKE" ]; then
    echo "perf smoke FAILED: $SMOKE missing or empty" >&2
    exit 1
fi
grep -q '"schema": "bsmp-bench-engines/v3"' "$SMOKE" || {
    echo "perf smoke FAILED: bench output malformed (schema tag missing)" >&2
    exit 1
}
grep -q '"median_s"' "$SMOKE" && grep -q '"pps"' "$SMOKE" || {
    echo "perf smoke FAILED: bench output malformed (no cases)" >&2
    exit 1
}
# The tiled kernels must actually serve accesses from their cost tables:
# a zero table_hits on every case means the fast path silently died.
grep -q '"table_hits": [1-9]' "$SMOKE" || {
    echo "perf smoke FAILED: no case reports cost-table hits" >&2
    exit 1
}
grep -q '"trace_counters"' "$SMOKE" || {
    echo "perf smoke FAILED: --trace-counters section missing" >&2
    exit 1
}
# The batch-server warm/cold suite rides along in every bench run; the
# ≥5× warm/cold jobs-per-second floor is enforced inside the bench
# binary (exit 1), so here we only assert the section was recorded.
grep -q '"serve_cases"' "$SMOKE" && grep -q '"warm_cold_ratio"' "$SMOKE" || {
    echo "perf smoke FAILED: serve warm/cold section missing" >&2
    exit 1
}
grep -q '"plan_cache"' "$SMOKE" || {
    echo "perf smoke FAILED: plan-cache counters missing" >&2
    exit 1
}

echo "==> serve smoke (bsmp-repro serve: batch protocol + warm plan cache)"
# One server process, five requests: a malformed line and an unknown
# engine must each yield a typed error line without killing the batch,
# and the repeated dnc1 shape must be answered warm (capsule hit) with
# nonzero plan-cache hits in the summary.  --max-inflight 1 keeps the
# cold run strictly before its warm repeat.
SERVE_OUT="$SCRATCH/serve_smoke.ndjson"
cargo run --release -q -p bsmp-cli -- serve --max-inflight 1 > "$SERVE_OUT" <<'EOF'
{"id": 1, "engine": "dnc1", "n": 64, "m": 16, "steps": 64}
this line is not a json request
{"id": 3, "engine": "warp9", "n": 64, "steps": 64}
{"id": 4, "engine": "dnc1", "n": 64, "m": 16, "steps": 64, "seed": 99}
{"id": 5, "engine": "multi2", "n": 256, "m": 4, "p": 4, "steps": 16, "certify": true}
EOF
[ "$(grep -c '"kind": "bad_request"' "$SERVE_OUT")" -eq 2 ] || {
    echo "serve smoke FAILED: want exactly 2 typed bad_request lines" >&2
    exit 1
}
[ "$(grep -c '"ok": true' "$SERVE_OUT")" -eq 3 ] || {
    echo "serve smoke FAILED: the malformed lines killed healthy jobs" >&2
    exit 1
}
grep -q '"id": 4, "ok": true.*"cache_hit": true' "$SERVE_OUT" || {
    echo "serve smoke FAILED: repeated shape was not answered warm" >&2
    exit 1
}
grep -q '"verdict": "Certified"' "$SERVE_OUT" || {
    echo "serve smoke FAILED: certify job carries no Certified verdict" >&2
    exit 1
}
grep -q '"summary": true.*"plan_cache": {"hits": [1-9]' "$SERVE_OUT" || {
    echo "serve smoke FAILED: summary reports zero plan-cache hits" >&2
    exit 1
}

echo "==> million-node scale smoke (bench --mem, event core)"
# n = 2^20 naive1 on the sparse event core: must engage the sparse
# path, finish inside a generous wall budget even on a loaded shared
# host, and keep peak auxiliary state under a bytes-per-node ceiling
# (the dense image alone would be 8 MiB; the sparse core carries a
# one-hot frontier in tens of KiB).
MEM_OUT="$SCRATCH/mem_probe.txt"
cargo run --release -q -p bsmp-cli -- bench --mem | tee "$MEM_OUT"
grep -q 'used_event_core=true' "$MEM_OUT" || {
    echo "scale smoke FAILED: event core not engaged" >&2
    exit 1
}
WALL="$(sed -n 's/.*wall_s=\([0-9.]*\).*/\1/p' "$MEM_OUT")"
BPN="$(sed -n 's/.*bytes_per_node=\([0-9.]*\).*/\1/p' "$MEM_OUT")"
awk -v w="$WALL" 'BEGIN { exit !(w + 0 < 30.0) }' || {
    echo "scale smoke FAILED: wall_s=$WALL exceeds the 30 s budget" >&2
    exit 1
}
awk -v b="$BPN" 'BEGIN { exit !(b + 0 < 32.0) }' || {
    echo "scale smoke FAILED: bytes_per_node=$BPN exceeds the 32 B ceiling" >&2
    exit 1
}

echo "==> trace smoke (bsmp-repro --trace + trace-validate)"
TRACE="$SCRATCH/trace_smoke.json"
cargo run --release -q -p bsmp-cli -- --quick --trace "$TRACE" E1 > /dev/null
grep -q '"schema": "bsmp-trace/v1"' "$TRACE" || {
    echo "trace smoke FAILED: trace log malformed (schema tag missing)" >&2
    exit 1
}
cargo run --release -q -p bsmp-cli -- trace-validate "$TRACE"

echo "==> certify smoke (trace-certify: two-sided envelopes + exit codes)"
# A naive1 and a multi2 traced run must certify (exit 0): measured
# slowdown and comm inside [Gunther/Brent floor, Theorem 1-5 envelope]
# and [cut floor, busy time].  Corrupting one recorded field must flip
# the verdict to Violated (exit 1, not the malformed-trace exit 2).
CERT1="$SCRATCH/certify_naive1.json"
CERT2="$SCRATCH/certify_multi2.json"
cargo run --release -q -p bsmp-cli -- --quick --trace "$CERT1" --engine naive1 E1 > /dev/null
cargo run --release -q -p bsmp-cli -- --quick --trace "$CERT2" --engine multi2 E1 > /dev/null
cargo run --release -q -p bsmp-cli -- trace-certify "$CERT1"
cargo run --release -q -p bsmp-cli -- trace-certify "$CERT2"
CORRUPT="$SCRATCH/certify_corrupt.json"
sed 's/"guest_time": [0-9.eE+-]*/"guest_time": 0.001/' "$CERT1" > "$CORRUPT"
set +e
cargo run --release -q -p bsmp-cli -- trace-certify "$CORRUPT"
CERT_RC=$?
set -e
if [ "$CERT_RC" -ne 1 ]; then
    echo "certify smoke FAILED: corrupted trace exited $CERT_RC, want 1 (Violated)" >&2
    exit 1
fi

echo "==> chaos smoke (bsmp-repro --faults + trace-validate)"
# One short seeded storm+churn scenario per region dimension: the
# committed interval-region plan, and a tile-region plan written here.
CHAOS_TRACE="$SCRATCH/chaos_interval.json"
cargo run --release -q -p bsmp-cli -- --quick --faults examples/chaos_storm.json \
    --trace "$CHAOS_TRACE" E1 > /dev/null
cargo run --release -q -p bsmp-cli -- trace-validate "$CHAOS_TRACE"
TILE_PLAN="$SCRATCH/chaos_tile_plan.json"
cat > "$TILE_PLAN" <<'EOF'
{
  "seed": 1995,
  "slowdown": {"model": "pareto", "xm": 1.0, "alpha": 2.5},
  "outage": {"region": {"r0": 0, "r1": 2, "c0": 0, "c1": 1}, "onset": 3, "duration": 2, "period": 10},
  "churn": {"leave_permille": 25, "down_stages": 2, "max_retries": 8, "backoff_hops": 1.0}
}
EOF
CHAOS_TRACE2="$SCRATCH/chaos_tile.json"
cargo run --release -q -p bsmp-cli -- --quick --faults "$TILE_PLAN" \
    --trace "$CHAOS_TRACE2" E1 > /dev/null
cargo run --release -q -p bsmp-cli -- trace-validate "$CHAOS_TRACE2"

echo "==> chaos soak (opt-in)"
if [ "${BSMP_SOAK:-0}" = "1" ]; then
    BSMP_SOAK=1 cargo test --release -q -p bsmp --test chaos
else
    echo "    skipped (set BSMP_SOAK=1 for the extended scenario soak)"
fi

echo "==> working tree unchanged by the run"
STATUS_AFTER="$(git status --porcelain)"
if [ "$STATUS_BEFORE" != "$STATUS_AFTER" ]; then
    echo "CI FAILED: the run dirtied the working tree; status diff:" >&2
    diff <(echo "$STATUS_BEFORE") <(echo "$STATUS_AFTER") >&2 || true
    exit 1
fi

echo "CI OK"
