#!/usr/bin/env bash
# CI gate: build, test, lint, and format-check the whole workspace.
# Run from the repo root.  Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
