/root/repo/target/release/examples/rule110_timetravel-3c2e22ecdb6be1f5.d: crates/core/../../examples/rule110_timetravel.rs

/root/repo/target/release/examples/rule110_timetravel-3c2e22ecdb6be1f5: crates/core/../../examples/rule110_timetravel.rs

crates/core/../../examples/rule110_timetravel.rs:
