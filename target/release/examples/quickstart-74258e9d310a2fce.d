/root/repo/target/release/examples/quickstart-74258e9d310a2fce.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-74258e9d310a2fce: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
