/root/repo/target/release/examples/matmul_speedup-d52a16541c33e291.d: crates/core/../../examples/matmul_speedup.rs

/root/repo/target/release/examples/matmul_speedup-d52a16541c33e291: crates/core/../../examples/matmul_speedup.rs

crates/core/../../examples/matmul_speedup.rs:
