/root/repo/target/release/examples/superlinear-83de52be1a5e9342.d: crates/core/../../examples/superlinear.rs

/root/repo/target/release/examples/superlinear-83de52be1a5e9342: crates/core/../../examples/superlinear.rs

crates/core/../../examples/superlinear.rs:
