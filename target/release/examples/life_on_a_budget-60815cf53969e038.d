/root/repo/target/release/examples/life_on_a_budget-60815cf53969e038.d: crates/core/../../examples/life_on_a_budget.rs

/root/repo/target/release/examples/life_on_a_budget-60815cf53969e038: crates/core/../../examples/life_on_a_budget.rs

crates/core/../../examples/life_on_a_budget.rs:
