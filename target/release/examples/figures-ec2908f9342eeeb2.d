/root/repo/target/release/examples/figures-ec2908f9342eeeb2.d: crates/core/../../examples/figures.rs

/root/repo/target/release/examples/figures-ec2908f9342eeeb2: crates/core/../../examples/figures.rs

crates/core/../../examples/figures.rs:
