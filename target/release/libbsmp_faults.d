/root/repo/target/release/libbsmp_faults.rlib: /root/repo/crates/faults/src/lib.rs /root/repo/crates/faults/src/plan.rs /root/repo/crates/faults/src/rng.rs /root/repo/crates/faults/src/session.rs
