/root/repo/target/release/deps/e8_figures-b1bc9100907db0ab.d: crates/bench/src/bin/e8_figures.rs

/root/repo/target/release/deps/e8_figures-b1bc9100907db0ab: crates/bench/src/bin/e8_figures.rs

crates/bench/src/bin/e8_figures.rs:
