/root/repo/target/release/deps/proptests-68d7caa998209a62.d: crates/hram/tests/proptests.rs

/root/repo/target/release/deps/proptests-68d7caa998209a62: crates/hram/tests/proptests.rs

crates/hram/tests/proptests.rs:
