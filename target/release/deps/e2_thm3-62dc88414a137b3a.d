/root/repo/target/release/deps/e2_thm3-62dc88414a137b3a.d: crates/bench/src/bin/e2_thm3.rs

/root/repo/target/release/deps/e2_thm3-62dc88414a137b3a: crates/bench/src/bin/e2_thm3.rs

crates/bench/src/bin/e2_thm3.rs:
