/root/repo/target/release/deps/e13_faults-3c362fba044ac838.d: crates/bench/src/bin/e13_faults.rs

/root/repo/target/release/deps/e13_faults-3c362fba044ac838: crates/bench/src/bin/e13_faults.rs

crates/bench/src/bin/e13_faults.rs:
