/root/repo/target/release/deps/e6_matmul-a941fa1fde1d4927.d: crates/bench/src/bin/e6_matmul.rs

/root/repo/target/release/deps/e6_matmul-a941fa1fde1d4927: crates/bench/src/bin/e6_matmul.rs

crates/bench/src/bin/e6_matmul.rs:
