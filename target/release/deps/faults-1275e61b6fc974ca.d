/root/repo/target/release/deps/faults-1275e61b6fc974ca.d: crates/core/../../tests/faults.rs

/root/repo/target/release/deps/faults-1275e61b6fc974ca: crates/core/../../tests/faults.rs

crates/core/../../tests/faults.rs:
