/root/repo/target/release/deps/pool-327293cdba2d00b4.d: crates/core/../../tests/pool.rs

/root/repo/target/release/deps/pool-327293cdba2d00b4: crates/core/../../tests/pool.rs

crates/core/../../tests/pool.rs:
