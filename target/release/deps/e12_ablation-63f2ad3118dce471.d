/root/repo/target/release/deps/e12_ablation-63f2ad3118dce471.d: crates/bench/src/bin/e12_ablation.rs

/root/repo/target/release/deps/e12_ablation-63f2ad3118dce471: crates/bench/src/bin/e12_ablation.rs

crates/bench/src/bin/e12_ablation.rs:
