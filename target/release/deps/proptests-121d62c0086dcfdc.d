/root/repo/target/release/deps/proptests-121d62c0086dcfdc.d: crates/machine/tests/proptests.rs

/root/repo/target/release/deps/proptests-121d62c0086dcfdc: crates/machine/tests/proptests.rs

crates/machine/tests/proptests.rs:
