/root/repo/target/release/deps/proptests-bc2b49445a6dcd36.d: crates/analytic/tests/proptests.rs

/root/repo/target/release/deps/proptests-bc2b49445a6dcd36: crates/analytic/tests/proptests.rs

crates/analytic/tests/proptests.rs:
