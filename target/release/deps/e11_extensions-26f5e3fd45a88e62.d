/root/repo/target/release/deps/e11_extensions-26f5e3fd45a88e62.d: crates/bench/src/bin/e11_extensions.rs

/root/repo/target/release/deps/e11_extensions-26f5e3fd45a88e62: crates/bench/src/bin/e11_extensions.rs

crates/bench/src/bin/e11_extensions.rs:
