/root/repo/target/release/deps/e12_ablation-f47fbbaeddfcfdd4.d: crates/bench/src/bin/e12_ablation.rs

/root/repo/target/release/deps/e12_ablation-f47fbbaeddfcfdd4: crates/bench/src/bin/e12_ablation.rs

crates/bench/src/bin/e12_ablation.rs:
