/root/repo/target/release/deps/e4_thm5-58ffb07ebbef7bf4.d: crates/bench/src/bin/e4_thm5.rs

/root/repo/target/release/deps/e4_thm5-58ffb07ebbef7bf4: crates/bench/src/bin/e4_thm5.rs

crates/bench/src/bin/e4_thm5.rs:
