/root/repo/target/release/deps/e7_prop3-e3d89ecf2ba0584d.d: crates/bench/src/bin/e7_prop3.rs

/root/repo/target/release/deps/e7_prop3-e3d89ecf2ba0584d: crates/bench/src/bin/e7_prop3.rs

crates/bench/src/bin/e7_prop3.rs:
