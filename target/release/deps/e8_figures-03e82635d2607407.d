/root/repo/target/release/deps/e8_figures-03e82635d2607407.d: crates/bench/src/bin/e8_figures.rs

/root/repo/target/release/deps/e8_figures-03e82635d2607407: crates/bench/src/bin/e8_figures.rs

crates/bench/src/bin/e8_figures.rs:
