/root/repo/target/release/deps/e11_extensions-53cf2c28f6d9e5ef.d: crates/bench/src/bin/e11_extensions.rs

/root/repo/target/release/deps/e11_extensions-53cf2c28f6d9e5ef: crates/bench/src/bin/e11_extensions.rs

crates/bench/src/bin/e11_extensions.rs:
