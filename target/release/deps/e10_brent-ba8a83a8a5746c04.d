/root/repo/target/release/deps/e10_brent-ba8a83a8a5746c04.d: crates/bench/src/bin/e10_brent.rs

/root/repo/target/release/deps/e10_brent-ba8a83a8a5746c04: crates/bench/src/bin/e10_brent.rs

crates/bench/src/bin/e10_brent.rs:
