/root/repo/target/release/deps/e5_thm1d2-aca7430b070bd284.d: crates/bench/src/bin/e5_thm1d2.rs

/root/repo/target/release/deps/e5_thm1d2-aca7430b070bd284: crates/bench/src/bin/e5_thm1d2.rs

crates/bench/src/bin/e5_thm1d2.rs:
