/root/repo/target/release/deps/proptests-3c376f9ab3a94d70.d: crates/sim/tests/proptests.rs

/root/repo/target/release/deps/proptests-3c376f9ab3a94d70: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
