/root/repo/target/release/deps/bsmp-6895ec49aa4e247d.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libbsmp-6895ec49aa4e247d.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libbsmp-6895ec49aa4e247d.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
