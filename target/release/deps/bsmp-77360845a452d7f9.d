/root/repo/target/release/deps/bsmp-77360845a452d7f9.d: crates/core/src/lib.rs

/root/repo/target/release/deps/bsmp-77360845a452d7f9: crates/core/src/lib.rs

crates/core/src/lib.rs:
