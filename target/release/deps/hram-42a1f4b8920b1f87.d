/root/repo/target/release/deps/hram-42a1f4b8920b1f87.d: crates/bench/benches/hram.rs

/root/repo/target/release/deps/hram-42a1f4b8920b1f87: crates/bench/benches/hram.rs

crates/bench/benches/hram.rs:
