/root/repo/target/release/deps/bsmp_repro-10f6e35a39bdf42f.d: crates/cli/src/main.rs

/root/repo/target/release/deps/bsmp_repro-10f6e35a39bdf42f: crates/cli/src/main.rs

crates/cli/src/main.rs:
