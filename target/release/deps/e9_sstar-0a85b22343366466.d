/root/repo/target/release/deps/e9_sstar-0a85b22343366466.d: crates/bench/src/bin/e9_sstar.rs

/root/repo/target/release/deps/e9_sstar-0a85b22343366466: crates/bench/src/bin/e9_sstar.rs

crates/bench/src/bin/e9_sstar.rs:
