/root/repo/target/release/deps/bsmp_sim-02d716ecc5dcedca.d: crates/sim/src/lib.rs crates/sim/src/dnc1.rs crates/sim/src/dnc2.rs crates/sim/src/dnc3.rs crates/sim/src/error.rs crates/sim/src/exec1.rs crates/sim/src/exec2.rs crates/sim/src/exec3.rs crates/sim/src/multi1.rs crates/sim/src/multi2.rs crates/sim/src/naive1.rs crates/sim/src/naive2.rs crates/sim/src/pipelined1.rs crates/sim/src/report.rs crates/sim/src/zone.rs

/root/repo/target/release/deps/bsmp_sim-02d716ecc5dcedca: crates/sim/src/lib.rs crates/sim/src/dnc1.rs crates/sim/src/dnc2.rs crates/sim/src/dnc3.rs crates/sim/src/error.rs crates/sim/src/exec1.rs crates/sim/src/exec2.rs crates/sim/src/exec3.rs crates/sim/src/multi1.rs crates/sim/src/multi2.rs crates/sim/src/naive1.rs crates/sim/src/naive2.rs crates/sim/src/pipelined1.rs crates/sim/src/report.rs crates/sim/src/zone.rs

crates/sim/src/lib.rs:
crates/sim/src/dnc1.rs:
crates/sim/src/dnc2.rs:
crates/sim/src/dnc3.rs:
crates/sim/src/error.rs:
crates/sim/src/exec1.rs:
crates/sim/src/exec2.rs:
crates/sim/src/exec3.rs:
crates/sim/src/multi1.rs:
crates/sim/src/multi2.rs:
crates/sim/src/naive1.rs:
crates/sim/src/naive2.rs:
crates/sim/src/pipelined1.rs:
crates/sim/src/report.rs:
crates/sim/src/zone.rs:
