/root/repo/target/release/deps/e13_faults-17e125c24dd5f02c.d: crates/bench/src/bin/e13_faults.rs

/root/repo/target/release/deps/e13_faults-17e125c24dd5f02c: crates/bench/src/bin/e13_faults.rs

crates/bench/src/bin/e13_faults.rs:
