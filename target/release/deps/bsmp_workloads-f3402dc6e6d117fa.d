/root/repo/target/release/deps/bsmp_workloads-f3402dc6e6d117fa.d: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

/root/repo/target/release/deps/libbsmp_workloads-f3402dc6e6d117fa.rlib: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

/root/repo/target/release/deps/libbsmp_workloads-f3402dc6e6d117fa.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cannon.rs:
crates/workloads/src/eca.rs:
crates/workloads/src/fir.rs:
crates/workloads/src/heat.rs:
crates/workloads/src/inputs.rs:
crates/workloads/src/life.rs:
crates/workloads/src/shift.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wave.rs:
crates/workloads/src/volume.rs:
