/root/repo/target/release/deps/e1_thm2-9d85f28bcce0b4bb.d: crates/bench/src/bin/e1_thm2.rs

/root/repo/target/release/deps/e1_thm2-9d85f28bcce0b4bb: crates/bench/src/bin/e1_thm2.rs

crates/bench/src/bin/e1_thm2.rs:
