/root/repo/target/release/deps/e6_matmul-7ce6e9d83dc27200.d: crates/bench/src/bin/e6_matmul.rs

/root/repo/target/release/deps/e6_matmul-7ce6e9d83dc27200: crates/bench/src/bin/e6_matmul.rs

crates/bench/src/bin/e6_matmul.rs:
