/root/repo/target/release/deps/bsmp_repro-0c1363eed878108d.d: crates/cli/src/main.rs

/root/repo/target/release/deps/bsmp_repro-0c1363eed878108d: crates/cli/src/main.rs

crates/cli/src/main.rs:
