/root/repo/target/release/deps/bsmp_analytic-42a092ff5296f7ce.d: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

/root/repo/target/release/deps/bsmp_analytic-42a092ff5296f7ce: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

crates/analytic/src/lib.rs:
crates/analytic/src/bounds.rs:
crates/analytic/src/brent.rs:
crates/analytic/src/extensions.rs:
crates/analytic/src/matmul.rs:
crates/analytic/src/theorem1.rs:
crates/analytic/src/theorem4.rs:
