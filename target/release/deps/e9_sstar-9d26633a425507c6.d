/root/repo/target/release/deps/e9_sstar-9d26633a425507c6.d: crates/bench/src/bin/e9_sstar.rs

/root/repo/target/release/deps/e9_sstar-9d26633a425507c6: crates/bench/src/bin/e9_sstar.rs

crates/bench/src/bin/e9_sstar.rs:
