/root/repo/target/release/deps/bsmp_hram-f88c20556ea1860c.d: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

/root/repo/target/release/deps/bsmp_hram-f88c20556ea1860c: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

crates/hram/src/lib.rs:
crates/hram/src/access.rs:
crates/hram/src/cost.rs:
crates/hram/src/machine.rs:
