/root/repo/target/release/deps/equivalence-f495d7d934f801a9.d: crates/core/../../tests/equivalence.rs

/root/repo/target/release/deps/equivalence-f495d7d934f801a9: crates/core/../../tests/equivalence.rs

crates/core/../../tests/equivalence.rs:
