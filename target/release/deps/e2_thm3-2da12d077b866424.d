/root/repo/target/release/deps/e2_thm3-2da12d077b866424.d: crates/bench/src/bin/e2_thm3.rs

/root/repo/target/release/deps/e2_thm3-2da12d077b866424: crates/bench/src/bin/e2_thm3.rs

crates/bench/src/bin/e2_thm3.rs:
