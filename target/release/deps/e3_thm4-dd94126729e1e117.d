/root/repo/target/release/deps/e3_thm4-dd94126729e1e117.d: crates/bench/src/bin/e3_thm4.rs

/root/repo/target/release/deps/e3_thm4-dd94126729e1e117: crates/bench/src/bin/e3_thm4.rs

crates/bench/src/bin/e3_thm4.rs:
