/root/repo/target/release/deps/bsmp_hram-3bc150f66c10f83f.d: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

/root/repo/target/release/deps/libbsmp_hram-3bc150f66c10f83f.rlib: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

/root/repo/target/release/deps/libbsmp_hram-3bc150f66c10f83f.rmeta: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

crates/hram/src/lib.rs:
crates/hram/src/access.rs:
crates/hram/src/cost.rs:
crates/hram/src/machine.rs:
