/root/repo/target/release/deps/bsmp_dag-dbe9f857cbaac5aa.d: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

/root/repo/target/release/deps/libbsmp_dag-dbe9f857cbaac5aa.rlib: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

/root/repo/target/release/deps/libbsmp_dag-dbe9f857cbaac5aa.rmeta: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

crates/dag/src/lib.rs:
crates/dag/src/dag1.rs:
crates/dag/src/dag2.rs:
crates/dag/src/partition.rs:
crates/dag/src/schedule.rs:
crates/dag/src/separator.rs:
