/root/repo/target/release/deps/e1_thm2-630080124f3711d7.d: crates/bench/src/bin/e1_thm2.rs

/root/repo/target/release/deps/e1_thm2-630080124f3711d7: crates/bench/src/bin/e1_thm2.rs

crates/bench/src/bin/e1_thm2.rs:
