/root/repo/target/release/deps/proptests-1fc08acabd29b90e.d: crates/dag/tests/proptests.rs

/root/repo/target/release/deps/proptests-1fc08acabd29b90e: crates/dag/tests/proptests.rs

crates/dag/tests/proptests.rs:
