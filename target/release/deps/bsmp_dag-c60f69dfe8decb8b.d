/root/repo/target/release/deps/bsmp_dag-c60f69dfe8decb8b.d: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

/root/repo/target/release/deps/bsmp_dag-c60f69dfe8decb8b: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

crates/dag/src/lib.rs:
crates/dag/src/dag1.rs:
crates/dag/src/dag2.rs:
crates/dag/src/partition.rs:
crates/dag/src/schedule.rs:
crates/dag/src/separator.rs:
