/root/repo/target/release/deps/e7_prop3-0adb4e4e0f737126.d: crates/bench/src/bin/e7_prop3.rs

/root/repo/target/release/deps/e7_prop3-0adb4e4e0f737126: crates/bench/src/bin/e7_prop3.rs

crates/bench/src/bin/e7_prop3.rs:
