/root/repo/target/release/deps/e4_thm5-5dafe796126337a0.d: crates/bench/src/bin/e4_thm5.rs

/root/repo/target/release/deps/e4_thm5-5dafe796126337a0: crates/bench/src/bin/e4_thm5.rs

crates/bench/src/bin/e4_thm5.rs:
