/root/repo/target/release/deps/end_to_end-e5c3b79fc0e2856a.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-e5c3b79fc0e2856a: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
