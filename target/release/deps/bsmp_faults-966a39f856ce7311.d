/root/repo/target/release/deps/bsmp_faults-966a39f856ce7311.d: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

/root/repo/target/release/deps/libbsmp_faults-966a39f856ce7311.rlib: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

/root/repo/target/release/deps/libbsmp_faults-966a39f856ce7311.rmeta: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

crates/faults/src/lib.rs:
crates/faults/src/plan.rs:
crates/faults/src/rng.rs:
crates/faults/src/session.rs:
