/root/repo/target/release/deps/bsmp_faults-6c81a296344692b7.d: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

/root/repo/target/release/deps/bsmp_faults-6c81a296344692b7: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

crates/faults/src/lib.rs:
crates/faults/src/plan.rs:
crates/faults/src/rng.rs:
crates/faults/src/session.rs:
