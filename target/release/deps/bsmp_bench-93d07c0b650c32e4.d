/root/repo/target/release/deps/bsmp_bench-93d07c0b650c32e4.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_brent.rs crates/bench/src/experiments/e11_extensions.rs crates/bench/src/experiments/e12_ablation.rs crates/bench/src/experiments/e13_faults.rs crates/bench/src/experiments/e1_thm2.rs crates/bench/src/experiments/e2_thm3.rs crates/bench/src/experiments/e3_thm4.rs crates/bench/src/experiments/e4_thm5.rs crates/bench/src/experiments/e5_thm1d2.rs crates/bench/src/experiments/e6_matmul.rs crates/bench/src/experiments/e7_prop3.rs crates/bench/src/experiments/e8_figures.rs crates/bench/src/experiments/e9_sstar.rs crates/bench/src/perf.rs crates/bench/src/table.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/bsmp_bench-93d07c0b650c32e4: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_brent.rs crates/bench/src/experiments/e11_extensions.rs crates/bench/src/experiments/e12_ablation.rs crates/bench/src/experiments/e13_faults.rs crates/bench/src/experiments/e1_thm2.rs crates/bench/src/experiments/e2_thm3.rs crates/bench/src/experiments/e3_thm4.rs crates/bench/src/experiments/e4_thm5.rs crates/bench/src/experiments/e5_thm1d2.rs crates/bench/src/experiments/e6_matmul.rs crates/bench/src/experiments/e7_prop3.rs crates/bench/src/experiments/e8_figures.rs crates/bench/src/experiments/e9_sstar.rs crates/bench/src/perf.rs crates/bench/src/table.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e10_brent.rs:
crates/bench/src/experiments/e11_extensions.rs:
crates/bench/src/experiments/e12_ablation.rs:
crates/bench/src/experiments/e13_faults.rs:
crates/bench/src/experiments/e1_thm2.rs:
crates/bench/src/experiments/e2_thm3.rs:
crates/bench/src/experiments/e3_thm4.rs:
crates/bench/src/experiments/e4_thm5.rs:
crates/bench/src/experiments/e5_thm1d2.rs:
crates/bench/src/experiments/e6_matmul.rs:
crates/bench/src/experiments/e7_prop3.rs:
crates/bench/src/experiments/e8_figures.rs:
crates/bench/src/experiments/e9_sstar.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
crates/bench/src/timing.rs:
