/root/repo/target/release/deps/e10_brent-7e59bc26a379f269.d: crates/bench/src/bin/e10_brent.rs

/root/repo/target/release/deps/e10_brent-7e59bc26a379f269: crates/bench/src/bin/e10_brent.rs

crates/bench/src/bin/e10_brent.rs:
