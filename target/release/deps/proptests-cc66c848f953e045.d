/root/repo/target/release/deps/proptests-cc66c848f953e045.d: crates/workloads/tests/proptests.rs

/root/repo/target/release/deps/proptests-cc66c848f953e045: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
