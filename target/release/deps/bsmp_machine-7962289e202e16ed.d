/root/repo/target/release/deps/bsmp_machine-7962289e202e16ed.d: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

/root/repo/target/release/deps/libbsmp_machine-7962289e202e16ed.rlib: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

/root/repo/target/release/deps/libbsmp_machine-7962289e202e16ed.rmeta: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

crates/machine/src/lib.rs:
crates/machine/src/guest.rs:
crates/machine/src/pool.rs:
crates/machine/src/program.rs:
crates/machine/src/spec.rs:
crates/machine/src/stage.rs:
