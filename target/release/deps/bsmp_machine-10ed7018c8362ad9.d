/root/repo/target/release/deps/bsmp_machine-10ed7018c8362ad9.d: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

/root/repo/target/release/deps/bsmp_machine-10ed7018c8362ad9: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

crates/machine/src/lib.rs:
crates/machine/src/guest.rs:
crates/machine/src/pool.rs:
crates/machine/src/program.rs:
crates/machine/src/spec.rs:
crates/machine/src/stage.rs:
