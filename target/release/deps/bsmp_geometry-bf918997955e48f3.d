/root/repo/target/release/deps/bsmp_geometry-bf918997955e48f3.d: crates/geometry/src/lib.rs crates/geometry/src/ibox.rs crates/geometry/src/point.rs crates/geometry/src/diamond.rs crates/geometry/src/tiling1.rs crates/geometry/src/domain2.rs crates/geometry/src/octa.rs crates/geometry/src/tetra.rs crates/geometry/src/tiling2.rs crates/geometry/src/domain3.rs crates/geometry/src/figures.rs crates/geometry/src/render.rs

/root/repo/target/release/deps/bsmp_geometry-bf918997955e48f3: crates/geometry/src/lib.rs crates/geometry/src/ibox.rs crates/geometry/src/point.rs crates/geometry/src/diamond.rs crates/geometry/src/tiling1.rs crates/geometry/src/domain2.rs crates/geometry/src/octa.rs crates/geometry/src/tetra.rs crates/geometry/src/tiling2.rs crates/geometry/src/domain3.rs crates/geometry/src/figures.rs crates/geometry/src/render.rs

crates/geometry/src/lib.rs:
crates/geometry/src/ibox.rs:
crates/geometry/src/point.rs:
crates/geometry/src/diamond.rs:
crates/geometry/src/tiling1.rs:
crates/geometry/src/domain2.rs:
crates/geometry/src/octa.rs:
crates/geometry/src/tetra.rs:
crates/geometry/src/tiling2.rs:
crates/geometry/src/domain3.rs:
crates/geometry/src/figures.rs:
crates/geometry/src/render.rs:
