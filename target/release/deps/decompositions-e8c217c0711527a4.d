/root/repo/target/release/deps/decompositions-e8c217c0711527a4.d: crates/core/../../tests/decompositions.rs

/root/repo/target/release/deps/decompositions-e8c217c0711527a4: crates/core/../../tests/decompositions.rs

crates/core/../../tests/decompositions.rs:
