/root/repo/target/release/deps/e3_thm4-9c70e5ff18b1461d.d: crates/bench/src/bin/e3_thm4.rs

/root/repo/target/release/deps/e3_thm4-9c70e5ff18b1461d: crates/bench/src/bin/e3_thm4.rs

crates/bench/src/bin/e3_thm4.rs:
