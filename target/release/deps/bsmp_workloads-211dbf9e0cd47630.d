/root/repo/target/release/deps/bsmp_workloads-211dbf9e0cd47630.d: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

/root/repo/target/release/deps/bsmp_workloads-211dbf9e0cd47630: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cannon.rs:
crates/workloads/src/eca.rs:
crates/workloads/src/fir.rs:
crates/workloads/src/heat.rs:
crates/workloads/src/inputs.rs:
crates/workloads/src/life.rs:
crates/workloads/src/shift.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wave.rs:
crates/workloads/src/volume.rs:
