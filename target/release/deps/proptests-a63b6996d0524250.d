/root/repo/target/release/deps/proptests-a63b6996d0524250.d: crates/geometry/tests/proptests.rs

/root/repo/target/release/deps/proptests-a63b6996d0524250: crates/geometry/tests/proptests.rs

crates/geometry/tests/proptests.rs:
