/root/repo/target/release/deps/e5_thm1d2-3e779c906bed2844.d: crates/bench/src/bin/e5_thm1d2.rs

/root/repo/target/release/deps/e5_thm1d2-3e779c906bed2844: crates/bench/src/bin/e5_thm1d2.rs

crates/bench/src/bin/e5_thm1d2.rs:
