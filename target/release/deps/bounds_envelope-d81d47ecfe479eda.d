/root/repo/target/release/deps/bounds_envelope-d81d47ecfe479eda.d: crates/core/../../tests/bounds_envelope.rs

/root/repo/target/release/deps/bounds_envelope-d81d47ecfe479eda: crates/core/../../tests/bounds_envelope.rs

crates/core/../../tests/bounds_envelope.rs:
