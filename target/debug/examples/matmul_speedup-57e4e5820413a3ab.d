/root/repo/target/debug/examples/matmul_speedup-57e4e5820413a3ab.d: crates/core/../../examples/matmul_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_speedup-57e4e5820413a3ab.rmeta: crates/core/../../examples/matmul_speedup.rs Cargo.toml

crates/core/../../examples/matmul_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
