/root/repo/target/debug/examples/figures-4b6771eadf217df8.d: crates/core/../../examples/figures.rs

/root/repo/target/debug/examples/figures-4b6771eadf217df8: crates/core/../../examples/figures.rs

crates/core/../../examples/figures.rs:
