/root/repo/target/debug/examples/quickstart-b5fc5b9fb8787e7c.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b5fc5b9fb8787e7c.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
