/root/repo/target/debug/examples/figures-1d2e91b5c0eeafb9.d: crates/core/../../examples/figures.rs Cargo.toml

/root/repo/target/debug/examples/libfigures-1d2e91b5c0eeafb9.rmeta: crates/core/../../examples/figures.rs Cargo.toml

crates/core/../../examples/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
