/root/repo/target/debug/examples/quickstart-5a187c49926b1584.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5a187c49926b1584: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
