/root/repo/target/debug/examples/matmul_speedup-e100494c24c3d690.d: crates/core/../../examples/matmul_speedup.rs

/root/repo/target/debug/examples/matmul_speedup-e100494c24c3d690: crates/core/../../examples/matmul_speedup.rs

crates/core/../../examples/matmul_speedup.rs:
