/root/repo/target/debug/examples/rule110_timetravel-1104401b71fe63c7.d: crates/core/../../examples/rule110_timetravel.rs

/root/repo/target/debug/examples/rule110_timetravel-1104401b71fe63c7: crates/core/../../examples/rule110_timetravel.rs

crates/core/../../examples/rule110_timetravel.rs:
