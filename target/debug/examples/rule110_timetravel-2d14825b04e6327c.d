/root/repo/target/debug/examples/rule110_timetravel-2d14825b04e6327c.d: crates/core/../../examples/rule110_timetravel.rs Cargo.toml

/root/repo/target/debug/examples/librule110_timetravel-2d14825b04e6327c.rmeta: crates/core/../../examples/rule110_timetravel.rs Cargo.toml

crates/core/../../examples/rule110_timetravel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
