/root/repo/target/debug/examples/life_on_a_budget-57f3cdce56a23408.d: crates/core/../../examples/life_on_a_budget.rs

/root/repo/target/debug/examples/life_on_a_budget-57f3cdce56a23408: crates/core/../../examples/life_on_a_budget.rs

crates/core/../../examples/life_on_a_budget.rs:
