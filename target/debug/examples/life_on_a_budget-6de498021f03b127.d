/root/repo/target/debug/examples/life_on_a_budget-6de498021f03b127.d: crates/core/../../examples/life_on_a_budget.rs Cargo.toml

/root/repo/target/debug/examples/liblife_on_a_budget-6de498021f03b127.rmeta: crates/core/../../examples/life_on_a_budget.rs Cargo.toml

crates/core/../../examples/life_on_a_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
