/root/repo/target/debug/examples/superlinear-4c014580edae8f43.d: crates/core/../../examples/superlinear.rs Cargo.toml

/root/repo/target/debug/examples/libsuperlinear-4c014580edae8f43.rmeta: crates/core/../../examples/superlinear.rs Cargo.toml

crates/core/../../examples/superlinear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
