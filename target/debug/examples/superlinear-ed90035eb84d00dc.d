/root/repo/target/debug/examples/superlinear-ed90035eb84d00dc.d: crates/core/../../examples/superlinear.rs

/root/repo/target/debug/examples/superlinear-ed90035eb84d00dc: crates/core/../../examples/superlinear.rs

crates/core/../../examples/superlinear.rs:
