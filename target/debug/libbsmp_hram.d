/root/repo/target/debug/libbsmp_hram.rlib: /root/repo/crates/hram/src/access.rs /root/repo/crates/hram/src/cost.rs /root/repo/crates/hram/src/lib.rs /root/repo/crates/hram/src/machine.rs
