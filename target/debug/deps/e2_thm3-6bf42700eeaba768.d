/root/repo/target/debug/deps/e2_thm3-6bf42700eeaba768.d: crates/bench/src/bin/e2_thm3.rs

/root/repo/target/debug/deps/e2_thm3-6bf42700eeaba768: crates/bench/src/bin/e2_thm3.rs

crates/bench/src/bin/e2_thm3.rs:
