/root/repo/target/debug/deps/e10_brent-f379438ffa295929.d: crates/bench/src/bin/e10_brent.rs

/root/repo/target/debug/deps/e10_brent-f379438ffa295929: crates/bench/src/bin/e10_brent.rs

crates/bench/src/bin/e10_brent.rs:
