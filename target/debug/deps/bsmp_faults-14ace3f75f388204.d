/root/repo/target/debug/deps/bsmp_faults-14ace3f75f388204.d: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

/root/repo/target/debug/deps/libbsmp_faults-14ace3f75f388204.rlib: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

/root/repo/target/debug/deps/libbsmp_faults-14ace3f75f388204.rmeta: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

crates/faults/src/lib.rs:
crates/faults/src/plan.rs:
crates/faults/src/rng.rs:
crates/faults/src/session.rs:
