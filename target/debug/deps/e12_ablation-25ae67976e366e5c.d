/root/repo/target/debug/deps/e12_ablation-25ae67976e366e5c.d: crates/bench/src/bin/e12_ablation.rs

/root/repo/target/debug/deps/e12_ablation-25ae67976e366e5c: crates/bench/src/bin/e12_ablation.rs

crates/bench/src/bin/e12_ablation.rs:
