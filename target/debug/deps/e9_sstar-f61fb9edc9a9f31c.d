/root/repo/target/debug/deps/e9_sstar-f61fb9edc9a9f31c.d: crates/bench/src/bin/e9_sstar.rs Cargo.toml

/root/repo/target/debug/deps/libe9_sstar-f61fb9edc9a9f31c.rmeta: crates/bench/src/bin/e9_sstar.rs Cargo.toml

crates/bench/src/bin/e9_sstar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
