/root/repo/target/debug/deps/geometry-0f61820a1f9cbc02.d: crates/bench/benches/geometry.rs

/root/repo/target/debug/deps/geometry-0f61820a1f9cbc02: crates/bench/benches/geometry.rs

crates/bench/benches/geometry.rs:
