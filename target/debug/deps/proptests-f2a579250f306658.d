/root/repo/target/debug/deps/proptests-f2a579250f306658.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f2a579250f306658.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
