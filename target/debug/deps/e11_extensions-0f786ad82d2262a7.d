/root/repo/target/debug/deps/e11_extensions-0f786ad82d2262a7.d: crates/bench/src/bin/e11_extensions.rs

/root/repo/target/debug/deps/e11_extensions-0f786ad82d2262a7: crates/bench/src/bin/e11_extensions.rs

crates/bench/src/bin/e11_extensions.rs:
