/root/repo/target/debug/deps/proptests-198180dc6dd34f3b.d: crates/geometry/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-198180dc6dd34f3b.rmeta: crates/geometry/tests/proptests.rs Cargo.toml

crates/geometry/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
