/root/repo/target/debug/deps/e4_thm5-339529c05d251d17.d: crates/bench/src/bin/e4_thm5.rs Cargo.toml

/root/repo/target/debug/deps/libe4_thm5-339529c05d251d17.rmeta: crates/bench/src/bin/e4_thm5.rs Cargo.toml

crates/bench/src/bin/e4_thm5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
