/root/repo/target/debug/deps/e6_matmul-ee6143563f899831.d: crates/bench/src/bin/e6_matmul.rs

/root/repo/target/debug/deps/e6_matmul-ee6143563f899831: crates/bench/src/bin/e6_matmul.rs

crates/bench/src/bin/e6_matmul.rs:
