/root/repo/target/debug/deps/bsmp_faults-446aa568a65f7c2a.d: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

/root/repo/target/debug/deps/bsmp_faults-446aa568a65f7c2a: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs

crates/faults/src/lib.rs:
crates/faults/src/plan.rs:
crates/faults/src/rng.rs:
crates/faults/src/session.rs:
