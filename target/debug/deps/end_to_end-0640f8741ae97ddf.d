/root/repo/target/debug/deps/end_to_end-0640f8741ae97ddf.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0640f8741ae97ddf: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
