/root/repo/target/debug/deps/e4_thm5-7803f86b8341e7e9.d: crates/bench/src/bin/e4_thm5.rs

/root/repo/target/debug/deps/e4_thm5-7803f86b8341e7e9: crates/bench/src/bin/e4_thm5.rs

crates/bench/src/bin/e4_thm5.rs:
