/root/repo/target/debug/deps/e2_thm3-7acdac588a96f189.d: crates/bench/src/bin/e2_thm3.rs Cargo.toml

/root/repo/target/debug/deps/libe2_thm3-7acdac588a96f189.rmeta: crates/bench/src/bin/e2_thm3.rs Cargo.toml

crates/bench/src/bin/e2_thm3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
