/root/repo/target/debug/deps/e3_thm4-78d4739f109d9850.d: crates/bench/src/bin/e3_thm4.rs Cargo.toml

/root/repo/target/debug/deps/libe3_thm4-78d4739f109d9850.rmeta: crates/bench/src/bin/e3_thm4.rs Cargo.toml

crates/bench/src/bin/e3_thm4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
