/root/repo/target/debug/deps/proptests-a4a1d3de79dab691.d: crates/geometry/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a4a1d3de79dab691: crates/geometry/tests/proptests.rs

crates/geometry/tests/proptests.rs:
