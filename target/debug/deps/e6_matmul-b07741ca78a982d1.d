/root/repo/target/debug/deps/e6_matmul-b07741ca78a982d1.d: crates/bench/src/bin/e6_matmul.rs

/root/repo/target/debug/deps/e6_matmul-b07741ca78a982d1: crates/bench/src/bin/e6_matmul.rs

crates/bench/src/bin/e6_matmul.rs:
