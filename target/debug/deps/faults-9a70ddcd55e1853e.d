/root/repo/target/debug/deps/faults-9a70ddcd55e1853e.d: crates/core/../../tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-9a70ddcd55e1853e.rmeta: crates/core/../../tests/faults.rs Cargo.toml

crates/core/../../tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
