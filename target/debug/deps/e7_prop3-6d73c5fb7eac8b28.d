/root/repo/target/debug/deps/e7_prop3-6d73c5fb7eac8b28.d: crates/bench/src/bin/e7_prop3.rs

/root/repo/target/debug/deps/e7_prop3-6d73c5fb7eac8b28: crates/bench/src/bin/e7_prop3.rs

crates/bench/src/bin/e7_prop3.rs:
