/root/repo/target/debug/deps/e13_faults-a229b01b1aad8408.d: crates/bench/src/bin/e13_faults.rs

/root/repo/target/debug/deps/e13_faults-a229b01b1aad8408: crates/bench/src/bin/e13_faults.rs

crates/bench/src/bin/e13_faults.rs:
