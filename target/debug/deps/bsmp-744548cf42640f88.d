/root/repo/target/debug/deps/bsmp-744548cf42640f88.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/bsmp-744548cf42640f88: crates/core/src/lib.rs

crates/core/src/lib.rs:
