/root/repo/target/debug/deps/engines-fd16137d00b4ed00.d: crates/bench/benches/engines.rs Cargo.toml

/root/repo/target/debug/deps/libengines-fd16137d00b4ed00.rmeta: crates/bench/benches/engines.rs Cargo.toml

crates/bench/benches/engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
