/root/repo/target/debug/deps/bsmp_repro-a058043f40f1eb5a.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_repro-a058043f40f1eb5a.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
