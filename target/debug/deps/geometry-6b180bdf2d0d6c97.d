/root/repo/target/debug/deps/geometry-6b180bdf2d0d6c97.d: crates/bench/benches/geometry.rs Cargo.toml

/root/repo/target/debug/deps/libgeometry-6b180bdf2d0d6c97.rmeta: crates/bench/benches/geometry.rs Cargo.toml

crates/bench/benches/geometry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
