/root/repo/target/debug/deps/e11_extensions-ec179c0a88adf7da.d: crates/bench/src/bin/e11_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libe11_extensions-ec179c0a88adf7da.rmeta: crates/bench/src/bin/e11_extensions.rs Cargo.toml

crates/bench/src/bin/e11_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
