/root/repo/target/debug/deps/engines-02e47157ad4e433f.d: crates/bench/benches/engines.rs

/root/repo/target/debug/deps/engines-02e47157ad4e433f: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
