/root/repo/target/debug/deps/e5_thm1d2-39c1a4a569f12339.d: crates/bench/src/bin/e5_thm1d2.rs

/root/repo/target/debug/deps/e5_thm1d2-39c1a4a569f12339: crates/bench/src/bin/e5_thm1d2.rs

crates/bench/src/bin/e5_thm1d2.rs:
