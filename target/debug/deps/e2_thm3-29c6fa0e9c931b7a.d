/root/repo/target/debug/deps/e2_thm3-29c6fa0e9c931b7a.d: crates/bench/src/bin/e2_thm3.rs

/root/repo/target/debug/deps/e2_thm3-29c6fa0e9c931b7a: crates/bench/src/bin/e2_thm3.rs

crates/bench/src/bin/e2_thm3.rs:
