/root/repo/target/debug/deps/e7_prop3-409c9b5c1ab24acf.d: crates/bench/src/bin/e7_prop3.rs

/root/repo/target/debug/deps/e7_prop3-409c9b5c1ab24acf: crates/bench/src/bin/e7_prop3.rs

crates/bench/src/bin/e7_prop3.rs:
