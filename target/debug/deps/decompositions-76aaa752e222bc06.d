/root/repo/target/debug/deps/decompositions-76aaa752e222bc06.d: crates/core/../../tests/decompositions.rs

/root/repo/target/debug/deps/decompositions-76aaa752e222bc06: crates/core/../../tests/decompositions.rs

crates/core/../../tests/decompositions.rs:
