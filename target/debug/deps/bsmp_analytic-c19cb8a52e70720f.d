/root/repo/target/debug/deps/bsmp_analytic-c19cb8a52e70720f.d: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

/root/repo/target/debug/deps/libbsmp_analytic-c19cb8a52e70720f.rlib: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

/root/repo/target/debug/deps/libbsmp_analytic-c19cb8a52e70720f.rmeta: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

crates/analytic/src/lib.rs:
crates/analytic/src/bounds.rs:
crates/analytic/src/brent.rs:
crates/analytic/src/extensions.rs:
crates/analytic/src/matmul.rs:
crates/analytic/src/theorem1.rs:
crates/analytic/src/theorem4.rs:
