/root/repo/target/debug/deps/proptests-208057b02c8e095b.d: crates/workloads/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-208057b02c8e095b.rmeta: crates/workloads/tests/proptests.rs Cargo.toml

crates/workloads/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
