/root/repo/target/debug/deps/e6_matmul-a83d293951f33438.d: crates/bench/src/bin/e6_matmul.rs Cargo.toml

/root/repo/target/debug/deps/libe6_matmul-a83d293951f33438.rmeta: crates/bench/src/bin/e6_matmul.rs Cargo.toml

crates/bench/src/bin/e6_matmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
