/root/repo/target/debug/deps/bsmp_analytic-3966d0dccfbeb1e2.d: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_analytic-3966d0dccfbeb1e2.rmeta: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs Cargo.toml

crates/analytic/src/lib.rs:
crates/analytic/src/bounds.rs:
crates/analytic/src/brent.rs:
crates/analytic/src/extensions.rs:
crates/analytic/src/matmul.rs:
crates/analytic/src/theorem1.rs:
crates/analytic/src/theorem4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
