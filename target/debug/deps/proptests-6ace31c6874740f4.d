/root/repo/target/debug/deps/proptests-6ace31c6874740f4.d: crates/dag/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6ace31c6874740f4.rmeta: crates/dag/tests/proptests.rs Cargo.toml

crates/dag/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
