/root/repo/target/debug/deps/bsmp_geometry-5fd5cf3159ea5978.d: crates/geometry/src/lib.rs crates/geometry/src/ibox.rs crates/geometry/src/point.rs crates/geometry/src/diamond.rs crates/geometry/src/tiling1.rs crates/geometry/src/domain2.rs crates/geometry/src/octa.rs crates/geometry/src/tetra.rs crates/geometry/src/tiling2.rs crates/geometry/src/domain3.rs crates/geometry/src/figures.rs crates/geometry/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_geometry-5fd5cf3159ea5978.rmeta: crates/geometry/src/lib.rs crates/geometry/src/ibox.rs crates/geometry/src/point.rs crates/geometry/src/diamond.rs crates/geometry/src/tiling1.rs crates/geometry/src/domain2.rs crates/geometry/src/octa.rs crates/geometry/src/tetra.rs crates/geometry/src/tiling2.rs crates/geometry/src/domain3.rs crates/geometry/src/figures.rs crates/geometry/src/render.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/ibox.rs:
crates/geometry/src/point.rs:
crates/geometry/src/diamond.rs:
crates/geometry/src/tiling1.rs:
crates/geometry/src/domain2.rs:
crates/geometry/src/octa.rs:
crates/geometry/src/tetra.rs:
crates/geometry/src/tiling2.rs:
crates/geometry/src/domain3.rs:
crates/geometry/src/figures.rs:
crates/geometry/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
