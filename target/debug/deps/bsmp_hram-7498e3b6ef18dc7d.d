/root/repo/target/debug/deps/bsmp_hram-7498e3b6ef18dc7d.d: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

/root/repo/target/debug/deps/bsmp_hram-7498e3b6ef18dc7d: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

crates/hram/src/lib.rs:
crates/hram/src/access.rs:
crates/hram/src/cost.rs:
crates/hram/src/machine.rs:
