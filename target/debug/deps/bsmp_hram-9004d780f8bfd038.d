/root/repo/target/debug/deps/bsmp_hram-9004d780f8bfd038.d: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

/root/repo/target/debug/deps/libbsmp_hram-9004d780f8bfd038.rlib: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

/root/repo/target/debug/deps/libbsmp_hram-9004d780f8bfd038.rmeta: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs

crates/hram/src/lib.rs:
crates/hram/src/access.rs:
crates/hram/src/cost.rs:
crates/hram/src/machine.rs:
