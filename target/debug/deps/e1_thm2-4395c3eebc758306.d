/root/repo/target/debug/deps/e1_thm2-4395c3eebc758306.d: crates/bench/src/bin/e1_thm2.rs

/root/repo/target/debug/deps/e1_thm2-4395c3eebc758306: crates/bench/src/bin/e1_thm2.rs

crates/bench/src/bin/e1_thm2.rs:
