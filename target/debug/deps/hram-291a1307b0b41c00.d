/root/repo/target/debug/deps/hram-291a1307b0b41c00.d: crates/bench/benches/hram.rs Cargo.toml

/root/repo/target/debug/deps/libhram-291a1307b0b41c00.rmeta: crates/bench/benches/hram.rs Cargo.toml

crates/bench/benches/hram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
