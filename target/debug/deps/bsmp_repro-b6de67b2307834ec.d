/root/repo/target/debug/deps/bsmp_repro-b6de67b2307834ec.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_repro-b6de67b2307834ec.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
