/root/repo/target/debug/deps/e4_thm5-6501af4fec0deb94.d: crates/bench/src/bin/e4_thm5.rs

/root/repo/target/debug/deps/e4_thm5-6501af4fec0deb94: crates/bench/src/bin/e4_thm5.rs

crates/bench/src/bin/e4_thm5.rs:
