/root/repo/target/debug/deps/bsmp_faults-6df4362446445b48.d: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_faults-6df4362446445b48.rmeta: crates/faults/src/lib.rs crates/faults/src/plan.rs crates/faults/src/rng.rs crates/faults/src/session.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/plan.rs:
crates/faults/src/rng.rs:
crates/faults/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
