/root/repo/target/debug/deps/e8_figures-504406e5491d673b.d: crates/bench/src/bin/e8_figures.rs

/root/repo/target/debug/deps/e8_figures-504406e5491d673b: crates/bench/src/bin/e8_figures.rs

crates/bench/src/bin/e8_figures.rs:
