/root/repo/target/debug/deps/e13_faults-a145ce74019bc884.d: crates/bench/src/bin/e13_faults.rs

/root/repo/target/debug/deps/e13_faults-a145ce74019bc884: crates/bench/src/bin/e13_faults.rs

crates/bench/src/bin/e13_faults.rs:
