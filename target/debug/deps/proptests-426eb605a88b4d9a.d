/root/repo/target/debug/deps/proptests-426eb605a88b4d9a.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-426eb605a88b4d9a: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
