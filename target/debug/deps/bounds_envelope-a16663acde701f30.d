/root/repo/target/debug/deps/bounds_envelope-a16663acde701f30.d: crates/core/../../tests/bounds_envelope.rs Cargo.toml

/root/repo/target/debug/deps/libbounds_envelope-a16663acde701f30.rmeta: crates/core/../../tests/bounds_envelope.rs Cargo.toml

crates/core/../../tests/bounds_envelope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
