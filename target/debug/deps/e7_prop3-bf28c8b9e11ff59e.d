/root/repo/target/debug/deps/e7_prop3-bf28c8b9e11ff59e.d: crates/bench/src/bin/e7_prop3.rs Cargo.toml

/root/repo/target/debug/deps/libe7_prop3-bf28c8b9e11ff59e.rmeta: crates/bench/src/bin/e7_prop3.rs Cargo.toml

crates/bench/src/bin/e7_prop3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
