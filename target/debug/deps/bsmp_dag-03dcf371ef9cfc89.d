/root/repo/target/debug/deps/bsmp_dag-03dcf371ef9cfc89.d: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

/root/repo/target/debug/deps/bsmp_dag-03dcf371ef9cfc89: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

crates/dag/src/lib.rs:
crates/dag/src/dag1.rs:
crates/dag/src/dag2.rs:
crates/dag/src/partition.rs:
crates/dag/src/schedule.rs:
crates/dag/src/separator.rs:
