/root/repo/target/debug/deps/proptests-db0285fa3c7a207e.d: crates/hram/tests/proptests.rs

/root/repo/target/debug/deps/proptests-db0285fa3c7a207e: crates/hram/tests/proptests.rs

crates/hram/tests/proptests.rs:
