/root/repo/target/debug/deps/e12_ablation-11e5af4787fdc32f.d: crates/bench/src/bin/e12_ablation.rs

/root/repo/target/debug/deps/e12_ablation-11e5af4787fdc32f: crates/bench/src/bin/e12_ablation.rs

crates/bench/src/bin/e12_ablation.rs:
