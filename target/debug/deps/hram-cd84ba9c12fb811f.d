/root/repo/target/debug/deps/hram-cd84ba9c12fb811f.d: crates/bench/benches/hram.rs

/root/repo/target/debug/deps/hram-cd84ba9c12fb811f: crates/bench/benches/hram.rs

crates/bench/benches/hram.rs:
