/root/repo/target/debug/deps/bsmp-9710424b9de0267b.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libbsmp-9710424b9de0267b.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libbsmp-9710424b9de0267b.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
