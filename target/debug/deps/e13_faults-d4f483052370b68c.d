/root/repo/target/debug/deps/e13_faults-d4f483052370b68c.d: crates/bench/src/bin/e13_faults.rs Cargo.toml

/root/repo/target/debug/deps/libe13_faults-d4f483052370b68c.rmeta: crates/bench/src/bin/e13_faults.rs Cargo.toml

crates/bench/src/bin/e13_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
