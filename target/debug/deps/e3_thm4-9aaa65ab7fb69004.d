/root/repo/target/debug/deps/e3_thm4-9aaa65ab7fb69004.d: crates/bench/src/bin/e3_thm4.rs

/root/repo/target/debug/deps/e3_thm4-9aaa65ab7fb69004: crates/bench/src/bin/e3_thm4.rs

crates/bench/src/bin/e3_thm4.rs:
