/root/repo/target/debug/deps/e7_prop3-ce16793a23f057ad.d: crates/bench/src/bin/e7_prop3.rs Cargo.toml

/root/repo/target/debug/deps/libe7_prop3-ce16793a23f057ad.rmeta: crates/bench/src/bin/e7_prop3.rs Cargo.toml

crates/bench/src/bin/e7_prop3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
