/root/repo/target/debug/deps/e6_matmul-8c17940dfeed0648.d: crates/bench/src/bin/e6_matmul.rs Cargo.toml

/root/repo/target/debug/deps/libe6_matmul-8c17940dfeed0648.rmeta: crates/bench/src/bin/e6_matmul.rs Cargo.toml

crates/bench/src/bin/e6_matmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
