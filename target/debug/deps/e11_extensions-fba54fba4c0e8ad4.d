/root/repo/target/debug/deps/e11_extensions-fba54fba4c0e8ad4.d: crates/bench/src/bin/e11_extensions.rs

/root/repo/target/debug/deps/e11_extensions-fba54fba4c0e8ad4: crates/bench/src/bin/e11_extensions.rs

crates/bench/src/bin/e11_extensions.rs:
