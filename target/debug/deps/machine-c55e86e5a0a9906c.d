/root/repo/target/debug/deps/machine-c55e86e5a0a9906c.d: crates/bench/benches/machine.rs

/root/repo/target/debug/deps/machine-c55e86e5a0a9906c: crates/bench/benches/machine.rs

crates/bench/benches/machine.rs:
