/root/repo/target/debug/deps/proptests-e3a41059aa9af263.d: crates/hram/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e3a41059aa9af263.rmeta: crates/hram/tests/proptests.rs Cargo.toml

crates/hram/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
