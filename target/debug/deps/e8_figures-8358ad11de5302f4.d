/root/repo/target/debug/deps/e8_figures-8358ad11de5302f4.d: crates/bench/src/bin/e8_figures.rs Cargo.toml

/root/repo/target/debug/deps/libe8_figures-8358ad11de5302f4.rmeta: crates/bench/src/bin/e8_figures.rs Cargo.toml

crates/bench/src/bin/e8_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
