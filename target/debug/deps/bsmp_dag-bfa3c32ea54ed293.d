/root/repo/target/debug/deps/bsmp_dag-bfa3c32ea54ed293.d: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

/root/repo/target/debug/deps/libbsmp_dag-bfa3c32ea54ed293.rlib: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

/root/repo/target/debug/deps/libbsmp_dag-bfa3c32ea54ed293.rmeta: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs

crates/dag/src/lib.rs:
crates/dag/src/dag1.rs:
crates/dag/src/dag2.rs:
crates/dag/src/partition.rs:
crates/dag/src/schedule.rs:
crates/dag/src/separator.rs:
