/root/repo/target/debug/deps/decompositions-7fefef9ad32f4259.d: crates/core/../../tests/decompositions.rs Cargo.toml

/root/repo/target/debug/deps/libdecompositions-7fefef9ad32f4259.rmeta: crates/core/../../tests/decompositions.rs Cargo.toml

crates/core/../../tests/decompositions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
