/root/repo/target/debug/deps/bsmp_machine-e7e21f2977586222.d: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

/root/repo/target/debug/deps/libbsmp_machine-e7e21f2977586222.rlib: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

/root/repo/target/debug/deps/libbsmp_machine-e7e21f2977586222.rmeta: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

crates/machine/src/lib.rs:
crates/machine/src/guest.rs:
crates/machine/src/pool.rs:
crates/machine/src/program.rs:
crates/machine/src/spec.rs:
crates/machine/src/stage.rs:
