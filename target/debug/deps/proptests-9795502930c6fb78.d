/root/repo/target/debug/deps/proptests-9795502930c6fb78.d: crates/workloads/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9795502930c6fb78: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
