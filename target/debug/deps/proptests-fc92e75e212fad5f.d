/root/repo/target/debug/deps/proptests-fc92e75e212fad5f.d: crates/machine/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fc92e75e212fad5f: crates/machine/tests/proptests.rs

crates/machine/tests/proptests.rs:
