/root/repo/target/debug/deps/machine-0150f7534e54709d.d: crates/bench/benches/machine.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-0150f7534e54709d.rmeta: crates/bench/benches/machine.rs Cargo.toml

crates/bench/benches/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
