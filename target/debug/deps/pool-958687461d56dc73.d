/root/repo/target/debug/deps/pool-958687461d56dc73.d: crates/core/../../tests/pool.rs

/root/repo/target/debug/deps/pool-958687461d56dc73: crates/core/../../tests/pool.rs

crates/core/../../tests/pool.rs:
