/root/repo/target/debug/deps/bsmp_sim-b82b97d56ec9cb5c.d: crates/sim/src/lib.rs crates/sim/src/dnc1.rs crates/sim/src/dnc2.rs crates/sim/src/dnc3.rs crates/sim/src/error.rs crates/sim/src/exec1.rs crates/sim/src/exec2.rs crates/sim/src/exec3.rs crates/sim/src/multi1.rs crates/sim/src/multi2.rs crates/sim/src/naive1.rs crates/sim/src/naive2.rs crates/sim/src/pipelined1.rs crates/sim/src/report.rs crates/sim/src/zone.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_sim-b82b97d56ec9cb5c.rmeta: crates/sim/src/lib.rs crates/sim/src/dnc1.rs crates/sim/src/dnc2.rs crates/sim/src/dnc3.rs crates/sim/src/error.rs crates/sim/src/exec1.rs crates/sim/src/exec2.rs crates/sim/src/exec3.rs crates/sim/src/multi1.rs crates/sim/src/multi2.rs crates/sim/src/naive1.rs crates/sim/src/naive2.rs crates/sim/src/pipelined1.rs crates/sim/src/report.rs crates/sim/src/zone.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/dnc1.rs:
crates/sim/src/dnc2.rs:
crates/sim/src/dnc3.rs:
crates/sim/src/error.rs:
crates/sim/src/exec1.rs:
crates/sim/src/exec2.rs:
crates/sim/src/exec3.rs:
crates/sim/src/multi1.rs:
crates/sim/src/multi2.rs:
crates/sim/src/naive1.rs:
crates/sim/src/naive2.rs:
crates/sim/src/pipelined1.rs:
crates/sim/src/report.rs:
crates/sim/src/zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
