/root/repo/target/debug/deps/e5_thm1d2-7d1d3ac10cc5a482.d: crates/bench/src/bin/e5_thm1d2.rs Cargo.toml

/root/repo/target/debug/deps/libe5_thm1d2-7d1d3ac10cc5a482.rmeta: crates/bench/src/bin/e5_thm1d2.rs Cargo.toml

crates/bench/src/bin/e5_thm1d2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
