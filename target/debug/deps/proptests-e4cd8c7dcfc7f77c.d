/root/repo/target/debug/deps/proptests-e4cd8c7dcfc7f77c.d: crates/analytic/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e4cd8c7dcfc7f77c: crates/analytic/tests/proptests.rs

crates/analytic/tests/proptests.rs:
