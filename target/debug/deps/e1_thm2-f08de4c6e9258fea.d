/root/repo/target/debug/deps/e1_thm2-f08de4c6e9258fea.d: crates/bench/src/bin/e1_thm2.rs Cargo.toml

/root/repo/target/debug/deps/libe1_thm2-f08de4c6e9258fea.rmeta: crates/bench/src/bin/e1_thm2.rs Cargo.toml

crates/bench/src/bin/e1_thm2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
