/root/repo/target/debug/deps/pool-650cdf7e26d0dd96.d: crates/core/../../tests/pool.rs Cargo.toml

/root/repo/target/debug/deps/libpool-650cdf7e26d0dd96.rmeta: crates/core/../../tests/pool.rs Cargo.toml

crates/core/../../tests/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
