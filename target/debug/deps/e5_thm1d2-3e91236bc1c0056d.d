/root/repo/target/debug/deps/e5_thm1d2-3e91236bc1c0056d.d: crates/bench/src/bin/e5_thm1d2.rs

/root/repo/target/debug/deps/e5_thm1d2-3e91236bc1c0056d: crates/bench/src/bin/e5_thm1d2.rs

crates/bench/src/bin/e5_thm1d2.rs:
