/root/repo/target/debug/deps/proptests-349712158e0fb45b.d: crates/analytic/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-349712158e0fb45b.rmeta: crates/analytic/tests/proptests.rs Cargo.toml

crates/analytic/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
