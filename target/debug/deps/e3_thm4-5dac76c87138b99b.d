/root/repo/target/debug/deps/e3_thm4-5dac76c87138b99b.d: crates/bench/src/bin/e3_thm4.rs

/root/repo/target/debug/deps/e3_thm4-5dac76c87138b99b: crates/bench/src/bin/e3_thm4.rs

crates/bench/src/bin/e3_thm4.rs:
