/root/repo/target/debug/deps/bsmp-1b72cb9a54966957.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp-1b72cb9a54966957.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
