/root/repo/target/debug/deps/bsmp-7d174d43d5a24b8d.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp-7d174d43d5a24b8d.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
