/root/repo/target/debug/deps/e8_figures-a2d18080cbc1e24e.d: crates/bench/src/bin/e8_figures.rs

/root/repo/target/debug/deps/e8_figures-a2d18080cbc1e24e: crates/bench/src/bin/e8_figures.rs

crates/bench/src/bin/e8_figures.rs:
