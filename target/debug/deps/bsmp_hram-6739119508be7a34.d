/root/repo/target/debug/deps/bsmp_hram-6739119508be7a34.d: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_hram-6739119508be7a34.rmeta: crates/hram/src/lib.rs crates/hram/src/access.rs crates/hram/src/cost.rs crates/hram/src/machine.rs Cargo.toml

crates/hram/src/lib.rs:
crates/hram/src/access.rs:
crates/hram/src/cost.rs:
crates/hram/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
