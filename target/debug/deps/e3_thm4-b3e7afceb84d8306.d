/root/repo/target/debug/deps/e3_thm4-b3e7afceb84d8306.d: crates/bench/src/bin/e3_thm4.rs Cargo.toml

/root/repo/target/debug/deps/libe3_thm4-b3e7afceb84d8306.rmeta: crates/bench/src/bin/e3_thm4.rs Cargo.toml

crates/bench/src/bin/e3_thm4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
