/root/repo/target/debug/deps/equivalence-c270081be8180e77.d: crates/core/../../tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-c270081be8180e77: crates/core/../../tests/equivalence.rs

crates/core/../../tests/equivalence.rs:
