/root/repo/target/debug/deps/e9_sstar-6e15a3174598f0ad.d: crates/bench/src/bin/e9_sstar.rs

/root/repo/target/debug/deps/e9_sstar-6e15a3174598f0ad: crates/bench/src/bin/e9_sstar.rs

crates/bench/src/bin/e9_sstar.rs:
