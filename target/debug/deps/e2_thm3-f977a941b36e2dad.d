/root/repo/target/debug/deps/e2_thm3-f977a941b36e2dad.d: crates/bench/src/bin/e2_thm3.rs Cargo.toml

/root/repo/target/debug/deps/libe2_thm3-f977a941b36e2dad.rmeta: crates/bench/src/bin/e2_thm3.rs Cargo.toml

crates/bench/src/bin/e2_thm3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
