/root/repo/target/debug/deps/e10_brent-c5762abfdb6f1915.d: crates/bench/src/bin/e10_brent.rs Cargo.toml

/root/repo/target/debug/deps/libe10_brent-c5762abfdb6f1915.rmeta: crates/bench/src/bin/e10_brent.rs Cargo.toml

crates/bench/src/bin/e10_brent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
