/root/repo/target/debug/deps/proptests-b5b23ff6e2ea699e.d: crates/dag/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b5b23ff6e2ea699e: crates/dag/tests/proptests.rs

crates/dag/tests/proptests.rs:
