/root/repo/target/debug/deps/bsmp_dag-848c939c35decf02.d: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_dag-848c939c35decf02.rmeta: crates/dag/src/lib.rs crates/dag/src/dag1.rs crates/dag/src/dag2.rs crates/dag/src/partition.rs crates/dag/src/schedule.rs crates/dag/src/separator.rs Cargo.toml

crates/dag/src/lib.rs:
crates/dag/src/dag1.rs:
crates/dag/src/dag2.rs:
crates/dag/src/partition.rs:
crates/dag/src/schedule.rs:
crates/dag/src/separator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
