/root/repo/target/debug/deps/proptests-2958985dfeda0232.d: crates/machine/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2958985dfeda0232.rmeta: crates/machine/tests/proptests.rs Cargo.toml

crates/machine/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
