/root/repo/target/debug/deps/e10_brent-3240ba7fbe5c95f2.d: crates/bench/src/bin/e10_brent.rs

/root/repo/target/debug/deps/e10_brent-3240ba7fbe5c95f2: crates/bench/src/bin/e10_brent.rs

crates/bench/src/bin/e10_brent.rs:
