/root/repo/target/debug/deps/bsmp_machine-2a2429bb6d5e5c1c.d: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_machine-2a2429bb6d5e5c1c.rmeta: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/guest.rs:
crates/machine/src/pool.rs:
crates/machine/src/program.rs:
crates/machine/src/spec.rs:
crates/machine/src/stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
