/root/repo/target/debug/deps/bsmp_repro-05c66c1ad8b429a9.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/bsmp_repro-05c66c1ad8b429a9: crates/cli/src/main.rs

crates/cli/src/main.rs:
