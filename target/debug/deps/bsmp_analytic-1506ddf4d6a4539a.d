/root/repo/target/debug/deps/bsmp_analytic-1506ddf4d6a4539a.d: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

/root/repo/target/debug/deps/bsmp_analytic-1506ddf4d6a4539a: crates/analytic/src/lib.rs crates/analytic/src/bounds.rs crates/analytic/src/brent.rs crates/analytic/src/extensions.rs crates/analytic/src/matmul.rs crates/analytic/src/theorem1.rs crates/analytic/src/theorem4.rs

crates/analytic/src/lib.rs:
crates/analytic/src/bounds.rs:
crates/analytic/src/brent.rs:
crates/analytic/src/extensions.rs:
crates/analytic/src/matmul.rs:
crates/analytic/src/theorem1.rs:
crates/analytic/src/theorem4.rs:
