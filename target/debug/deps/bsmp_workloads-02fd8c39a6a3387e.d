/root/repo/target/debug/deps/bsmp_workloads-02fd8c39a6a3387e.d: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs Cargo.toml

/root/repo/target/debug/deps/libbsmp_workloads-02fd8c39a6a3387e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/cannon.rs:
crates/workloads/src/eca.rs:
crates/workloads/src/fir.rs:
crates/workloads/src/heat.rs:
crates/workloads/src/inputs.rs:
crates/workloads/src/life.rs:
crates/workloads/src/shift.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wave.rs:
crates/workloads/src/volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
