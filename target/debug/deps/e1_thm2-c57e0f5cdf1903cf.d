/root/repo/target/debug/deps/e1_thm2-c57e0f5cdf1903cf.d: crates/bench/src/bin/e1_thm2.rs

/root/repo/target/debug/deps/e1_thm2-c57e0f5cdf1903cf: crates/bench/src/bin/e1_thm2.rs

crates/bench/src/bin/e1_thm2.rs:
