/root/repo/target/debug/deps/bsmp_machine-5c01442c8cdba17e.d: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

/root/repo/target/debug/deps/bsmp_machine-5c01442c8cdba17e: crates/machine/src/lib.rs crates/machine/src/guest.rs crates/machine/src/pool.rs crates/machine/src/program.rs crates/machine/src/spec.rs crates/machine/src/stage.rs

crates/machine/src/lib.rs:
crates/machine/src/guest.rs:
crates/machine/src/pool.rs:
crates/machine/src/program.rs:
crates/machine/src/spec.rs:
crates/machine/src/stage.rs:
