/root/repo/target/debug/deps/e9_sstar-143d0a6259d1685f.d: crates/bench/src/bin/e9_sstar.rs

/root/repo/target/debug/deps/e9_sstar-143d0a6259d1685f: crates/bench/src/bin/e9_sstar.rs

crates/bench/src/bin/e9_sstar.rs:
