/root/repo/target/debug/deps/bsmp_repro-6c63cf1b68e78ab2.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/bsmp_repro-6c63cf1b68e78ab2: crates/cli/src/main.rs

crates/cli/src/main.rs:
