/root/repo/target/debug/deps/e12_ablation-a783ee5a6161eea8.d: crates/bench/src/bin/e12_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libe12_ablation-a783ee5a6161eea8.rmeta: crates/bench/src/bin/e12_ablation.rs Cargo.toml

crates/bench/src/bin/e12_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
