/root/repo/target/debug/deps/bsmp_workloads-cc2ff7498d6608e6.d: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

/root/repo/target/debug/deps/libbsmp_workloads-cc2ff7498d6608e6.rlib: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

/root/repo/target/debug/deps/libbsmp_workloads-cc2ff7498d6608e6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cannon.rs crates/workloads/src/eca.rs crates/workloads/src/fir.rs crates/workloads/src/heat.rs crates/workloads/src/inputs.rs crates/workloads/src/life.rs crates/workloads/src/shift.rs crates/workloads/src/sort.rs crates/workloads/src/wave.rs crates/workloads/src/volume.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cannon.rs:
crates/workloads/src/eca.rs:
crates/workloads/src/fir.rs:
crates/workloads/src/heat.rs:
crates/workloads/src/inputs.rs:
crates/workloads/src/life.rs:
crates/workloads/src/shift.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wave.rs:
crates/workloads/src/volume.rs:
