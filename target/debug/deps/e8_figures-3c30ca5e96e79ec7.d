/root/repo/target/debug/deps/e8_figures-3c30ca5e96e79ec7.d: crates/bench/src/bin/e8_figures.rs Cargo.toml

/root/repo/target/debug/deps/libe8_figures-3c30ca5e96e79ec7.rmeta: crates/bench/src/bin/e8_figures.rs Cargo.toml

crates/bench/src/bin/e8_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
