/root/repo/target/debug/deps/faults-309af44bcf1a5c2b.d: crates/core/../../tests/faults.rs

/root/repo/target/debug/deps/faults-309af44bcf1a5c2b: crates/core/../../tests/faults.rs

crates/core/../../tests/faults.rs:
