/root/repo/target/debug/deps/bounds_envelope-a512a62767088499.d: crates/core/../../tests/bounds_envelope.rs

/root/repo/target/debug/deps/bounds_envelope-a512a62767088499: crates/core/../../tests/bounds_envelope.rs

crates/core/../../tests/bounds_envelope.rs:
