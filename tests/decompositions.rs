//! Integration: the geometric decompositions driving the engines are
//! genuine topological partitions (Definition 4) at many scales —
//! validated with the independent checker from `bsmp-dag`.

use bsmp::dag::partition::{
    check_topological_partition1, check_topological_partition2, is_convex1,
};
use bsmp::dag::schedule::{is_topological_order1, refine1, refine2};
use bsmp::geometry::{cell_cover, diamond_cover, figures, Diamond, Domain2, IBox, IRect, Pt2, Pt3};

#[test]
fn diamond_recursion_is_topological_at_depth() {
    // Three levels of the Theorem-2 separator, checked flat.
    let d = Diamond::new(0, 0, 8);
    let mut pieces: Vec<Vec<Pt2>> = Vec::new();
    for c1 in d.children() {
        for c2 in c1.children() {
            for c3 in c2.children() {
                pieces.push(c3.points());
            }
        }
    }
    let world = IRect::new(-100, 100, -100, 100);
    check_topological_partition1(&d.points(), &pieces, |p| world.contains(p)).unwrap();
    assert!(is_topological_order1(&refine1(&pieces)));
}

#[test]
fn octa_tetra_recursion_is_topological_at_depth() {
    let p = Domain2::octahedron(0, 0, 0, 4);
    let mut pieces: Vec<Vec<Pt3>> = Vec::new();
    for c1 in p.children() {
        for c2 in c1.children() {
            pieces.push(c2.points());
        }
    }
    let world = IBox::new(-100, 100, -100, 100, -100, 100);
    check_topological_partition2(&p.points(), &pieces, |q| world.contains(q)).unwrap();
    let order = refine2(&pieces);
    assert_eq!(order.len() as i64, p.volume());
}

#[test]
fn covers_are_topological_partitions_many_shapes() {
    for (w, t, h) in [(16i64, 16i64, 2i64), (16, 16, 4), (20, 10, 4), (9, 23, 2)] {
        let rect = IRect::new(0, w, 1, t + 1);
        let pieces: Vec<Vec<Pt2>> = diamond_cover(rect, h, Pt2::new(0, 0))
            .iter()
            .map(|c| c.points())
            .collect();
        check_topological_partition1(&rect.points(), &pieces, |p| {
            rect.contains(p) || (p.t == 0 && p.x >= 0 && p.x < w)
        })
        .unwrap_or_else(|e| panic!("(w={w},t={t},h={h}): {e:?}"));
    }
}

#[test]
fn cell_covers_are_topological_partitions() {
    for (s, t, h) in [(8i64, 8i64, 2i64), (6, 10, 2), (8, 4, 4)] {
        let bx = IBox::new(0, s, 0, s, 1, t + 1);
        let pieces: Vec<Vec<Pt3>> = cell_cover(bx, h, Pt3::new(0, 0, 0))
            .iter()
            .map(|c| c.points())
            .collect();
        check_topological_partition2(&bx.points(), &pieces, |q| {
            bx.contains(q) || (q.t == 0 && q.x >= 0 && q.x < s && q.y >= 0 && q.y < s)
        })
        .unwrap_or_else(|e| panic!("(s={s},t={t},h={h}): {e:?}"));
    }
}

#[test]
fn figure_partitions_validate() {
    // Figure 1.
    let n = 12i64;
    let rect = IRect::new(0, n, 0, n + 1);
    let pieces: Vec<Vec<Pt2>> = figures::figure1(n).iter().map(|c| c.points()).collect();
    check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)).unwrap();

    // Figure 4.
    let s = 6i64;
    let bx = IBox::new(0, s, 0, s, 0, s + 1);
    let pieces: Vec<Vec<Pt3>> = figures::figure4(s).iter().map(|c| c.points()).collect();
    check_topological_partition2(&bx.points(), &pieces, |q| bx.contains(q)).unwrap();
}

#[test]
fn separator_domains_are_convex() {
    // Definition 5/6: the separator's domains must be convex.
    let world = IRect::new(-50, 50, -50, 50);
    for h in [1i64, 2, 4, 8] {
        let d = Diamond::new(0, 0, h);
        assert!(is_convex1(&d.points(), |p| world.contains(p)), "D(h={h})");
        for c in if h >= 2 {
            d.children().to_vec()
        } else {
            vec![]
        } {
            assert!(is_convex1(&c.points(), |p| world.contains(p)));
        }
    }
}

#[test]
fn cube_partition_counterexample_holds() {
    // Section 3.2: "a partition of [a cubic lattice] into cubes is not a
    // topological partition" — verify the paper's negative example.
    let bx = IBox::new(0, 4, 0, 4, 0, 4);
    let mut pieces: Vec<Vec<Pt3>> = Vec::new();
    for cz in 0..2 {
        for cy in 0..2 {
            for cx in 0..2 {
                let cube = IBox::new(cx * 2, cx * 2 + 2, cy * 2, cy * 2 + 2, cz * 2, cz * 2 + 2);
                pieces.push(cube.points());
            }
        }
    }
    // No ordering of the cubes works: information flows both ways across
    // vertical cube faces.  Check the canonical order and its reverse.
    assert!(check_topological_partition2(&bx.points(), &pieces, |q| bx.contains(q)).is_err());
    pieces.reverse();
    assert!(check_topological_partition2(&bx.points(), &pieces, |q| bx.contains(q)).is_err());
}
