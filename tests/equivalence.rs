//! Cross-crate integration: every simulation engine must compute exactly
//! what direct guest execution computes, across workloads, machine
//! shapes, densities and processor counts.

use bsmp::machine::{run_linear, run_mesh, MachineSpec};
use bsmp::sim::{
    dnc1::simulate_dnc1, dnc2::simulate_dnc2, multi1::simulate_multi1, multi2::simulate_multi2,
    naive1::simulate_naive1, naive2::simulate_naive2,
};
use bsmp::workloads::{
    inputs, CyclicWave, Eca, FirPipeline, OddEvenSort, SystolicMatmul, VonNeumannLife,
};
use bsmp::{LinearProgram, MeshProgram};

fn check1(prog: &impl LinearProgram, n: u64, steps: i64, seed: u64) {
    let m = prog.m() as u64;
    let init = inputs::random_words(seed, (n * m) as usize, 64);
    let uni = MachineSpec::new(1, n, 1, m);
    let guest = run_linear(&uni, prog, &init, steps);

    simulate_naive1(&uni, prog, &init, steps).assert_matches(&guest.mem, &guest.values);
    simulate_dnc1(&uni, prog, &init, steps).assert_matches(&guest.mem, &guest.values);
    for p in [2u64, 4] {
        if !n.is_multiple_of(p) {
            continue;
        }
        let spec = MachineSpec::new(1, n, p, m);
        simulate_naive1(&spec, prog, &init, steps).assert_matches(&guest.mem, &guest.values);
        if bsmp::sim::multi1::engine_strip(n, m, p).is_some() {
            simulate_multi1(&spec, prog, &init, steps).assert_matches(&guest.mem, &guest.values);
        }
    }
}

fn check2(prog: &impl MeshProgram, n: u64, steps: i64, seed: u64) {
    let m = prog.m() as u64;
    let init = inputs::random_words(seed, (n * m) as usize, 2);
    check2_init(prog, n, steps, &init);
}

fn check2_init(prog: &impl MeshProgram, n: u64, steps: i64, init: &[u64]) {
    let m = prog.m() as u64;
    let uni = MachineSpec::new(2, n, 1, m);
    let guest = run_mesh(&uni, prog, init, steps);

    simulate_naive2(&uni, prog, init, steps).assert_matches(&guest.mem, &guest.values);
    simulate_dnc2(&uni, prog, init, steps).assert_matches(&guest.mem, &guest.values);
    {
        let p = 4u64;
        let spec = MachineSpec::new(2, n, p, m);
        simulate_naive2(&spec, prog, init, steps).assert_matches(&guest.mem, &guest.values);
        simulate_multi2(&spec, prog, init, steps).assert_matches(&guest.mem, &guest.values);
    }
}

#[test]
fn all_engines_agree_on_rule110() {
    check1(&Eca::rule110(), 32, 32, 1);
}

#[test]
fn all_engines_agree_on_rule90() {
    check1(&Eca::rule90(), 64, 24, 2);
}

#[test]
fn all_engines_agree_on_sorting() {
    check1(&OddEvenSort::new(32), 32, 32, 3);
}

#[test]
fn all_engines_agree_on_multicell_wave() {
    check1(&CyclicWave::new(3), 16, 18, 4);
    check1(&CyclicWave::new(8), 16, 12, 5);
}

#[test]
fn all_engines_agree_on_awkward_sizes() {
    // Odd n, T not a power of two, T ≠ n.
    check1(&Eca::rule110(), 13, 7, 6);
    check1(&Eca::rule110(), 24, 50, 7);
}

#[test]
fn all_engines_agree_on_fir_pipeline() {
    // Read-mostly m > 1 workload: coefficients persist across cell reuse.
    let prog = FirPipeline::new(3, (0..40).map(|i| (i * 13 % 100) + 1).collect());
    let n = 16u64;
    let init = prog.coefficients(n as usize);
    let uni = MachineSpec::new(1, n, 1, 3);
    let guest = run_linear(&uni, &prog, &init, 24);
    simulate_naive1(&uni, &prog, &init, 24).assert_matches(&guest.mem, &guest.values);
    simulate_dnc1(&uni, &prog, &init, 24).assert_matches(&guest.mem, &guest.values);
    let spec4 = MachineSpec::new(1, n, 4, 3);
    simulate_multi1(&spec4, &prog, &init, 24).assert_matches(&guest.mem, &guest.values);
    // Outputs agree with the workload's own oracle too.
    let oracle = prog.oracle(n as usize, 24);
    for (val, exp) in guest.values.iter().zip(&oracle) {
        assert_eq!(bsmp::workloads::fir::sample_of(*val), exp.0);
        assert_eq!(bsmp::workloads::fir::acc_of(*val), exp.1);
    }
}

#[test]
fn all_engines_agree_on_life() {
    check2(&VonNeumannLife::fredkin(), 64, 9, 8);
    check2(&VonNeumannLife::b2s12(), 64, 6, 9);
}

#[test]
fn all_engines_agree_on_systolic_matmul() {
    let side = 4usize;
    let prog = SystolicMatmul::new(side);
    let a = inputs::random_matrix(10, side, 64);
    let b = inputs::random_matrix(11, side, 64);
    let init = prog.stage_inputs(&a, &b);
    check2_init(&prog, (side * side) as u64, prog.steps(), &init);
}

#[test]
fn cost_model_never_changes_answers() {
    // The instantaneous model must produce identical values.
    let init = inputs::random_bits(12, 32);
    let b = MachineSpec::new(1, 32, 4, 1);
    let i = MachineSpec::instantaneous(1, 32, 4, 1);
    let rb = simulate_naive1(&b, &Eca::rule110(), &init, 32);
    let ri = simulate_naive1(&i, &Eca::rule110(), &init, 32);
    assert_eq!(rb.values, ri.values);
    assert_eq!(rb.mem, ri.mem);
    assert!(ri.host_time < rb.host_time);
}
