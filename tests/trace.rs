//! Tier-1 checks for the structured tracing layer (PR 4):
//!
//! 1. **Bit-identity** — tracing, whether disabled or recording, never
//!    perturbs a `SimReport`: every float matches `to_bits`-exactly,
//!    including under an active `FaultPlan`.
//! 2. **Acceptance** — every engine's trace passes the full
//!    `trace-validate` check (structural invariants plus the Theorem-1
//!    regime tag), and the summary's Brent × locality split multiplies
//!    back to the measured slowdown.

use bsmp::sim::{dnc3, pipelined1};
use bsmp::trace::{RunTrace, Tracer};
use bsmp::workloads::{inputs, Eca, Parity3d, VonNeumannLife};
use bsmp::{validate_trace, FaultPlan, MachineSpec, SimReport, Simulation, Strategy};

fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.host_time.to_bits(), b.host_time.to_bits());
    assert_eq!(a.guest_time.to_bits(), b.guest_time.to_bits());
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.values, b.values);
    assert_eq!(a.stages, b.stages);
    assert_eq!(a.space, b.space);
    assert_eq!(
        a.faults.injected_delay.to_bits(),
        b.faults.injected_delay.to_bits()
    );
    assert_eq!(a.faults.retries, b.faults.retries);
    assert_eq!(a.faults.recovered_stages, b.faults.recovered_stages);
    assert_eq!(a.meter.comm.to_bits(), b.meter.comm.to_bits());
}

fn check_trace(trace: &RunTrace, engine: &str, rep: &SimReport) {
    validate_trace(trace).unwrap_or_else(|e| panic!("{engine}: {e}"));
    assert_eq!(trace.engine, engine);
    assert_eq!(
        trace.summary.host_time.to_bits(),
        rep.host_time.to_bits(),
        "{engine}: trace host_time diverges from the report"
    );
    // The Theorem-1 split must multiply back to the measured slowdown.
    let product = trace.summary.brent_term * trace.summary.locality_term;
    assert!(
        (product - trace.summary.slowdown).abs() <= 1e-9 * trace.summary.slowdown.abs().max(1.0),
        "{engine}: {} × {} != {}",
        trace.summary.brent_term,
        trace.summary.locality_term,
        trace.summary.slowdown
    );
}

#[test]
fn tracing_never_perturbs_linear_reports() {
    let init = inputs::random_bits(90, 64);
    let prog = Eca::rule110();
    let plans = [
        FaultPlan::none(),
        FaultPlan::uniform_slowdown(1.5),
        FaultPlan::uniform_slowdown(1.2)
            .seed(9)
            .loss(50, 3)
            .random_crashes(10),
    ];
    for strategy in [Strategy::Naive, Strategy::TwoRegime] {
        for plan in plans {
            let sim = Simulation::linear(64, 4, 1).strategy(strategy).faults(plan);
            let base = sim.try_run(&prog, &init, 32).unwrap();
            let (traced, trace) = sim.try_trace(&prog, &init, 32).unwrap();
            assert_reports_identical(&base.sim, &traced.sim);
            validate_trace(&trace).unwrap();
        }
    }
}

#[test]
fn tracing_never_perturbs_mesh_reports() {
    let init = inputs::random_bits(91, 64);
    let prog = VonNeumannLife::fredkin();
    for strategy in [Strategy::Naive, Strategy::TwoRegime] {
        for plan in [FaultPlan::none(), FaultPlan::uniform_slowdown(2.0)] {
            let sim = Simulation::mesh(64, 4, 1).strategy(strategy).faults(plan);
            let base = sim.try_run_mesh(&prog, &init, 8).unwrap();
            let (traced, trace) = sim.try_trace_mesh(&prog, &init, 8).unwrap();
            assert_reports_identical(&base.sim, &traced.sim);
            validate_trace(&trace).unwrap();
        }
    }
}

#[test]
fn facade_engines_produce_valid_traces() {
    let init = inputs::random_bits(92, 64);
    let prog = Eca::rule110();
    for (strategy, p, engine) in [
        (Strategy::Naive, 4u64, "naive1"),
        (Strategy::TwoRegime, 4, "multi1"),
        (Strategy::TwoRegime, 1, "dnc1"),
    ] {
        let (rep, trace) = Simulation::linear(64, p, 1)
            .strategy(strategy)
            .try_trace(&prog, &init, 32)
            .unwrap();
        check_trace(&trace, engine, &rep.sim);
        assert!(trace.summary.points > 0, "{engine}: no points recorded");
    }

    let init2 = inputs::random_bits(93, 64);
    let life = VonNeumannLife::fredkin();
    for (strategy, p, engine) in [
        (Strategy::Naive, 4u64, "naive2"),
        (Strategy::TwoRegime, 4, "multi2"),
        (Strategy::TwoRegime, 1, "dnc2"),
    ] {
        let (rep, trace) = Simulation::mesh(64, p, 1)
            .strategy(strategy)
            .try_trace_mesh(&life, &init2, 8)
            .unwrap();
        check_trace(&trace, engine, &rep.sim);
        assert!(trace.summary.points > 0, "{engine}: no points recorded");
    }
}

/// Engines not reachable through the façade: trace them directly and
/// stamp the regime the way the façade would.
#[test]
fn direct_engines_produce_valid_traces() {
    let stamp = |mut tr: RunTrace| {
        tr.summary.regime = format!(
            "{:?}",
            bsmp::analytic::theorem1::range(tr.d as u8, tr.n as f64, tr.m as f64, tr.p as f64)
        );
        tr
    };

    let init = inputs::random_bits(94, 64);
    let spec = MachineSpec::new(1, 64, 4, 1);
    let mut tracer = Tracer::recording();
    let rep = pipelined1::try_simulate_pipelined1_traced(
        &spec,
        &Eca::rule110(),
        &init,
        32,
        &FaultPlan::none(),
        &mut tracer,
    )
    .unwrap();
    let tr = stamp(tracer.take().unwrap());
    check_trace(&tr, "pipelined1", &rep);

    let side = 4usize;
    let vinit = inputs::random_bits(95, side * side * side);
    let mut tracer = Tracer::recording();
    let rep = dnc3::try_simulate_dnc3_traced(side, &Parity3d, &vinit, 4, &mut tracer).unwrap();
    let tr = stamp(tracer.take().unwrap());
    check_trace(&tr, "dnc3", &rep);

    let mut tracer = Tracer::recording();
    let rep = dnc3::try_simulate_naive3_traced(side, &Parity3d, &vinit, 4, &mut tracer).unwrap();
    let tr = stamp(tracer.take().unwrap());
    check_trace(&tr, "naive3", &rep);
}

#[test]
fn traces_survive_a_json_round_trip() {
    let init = inputs::random_bits(96, 64);
    let (_, trace) = Simulation::linear(64, 4, 1)
        .strategy(Strategy::TwoRegime)
        .try_trace(&Eca::rule110(), &init, 32)
        .unwrap();
    let parsed = RunTrace::from_json(&trace.to_json()).unwrap();
    assert_eq!(parsed, trace);
    validate_trace(&parsed).unwrap();
}

#[test]
fn validate_trace_rejects_a_mis_stamped_regime() {
    let init = inputs::random_bits(97, 64);
    let (_, mut trace) = Simulation::linear(64, 4, 1)
        .strategy(Strategy::Naive)
        .try_trace(&Eca::rule110(), &init, 16)
        .unwrap();
    validate_trace(&trace).unwrap();
    trace.summary.regime = "R4".into(); // n = 64, m = 1 is R1 territory.
    assert!(validate_trace(&trace).is_err());
}

#[test]
fn facade_certifies_linear_and_mesh_runs() {
    let init = inputs::random_bits(98, 64);
    let (_, trace, cert) = Simulation::try_linear(64, 4, 1)
        .unwrap()
        .strategy(Strategy::TwoRegime)
        .try_certify(&Eca::rule110(), &init, 64)
        .unwrap();
    assert_eq!(cert.verdict, bsmp::trace::certify::Verdict::Certified);
    assert_eq!(cert.engine, trace.engine);
    assert!(cert.lower <= cert.measured && cert.measured <= cert.upper);

    let (_, _, mcert) = Simulation::try_mesh(64, 4, 1)
        .unwrap()
        .strategy(Strategy::Naive)
        .try_certify_mesh(&VonNeumannLife::fredkin(), &init, 16)
        .unwrap();
    assert_eq!(mcert.verdict, bsmp::trace::certify::Verdict::Certified);
}

#[test]
fn facade_refuses_to_certify_instantaneous_runs() {
    // The trace schema does not record the cost model, and the
    // certifier's floors assume bounded-speed hops — an instantaneous
    // trace would be judged against the wrong envelopes.
    let init = inputs::random_bits(99, 64);
    let err = Simulation::try_linear(64, 4, 1)
        .unwrap()
        .instantaneous()
        .strategy(Strategy::Naive)
        .try_certify(&Eca::rule110(), &init, 16)
        .unwrap_err();
    assert!(matches!(err, bsmp::SimError::Uncertifiable { .. }), "{err}");
}
