//! Bit-identity of the tiled/table kernels against the scalar reference
//! loops (PR 7).  The tiled paths must reproduce the per-point engines
//! to `f64::to_bits` on every model quantity — including under active
//! fault plans, tracing, and any host-thread count.

use bsmp::machine::{ExecPolicy, MachineSpec};
use bsmp::sim::{dnc3, naive1, naive2};
use bsmp::trace::Tracer;
use bsmp::workloads::{inputs, CyclicWave, Eca, Parity3d, VonNeumannLife};
use bsmp::{FaultPlan, SimReport};

/// Every field bit-compared; `table_hits` is exempt by design (the
/// scalar reference reports 0 there).
fn assert_bit_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.mem, b.mem, "{what}: mem");
    assert_eq!(a.values, b.values, "{what}: values");
    assert_eq!(
        a.host_time.to_bits(),
        b.host_time.to_bits(),
        "{what}: host_time {} vs {}",
        a.host_time,
        b.host_time
    );
    assert_eq!(
        a.guest_time.to_bits(),
        b.guest_time.to_bits(),
        "{what}: guest_time"
    );
    for (x, y, f) in [
        (a.meter.compute, b.meter.compute, "compute"),
        (a.meter.access, b.meter.access, "access"),
        (a.meter.transfer, b.meter.transfer, "transfer"),
        (a.meter.comm, b.meter.comm, "comm"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: meter.{f} {x} vs {y}");
    }
    assert_eq!(a.meter.ops, b.meter.ops, "{what}: meter.ops");
    assert_eq!(a.space, b.space, "{what}: space");
    assert_eq!(a.stages, b.stages, "{what}: stages");
}

fn storm_plan() -> FaultPlan {
    FaultPlan::uniform_slowdown(2.0).seed(4242).jitter(1.0, 2.0)
}

#[test]
fn naive1_tiled_matches_scalar_bitwise() {
    // Densities spanning the exact-dyadic regime (m = 1, 4), the chain
    // regime (m = 3), and sizes spanning the pool gate.
    let cases: &[(usize, usize, u64, i64)] = &[
        (1, 64, 1, 64),
        (1, 64, 8, 64),
        (1, 2048, 4, 24), // q = 512 ≥ 256: pool-gated size
        (4, 96, 4, 40),
        (3, 96, 4, 40),  // non-pow2 m: chain mode
        (1, 33, 11, 12), // q = 3: smallest tiled block
    ];
    for &(m, n, p, steps) in cases {
        let spec = MachineSpec::new(1, n as u64, p, m as u64);
        let init = inputs::random_words(7, n * m, 97);
        let prog = CyclicWave::new(m);
        for threads in [1usize, 2, 8] {
            let exec = ExecPolicy::threads(threads);
            for plan in [FaultPlan::none(), storm_plan()] {
                let what = format!("naive1 m={m} n={n} p={p} threads={threads}");
                let tiled = naive1::try_simulate_naive1_traced(
                    &spec,
                    &prog,
                    &init,
                    steps,
                    &plan,
                    exec,
                    &mut Tracer::off(),
                )
                .unwrap();
                let scalar = naive1::try_simulate_naive1_scalar(
                    &spec,
                    &prog,
                    &init,
                    steps,
                    &plan,
                    exec,
                    &mut Tracer::off(),
                )
                .unwrap();
                assert_bit_identical(&tiled, &scalar, &what);
                assert_eq!(scalar.meter.table_hits, 0, "{what}: scalar used tables");
                if n / p as usize >= 3 {
                    assert!(tiled.meter.table_hits > 0, "{what}: tiled path not taken");
                }
            }
        }
    }
}

#[test]
fn naive1_exact_mode_engages_for_dyadic_density() {
    // m = 1 (exact) and m = 3 (chain) must both report table hits from
    // the tiled path, and both match the scalar loop (covered above);
    // here we pin that the exact-dyadic path is actually exercised at a
    // pow2 density by checking hit counts equal the access op count.
    let (n, p, steps) = (256usize, 4u64, 32i64);
    let spec = MachineSpec::new(1, n as u64, p, 1);
    let init = inputs::random_bits(3, n);
    let rep = naive1::try_simulate_naive1(&spec, &Eca::rule110(), &init, steps).unwrap();
    assert_eq!(
        rep.meter.table_hits, rep.meter.ops,
        "all accesses table-served"
    );
}

#[test]
fn naive2_tiled_matches_scalar_bitwise() {
    let cases: &[(u64, u64, i64)] = &[(8, 1, 8), (8, 4, 8), (16, 16, 16), (32, 4, 10)];
    for &(side, p, steps) in cases {
        let n = side * side;
        let spec = MachineSpec::new(2, n, p, 1);
        let init = inputs::random_bits(11, n as usize);
        let prog = VonNeumannLife::b2s12();
        for threads in [1usize, 2, 8] {
            let exec = ExecPolicy::threads(threads);
            for plan in [FaultPlan::none(), storm_plan()] {
                let what = format!("naive2 side={side} p={p} threads={threads}");
                let tiled = naive2::try_simulate_naive2_traced(
                    &spec,
                    &prog,
                    &init,
                    steps,
                    &plan,
                    exec,
                    &mut Tracer::off(),
                )
                .unwrap();
                let scalar = naive2::try_simulate_naive2_scalar(
                    &spec,
                    &prog,
                    &init,
                    steps,
                    &plan,
                    exec,
                    &mut Tracer::off(),
                )
                .unwrap();
                assert_bit_identical(&tiled, &scalar, &what);
                assert_eq!(scalar.meter.table_hits, 0, "{what}: scalar used tables");
            }
        }
    }
}

#[test]
fn naive3_tiled_matches_scalar_bitwise() {
    for side in [4i64, 6, 8] {
        let n = (side * side * side) as usize;
        let init = inputs::random_bits(13, n);
        let steps = side;
        let tiled = dnc3::try_simulate_naive3(side as usize, &Parity3d, &init, steps).unwrap();
        let scalar =
            dnc3::try_simulate_naive3_scalar(side as usize, &Parity3d, &init, steps).unwrap();
        assert_bit_identical(&tiled, &scalar, &format!("naive3 side={side}"));
        assert_eq!(scalar.meter.table_hits, 0, "naive3 scalar used tables");
        assert!(tiled.meter.table_hits > 0, "naive3 tiled path not taken");
    }
}
