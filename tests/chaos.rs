//! Chaos-soak harness for the adversarial scenario engine (DESIGN.md
//! §14): a seeded scenario matrix — lognormal/Pareto jitter, asymmetric
//! links, partition storms, continuous churn, and their composition —
//! runs across every engine and host thread count, asserting
//!
//! * zero panics: every outcome is `Ok` or a *typed* `SimError`;
//! * functional equivalence: faults perturb the clock, never the
//!   computed values;
//! * bit-reproducibility: the same seed + plan yields `f64::to_bits`-
//!   identical reports on every rerun and every thread count;
//! * neutrality: `FaultPlan::none` through the faulted entry points is
//!   bit-identical to the plain entry points.
//!
//! The quick matrix runs under plain `cargo test`; set `BSMP_SOAK=1`
//! for the extended multi-seed soak.

use bsmp::faults::Region;
use bsmp::machine::MachineSpec;
use bsmp::sim::{dnc1, dnc2, dnc3, multi1, multi2, naive1, naive2, pipelined1};
use bsmp::workloads::{inputs, Eca, Parity3d, VonNeumannLife};
use bsmp::{set_default_threads, ExecPolicy, FaultPlan, SimError, SimReport};

/// One engine of the matrix: a short, multi-stage configuration.
struct Outcome {
    engine: &'static str,
    report: SimReport,
}

/// Run the full 9-engine suite under `plan` (with `exec` for the
/// engines that take an explicit policy) and return every report.
/// Panics only on a *typed-error* result — the harness itself asserts
/// the error-free property of the matrix plans.
fn run_all_engines(plan: &FaultPlan, exec: ExecPolicy) -> Vec<Outcome> {
    let mut out = Vec::new();
    let mut push = |engine: &'static str, rep: Result<SimReport, SimError>| {
        let report = rep.unwrap_or_else(|e| panic!("{engine}: scenario must not error: {e}"));
        out.push(Outcome { engine, report });
    };

    // d = 1: naive1, multi1, pipelined1 (p = 8), dnc1 (p = 1).
    let prog1 = Eca::rule110();
    let init1 = inputs::random_bits(0xC0DE, 64);
    let spec1 = MachineSpec::new(1, 64, 8, 1);
    push(
        "naive1",
        naive1::try_simulate_naive1_exec(&spec1, &prog1, &init1, 32, plan, exec),
    );
    push(
        "multi1",
        multi1::try_simulate_multi1_faulted(&spec1, &prog1, &init1, 32, plan),
    );
    push(
        "pipelined1",
        pipelined1::try_simulate_pipelined1_faulted(&spec1, &prog1, &init1, 32, plan),
    );
    let uni1 = MachineSpec::new(1, 64, 1, 1);
    push(
        "dnc1",
        dnc1::try_simulate_dnc1_faulted(&uni1, &prog1, &init1, 16, plan),
    );

    // d = 2: naive2, multi2 (p = 4), dnc2 (p = 1).
    let prog2 = VonNeumannLife::fredkin();
    let init2 = inputs::random_bits(0xC0DE + 1, 64);
    let spec2 = MachineSpec::new(2, 64, 4, 1);
    push(
        "naive2",
        naive2::try_simulate_naive2_exec(&spec2, &prog2, &init2, 8, plan, exec),
    );
    push(
        "multi2",
        multi2::try_simulate_multi2_faulted(&spec2, &prog2, &init2, 8, plan),
    );
    let uni2 = MachineSpec::new(2, 64, 1, 1);
    push(
        "dnc2",
        dnc2::try_simulate_dnc2_faulted(&uni2, &prog2, &init2, 8, plan),
    );

    // d = 3: dnc3, naive3 (uniprocessor engines, side³ = 27 nodes).
    let prog3 = Parity3d;
    let init3 = inputs::random_bits(0xC0DE + 2, 27);
    push(
        "dnc3",
        dnc3::try_simulate_dnc3_faulted(3, &prog3, &init3, 3, plan),
    );
    push(
        "naive3",
        dnc3::try_simulate_naive3_faulted(3, &prog3, &init3, 3, plan),
    );
    out
}

/// The seeded scenario matrix: one plan per adversarial family plus
/// their composition.  Every plan keeps the churn retry budget generous
/// so the quick matrix never exhausts (exhaustion has its own test).
fn scenario_matrix(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "lognormal-jitter",
            FaultPlan::none().seed(seed).lognormal(0.25, 0.5),
        ),
        (
            "pareto-jitter",
            FaultPlan::none().seed(seed).pareto(1.0, 2.5),
        ),
        (
            "asymmetric-links",
            FaultPlan::none()
                .seed(seed)
                .lognormal(0.1, 0.3)
                .asymmetric(0.6),
        ),
        (
            "partition-storm",
            FaultPlan::none()
                .seed(seed)
                .storm(Region::Interval { lo: 1, hi: 3 }, 2, 3, 8),
        ),
        (
            "tile-storm",
            FaultPlan::none().seed(seed).storm(
                Region::Tile {
                    r0: 0,
                    r1: 1,
                    c0: 0,
                    c1: 2,
                },
                1,
                2,
                6,
            ),
        ),
        ("churn", FaultPlan::none().seed(seed).churn(60, 2, 10, 1.0)),
        (
            "kitchen-sink",
            FaultPlan::none()
                .seed(seed)
                .lognormal(0.2, 0.4)
                .asymmetric(0.4)
                .loss(80, 4)
                .storm(Region::Interval { lo: 1, hi: 2 }, 3, 2, 9)
                .churn(40, 2, 10, 1.0),
        ),
    ]
}

/// Quick matrix: every scenario family on every engine — no panics, no
/// errors, values untouched by faults, reports bit-identical on rerun.
#[test]
fn chaos_matrix_is_panic_free_and_reproducible() {
    let clean = run_all_engines(&FaultPlan::none(), ExecPolicy::auto());
    for (name, plan) in scenario_matrix(0x5EED) {
        let first = run_all_engines(&plan, ExecPolicy::auto());
        let again = run_all_engines(&plan, ExecPolicy::auto());
        for ((a, b), base) in first.iter().zip(&again).zip(&clean) {
            // Faults never change what was computed …
            a.report
                .check_matches(&base.report.mem, &base.report.values)
                .unwrap_or_else(|e| panic!("{name}/{}: values diverged: {e}", a.engine));
            // … never speed the run up …
            assert!(
                a.report.host_time >= base.report.host_time - 1e-9,
                "{name}/{}: faulted run finished early",
                a.engine
            );
            // … and are bit-reproducible per (seed, plan).
            assert_eq!(
                a.report.host_time.to_bits(),
                b.report.host_time.to_bits(),
                "{name}/{}: host_time not reproducible",
                a.engine
            );
            assert_eq!(
                a.report.faults, b.report.faults,
                "{name}/{}: fault counters not reproducible",
                a.engine
            );
        }
    }
}

/// Determinism under concurrency: the same seed + scenario produces a
/// `to_bits`-identical report at every host thread count.  Model costs
/// must be a pure function of the plan, never of the host schedule.
#[test]
fn chaos_reports_identical_across_thread_counts() {
    let plan = scenario_matrix(0xD15EA5E)
        .pop()
        .expect("matrix is non-empty")
        .1;
    let mut baseline: Option<Vec<Outcome>> = None;
    for threads in [1usize, 2, 8] {
        set_default_threads(threads);
        let got = run_all_engines(&plan, ExecPolicy::threads(threads));
        if let Some(base) = &baseline {
            for (a, b) in base.iter().zip(&got) {
                assert_eq!(
                    a.report.host_time.to_bits(),
                    b.report.host_time.to_bits(),
                    "{}: host_time differs at {threads} threads",
                    a.engine
                );
                assert_eq!(
                    a.report.meter.comm.to_bits(),
                    b.report.meter.comm.to_bits(),
                    "{}: comm ledger differs at {threads} threads",
                    a.engine
                );
                assert_eq!(
                    a.report.faults, b.report.faults,
                    "{}: fault counters differ at {threads} threads",
                    a.engine
                );
                assert_eq!(a.report.mem, b.report.mem);
                assert_eq!(a.report.values, b.report.values);
            }
        } else {
            baseline = Some(got);
        }
    }
    set_default_threads(0);
}

/// `FaultPlan::none` through every faulted entry point is bit-identical
/// to the plain entry point: the scenario layer must cost nothing when
/// it injects nothing.
#[test]
fn none_plan_is_bitwise_neutral_on_all_engines() {
    let prog1 = Eca::rule110();
    let init1 = inputs::random_bits(0xC0DE, 64);
    let spec1 = MachineSpec::new(1, 64, 8, 1);
    let uni1 = MachineSpec::new(1, 64, 1, 1);
    let prog2 = VonNeumannLife::fredkin();
    let init2 = inputs::random_bits(0xC0DE + 1, 64);
    let spec2 = MachineSpec::new(2, 64, 4, 1);
    let uni2 = MachineSpec::new(2, 64, 1, 1);
    let prog3 = Parity3d;
    let init3 = inputs::random_bits(0xC0DE + 2, 27);
    let none = FaultPlan::none();

    let pairs: Vec<(&str, SimReport, SimReport)> = vec![
        (
            "naive1",
            naive1::try_simulate_naive1(&spec1, &prog1, &init1, 32).unwrap(),
            naive1::try_simulate_naive1_faulted(&spec1, &prog1, &init1, 32, &none).unwrap(),
        ),
        (
            "multi1",
            multi1::try_simulate_multi1(&spec1, &prog1, &init1, 32).unwrap(),
            multi1::try_simulate_multi1_faulted(&spec1, &prog1, &init1, 32, &none).unwrap(),
        ),
        (
            "pipelined1",
            pipelined1::try_simulate_pipelined1(&spec1, &prog1, &init1, 32).unwrap(),
            pipelined1::try_simulate_pipelined1_faulted(&spec1, &prog1, &init1, 32, &none).unwrap(),
        ),
        (
            "dnc1",
            dnc1::try_simulate_dnc1(&uni1, &prog1, &init1, 16).unwrap(),
            dnc1::try_simulate_dnc1_faulted(&uni1, &prog1, &init1, 16, &none).unwrap(),
        ),
        (
            "naive2",
            naive2::try_simulate_naive2(&spec2, &prog2, &init2, 8).unwrap(),
            naive2::try_simulate_naive2_faulted(&spec2, &prog2, &init2, 8, &none).unwrap(),
        ),
        (
            "multi2",
            multi2::try_simulate_multi2(&spec2, &prog2, &init2, 8).unwrap(),
            multi2::try_simulate_multi2_faulted(&spec2, &prog2, &init2, 8, &none).unwrap(),
        ),
        (
            "dnc2",
            dnc2::try_simulate_dnc2(&uni2, &prog2, &init2, 8).unwrap(),
            dnc2::try_simulate_dnc2_faulted(&uni2, &prog2, &init2, 8, &none).unwrap(),
        ),
        (
            "dnc3",
            dnc3::try_simulate_dnc3(3, &prog3, &init3, 3).unwrap(),
            dnc3::try_simulate_dnc3_faulted(3, &prog3, &init3, 3, &none).unwrap(),
        ),
        (
            "naive3",
            dnc3::try_simulate_naive3(3, &prog3, &init3, 3).unwrap(),
            dnc3::try_simulate_naive3_faulted(3, &prog3, &init3, 3, &none).unwrap(),
        ),
    ];
    for (engine, plain, none) in pairs {
        assert_eq!(
            plain.host_time.to_bits(),
            none.host_time.to_bits(),
            "{engine}: empty plan must be bit-neutral"
        );
        assert_eq!(
            plain.meter.comm.to_bits(),
            none.meter.comm.to_bits(),
            "{engine}: empty plan must leave the comm ledger untouched"
        );
        assert_eq!(plain.stages, none.stages, "{engine}: stage count drifted");
        assert_eq!(plain.mem, none.mem);
        assert_eq!(plain.values, none.values);
    }
}

/// Exhausting the churn retry budget is a typed error carrying partial
/// fault statistics — never a panic, never a poisoned pool.
#[test]
fn churn_exhaustion_degrades_to_typed_error() {
    // Every processor leaves immediately and stays down longer than the
    // single allowed redelivery attempt.
    let plan = FaultPlan::none().seed(7).churn(1000, 6, 1, 1.0);
    let prog = Eca::rule110();
    let init = inputs::random_bits(0xDEAD, 64);
    let spec = MachineSpec::new(1, 64, 8, 1);
    for (engine, res) in [
        (
            "naive1",
            naive1::try_simulate_naive1_faulted(&spec, &prog, &init, 32, &plan),
        ),
        (
            "multi1",
            multi1::try_simulate_multi1_faulted(&spec, &prog, &init, 32, &plan),
        ),
        (
            "pipelined1",
            pipelined1::try_simulate_pipelined1_faulted(&spec, &prog, &init, 32, &plan),
        ),
    ] {
        match res {
            Err(SimError::ScenarioExhausted { stats, .. }) => {
                assert!(
                    stats.departures > 0,
                    "{engine}: partial stats must record the departures"
                );
                assert!(
                    stats.backoff_retries > 0,
                    "{engine}: partial stats must record the failed retries"
                );
            }
            other => panic!("{engine}: expected ScenarioExhausted, got {other:?}"),
        }
    }
}

/// Extended soak, opt-in via `BSMP_SOAK=1`: the full matrix over many
/// seeds and longer horizons.  Anything nondeterministic, panicky, or
/// value-corrupting across ~500 engine runs fails here.
#[test]
fn chaos_soak_extended() {
    if std::env::var("BSMP_SOAK").as_deref() != Ok("1") {
        eprintln!("chaos_soak_extended: skipped (set BSMP_SOAK=1 to run)");
        return;
    }
    for seed in [1u64, 2, 3, 0xFEED, 0xBEEF, 0xABCDEF, u64::MAX] {
        for (name, plan) in scenario_matrix(seed) {
            let first = run_all_engines(&plan, ExecPolicy::auto());
            let again = run_all_engines(&plan, ExecPolicy::auto());
            for (a, b) in first.iter().zip(&again) {
                assert_eq!(
                    a.report.host_time.to_bits(),
                    b.report.host_time.to_bits(),
                    "soak {name}/{} seed {seed}: not reproducible",
                    a.engine
                );
                assert_eq!(a.report.faults, b.report.faults);
                assert_eq!(a.report.values, b.report.values);
            }
        }
    }
}
