//! Integration tests of the persistent host execution layer (DESIGN.md
//! §12): pooled execution must be **bit-identical** to serial execution
//! in every model-visible quantity — memories, values, `T_p`, the cost
//! meter, stage counts, and fault statistics — because each stage task
//! writes its cost to its own slot and the clock folds slots in
//! processor order regardless of claim order.

use bsmp::machine::{ExecPolicy, MachineSpec, StagePool};
use bsmp::sim::{naive1, naive2};
use bsmp::workloads::{inputs, Eca, VonNeumannLife};
use bsmp::{FaultPlan, LinearProgram, SimError, SimReport, Word};

/// Sizes chosen so the naive engines actually take the pooled path
/// (`q = n/p ≥ 256` with more than one resolved thread).
const N1: u64 = 2048;
const P1: u64 = 4;
const N2: u64 = 4096; // 64×64 mesh
const P2: u64 = 4; // 2×2 procs → q = 1024

fn assert_bit_identical(a: &SimReport, b: &SimReport, tag: &str) {
    assert_eq!(a.mem, b.mem, "{tag}: mem");
    assert_eq!(a.values, b.values, "{tag}: values");
    assert_eq!(
        a.host_time.to_bits(),
        b.host_time.to_bits(),
        "{tag}: host_time {} vs {}",
        a.host_time,
        b.host_time
    );
    assert_eq!(
        a.guest_time.to_bits(),
        b.guest_time.to_bits(),
        "{tag}: guest_time"
    );
    assert_eq!(a.meter.ops, b.meter.ops, "{tag}: meter.ops");
    for (x, y, field) in [
        (a.meter.compute, b.meter.compute, "compute"),
        (a.meter.access, b.meter.access, "access"),
        (a.meter.transfer, b.meter.transfer, "transfer"),
        (a.meter.comm, b.meter.comm, "comm"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: meter.{field} {x} vs {y}");
    }
    assert_eq!(a.space, b.space, "{tag}: space");
    assert_eq!(a.stages, b.stages, "{tag}: stages");
    assert_eq!(a.faults, b.faults, "{tag}: faults");
}

#[test]
fn naive1_pooled_is_bit_identical_to_serial() {
    let spec = MachineSpec::new(1, N1, P1, 1);
    let init = inputs::random_bits(90, N1 as usize);
    let prog = Eca::rule110();
    let plan = FaultPlan::none();
    let serial =
        naive1::try_simulate_naive1_exec(&spec, &prog, &init, 64, &plan, ExecPolicy::serial())
            .unwrap();
    for threads in [2usize, 4, 8] {
        let pooled = naive1::try_simulate_naive1_exec(
            &spec,
            &prog,
            &init,
            64,
            &plan,
            ExecPolicy::threads(threads),
        )
        .unwrap();
        assert_bit_identical(&serial, &pooled, &format!("naive1 t={threads}"));
    }
}

#[test]
fn naive1_pooled_is_bit_identical_under_faults() {
    let spec = MachineSpec::new(1, N1, P1, 1);
    let init = inputs::random_bits(91, N1 as usize);
    let prog = Eca::rule110();
    let plan = FaultPlan::uniform_slowdown(1.5)
        .seed(91)
        .loss(50, 3)
        .random_crashes(10);
    let serial =
        naive1::try_simulate_naive1_exec(&spec, &prog, &init, 48, &plan, ExecPolicy::serial())
            .unwrap();
    assert!(serial.faults.injected_delay > 0.0, "plan must be active");
    let pooled =
        naive1::try_simulate_naive1_exec(&spec, &prog, &init, 48, &plan, ExecPolicy::threads(4))
            .unwrap();
    assert_bit_identical(&serial, &pooled, "naive1 faulted");
}

#[test]
fn naive2_pooled_is_bit_identical_to_serial() {
    let spec = MachineSpec::new(2, N2, P2, 1);
    let init = inputs::random_bits(92, N2 as usize);
    let prog = VonNeumannLife::fredkin();
    let plan = FaultPlan::none();
    let serial =
        naive2::try_simulate_naive2_exec(&spec, &prog, &init, 12, &plan, ExecPolicy::serial())
            .unwrap();
    for threads in [2usize, 4] {
        let pooled = naive2::try_simulate_naive2_exec(
            &spec,
            &prog,
            &init,
            12,
            &plan,
            ExecPolicy::threads(threads),
        )
        .unwrap();
        assert_bit_identical(&serial, &pooled, &format!("naive2 t={threads}"));
    }
}

#[test]
fn naive2_pooled_is_bit_identical_under_faults() {
    let spec = MachineSpec::new(2, N2, P2, 1);
    let init = inputs::random_bits(93, N2 as usize);
    let prog = VonNeumannLife::fredkin();
    let plan = FaultPlan::uniform_slowdown(2.0).seed(93).loss(40, 2);
    let serial =
        naive2::try_simulate_naive2_exec(&spec, &prog, &init, 12, &plan, ExecPolicy::serial())
            .unwrap();
    assert!(serial.faults.injected_delay > 0.0, "plan must be active");
    let pooled =
        naive2::try_simulate_naive2_exec(&spec, &prog, &init, 12, &plan, ExecPolicy::threads(4))
            .unwrap();
    assert_bit_identical(&serial, &pooled, "naive2 faulted");
}

/// A guest program that panics at one vertex — drives the
/// panic-propagation path of the pool through a whole engine.
struct PanicAt {
    v: usize,
    t: i64,
}

impl LinearProgram for PanicAt {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, v: usize, t: i64, _own: Word, prev: Word, left: Word, right: Word) -> Word {
        if v == self.v && t == self.t {
            panic!("injected guest panic at ({v}, {t})");
        }
        prev ^ left ^ right
    }
}

#[test]
fn worker_panic_surfaces_as_sim_error_not_hang() {
    let spec = MachineSpec::new(1, N1, P1, 1);
    let init = inputs::random_bits(94, N1 as usize);
    let prog = PanicAt { v: 700, t: 3 };
    for exec in [ExecPolicy::serial(), ExecPolicy::threads(4)] {
        let err =
            naive1::try_simulate_naive1_exec(&spec, &prog, &init, 8, &FaultPlan::none(), exec)
                .unwrap_err();
        match err {
            SimError::HostPanic { ref message } => {
                assert!(message.contains("injected guest panic"), "{message}");
            }
            other => panic!("expected HostPanic, got {other:?}"),
        }
    }
}

#[test]
fn pool_handles_more_procs_than_workers_and_single_proc() {
    // p tasks spread over fewer workers…
    let pool = StagePool::new(2);
    let mut out = vec![0.0; 37];
    pool.run_stage(37, &mut out, |i| (i as f64).sin()).unwrap();
    let mut expect = vec![0.0; 37];
    StagePool::new(1)
        .run_stage(37, &mut expect, |i| (i as f64).sin())
        .unwrap();
    assert_eq!(out, expect);

    // …and the degenerate single-item stage on a wide pool.
    let pool = StagePool::new(8);
    let mut one = vec![0.0; 1];
    pool.run_stage(1, &mut one, |i| i as f64 + 2.5).unwrap();
    assert_eq!(one, vec![2.5]);
}

#[test]
fn policy_caps_never_exceed_item_count() {
    for (p, threads) in [(1usize, 16usize), (3, 16), (16, 2)] {
        let pool = StagePool::for_procs(p, ExecPolicy::threads(threads));
        assert!(pool.threads() <= p.max(1));
        assert!(pool.threads() <= threads);
        let mut out = vec![0.0; p];
        pool.run_stage(p, &mut out, |i| i as f64).unwrap();
        assert_eq!(out, (0..p).map(|i| i as f64).collect::<Vec<_>>());
    }
}
