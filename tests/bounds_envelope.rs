//! Integration: measured costs sit inside the paper's analytic
//! envelopes, and scale with the predicted shapes.
//!
//! Constants are implementation-specific (Proposition 3's own τ₀ is
//! ~128); the envelope tests therefore pin *growth rates* and
//! *orderings*, which is what Θ-bounds assert.

use bsmp::machine::MachineSpec;
use bsmp::sim::{dnc1::simulate_dnc1, naive1::simulate_naive1};
use bsmp::workloads::{inputs, CyclicWave, Eca};
use bsmp::{analytic, Simulation, Strategy};

#[test]
fn theorem2_growth_rate() {
    // slowdown(n) = Θ(n log n): growth per doubling ∈ (2, 4) and
    // decreasing towards 2.
    let slow = |n: u64| {
        let init = inputs::random_bits(20, n as usize);
        let spec = MachineSpec::new(1, n, 1, 1);
        simulate_dnc1(&spec, &Eca::rule90(), &init, n as i64).slowdown()
    };
    let (s64, s128, s256) = (slow(64), slow(128), slow(256));
    let g1 = s128 / s64;
    let g2 = s256 / s128;
    assert!(g1 > 1.8 && g1 < 3.6, "first doubling ×{g1}");
    assert!(g2 > 1.8 && g2 < 3.6, "second doubling ×{g2}");
    assert!(g2 < g1 * 1.3, "log factor flattens the growth");
}

#[test]
fn proposition1_growth_rate() {
    // Naive uniprocessor slowdown = Θ(n²) for d = 1.
    let slow = |n: u64| {
        let init = inputs::random_bits(21, n as usize);
        let spec = MachineSpec::new(1, n, 1, 1);
        simulate_naive1(&spec, &Eca::rule90(), &init, 32).slowdown()
    };
    let ratio = slow(256) / slow(64);
    assert!(
        ratio > 8.0 && ratio < 32.0,
        "quadratic: 4× n ⇒ ~16× slowdown, got {ratio}"
    );
}

#[test]
fn theorem3_locality_term_saturates() {
    // Theorem 3: locality slowdown min(n, m·log(n/m)) — growing m at
    // fixed n must increase the slowdown sublinearly and approach the
    // naive ceiling.
    let n = 32u64;
    let slow = |m: usize| {
        let init = inputs::random_words(22, n as usize * m, 50);
        let spec = MachineSpec::new(1, n, 1, m as u64);
        simulate_dnc1(&spec, &CyclicWave::new(m), &init, n as i64).slowdown()
    };
    let s1 = slow(1);
    let s4 = slow(4);
    let s16 = slow(16);
    assert!(s4 > s1, "locality loss grows with density");
    assert!(s16 > s4);
    assert!(
        s16 / s4 < 8.0,
        "sublinear in m (log factor), got {}",
        s16 / s4
    );
}

#[test]
fn theorem1_bound_is_respected_in_shape() {
    // Measured A / analytic A (the constant factor) must stay within one
    // order of magnitude across a parameter sweep — i.e. the analytic
    // shape explains the measurements.
    let n = 128u64;
    let steps = 64i64;
    let mut factors = Vec::new();
    for p in [2u64, 4, 8] {
        let init = inputs::random_bits(23, n as usize);
        let r = Simulation::linear(n, p, 1)
            .strategy(Strategy::TwoRegime)
            .run(&Eca::rule90(), &init, steps);
        factors.push(r.constant_factor());
    }
    let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = factors.iter().cloned().fold(0.0f64, f64::max);
    assert!(min > 1.0, "measured above the Θ-bound's shape floor");
    assert!(
        max / min < 12.0,
        "constant factor drift across p: {factors:?}"
    );
}

#[test]
fn brent_baseline_under_instantaneous_model() {
    // E10: the instantaneous model recovers Brent's ⌈n/p⌉ exactly in
    // shape (constant ≈ per-step bookkeeping).
    for (n, p) in [(64u64, 4u64), (128, 8), (128, 16)] {
        let init = inputs::random_bits(24, n as usize);
        let r = Simulation::linear(n, p, 1)
            .instantaneous()
            .strategy(Strategy::Naive)
            .run(&Eca::rule110(), &init, 32);
        let brent = analytic::brent::brent_slowdown(n, p) as f64;
        let s = r.measured_slowdown();
        assert!(
            s > 0.4 * brent && s < 3.0 * brent,
            "n={n} p={p}: {s} vs Brent {brent}"
        );
    }
}

#[test]
fn superlinearity_manifest() {
    // Bounded-speed slowdown strictly exceeds the instantaneous one for
    // the same machine pair — the Section-6 conclusion.
    let (n, p) = (128u64, 4u64);
    let init = inputs::random_bits(25, n as usize);
    let bounded =
        Simulation::linear(n, p, 1)
            .strategy(Strategy::Naive)
            .run(&Eca::rule110(), &init, 64);
    let instant = Simulation::linear(n, p, 1)
        .instantaneous()
        .strategy(Strategy::Naive)
        .run(&Eca::rule110(), &init, 64);
    assert!(
        bounded.measured_slowdown() > 4.0 * instant.measured_slowdown(),
        "bounded {} ≫ instantaneous {}",
        bounded.measured_slowdown(),
        instant.measured_slowdown()
    );
}

#[test]
fn space_stays_within_proposition3() {
    // σ(|V|) = O(|V|^{1/2}) for d = 1: compare against the closed form
    // with the implementation's measured σ₀.
    let spec_of = |n: u64| MachineSpec::new(1, n, 1, 1);
    let space = |n: u64| {
        let init = inputs::random_bits(26, n as usize);
        simulate_dnc1(&spec_of(n), &Eca::rule90(), &init, n as i64).space as f64
    };
    let s128 = space(128);
    let s512 = space(512);
    // |V| grows 16×; √ growth means ×4.
    let ratio = s512 / s128;
    assert!(
        ratio > 2.5 && ratio < 6.5,
        "σ ~ √|V|: expected ~4×, got {ratio}"
    );
}

// ---------------------------------------------------------------------
// Two-sided certification: every engine × regime cell of the matrix is
// sandwiched `floor ≤ measured ≤ envelope` by `bsmp_trace::certify`,
// clean and under fault plans; tampered traces flip to `Violated` and
// mis-stamped regimes are rejected outright.
// ---------------------------------------------------------------------

use bsmp::certify_suite::{matrix, run_case};
use bsmp::trace::certify::{certify, CertifyError, Verdict};
use bsmp::FaultPlan;

#[test]
fn matrix_certifies_clean_and_under_faults() {
    let plans = [
        ("clean", FaultPlan::none()),
        ("slowdown", FaultPlan::uniform_slowdown(1.8).seed(11)),
        ("loss", FaultPlan::none().loss(40, 3).seed(5)),
    ];
    for (label, plan) in plans {
        for case in matrix() {
            let (_, cert) = run_case(&case, &plan)
                .unwrap_or_else(|e| panic!("{}/{} [{label}]: {e}", case.engine, case.regime));
            assert_eq!(
                cert.verdict,
                Verdict::Certified,
                "{}/{} [{label}]: {:?}",
                case.engine,
                case.regime,
                cert.failures
            );
            assert!(
                cert.margin >= 1.0,
                "{}/{} [{label}]: margin {}",
                case.engine,
                case.regime,
                cert.margin
            );
            assert_eq!(cert.engine, case.engine);
            assert_eq!(cert.regime, case.regime);
        }
    }
}

#[test]
fn fault_plans_do_not_change_upper_side_margins() {
    // The fault-adjusted upper check subtracts the recorded injected
    // delay, so a uniform slowdown leaves the slowdown sandwich's upper
    // side exactly where the clean run put it.
    let case = matrix()
        .into_iter()
        .find(|c| c.engine == "multi1" && c.regime == "R1")
        .unwrap();
    let (_, clean) = run_case(&case, &FaultPlan::none()).unwrap();
    let (_, faulted) = run_case(&case, &FaultPlan::uniform_slowdown(2.5).seed(3)).unwrap();
    assert_eq!(faulted.verdict, Verdict::Certified);
    assert_eq!(clean.upper.to_bits(), faulted.upper.to_bits());
}

#[test]
fn corrupted_slowdown_is_violated() {
    let case = matrix()[0];
    let (mut trace, _) = run_case(&case, &FaultPlan::none()).unwrap();
    // Shrink the recorded guest time: the recomputed slowdown explodes
    // past the envelope and disagrees with the stored summary figure.
    trace.summary.guest_time /= 1.0e6;
    trace
        .validate()
        .expect("corruption stays structurally valid");
    let cert = certify(&trace).expect("still certifiable");
    assert_eq!(cert.verdict, Verdict::Violated);
    assert!(
        cert.failures.iter().any(|f| f.contains("stored slowdown")),
        "{:?}",
        cert.failures
    );
}

#[test]
fn inflated_comm_ledger_is_violated() {
    // A trace whose communication ledger was inflated (consistently, so
    // structural validation still passes) exceeds the busy-time ceiling:
    // every unit of comm delay must be charged to some processor clock.
    let case = matrix()
        .into_iter()
        .find(|c| c.engine == "naive1" && c.regime == "R1")
        .unwrap();
    let (mut trace, _) = run_case(&case, &FaultPlan::none()).unwrap();
    for s in &mut trace.stages {
        s.comm_delay *= 1.0e6;
    }
    trace.summary.comm_delay *= 1.0e6;
    trace
        .validate()
        .expect("corruption stays structurally valid");
    let cert = certify(&trace).expect("still certifiable");
    assert_eq!(cert.verdict, Verdict::Violated);
    assert!(
        cert.failures.iter().any(|f| f.contains("comm")),
        "{:?}",
        cert.failures
    );
}

#[test]
fn zeroed_comm_ledger_is_violated() {
    // The opposite tampering direction: a p > 1 ledger zeroed below the
    // distance-weighted cut floor.
    let case = matrix()
        .into_iter()
        .find(|c| c.engine == "naive1" && c.regime == "R1")
        .unwrap();
    let (mut trace, _) = run_case(&case, &FaultPlan::none()).unwrap();
    for s in &mut trace.stages {
        s.comm_delay = 0.0;
    }
    trace.summary.comm_delay = 0.0;
    trace
        .validate()
        .expect("corruption stays structurally valid");
    let cert = certify(&trace).expect("still certifiable");
    assert_eq!(cert.verdict, Verdict::Violated);
    assert!(
        cert.failures.iter().any(|f| f.contains("comm")),
        "{:?}",
        cert.failures
    );
}

#[test]
fn mis_stamped_regime_is_rejected() {
    let case = matrix()[0]; // an R1 cell
    let (mut trace, _) = run_case(&case, &FaultPlan::none()).unwrap();
    trace.summary.regime = "R4".to_string();
    trace.validate().expect("R4 is a structurally valid stamp");
    match certify(&trace) {
        Err(CertifyError::RegimeMismatch { stamped, expected }) => {
            assert_eq!(stamped, "R4");
            assert_eq!(expected, "R1");
        }
        other => panic!("expected RegimeMismatch, got {other:?}"),
    }
}

#[test]
fn unknown_engine_is_rejected() {
    let case = matrix()[0];
    let (mut trace, _) = run_case(&case, &FaultPlan::none()).unwrap();
    trace.engine = "naive9".to_string();
    match certify(&trace) {
        Err(CertifyError::UnknownEngine(e)) => assert_eq!(e, "naive9"),
        other => panic!("expected UnknownEngine, got {other:?}"),
    }
}
