//! Dense/event core equivalence (DESIGN.md §16): the sparse calendar
//! core must be **bit-identical** to the dense stage loops in every
//! model-visible quantity.  The property is checked *after every
//! stage* by running every prefix length `k = 0..=T` through both
//! cores — the state after stage `k` is exactly the output of the
//! `k`-step run, so prefix equality is stage-by-stage equality —
//! under no-fault and active fault plans and across host thread
//! budgets {1, 2, 8}.

use bsmp::workloads::{inputs, Eca, TokenShift, VonNeumannLife};
use bsmp::{CoreKind, FaultPlan, LinearProgram, SimReport, Simulation, Strategy, Word};

const THREADS: [usize; 3] = [1, 2, 8];

fn plans() -> [FaultPlan; 2] {
    [FaultPlan::none(), FaultPlan::uniform_slowdown(2.0)]
}

/// Everything the model can observe must agree to the bit.
/// (`meter.table_hits` is deliberately excluded: it is an
/// observability counter, and bit-identical engine variants may take
/// different table-metered paths.)
fn assert_bit_identical(a: &SimReport, b: &SimReport, tag: &str) {
    assert_eq!(a.mem, b.mem, "{tag}: mem");
    assert_eq!(a.values, b.values, "{tag}: values");
    assert_eq!(
        a.host_time.to_bits(),
        b.host_time.to_bits(),
        "{tag}: host_time {} vs {}",
        a.host_time,
        b.host_time
    );
    assert_eq!(
        a.guest_time.to_bits(),
        b.guest_time.to_bits(),
        "{tag}: guest_time"
    );
    assert_eq!(a.meter.ops, b.meter.ops, "{tag}: meter.ops");
    for (x, y, field) in [
        (a.meter.compute, b.meter.compute, "compute"),
        (a.meter.access, b.meter.access, "access"),
        (a.meter.transfer, b.meter.transfer, "transfer"),
        (a.meter.comm, b.meter.comm, "comm"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: meter.{field} {x} vs {y}");
    }
    assert_eq!(a.space, b.space, "{tag}: space");
    assert_eq!(a.stages, b.stages, "{tag}: stages");
    assert_eq!(a.faults, b.faults, "{tag}: faults");
}

/// Run one `(strategy, core)` configuration of the linear façade.
#[allow(clippy::too_many_arguments)]
fn run1(
    n: u64,
    p: u64,
    strategy: Strategy,
    threads: usize,
    plan: &FaultPlan,
    core: CoreKind,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    Simulation::linear(n, p, 1)
        .strategy(strategy)
        .threads(threads)
        .faults(*plan)
        .core(core)
        .run(prog, init, steps)
        .sim
}

#[test]
fn naive1_event_matches_dense_at_every_prefix() {
    let (n, p, t) = (64u64, 4u64, 32i64);
    for seed in [11u64, 23] {
        let init = inputs::random_bits(seed, n as usize);
        for plan in &plans() {
            for &threads in &THREADS {
                for k in 0..=t {
                    let tag = format!("naive1 seed={seed} threads={threads} k={k}");
                    let dense = run1(
                        n,
                        p,
                        Strategy::Naive,
                        threads,
                        plan,
                        CoreKind::Dense,
                        &Eca::rule110(),
                        &init,
                        k,
                    );
                    let event = run1(
                        n,
                        p,
                        Strategy::Naive,
                        threads,
                        plan,
                        CoreKind::Event,
                        &Eca::rule110(),
                        &init,
                        k,
                    );
                    assert_bit_identical(&dense, &event, &tag);
                }
            }
        }
    }
}

#[test]
fn naive1_event_matches_dense_on_sparse_frontier() {
    // A one-hot token is the event core's best case: almost every node
    // is quiescent at every stage, so the lazily materialised regions
    // and activity frontier carry the whole run.
    let (n, p, t) = (256u64, 4u64, 64i64);
    let mut init = vec![0u64; n as usize];
    init[n as usize / 2] = 1;
    for plan in &plans() {
        for &threads in &THREADS {
            for k in 0..=t {
                let tag = format!("token threads={threads} k={k}");
                let prog = TokenShift::new(0);
                let dense = run1(
                    n,
                    p,
                    Strategy::Naive,
                    threads,
                    plan,
                    CoreKind::Dense,
                    &prog,
                    &init,
                    k,
                );
                let event = run1(
                    n,
                    p,
                    Strategy::Naive,
                    threads,
                    plan,
                    CoreKind::Event,
                    &prog,
                    &init,
                    k,
                );
                assert_bit_identical(&dense, &event, &tag);
            }
        }
    }
}

#[test]
fn multi1_event_matches_dense_at_every_prefix() {
    let (n, p, t) = (64u64, 4u64, 32i64);
    let init = inputs::random_bits(37, n as usize);
    for plan in &plans() {
        for &threads in &THREADS {
            for k in 0..=t {
                let tag = format!("multi1 threads={threads} k={k}");
                let dense = run1(
                    n,
                    p,
                    Strategy::TwoRegime,
                    threads,
                    plan,
                    CoreKind::Dense,
                    &Eca::rule110(),
                    &init,
                    k,
                );
                let event = run1(
                    n,
                    p,
                    Strategy::TwoRegime,
                    threads,
                    plan,
                    CoreKind::Event,
                    &Eca::rule110(),
                    &init,
                    k,
                );
                assert_bit_identical(&dense, &event, &tag);
            }
        }
    }
}

fn run2(
    strategy: Strategy,
    threads: usize,
    plan: &FaultPlan,
    core: CoreKind,
    init: &[Word],
    steps: i64,
) -> SimReport {
    Simulation::mesh(256, 16, 1)
        .strategy(strategy)
        .threads(threads)
        .faults(*plan)
        .core(core)
        .run_mesh(&VonNeumannLife::fredkin(), init, steps)
        .sim
}

#[test]
fn naive2_event_matches_dense_at_every_prefix() {
    let t = 16i64;
    let init = inputs::random_bits(51, 256);
    for plan in &plans() {
        for &threads in &THREADS {
            for k in 0..=t {
                let tag = format!("naive2 threads={threads} k={k}");
                let dense = run2(Strategy::Naive, threads, plan, CoreKind::Dense, &init, k);
                let event = run2(Strategy::Naive, threads, plan, CoreKind::Event, &init, k);
                assert_bit_identical(&dense, &event, &tag);
            }
        }
    }
}

#[test]
fn multi2_event_matches_dense_at_every_prefix() {
    let t = 16i64;
    let init = inputs::random_bits(52, 256);
    for plan in &plans() {
        for k in 0..=t {
            let tag = format!("multi2 k={k}");
            let dense = run2(Strategy::TwoRegime, 1, plan, CoreKind::Dense, &init, k);
            let event = run2(Strategy::TwoRegime, 1, plan, CoreKind::Event, &init, k);
            assert_bit_identical(&dense, &event, &tag);
        }
    }
}

/// A program that reads the clock (so `time_invariant` stays at its
/// `false` default): the event core must silently delegate to the
/// dense loop, because quiescence-based frontier skipping is unsound
/// when `δ` can change a node's value without any operand changing.
struct Clocked;
impl LinearProgram for Clocked {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, _v: usize, t: i64, _own: Word, prev: Word, left: Word, right: Word) -> Word {
        prev ^ left ^ right ^ (t as Word & 1)
    }
}

#[test]
fn event_core_delegates_for_time_varying_programs() {
    let (n, p, t) = (64u64, 4u64, 24i64);
    let init = inputs::random_bits(77, n as usize);
    for k in [0i64, 1, t] {
        let dense = run1(
            n,
            p,
            Strategy::Naive,
            1,
            &FaultPlan::none(),
            CoreKind::Dense,
            &Clocked,
            &init,
            k,
        );
        let event = run1(
            n,
            p,
            Strategy::Naive,
            1,
            &FaultPlan::none(),
            CoreKind::Event,
            &Clocked,
            &init,
            k,
        );
        assert_bit_identical(&dense, &event, &format!("clocked k={k}"));
    }
}

/// A program whose operator reads the clock: quiescence is unsound for
/// it (a node with unchanged operands can still change value when `t`
/// does), so the event core must refuse to take it — and say why.
struct ClockStripe;

impl LinearProgram for ClockStripe {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, _v: usize, t: i64, own: Word, _prev: Word, left: Word, right: Word) -> Word {
        own.wrapping_add(left)
            .wrapping_add(right)
            .wrapping_add(t as Word)
    }
    fn time_invariant(&self) -> bool {
        false
    }
}

#[test]
fn clock_reading_program_surfaces_fallback_reason() {
    let (n, p, steps) = (64u64, 4u64, 16i64);
    let init = inputs::random_bits(9, n as usize);

    // The event core refuses a clock-reading program and the report says
    // why — this is the only precondition violated at this scale
    // (steps ≥ 1, m = 1, q = 16 ≥ 3).
    let sim = Simulation::try_linear(n, p, 1)
        .unwrap()
        .strategy(Strategy::Naive)
        .core(CoreKind::Event);
    let rep = sim.try_run(&ClockStripe, &init, steps).unwrap();
    assert_eq!(
        rep.sim.core_fallback,
        Some("clock-reading program (quiescence unsound)")
    );

    // The dense loop never delegates, so it reports no fallback; and a
    // quiescence-sound program on the event core reports none either.
    let dense = Simulation::try_linear(n, p, 1)
        .unwrap()
        .strategy(Strategy::Naive)
        .try_run(&ClockStripe, &init, steps)
        .unwrap();
    assert_eq!(dense.sim.core_fallback, None);
    assert_eq!(dense.sim.mem, rep.sim.mem, "fallback is still bit-exact");
    let sound = Simulation::try_linear(n, p, 1)
        .unwrap()
        .strategy(Strategy::Naive)
        .core(CoreKind::Event)
        .try_run(&Eca::rule110(), &init, steps)
        .unwrap();
    assert_eq!(sound.sim.core_fallback, None);

    // The footprint probe carries the same reason in its stats.
    let spec = bsmp::machine::MachineSpec::new(1, n, p, 1);
    let (_, st) =
        bsmp::sim::event1::naive1_event_footprint(&spec, &ClockStripe, &init, steps).unwrap();
    assert!(!st.used_event_core);
    assert_eq!(
        st.fallback,
        Some("clock-reading program (quiescence unsound)")
    );
}
