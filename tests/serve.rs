//! Batch-server soak: the full certification matrix as concurrent
//! `bsmp-serve/v1` traffic, checked bit-for-bit against single-shot
//! twins, plus a seeded-corruption fuzz of the request parser.
//!
//! The soak shuffles the 23-cell engine × regime matrix
//! ([`bsmp::certify_suite::matrix`]) into one job batch — clean cells
//! with `certify: true`, a faulted twin (crash + recovery plan) for
//! every fourth cell — and runs it through [`bsmp::serve_suite::serve`]
//! at in-flight windows of 1, 2, and 8.  Every result line must carry
//! exactly the model figures (`f64::to_bits`-identical) and output
//! fingerprints of the same cell run single-shot through
//! [`bsmp::certify_suite::run_case_reported`], every certificate must
//! be `Certified`, and a warm repeat of the whole batch must answer
//! every job from the cost capsule with unchanged payloads.

use std::collections::HashMap;
use std::sync::OnceLock;

use bsmp::certify_suite::{matrix, run_case_reported, MatrixCase};
use bsmp::serve_suite::{fingerprint, parse_job, serve, ServeOptions};
use bsmp::trace::json::{parse, Val};
use bsmp::{FaultPlan, SimError, SimReport};

/// One crash at stage 0 on processor 0 plus recovery accounting — valid
/// for every engine shape in the matrix (uniprocessor engines included,
/// unlike slowdown plans, which only scale comm charges and so are
/// no-ops at p = 1).
const CRASH_PLAN: &str = r#"{"seed": 5, "crash": {"at_stage": 0, "proc": 0}}"#;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn shuffled_matrix(seed: u64) -> Vec<MatrixCase> {
    let mut cases = matrix();
    let mut s = seed.max(1);
    for i in (1..cases.len()).rev() {
        let j = (xorshift(&mut s) % (i as u64 + 1)) as usize;
        cases.swap(i, j);
    }
    cases
}

/// Request line for one matrix cell.  Clean cells certify; faulted
/// cells carry the crash plan (their traces are faulted, so they check
/// bit-identity and fault accounting rather than the clean envelope).
fn job_line(id: usize, case: &MatrixCase, faulted: bool) -> String {
    let tail = if faulted {
        format!(", \"faults\": {CRASH_PLAN}")
    } else {
        ", \"certify\": true".to_string()
    };
    format!(
        "{{\"id\": {id}, \"engine\": \"{}\", \"n\": {}, \"m\": {}, \"p\": {}, \"steps\": {}{tail}}}",
        case.engine, case.n, case.m, case.p, case.steps
    )
}

struct Twin {
    report: SimReport,
    crashes: u64,
}

/// Single-shot twin of a job: the same dispatch path the certification
/// matrix uses, outside the server and without the cost capsule.
fn run_twin(case: &MatrixCase, faulted: bool) -> Twin {
    let plan = if faulted {
        FaultPlan::from_json(CRASH_PLAN).expect("crash plan parses")
    } else {
        FaultPlan::none()
    };
    let (report, _, cert) = run_case_reported(case, &plan).expect("twin runs");
    if !faulted {
        assert_eq!(cert.verdict.to_string(), "Certified", "{}", case.engine);
    }
    Twin {
        crashes: report.faults.crashes,
        report,
    }
}

fn f64_bits(line: &Val, key: &str) -> u64 {
    line.get(key)
        .and_then(Val::as_f64)
        .unwrap_or_else(|| panic!("missing {key}"))
        .to_bits()
}

/// A result line must reproduce its twin's model figures exactly —
/// `num()` formats with `{:?}` (round-trip exact), so parsed f64s are
/// bit-identical to what the server computed.
fn assert_line_matches_twin(line: &str, twin: &Twin, faulted: bool) {
    let v = parse(line).expect("result line parses");
    let r = &twin.report;
    assert_eq!(v.get("ok"), Some(&Val::Bool(true)), "{line}");
    assert_eq!(f64_bits(&v, "host_time"), r.host_time.to_bits());
    assert_eq!(f64_bits(&v, "guest_time"), r.guest_time.to_bits());
    assert_eq!(f64_bits(&v, "compute"), r.meter.compute.to_bits());
    assert_eq!(f64_bits(&v, "access"), r.meter.access.to_bits());
    assert_eq!(f64_bits(&v, "transfer"), r.meter.transfer.to_bits());
    assert_eq!(f64_bits(&v, "comm"), r.meter.comm.to_bits());
    assert_eq!(v.get("ops").and_then(Val::as_u64), Some(r.meter.ops));
    assert_eq!(v.get("space").and_then(Val::as_u64), Some(r.space as u64));
    assert_eq!(v.get("stages").and_then(Val::as_u64), Some(r.stages));
    let fp = |words: &[u64]| format!("{:#018x}", fingerprint(words));
    assert_eq!(
        v.get("mem_fp").and_then(Val::as_str),
        Some(fp(&r.mem).as_str())
    );
    assert_eq!(
        v.get("values_fp").and_then(Val::as_str),
        Some(fp(&r.values).as_str())
    );
    if faulted {
        let f = v.get("faults").expect("faulted job reports fault block");
        assert_eq!(f.get("crashes").and_then(Val::as_u64), Some(twin.crashes));
        assert!(twin.crashes >= 1, "crash plan must actually fire");
    } else {
        let cert = v.get("cert").expect("clean job carries its certificate");
        assert_eq!(
            cert.get("verdict").and_then(Val::as_str),
            Some("Certified"),
            "{line}"
        );
    }
}

/// Run one batch through the server, returning result lines keyed by
/// job id (the batch answers in completion order) plus the summary.
fn serve_batch(lines: &[String], inflight: usize) -> (HashMap<u64, String>, Val) {
    let input = lines.join("\n").into_bytes();
    let mut out = Vec::new();
    let summary = serve(
        std::io::BufReader::new(&input[..]),
        &mut out,
        ServeOptions {
            max_inflight: inflight,
        },
    )
    .expect("serve i/o");
    assert_eq!(summary.jobs as usize, lines.len());
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).expect("utf8 output");
    let mut by_id = HashMap::new();
    let mut summary_line = None;
    for line in text.lines() {
        let v = parse(line).expect("output line parses");
        if v.get("summary").is_some() {
            summary_line = Some(v);
            continue;
        }
        let id = v.get("id").and_then(Val::as_u64).expect("line id");
        assert!(
            by_id.insert(id, line.to_string()).is_none(),
            "duplicate answer for job {id}"
        );
    }
    (by_id, summary_line.expect("summary line"))
}

/// The twins are shape-keyed and computed once: every in-flight window
/// replays the same traffic against them.
fn twins() -> &'static Vec<(MatrixCase, bool, Twin)> {
    static TWINS: OnceLock<Vec<(MatrixCase, bool, Twin)>> = OnceLock::new();
    TWINS.get_or_init(|| {
        shuffled_matrix(0x5EED)
            .into_iter()
            .enumerate()
            .map(|(i, case)| {
                let faulted = i % 4 == 3;
                let twin = run_twin(&case, faulted);
                (case, faulted, twin)
            })
            .collect()
    })
}

#[test]
fn soak_matrix_bit_identical_across_inflight_windows() {
    // The engines lease scratch from one shared pool under contention.
    bsmp::init_shared_pool(8);
    let twins = twins();
    for inflight in [1usize, 2, 8] {
        let lines: Vec<String> = twins
            .iter()
            .enumerate()
            .map(|(i, (case, faulted, _))| job_line(i, case, *faulted))
            .collect();
        let (by_id, _) = serve_batch(&lines, inflight);
        assert_eq!(by_id.len(), twins.len());
        for (i, (_, faulted, twin)) in twins.iter().enumerate() {
            assert_line_matches_twin(&by_id[&(i as u64)], twin, *faulted);
        }
    }
}

#[test]
fn soak_warm_repeat_answers_from_capsules_unchanged() {
    bsmp::init_shared_pool(8);
    let twins = twins();
    let lines: Vec<String> = twins
        .iter()
        .enumerate()
        .map(|(i, (case, faulted, _))| job_line(i, case, *faulted))
        .collect();
    // First pass may be cold or warm depending on test interleaving;
    // it seeds every capsule either way.
    let (first, _) = serve_batch(&lines, 8);
    let (second, summary) = serve_batch(&lines, 8);
    let hits = summary
        .get("plan_cache")
        .and_then(|pc| pc.get("hits"))
        .and_then(Val::as_u64)
        .expect("summary carries plan-cache counters");
    assert!(hits > 0, "warm repeat must hit the plan cache");
    for (id, line) in &second {
        let v = parse(line).expect("warm line parses");
        assert_eq!(
            v.get("cache_hit"),
            Some(&Val::Bool(true)),
            "job {id} should be answered from its capsule"
        );
        // Identical payload modulo the cache_hit flag.
        let norm = |s: &str| s.replace("\"cache_hit\": false", "\"cache_hit\": true");
        assert_eq!(norm(&first[id]), norm(line), "job {id} drifted when warm");
    }
}

#[test]
fn parser_fuzz_seeded_corruption_never_panics() {
    let base = r#"{"id": 42, "engine": "dnc1", "n": 64, "m": 16, "steps": 64, "certify": true, "faults": {"seed": 5, "crash": {"at_stage": 0, "proc": 0}}}"#;
    let bytes = base.as_bytes();
    let mut rng = 0xC0FFEE_u64;
    let mut ok = 0u32;
    let mut rejected = 0u32;
    for _ in 0..2000 {
        let mut case = bytes.to_vec();
        match xorshift(&mut rng) % 4 {
            // Truncate at a random byte.
            0 => {
                let at = (xorshift(&mut rng) as usize) % case.len();
                case.truncate(at);
            }
            // Flip bits in a random byte.
            1 => {
                let at = (xorshift(&mut rng) as usize) % case.len();
                case[at] ^= (xorshift(&mut rng) & 0xFF) as u8;
            }
            // Overwrite a random span with garbage.
            2 => {
                let at = (xorshift(&mut rng) as usize) % case.len();
                let len = ((xorshift(&mut rng) as usize) % 8).min(case.len() - at);
                for b in &mut case[at..at + len] {
                    *b = (xorshift(&mut rng) & 0xFF) as u8;
                }
            }
            // Duplicate the line onto itself (trailing data).
            _ => {
                let dup = case.clone();
                case.extend_from_slice(&dup);
            }
        }
        let line = String::from_utf8_lossy(&case).into_owned();
        // The contract under fuzz: parse_job never panics, and every
        // rejection is the typed BadRequest (so the server answers the
        // job instead of dying).
        match parse_job(&line) {
            Ok(_) => ok += 1,
            Err(SimError::BadRequest { .. }) => rejected += 1,
            Err(other) => panic!("non-BadRequest parse error: {other}"),
        }
    }
    assert!(rejected > 0, "corruption never produced a rejection?");
    // Some corruptions (e.g. flips inside a number) still parse — that
    // is fine; the count is informational.
    let _ = ok;
}

#[test]
fn serve_survives_interleaved_garbage() {
    let lines = [
        r#"{"id": 1, "engine": "dnc1", "n": 32, "m": 2, "steps": 32}"#,
        "garbage that is not json",
        r#"{"id": 3, "engine": "nope9", "n": 32, "steps": 32}"#,
        r#"{"id": 4, "engine": "dnc1", "n": 32, "m": 2, "steps": 32, "seed": 9}"#,
    ]
    .join("\n");
    let mut out = Vec::new();
    let summary = serve(
        std::io::BufReader::new(lines.as_bytes()),
        &mut out,
        ServeOptions { max_inflight: 2 },
    )
    .expect("serve i/o");
    assert_eq!((summary.jobs, summary.ok, summary.errors), (4, 2, 2));
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.matches("\"kind\": \"bad_request\"").count(), 2);
    // The unknown-engine line kept its id through the typed error.
    assert!(text.contains("\"id\": 3, \"ok\": false"), "{text}");
}
