//! Integration tests of the deterministic fault-injection layer: under
//! any fault plan the engines stay *functionally* equivalent to direct
//! guest execution (checkpoint/restore replays the same deterministic
//! stage), while the clock-level accounting obeys the analytic envelope
//! `T_p(ν) ≤ ν · T_p(1)` for a uniform link slowdown ν (communication
//! is only a part of each stage's critical path, so inflating it by ν
//! inflates the stage by at most ν).

use bsmp::machine::{run_linear, run_mesh, MachineSpec};
use bsmp::sim::{multi1, multi2, naive1, naive2, pipelined1};
use bsmp::workloads::{inputs, Eca, VonNeumannLife};
use bsmp::{FaultPlan, SimReport, Simulation, Strategy};

const NUS: [f64; 3] = [1.0, 2.0, 4.0];

/// Check one engine run against the guest and the ν-envelope.
fn check_envelope(base: &SimReport, faulted: &SimReport, nu: f64, tag: &str) {
    faulted
        .check_matches(&base.mem, &base.values)
        .unwrap_or_else(|e| panic!("{tag} ν={nu}: {e}"));
    assert!(
        base.host_time <= faulted.host_time + 1e-9,
        "{tag} ν={nu}: faulted run finished early ({} < {})",
        faulted.host_time,
        base.host_time
    );
    assert!(
        faulted.host_time <= nu * base.host_time + 1e-6,
        "{tag} ν={nu}: {} exceeds ν-envelope {}",
        faulted.host_time,
        nu * base.host_time
    );
    if nu == 1.0 {
        assert_eq!(
            faulted.host_time.to_bits(),
            base.host_time.to_bits(),
            "{tag}: ν=1 must be bit-identical"
        );
    }
}

#[test]
fn uniform_slowdown_envelope_linear_engines() {
    let n = 64u64;
    let init = inputs::random_bits(90, n as usize);
    let prog = Eca::rule110();
    let spec = MachineSpec::new(1, n, 8, 1);
    let guest = run_linear(&spec, &prog, &init, 32);

    let naive_base = naive1::try_simulate_naive1(&spec, &prog, &init, 32).unwrap();
    let multi_base = multi1::try_simulate_multi1(&spec, &prog, &init, 32).unwrap();
    let pipe_base = pipelined1::try_simulate_pipelined1(&spec, &prog, &init, 32).unwrap();
    naive_base.assert_matches(&guest.mem, &guest.values);
    multi_base.assert_matches(&guest.mem, &guest.values);
    pipe_base.assert_matches(&guest.mem, &guest.values);

    for nu in NUS {
        let plan = FaultPlan::uniform_slowdown(nu);
        let naive = naive1::try_simulate_naive1_faulted(&spec, &prog, &init, 32, &plan).unwrap();
        check_envelope(&naive_base, &naive, nu, "naive1");
        let multi = multi1::try_simulate_multi1_faulted(&spec, &prog, &init, 32, &plan).unwrap();
        check_envelope(&multi_base, &multi, nu, "multi1");
        let pipe =
            pipelined1::try_simulate_pipelined1_faulted(&spec, &prog, &init, 32, &plan).unwrap();
        check_envelope(&pipe_base, &pipe, nu, "pipelined1");
    }
}

#[test]
fn uniform_slowdown_envelope_mesh_engines() {
    let init = inputs::random_bits(91, 64);
    let prog = VonNeumannLife::fredkin();
    let spec = MachineSpec::new(2, 64, 4, 1);
    let guest = run_mesh(&spec, &prog, &init, 8);

    let naive_base = naive2::try_simulate_naive2(&spec, &prog, &init, 8).unwrap();
    let multi_base = multi2::try_simulate_multi2(&spec, &prog, &init, 8).unwrap();
    naive_base.assert_matches(&guest.mem, &guest.values);
    multi_base.assert_matches(&guest.mem, &guest.values);

    for nu in NUS {
        let plan = FaultPlan::uniform_slowdown(nu);
        let naive = naive2::try_simulate_naive2_faulted(&spec, &prog, &init, 8, &plan).unwrap();
        check_envelope(&naive_base, &naive, nu, "naive2");
        let multi = multi2::try_simulate_multi2_faulted(&spec, &prog, &init, 8, &plan).unwrap();
        check_envelope(&multi_base, &multi, nu, "multi2");
    }
}

#[test]
fn lossy_and_crashy_runs_stay_functionally_equivalent() {
    let n = 64u64;
    let init = inputs::random_bits(92, n as usize);
    let prog = Eca::rule90();
    let spec = MachineSpec::new(1, n, 8, 1);
    let guest = run_linear(&spec, &prog, &init, 48);

    // Heavy losses + jitter + random crashes: values must still match
    // guest execution, and the accounting must show the faults happened.
    let plan = FaultPlan::none()
        .seed(0xBAD5EED)
        .jitter(1.0, 3.0)
        .loss(200, 4)
        .random_crashes(30);
    let rep = naive1::try_simulate_naive1_faulted(&spec, &prog, &init, 48, &plan).unwrap();
    rep.assert_matches(&guest.mem, &guest.values);
    assert!(
        rep.faults.retries > 0,
        "200‰ loss over 48 stages must retry"
    );
    assert!(
        rep.faults.recovered_stages > 0,
        "30‰ crash rate over 48×8 draws must crash"
    );
    assert!(rep.faults.injected_delay > 0.0);

    // And identically so on re-run (stateless hash-derived draws).
    let again = naive1::try_simulate_naive1_faulted(&spec, &prog, &init, 48, &plan).unwrap();
    assert_eq!(rep.host_time.to_bits(), again.host_time.to_bits());
    assert_eq!(rep.faults, again.faults);
}

#[test]
fn crash_at_specific_stage_charges_recovery_once() {
    let n = 32u64;
    let init = inputs::random_bits(93, n as usize);
    let prog = Eca::rule110();
    let spec = MachineSpec::new(1, n, 4, 1);
    let base = naive1::try_simulate_naive1(&spec, &prog, &init, 16).unwrap();
    let plan = FaultPlan::none().crash_at(5, 2);
    let rep = naive1::try_simulate_naive1_faulted(&spec, &prog, &init, 16, &plan).unwrap();
    rep.assert_matches(&base.mem, &base.values);
    assert_eq!(rep.faults.crashes, 1);
    assert_eq!(rep.faults.recovered_stages, 1);
    assert!(
        rep.host_time > base.host_time,
        "recovery re-execution must cost time"
    );
}

#[test]
fn facade_respects_envelope_end_to_end() {
    let init = inputs::random_bits(94, 64);
    let prog = Eca::rule110();
    let base = Simulation::linear(64, 4, 1)
        .strategy(Strategy::TwoRegime)
        .try_run(&prog, &init, 64)
        .unwrap();
    for nu in NUS {
        let rep = Simulation::linear(64, 4, 1)
            .strategy(Strategy::TwoRegime)
            .faults(FaultPlan::uniform_slowdown(nu))
            .try_run(&prog, &init, 64)
            .unwrap();
        check_envelope(&base.sim, &rep.sim, nu, "facade/two-regime");
    }
}

#[test]
fn empty_plan_is_bitwise_neutral_across_engines() {
    let init1 = inputs::random_bits(95, 64);
    let spec1 = MachineSpec::new(1, 64, 4, 1);
    let prog1 = Eca::rule110();
    let plain = naive1::try_simulate_naive1(&spec1, &prog1, &init1, 32).unwrap();
    let none = naive1::try_simulate_naive1_faulted(&spec1, &prog1, &init1, 32, &FaultPlan::none())
        .unwrap();
    assert_eq!(plain.host_time.to_bits(), none.host_time.to_bits());

    let init2 = inputs::random_bits(96, 64);
    let spec2 = MachineSpec::new(2, 64, 4, 1);
    let prog2 = VonNeumannLife::fredkin();
    let plain2 = multi2::try_simulate_multi2(&spec2, &prog2, &init2, 6).unwrap();
    let none2 =
        multi2::try_simulate_multi2_faulted(&spec2, &prog2, &init2, 6, &FaultPlan::none()).unwrap();
    assert_eq!(plain2.host_time.to_bits(), none2.host_time.to_bits());
    assert_eq!(plain2.stages, none2.stages);
}

#[test]
fn invalid_plans_are_rejected_not_panicked() {
    let init = inputs::random_bits(97, 64);
    let spec = MachineSpec::new(1, 64, 4, 1);
    let prog = Eca::rule110();
    for bad in [
        FaultPlan::uniform_slowdown(0.5),
        FaultPlan::uniform_slowdown(f64::NAN),
        FaultPlan::none().jitter(3.0, 2.0),
        FaultPlan::none().loss(1_001, 1),
        FaultPlan::none().random_crashes(2_000),
    ] {
        let err = naive1::try_simulate_naive1_faulted(&spec, &prog, &init, 8, &bad);
        assert!(
            matches!(err, Err(bsmp::SimError::Fault(_))),
            "plan {bad:?} must be rejected"
        );
    }
}
