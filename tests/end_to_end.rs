//! End-to-end: the public façade, strategy auto-selection, and report
//! analytics across both dimensions.

use bsmp::workloads::{inputs, Eca, OddEvenSort, VonNeumannLife};
use bsmp::{Simulation, Strategy};

#[test]
fn facade_quickstart_flow() {
    let init = inputs::random_bits(70, 64);
    let r = Simulation::linear(64, 4, 1).run(&Eca::rule110(), &init, 64);
    assert_eq!(r.sim.values.len(), 64);
    assert!(r.measured_slowdown() > 16.0, "above the Brent floor n/p");
    assert!(r.sim.meter.total() > 0.0);
    assert!(r.sim.stages > 0);
}

#[test]
fn strategies_agree_functionally() {
    let init = inputs::random_words(71, 32, 100);
    let sorted = {
        let mut v = init.clone();
        v.sort();
        v
    };
    for strat in [Strategy::Naive, Strategy::TwoRegime, Strategy::Auto] {
        let r = Simulation::linear(32, 4, 1)
            .strategy(strat)
            .run(&OddEvenSort::new(32), &init, 32);
        assert_eq!(r.sim.values, sorted, "{strat:?} must sort");
    }
}

#[test]
fn mesh_facade_flow() {
    let init = inputs::random_bits(72, 64);
    let naive = Simulation::mesh(64, 4, 1)
        .strategy(Strategy::Naive)
        .run_mesh(&VonNeumannLife::fredkin(), &init, 8);
    let dnc = Simulation::mesh(64, 4, 1)
        .strategy(Strategy::TwoRegime)
        .run_mesh(&VonNeumannLife::fredkin(), &init, 8);
    assert_eq!(naive.sim.values, dnc.sim.values);
    assert_eq!(naive.sim.mem, dnc.sim.mem);
}

#[test]
fn report_ranges_track_density() {
    let init1 = inputs::random_bits(73, 64);
    let r = Simulation::linear(64, 4, 1)
        .strategy(Strategy::Naive)
        .run(&Eca::rule90(), &init1, 8);
    assert_eq!(r.range, bsmp::analytic::Range::R1);
    // Huge density lands in range 4 and Auto picks naive.
    let sim = Simulation::linear(64, 4, 128);
    assert_eq!(sim.spec().node_mem(), 64 * 128 / 4);
}

#[test]
fn zero_steps_is_identity() {
    let init = inputs::random_words(74, 16, 10);
    let r = Simulation::linear(16, 2, 1)
        .strategy(Strategy::TwoRegime)
        .run(&Eca::rule110(), &init, 0);
    assert_eq!(r.sim.mem, init);
}

#[test]
fn efficiency_metrics_consistent() {
    let init = inputs::random_bits(75, 64);
    let r = Simulation::linear(64, 8, 1)
        .strategy(Strategy::Naive)
        .run(&Eca::rule110(), &init, 32);
    // Aggregate busy time can't exceed p × parallel time.
    assert!(r.sim.meter.total() <= 8.0 * r.sim.host_time + 1e-6);
}
