//! Deterministic pseudo-randomness: a SplitMix64 core, used both as a
//! stateless hash (fault draws keyed by `(seed, kind, stage, proc)`)
//! and as a small stateful generator for test inputs.

/// One SplitMix64 scramble round.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless hash of up to four words — order-sensitive, avalanche via
/// repeated SplitMix64 rounds.  Used for fault draws so that the result
/// depends only on the coordinates, never on evaluation order.
#[inline]
pub fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut h = splitmix64(a);
    h = splitmix64(h ^ b.rotate_left(17));
    h = splitmix64(h ^ c.rotate_left(31));
    splitmix64(h ^ d.rotate_left(47))
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A small stateful SplitMix64 generator for deterministic test inputs
/// (the workspace's replacement for an external RNG crate).
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: splitmix64(seed ^ 0xD6E8_FEB8_6659_FD93),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound ≥ 1`), via rejection-free
    /// widening multiply (Lemire).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in the half-open range `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform in the half-open range `[lo, hi)` over `i64`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// A vector of `len` words, each uniform in `[0, bound)`.
    pub fn vec_below(&mut self, len: usize, bound: u64) -> Vec<u64> {
        (0..len).map(|_| self.below(bound)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_pure() {
        assert_eq!(hash4(1, 2, 3, 4), hash4(1, 2, 3, 4));
        assert_ne!(hash4(1, 2, 3, 4), hash4(1, 2, 4, 3));
        assert_ne!(hash4(0, 0, 0, 0), hash4(0, 0, 0, 1));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(hash4(9, i, 0, 0));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn stateful_rng_reproducible_and_bounded() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            let x = a.range_u64(10, 20);
            assert_eq!(x, b.range_u64(10, 20));
            assert!((10..20).contains(&x));
        }
        let mut c = Rng64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_covers_small_bounds() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
