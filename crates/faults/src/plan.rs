//! Fault plans: a small, `Copy` description of which faults to inject,
//! validated once before a run.
//!
//! A plan composes up to six orthogonal scenario families:
//!
//! * [`SlowdownModel`] — per-link delay, from a constant factor up to
//!   heavy-tailed lognormal/Pareto jitter;
//! * [`LinkModel`] — static per-direction (asymmetric) link factors;
//! * [`LossModel`] — transient message loss with bounded retries;
//! * [`CrashModel`] — point crashes recovered by checkpoint/restore;
//! * [`OutageModel`] — correlated regional outages (partition storms);
//! * [`ChurnModel`] — continuous node leave/rejoin with backoff.
//!
//! Every stochastic family draws from the stateless SplitMix64 hash of
//! `(seed, kind, stage, proc)`, so a given plan is bit-reproducible per
//! seed regardless of evaluation order or host thread count.

use std::error::Error;
use std::fmt;

/// Per-link propagation slowdown `ν ≥ 1` applied to the communication
/// component of a processor's stage cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SlowdownModel {
    /// Links run at full model speed (`ν = 1`).
    None,
    /// Every link runs at the same factor `ν ≥ 1`.
    Constant(f64),
    /// Each `(stage, processor)` pair draws a factor uniformly from
    /// `[lo, hi)` with `1 ≤ lo < hi`.
    Jitter { lo: f64, hi: f64 },
    /// Each `(stage, processor)` pair draws `exp(μ + σ·z)` with
    /// `z ~ N(0, 1)` (Box–Muller over two hash draws), clamped below at
    /// 1 — the classic long-tailed latency model.
    Lognormal { mu: f64, sigma: f64 },
    /// Each `(stage, processor)` pair draws from a Pareto distribution
    /// with scale `xm ≥ 1` and shape `alpha > 0` (inverse-CDF sampling),
    /// capped at [`PARETO_CAP`] to keep runs finite.
    Pareto { xm: f64, alpha: f64 },
}

/// Upper clamp on Pareto slowdown draws: the inverse CDF diverges as the
/// uniform draw approaches 1, and a single unbounded draw would dominate
/// every statistic of a soak run.
pub const PARETO_CAP: f64 = 1.0e6;

/// Static per-direction link speed: symmetric (the default) or an
/// independent factor per link direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkModel {
    /// Both directions of every link run at the slowdown model's factor.
    Symmetric,
    /// Each processor's outbound and inbound directions get independent
    /// static factors drawn uniformly from `[1, 1 + spread)`, keyed by
    /// the processor index and its neighbor distance.  The effective
    /// per-processor multiplier is the mean of the two directions (each
    /// stage exchange is one send + one receive).
    Asymmetric { spread: f64 },
}

/// A contiguous region of host processors, the unit of correlated
/// outages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Region {
    /// Processors with index in `[lo, hi)` — the natural shape for a
    /// `d = 1` linear array.
    Interval { lo: usize, hi: usize },
    /// Processors whose (row, col) on the processor mesh lies in
    /// `[r0, r1) × [c0, c1)` — the natural shape for `d = 2`.
    Tile {
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
    },
}

impl Region {
    /// Whether processor `proc` lies in the region.  `proc_side` is the
    /// side of the processor mesh for `d = 2` hosts (ignored for
    /// intervals; pass 0 or 1 for linear hosts).
    pub fn contains(&self, proc: usize, proc_side: usize) -> bool {
        match *self {
            Region::Interval { lo, hi } => lo <= proc && proc < hi,
            Region::Tile { r0, r1, c0, c1 } => {
                let side = proc_side.max(1);
                let (r, c) = (proc / side, proc % side);
                r0 <= r && r < r1 && c0 <= c && c < c1
            }
        }
    }

    /// Whether the region contains no processors at all.
    pub fn is_empty(&self) -> bool {
        match *self {
            Region::Interval { lo, hi } => lo >= hi,
            Region::Tile { r0, r1, c0, c1 } => r0 >= r1 || c0 >= c1,
        }
    }
}

/// Correlated regional outages: partition storms that cut a region off
/// from the rest of the machine for whole windows of stages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OutageModel {
    /// No outages.
    None,
    /// The region is partitioned away during every window
    /// `[onset + k·period, onset + k·period + duration)` for
    /// `k = 0, 1, …` (one-shot when `period = 0`).  While partitioned,
    /// cross-partition traffic queues; on heal the queued traffic is
    /// charged as a catch-up delivery.
    Storm {
        region: Region,
        onset: u64,
        duration: u64,
        period: u64,
    },
}

/// Continuous node churn: a Poisson-like seeded leave/rejoin process on
/// top of the checkpoint/restore crash path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnModel {
    /// No churn.
    None,
    /// Each up processor leaves independently with probability
    /// `leave_permille/1000` per stage and stays away for `down_stages`
    /// stages.  While a processor is away, delivery to it is retried
    /// with exponential backoff (`hop · backoff_hops · 2^(attempt−1)`
    /// per stage); a processor that is still away after `max_retries`
    /// attempts exhausts the scenario, which ends the run with a typed
    /// error carrying the partial statistics — never a panic.  On
    /// rejoin the processor pays its deferred work plus a checkpoint
    /// restore.
    Poisson {
        leave_permille: u32,
        down_stages: u64,
        max_retries: u32,
        backoff_hops: f64,
    },
}

/// A seeded, deterministic description of the faults to inject into a
/// run.  `Copy` so it can live inside the `Simulation` façade.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault draws (jitter, loss, crashes, asymmetry,
    /// churn).
    pub seed: u64,
    pub slowdown: SlowdownModel,
    pub link: LinkModel,
    pub loss: LossModel,
    pub crash: CrashModel,
    pub outage: OutageModel,
    pub churn: ChurnModel,
}

/// Transient message loss: each `(stage, processor)` rendezvous is lost
/// independently and retried, re-paying the stage communication charge
/// per retry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// No messages are lost.
    None,
    /// Each delivery attempt fails with probability `loss_permille/1000`;
    /// after `max_retries` failed attempts the message is forced through
    /// (the model has no permanent link failures).
    Bernoulli {
        loss_permille: u32,
        max_retries: u32,
    },
}

/// Node crashes at bulk-synchronous stage boundaries, recovered by
/// checkpoint/restore and stage replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CrashModel {
    /// No processor crashes.
    None,
    /// Processor `proc` crashes exactly once, at the end of stage
    /// `stage` (0-based global stage counter).
    AtStage { stage: u64, proc: usize },
    /// Each `(stage, processor)` pair crashes independently with
    /// probability `crash_permille/1000`.
    Random { crash_permille: u32 },
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: engines behave bit-identically to their
    /// fault-free selves.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            slowdown: SlowdownModel::None,
            link: LinkModel::Symmetric,
            loss: LossModel::None,
            crash: CrashModel::None,
            outage: OutageModel::None,
            churn: ChurnModel::None,
        }
    }

    /// Every link uniformly slowed by `ν ≥ 1`, no loss, no crashes.
    pub fn uniform_slowdown(nu: f64) -> Self {
        FaultPlan {
            slowdown: SlowdownModel::Constant(nu),
            ..FaultPlan::none()
        }
    }

    /// Builder: set the seed for all fault draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: per-(stage, processor) slowdown jittered in `[lo, hi)`.
    pub fn jitter(mut self, lo: f64, hi: f64) -> Self {
        self.slowdown = SlowdownModel::Jitter { lo, hi };
        self
    }

    /// Builder: lognormal per-(stage, processor) slowdown.
    pub fn lognormal(mut self, mu: f64, sigma: f64) -> Self {
        self.slowdown = SlowdownModel::Lognormal { mu, sigma };
        self
    }

    /// Builder: Pareto per-(stage, processor) slowdown.
    pub fn pareto(mut self, xm: f64, alpha: f64) -> Self {
        self.slowdown = SlowdownModel::Pareto { xm, alpha };
        self
    }

    /// Builder: independent static per-direction link factors in
    /// `[1, 1 + spread)`.
    pub fn asymmetric(mut self, spread: f64) -> Self {
        self.link = LinkModel::Asymmetric { spread };
        self
    }

    /// Builder: Bernoulli message loss with bounded retries.
    pub fn loss(mut self, loss_permille: u32, max_retries: u32) -> Self {
        self.loss = LossModel::Bernoulli {
            loss_permille,
            max_retries,
        };
        self
    }

    /// Builder: crash processor `proc` at the end of stage `stage`.
    pub fn crash_at(mut self, stage: u64, proc: usize) -> Self {
        self.crash = CrashModel::AtStage { stage, proc };
        self
    }

    /// Builder: random crashes with probability `crash_permille/1000`
    /// per (stage, processor).
    pub fn random_crashes(mut self, crash_permille: u32) -> Self {
        self.crash = CrashModel::Random { crash_permille };
        self
    }

    /// Builder: partition storm over `region` with the given schedule
    /// (`period = 0` for a one-shot outage).
    pub fn storm(mut self, region: Region, onset: u64, duration: u64, period: u64) -> Self {
        self.outage = OutageModel::Storm {
            region,
            onset,
            duration,
            period,
        };
        self
    }

    /// Builder: Poisson-like node churn with bounded-retry exponential
    /// backoff.
    pub fn churn(
        mut self,
        leave_permille: u32,
        down_stages: u64,
        max_retries: u32,
        backoff_hops: f64,
    ) -> Self {
        self.churn = ChurnModel::Poisson {
            leave_permille,
            down_stages,
            max_retries,
            backoff_hops,
        };
        self
    }

    /// True when the plan injects nothing — engines take the zero-cost
    /// fast path and reproduce fault-free costs bit-identically.
    pub fn is_none(&self) -> bool {
        matches!(self.slowdown, SlowdownModel::None)
            && matches!(self.link, LinkModel::Symmetric)
            && matches!(self.loss, LossModel::None)
            && matches!(self.crash, CrashModel::None)
            && matches!(self.outage, OutageModel::None)
            && matches!(self.churn, ChurnModel::None)
    }

    /// Check the plan's parameters before a run.
    pub fn validate(&self) -> Result<(), FaultError> {
        match self.slowdown {
            SlowdownModel::None => {}
            SlowdownModel::Constant(nu) => {
                if !nu.is_finite() {
                    return Err(FaultError::NonFiniteSlowdown { nu });
                }
                if nu < 1.0 {
                    return Err(FaultError::SlowdownBelowOne { nu });
                }
            }
            SlowdownModel::Jitter { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(FaultError::NonFiniteSlowdown {
                        nu: if lo.is_finite() { hi } else { lo },
                    });
                }
                if lo < 1.0 {
                    return Err(FaultError::SlowdownBelowOne { nu: lo });
                }
                if lo >= hi {
                    return Err(FaultError::EmptyJitterRange { lo, hi });
                }
            }
            SlowdownModel::Lognormal { mu, sigma } => {
                if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
                    return Err(FaultError::InvalidLognormal { mu, sigma });
                }
            }
            SlowdownModel::Pareto { xm, alpha } => {
                if !xm.is_finite() || xm < 1.0 || !alpha.is_finite() || alpha <= 0.0 {
                    return Err(FaultError::InvalidPareto { xm, alpha });
                }
            }
        }
        if let LinkModel::Asymmetric { spread } = self.link {
            if !spread.is_finite() || spread < 0.0 {
                return Err(FaultError::InvalidAsymmetrySpread { spread });
            }
        }
        if let LossModel::Bernoulli { loss_permille, .. } = self.loss {
            if loss_permille > 1000 {
                return Err(FaultError::LossProbabilityOutOfRange {
                    permille: loss_permille,
                });
            }
        }
        if let CrashModel::Random { crash_permille } = self.crash {
            if crash_permille > 1000 {
                return Err(FaultError::CrashProbabilityOutOfRange {
                    permille: crash_permille,
                });
            }
        }
        if let OutageModel::Storm {
            region,
            duration,
            period,
            ..
        } = self.outage
        {
            if region.is_empty() {
                return Err(FaultError::EmptyOutageRegion);
            }
            if duration == 0 {
                return Err(FaultError::ZeroOutageDuration);
            }
            if period > 0 && period < duration {
                return Err(FaultError::PeriodShorterThanDuration { period, duration });
            }
        }
        if let ChurnModel::Poisson {
            leave_permille,
            down_stages,
            backoff_hops,
            ..
        } = self.churn
        {
            if leave_permille > 1000 {
                return Err(FaultError::ChurnProbabilityOutOfRange {
                    permille: leave_permille,
                });
            }
            if down_stages == 0 {
                return Err(FaultError::ZeroChurnDownStages);
            }
            if !backoff_hops.is_finite() || backoff_hops < 0.0 {
                return Err(FaultError::InvalidBackoffHops { backoff_hops });
            }
        }
        Ok(())
    }
}

/// Rejected fault-plan parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultError {
    NonFiniteSlowdown { nu: f64 },
    SlowdownBelowOne { nu: f64 },
    EmptyJitterRange { lo: f64, hi: f64 },
    InvalidLognormal { mu: f64, sigma: f64 },
    InvalidPareto { xm: f64, alpha: f64 },
    InvalidAsymmetrySpread { spread: f64 },
    LossProbabilityOutOfRange { permille: u32 },
    CrashProbabilityOutOfRange { permille: u32 },
    EmptyOutageRegion,
    ZeroOutageDuration,
    PeriodShorterThanDuration { period: u64, duration: u64 },
    ChurnProbabilityOutOfRange { permille: u32 },
    ZeroChurnDownStages,
    InvalidBackoffHops { backoff_hops: f64 },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultError::NonFiniteSlowdown { nu } => {
                write!(f, "slowdown factor must be finite, got {nu}")
            }
            FaultError::SlowdownBelowOne { nu } => {
                write!(f, "slowdown factor must satisfy ν ≥ 1 (links cannot run faster than the model), got {nu}")
            }
            FaultError::EmptyJitterRange { lo, hi } => {
                write!(f, "jitter range [{lo}, {hi}) is empty; need lo < hi")
            }
            FaultError::InvalidLognormal { mu, sigma } => {
                write!(
                    f,
                    "lognormal slowdown needs finite μ and finite σ ≥ 0, got μ = {mu}, σ = {sigma}"
                )
            }
            FaultError::InvalidPareto { xm, alpha } => {
                write!(
                    f,
                    "Pareto slowdown needs finite xm ≥ 1 and finite α > 0, got xm = {xm}, α = {alpha}"
                )
            }
            FaultError::InvalidAsymmetrySpread { spread } => {
                write!(f, "asymmetry spread must be finite and ≥ 0, got {spread}")
            }
            FaultError::LossProbabilityOutOfRange { permille } => {
                write!(f, "loss probability {permille}‰ exceeds 1000‰")
            }
            FaultError::CrashProbabilityOutOfRange { permille } => {
                write!(f, "crash probability {permille}‰ exceeds 1000‰")
            }
            FaultError::EmptyOutageRegion => {
                write!(f, "outage region contains no processors")
            }
            FaultError::ZeroOutageDuration => {
                write!(f, "outage duration must be at least one stage")
            }
            FaultError::PeriodShorterThanDuration { period, duration } => {
                write!(
                    f,
                    "storm period {period} is shorter than its duration {duration}; windows would overlap"
                )
            }
            FaultError::ChurnProbabilityOutOfRange { permille } => {
                write!(f, "churn leave probability {permille}‰ exceeds 1000‰")
            }
            FaultError::ZeroChurnDownStages => {
                write!(f, "churn down_stages must be at least 1")
            }
            FaultError::InvalidBackoffHops { backoff_hops } => {
                write!(
                    f,
                    "churn backoff_hops must be finite and ≥ 0, got {backoff_hops}"
                )
            }
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn uniform_slowdown_validates() {
        assert!(FaultPlan::uniform_slowdown(1.0).validate().is_ok());
        assert!(FaultPlan::uniform_slowdown(4.0).validate().is_ok());
        assert!(!FaultPlan::uniform_slowdown(2.0).is_none());
        assert_eq!(
            FaultPlan::uniform_slowdown(0.5).validate(),
            Err(FaultError::SlowdownBelowOne { nu: 0.5 })
        );
        assert!(matches!(
            FaultPlan::uniform_slowdown(f64::NAN).validate(),
            Err(FaultError::NonFiniteSlowdown { .. })
        ));
    }

    #[test]
    fn jitter_range_checked() {
        assert!(FaultPlan::none().jitter(1.0, 2.0).validate().is_ok());
        assert_eq!(
            FaultPlan::none().jitter(2.0, 2.0).validate(),
            Err(FaultError::EmptyJitterRange { lo: 2.0, hi: 2.0 })
        );
        assert_eq!(
            FaultPlan::none().jitter(0.5, 2.0).validate(),
            Err(FaultError::SlowdownBelowOne { nu: 0.5 })
        );
    }

    #[test]
    fn distribution_parameters_checked() {
        assert!(FaultPlan::none().lognormal(0.2, 0.5).validate().is_ok());
        assert!(FaultPlan::none().lognormal(0.0, 0.0).validate().is_ok());
        assert_eq!(
            FaultPlan::none().lognormal(0.2, -1.0).validate(),
            Err(FaultError::InvalidLognormal {
                mu: 0.2,
                sigma: -1.0
            })
        );
        assert!(FaultPlan::none().pareto(1.0, 2.0).validate().is_ok());
        assert_eq!(
            FaultPlan::none().pareto(0.5, 2.0).validate(),
            Err(FaultError::InvalidPareto {
                xm: 0.5,
                alpha: 2.0
            })
        );
        assert_eq!(
            FaultPlan::none().pareto(1.5, 0.0).validate(),
            Err(FaultError::InvalidPareto {
                xm: 1.5,
                alpha: 0.0
            })
        );
    }

    #[test]
    fn asymmetry_spread_checked() {
        assert!(FaultPlan::none().asymmetric(0.5).validate().is_ok());
        assert!(!FaultPlan::none().asymmetric(0.0).is_none());
        assert_eq!(
            FaultPlan::none().asymmetric(-0.5).validate(),
            Err(FaultError::InvalidAsymmetrySpread { spread: -0.5 })
        );
    }

    #[test]
    fn probabilities_checked() {
        assert!(FaultPlan::none().loss(100, 3).validate().is_ok());
        assert_eq!(
            FaultPlan::none().loss(1001, 3).validate(),
            Err(FaultError::LossProbabilityOutOfRange { permille: 1001 })
        );
        assert!(FaultPlan::none().random_crashes(50).validate().is_ok());
        assert_eq!(
            FaultPlan::none().random_crashes(2000).validate(),
            Err(FaultError::CrashProbabilityOutOfRange { permille: 2000 })
        );
    }

    #[test]
    fn storm_schedule_checked() {
        let region = Region::Interval { lo: 0, hi: 2 };
        assert!(FaultPlan::none().storm(region, 3, 2, 8).validate().is_ok());
        assert!(FaultPlan::none().storm(region, 3, 2, 0).validate().is_ok());
        assert_eq!(
            FaultPlan::none()
                .storm(Region::Interval { lo: 2, hi: 2 }, 0, 1, 0)
                .validate(),
            Err(FaultError::EmptyOutageRegion)
        );
        assert_eq!(
            FaultPlan::none().storm(region, 0, 0, 0).validate(),
            Err(FaultError::ZeroOutageDuration)
        );
        assert_eq!(
            FaultPlan::none().storm(region, 0, 4, 2).validate(),
            Err(FaultError::PeriodShorterThanDuration {
                period: 2,
                duration: 4
            })
        );
    }

    #[test]
    fn churn_parameters_checked() {
        assert!(FaultPlan::none().churn(50, 2, 6, 1.0).validate().is_ok());
        assert_eq!(
            FaultPlan::none().churn(1500, 2, 6, 1.0).validate(),
            Err(FaultError::ChurnProbabilityOutOfRange { permille: 1500 })
        );
        assert_eq!(
            FaultPlan::none().churn(50, 0, 6, 1.0).validate(),
            Err(FaultError::ZeroChurnDownStages)
        );
        assert!(matches!(
            FaultPlan::none().churn(50, 2, 6, f64::NAN).validate(),
            Err(FaultError::InvalidBackoffHops { .. })
        ));
    }

    #[test]
    fn region_membership() {
        let iv = Region::Interval { lo: 2, hi: 5 };
        assert!(!iv.contains(1, 0));
        assert!(iv.contains(2, 0));
        assert!(iv.contains(4, 0));
        assert!(!iv.contains(5, 0));
        let tile = Region::Tile {
            r0: 0,
            r1: 2,
            c0: 1,
            c1: 3,
        };
        // On a 4-wide processor mesh: proc 1 = (0,1) in; proc 4 = (1,0) out.
        assert!(tile.contains(1, 4));
        assert!(!tile.contains(4, 4));
        assert!(tile.contains(6, 4));
        assert!(!tile.contains(11, 4));
    }

    #[test]
    fn errors_display() {
        let msgs = [
            FaultError::NonFiniteSlowdown { nu: f64::INFINITY }.to_string(),
            FaultError::SlowdownBelowOne { nu: 0.0 }.to_string(),
            FaultError::EmptyJitterRange { lo: 3.0, hi: 2.0 }.to_string(),
            FaultError::InvalidLognormal {
                mu: f64::NAN,
                sigma: 1.0,
            }
            .to_string(),
            FaultError::InvalidPareto {
                xm: 0.0,
                alpha: 1.0,
            }
            .to_string(),
            FaultError::InvalidAsymmetrySpread { spread: -1.0 }.to_string(),
            FaultError::LossProbabilityOutOfRange { permille: 1200 }.to_string(),
            FaultError::CrashProbabilityOutOfRange { permille: 1200 }.to_string(),
            FaultError::EmptyOutageRegion.to_string(),
            FaultError::ZeroOutageDuration.to_string(),
            FaultError::PeriodShorterThanDuration {
                period: 1,
                duration: 2,
            }
            .to_string(),
            FaultError::ChurnProbabilityOutOfRange { permille: 1200 }.to_string(),
            FaultError::ZeroChurnDownStages.to_string(),
            FaultError::InvalidBackoffHops { backoff_hops: -1.0 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
