//! Fault plans: a small, `Copy` description of which faults to inject,
//! validated once before a run.

use std::error::Error;
use std::fmt;

/// Per-link propagation slowdown `ν ≥ 1` applied to the communication
/// component of a processor's stage cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SlowdownModel {
    /// Links run at full model speed (`ν = 1`).
    None,
    /// Every link runs at the same factor `ν ≥ 1`.
    Constant(f64),
    /// Each `(stage, processor)` pair draws a factor uniformly from
    /// `[lo, hi)` with `1 ≤ lo < hi`.
    Jitter { lo: f64, hi: f64 },
}

/// Transient message loss: each `(stage, processor)` rendezvous is lost
/// independently and retried, re-paying the stage communication charge
/// per retry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// No messages are lost.
    None,
    /// Each delivery attempt fails with probability `loss_permille/1000`;
    /// after `max_retries` failed attempts the message is forced through
    /// (the model has no permanent link failures).
    Bernoulli {
        loss_permille: u32,
        max_retries: u32,
    },
}

/// Node crashes at bulk-synchronous stage boundaries, recovered by
/// checkpoint/restore and stage replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CrashModel {
    /// No processor crashes.
    None,
    /// Processor `proc` crashes exactly once, at the end of stage
    /// `stage` (0-based global stage counter).
    AtStage { stage: u64, proc: usize },
    /// Each `(stage, processor)` pair crashes independently with
    /// probability `crash_permille/1000`.
    Random { crash_permille: u32 },
}

/// A seeded, deterministic description of the faults to inject into a
/// run.  `Copy` so it can live inside the `Simulation` façade.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault draws (jitter, loss, random crashes).
    pub seed: u64,
    pub slowdown: SlowdownModel,
    pub loss: LossModel,
    pub crash: CrashModel,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: engines behave bit-identically to their
    /// fault-free selves.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            slowdown: SlowdownModel::None,
            loss: LossModel::None,
            crash: CrashModel::None,
        }
    }

    /// Every link uniformly slowed by `ν ≥ 1`, no loss, no crashes.
    pub fn uniform_slowdown(nu: f64) -> Self {
        FaultPlan {
            slowdown: SlowdownModel::Constant(nu),
            ..FaultPlan::none()
        }
    }

    /// Builder: set the seed for all fault draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: per-(stage, processor) slowdown jittered in `[lo, hi)`.
    pub fn jitter(mut self, lo: f64, hi: f64) -> Self {
        self.slowdown = SlowdownModel::Jitter { lo, hi };
        self
    }

    /// Builder: Bernoulli message loss with bounded retries.
    pub fn loss(mut self, loss_permille: u32, max_retries: u32) -> Self {
        self.loss = LossModel::Bernoulli {
            loss_permille,
            max_retries,
        };
        self
    }

    /// Builder: crash processor `proc` at the end of stage `stage`.
    pub fn crash_at(mut self, stage: u64, proc: usize) -> Self {
        self.crash = CrashModel::AtStage { stage, proc };
        self
    }

    /// Builder: random crashes with probability `crash_permille/1000`
    /// per (stage, processor).
    pub fn random_crashes(mut self, crash_permille: u32) -> Self {
        self.crash = CrashModel::Random { crash_permille };
        self
    }

    /// True when the plan injects nothing — engines take the zero-cost
    /// fast path and reproduce fault-free costs bit-identically.
    pub fn is_none(&self) -> bool {
        matches!(self.slowdown, SlowdownModel::None)
            && matches!(self.loss, LossModel::None)
            && matches!(self.crash, CrashModel::None)
    }

    /// Check the plan's parameters before a run.
    pub fn validate(&self) -> Result<(), FaultError> {
        match self.slowdown {
            SlowdownModel::None => {}
            SlowdownModel::Constant(nu) => {
                if !nu.is_finite() {
                    return Err(FaultError::NonFiniteSlowdown { nu });
                }
                if nu < 1.0 {
                    return Err(FaultError::SlowdownBelowOne { nu });
                }
            }
            SlowdownModel::Jitter { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(FaultError::NonFiniteSlowdown {
                        nu: if lo.is_finite() { hi } else { lo },
                    });
                }
                if lo < 1.0 {
                    return Err(FaultError::SlowdownBelowOne { nu: lo });
                }
                if lo >= hi {
                    return Err(FaultError::EmptyJitterRange { lo, hi });
                }
            }
        }
        if let LossModel::Bernoulli { loss_permille, .. } = self.loss {
            if loss_permille > 1000 {
                return Err(FaultError::LossProbabilityOutOfRange {
                    permille: loss_permille,
                });
            }
        }
        if let CrashModel::Random { crash_permille } = self.crash {
            if crash_permille > 1000 {
                return Err(FaultError::CrashProbabilityOutOfRange {
                    permille: crash_permille,
                });
            }
        }
        Ok(())
    }
}

/// Rejected fault-plan parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultError {
    NonFiniteSlowdown { nu: f64 },
    SlowdownBelowOne { nu: f64 },
    EmptyJitterRange { lo: f64, hi: f64 },
    LossProbabilityOutOfRange { permille: u32 },
    CrashProbabilityOutOfRange { permille: u32 },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultError::NonFiniteSlowdown { nu } => {
                write!(f, "slowdown factor must be finite, got {nu}")
            }
            FaultError::SlowdownBelowOne { nu } => {
                write!(f, "slowdown factor must satisfy ν ≥ 1 (links cannot run faster than the model), got {nu}")
            }
            FaultError::EmptyJitterRange { lo, hi } => {
                write!(f, "jitter range [{lo}, {hi}) is empty; need lo < hi")
            }
            FaultError::LossProbabilityOutOfRange { permille } => {
                write!(f, "loss probability {permille}‰ exceeds 1000‰")
            }
            FaultError::CrashProbabilityOutOfRange { permille } => {
                write!(f, "crash probability {permille}‰ exceeds 1000‰")
            }
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn uniform_slowdown_validates() {
        assert!(FaultPlan::uniform_slowdown(1.0).validate().is_ok());
        assert!(FaultPlan::uniform_slowdown(4.0).validate().is_ok());
        assert!(!FaultPlan::uniform_slowdown(2.0).is_none());
        assert_eq!(
            FaultPlan::uniform_slowdown(0.5).validate(),
            Err(FaultError::SlowdownBelowOne { nu: 0.5 })
        );
        assert!(matches!(
            FaultPlan::uniform_slowdown(f64::NAN).validate(),
            Err(FaultError::NonFiniteSlowdown { .. })
        ));
    }

    #[test]
    fn jitter_range_checked() {
        assert!(FaultPlan::none().jitter(1.0, 2.0).validate().is_ok());
        assert_eq!(
            FaultPlan::none().jitter(2.0, 2.0).validate(),
            Err(FaultError::EmptyJitterRange { lo: 2.0, hi: 2.0 })
        );
        assert_eq!(
            FaultPlan::none().jitter(0.5, 2.0).validate(),
            Err(FaultError::SlowdownBelowOne { nu: 0.5 })
        );
    }

    #[test]
    fn probabilities_checked() {
        assert!(FaultPlan::none().loss(100, 3).validate().is_ok());
        assert_eq!(
            FaultPlan::none().loss(1001, 3).validate(),
            Err(FaultError::LossProbabilityOutOfRange { permille: 1001 })
        );
        assert!(FaultPlan::none().random_crashes(50).validate().is_ok());
        assert_eq!(
            FaultPlan::none().random_crashes(2000).validate(),
            Err(FaultError::CrashProbabilityOutOfRange { permille: 2000 })
        );
    }

    #[test]
    fn errors_display() {
        let msgs = [
            FaultError::NonFiniteSlowdown { nu: f64::INFINITY }.to_string(),
            FaultError::SlowdownBelowOne { nu: 0.0 }.to_string(),
            FaultError::EmptyJitterRange { lo: 3.0, hi: 2.0 }.to_string(),
            FaultError::LossProbabilityOutOfRange { permille: 1200 }.to_string(),
            FaultError::CrashProbabilityOutOfRange { permille: 1200 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
