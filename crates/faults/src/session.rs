//! Per-run fault state: turns a [`FaultPlan`] plus the machine
//! environment into per-stage cost adjustments and accumulated
//! accounting.
//!
//! The session is the single choke point through which every engine's
//! stage costs flow ([`StageClock::add_stage_faulted`] in
//! `bsmp-machine` calls [`FaultSession::try_apply_stage`]).  All draws
//! are stateless hashes of `(seed, kind, stage, proc)`, so the injected
//! costs are bit-reproducible per seed and independent of host thread
//! count; the churn and storm families additionally keep small
//! per-processor state vectors (down/debt/queue) that are updated in
//! processor order inside the single-threaded stage close.

use std::error::Error;
use std::fmt;

use crate::plan::{
    ChurnModel, CrashModel, FaultPlan, LinkModel, LossModel, OutageModel, SlowdownModel, PARETO_CAP,
};
use crate::rng::{hash4, unit_f64};

/// Tags separating the fault kinds in the stateless hash, so the same
/// `(stage, proc)` coordinate draws independently for each kind.
const KIND_JITTER: u64 = 0x4A49;
const KIND_LOSS: u64 = 0x4C4F;
const KIND_CRASH: u64 = 0x4352;
/// Second, independent uniform for the Box–Muller lognormal draw.
const KIND_GAUSS: u64 = 0x474E;
/// Static per-direction link-asymmetry factors.
const KIND_ASYM: u64 = 0x4153;
/// Churn leave draws.
const KIND_CHURN: u64 = 0x4348;

/// Machine-side facts a session needs to price recovery traffic.
#[derive(Clone, Copy, Debug)]
pub struct FaultEnv {
    /// Number of host processors.
    pub p: usize,
    /// Distance (in the host metric) to the nearest neighbour — the hop
    /// charge used for checkpoint/restore traffic and churn backoff.
    pub hop: f64,
    /// Words per checkpoint image (one processor's memory share).
    pub checkpoint_words: u64,
    /// Side of the processor mesh for `d = 2` hosts (0 or 1 for linear
    /// hosts); keys [`Region::contains`](crate::plan::Region::contains)
    /// for tile-shaped outage regions.
    pub proc_side: usize,
}

impl FaultEnv {
    /// Environment for a run with no fault plan attached; the values
    /// are never read because the empty plan takes the fast path.
    pub fn trivial() -> Self {
        FaultEnv {
            p: 1,
            hop: 1.0,
            checkpoint_words: 0,
            proc_side: 1,
        }
    }
}

/// Fault accounting accumulated over a run, reported in `SimReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Total message retries charged across all stages and processors.
    pub retries: u64,
    /// Stages replayed due to a crash or churn rejoin (one per event).
    pub recovered_stages: u64,
    /// Crash events injected.
    pub crashes: u64,
    /// Extra parallel time attributable to faults:
    /// `Σ_stages max(faulted stage max − fault-free stage max, 0)`.
    pub injected_delay: f64,
    /// Processor-stages spent inside an active partition storm window.
    pub outage_stages: u64,
    /// Communication charge queued behind a partition (delivered at
    /// heal or settlement).
    pub deferred_comm: f64,
    /// Partition heal events (catch-up deliveries charged).
    pub heals: u64,
    /// Churn leave events.
    pub departures: u64,
    /// Churn rejoin events (deferred work + restore charged).
    pub rejoins: u64,
    /// Redelivery attempts to churned-away processors.
    pub backoff_retries: u64,
    /// Total exponential-backoff delay charged while retrying.
    pub backoff_delay: f64,
}

/// The churn redelivery policy ran out of retries: a processor stayed
/// away longer than the configured `max_retries` redelivery attempts.
/// Carries the partial statistics accumulated up to the failing stage so
/// callers can degrade gracefully instead of panicking.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioExhausted {
    /// Stage at which redelivery gave up.
    pub stage: u64,
    /// The unreachable processor.
    pub proc: usize,
    /// Accounting up to (and including) the failing stage.
    pub stats: FaultStats,
}

impl fmt::Display for ScenarioExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario exhausted at stage {}: processor {} unreachable after {} redelivery attempts",
            self.stage, self.proc, self.stats.backoff_retries
        )
    }
}

impl Error for ScenarioExhausted {}

/// The priced result of one stage close.
#[derive(Clone, Debug, PartialEq)]
pub struct StageOutcome {
    /// Faulted per-processor costs, in processor order.
    pub costs: Vec<f64>,
    /// Communication charge actually delivered this stage (slowdown- and
    /// asymmetry-inflated, minus anything queued behind a partition),
    /// for the clock's faulted comm ledger.
    pub faulted_comm: f64,
}

/// Per-processor churn/storm state.
#[derive(Clone, Debug, Default)]
struct ProcState {
    /// Processor is currently churned away.
    down: bool,
    /// First stage at which a down processor may rejoin.
    down_until: u64,
    /// Work deferred while down, repaid on rejoin.
    debt: f64,
    /// Consecutive redelivery attempts while down.
    attempts: u32,
    /// Comm queued behind an active partition, repaid on heal.
    queued_comm: f64,
    /// Processor was inside a storm window and has not healed yet.
    was_out: bool,
}

/// Live fault state for one engine run: the plan, the environment, a
/// global stage counter, per-processor scenario state, and the
/// accumulated statistics.
#[derive(Clone, Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    env: FaultEnv,
    stage: u64,
    procs: Vec<ProcState>,
    /// Static per-processor link-asymmetry multipliers (mean of the two
    /// directions), keyed by the hop distance; all 1 when symmetric.
    asym: Vec<f64>,
    /// Accounting, read out into the report when the run finishes.
    pub stats: FaultStats,
}

impl FaultSession {
    pub fn new(plan: &FaultPlan, env: FaultEnv) -> Self {
        let asym = match plan.link {
            LinkModel::Symmetric => Vec::new(),
            LinkModel::Asymmetric { spread } => (0..env.p)
                .map(|i| {
                    // One independent static factor per link direction,
                    // keyed by the neighbor distance so different-`hop`
                    // machines draw different tables from one seed.
                    let key = plan.seed ^ KIND_ASYM;
                    let out = 1.0 + spread * unit_f64(hash4(key, 0, i as u64, env.hop.to_bits()));
                    let inb = 1.0 + spread * unit_f64(hash4(key, 1, i as u64, env.hop.to_bits()));
                    0.5 * (out + inb)
                })
                .collect(),
        };
        FaultSession {
            plan: *plan,
            env,
            stage: 0,
            procs: vec![ProcState::default(); env.p],
            asym,
            stats: FaultStats::default(),
        }
    }

    /// A session that injects nothing (for engines run without a plan).
    pub fn inactive() -> Self {
        FaultSession::new(&FaultPlan::none(), FaultEnv::trivial())
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The static per-processor link table (asymmetry multipliers), all
    /// 1 for symmetric links.
    pub fn link_table(&self) -> &[f64] {
        &self.asym
    }

    /// Static asymmetry multiplier for processor `proc`.
    pub fn asym_factor(&self, proc: usize) -> f64 {
        self.asym.get(proc).copied().unwrap_or(1.0)
    }

    /// Link slowdown factor `ν ≥ 1` for `(stage, proc)`: the slowdown
    /// model's draw times the static per-direction asymmetry factor.
    pub fn link_factor(&self, stage: u64, proc: usize) -> f64 {
        let dist = match self.plan.slowdown {
            SlowdownModel::None => 1.0,
            SlowdownModel::Constant(nu) => nu,
            SlowdownModel::Jitter { lo, hi } => {
                let u = unit_f64(hash4(self.plan.seed, KIND_JITTER, stage, proc as u64));
                lo + u * (hi - lo)
            }
            SlowdownModel::Lognormal { mu, sigma } => {
                // Box–Muller over two independent uniforms; 1 − u1 keeps
                // the log argument in (0, 1].
                let u1 = unit_f64(hash4(self.plan.seed, KIND_JITTER, stage, proc as u64));
                let u2 = unit_f64(hash4(self.plan.seed, KIND_GAUSS, stage, proc as u64));
                let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp().max(1.0)
            }
            SlowdownModel::Pareto { xm, alpha } => {
                let u = unit_f64(hash4(self.plan.seed, KIND_JITTER, stage, proc as u64));
                (xm * (1.0 - u).powf(-1.0 / alpha)).min(PARETO_CAP)
            }
        };
        dist * self.asym_factor(proc)
    }

    /// Number of delivery retries for `(stage, proc)`: consecutive
    /// failed Bernoulli draws, capped at `max_retries`.
    pub fn retries(&self, stage: u64, proc: usize) -> u64 {
        match self.plan.loss {
            LossModel::None => 0,
            LossModel::Bernoulli {
                loss_permille,
                max_retries,
            } => {
                let pr = f64::from(loss_permille) / 1000.0;
                let mut r = 0u64;
                while r < u64::from(max_retries) {
                    let u = unit_f64(hash4(
                        self.plan.seed,
                        KIND_LOSS ^ r.rotate_left(13),
                        stage,
                        proc as u64,
                    ));
                    if u >= pr {
                        break;
                    }
                    r += 1;
                }
                r
            }
        }
    }

    /// Whether processor `proc` crashes at the end of stage `stage`.
    pub fn crashed(&self, stage: u64, proc: usize) -> bool {
        match self.plan.crash {
            CrashModel::None => false,
            CrashModel::AtStage { stage: s, proc: q } => s == stage && q == proc,
            CrashModel::Random { crash_permille } => {
                let pr = f64::from(crash_permille) / 1000.0;
                unit_f64(hash4(self.plan.seed, KIND_CRASH, stage, proc as u64)) < pr
            }
        }
    }

    /// Whether a storm window is active at `stage`.
    fn storm_active(&self, stage: u64) -> bool {
        match self.plan.outage {
            OutageModel::None => false,
            OutageModel::Storm {
                onset,
                duration,
                period,
                ..
            } => {
                if stage < onset {
                    return false;
                }
                let off = stage - onset;
                let phase = if period > 0 { off % period } else { off };
                phase < duration
            }
        }
    }

    fn in_region(&self, proc: usize) -> bool {
        match self.plan.outage {
            OutageModel::None => false,
            OutageModel::Storm { region, .. } => region.contains(proc, self.env.proc_side),
        }
    }

    /// Apply the plan to one bulk-synchronous stage.
    ///
    /// `total[i]` is processor `i`'s full stage cost (computation plus
    /// its half of the communication charge); `comm[i]` is the
    /// communication component alone, so `comm[i] ≤ total[i]`.
    ///
    /// The per-processor pricing, in order:
    ///
    /// ```text
    /// ν_i    = slowdown draw × static asymmetry factor
    /// ec_i   = (1 + r_i)·ν_i·comm_i          (inflated + retried comm)
    /// base_i = total_i − comm_i + ec_i
    /// cost_i = base_i                              (no crash)
    /// cost_i = 2·base_i + checkpoint_words·hop·ν_i (crash)
    /// ```
    ///
    /// then the stateful families adjust it:
    ///
    /// * a churned-away processor defers `cost_i` entirely and charges
    ///   only the exponential redelivery backoff — or ends the run with
    ///   [`ScenarioExhausted`] once `max_retries` attempts have failed;
    /// * a rejoining processor pays its deferred debt plus a checkpoint
    ///   restore;
    /// * a processor inside an active storm window queues `ec_i` for
    ///   later and pays only its local part; the first post-window stage
    ///   charges the queued catch-up delivery.
    ///
    /// Always advances the global stage counter; the empty plan returns
    /// `total` unchanged (bit-identically).
    pub fn try_apply_stage(
        &mut self,
        total: &[f64],
        comm: &[f64],
    ) -> Result<StageOutcome, ScenarioExhausted> {
        let stage = self.stage;
        self.stage += 1;
        if self.plan.is_none() {
            return Ok(StageOutcome {
                costs: total.to_vec(),
                faulted_comm: comm.iter().sum(),
            });
        }
        debug_assert_eq!(total.len(), comm.len());
        if self.procs.len() < total.len() {
            self.procs.resize(total.len(), ProcState::default());
        }
        let churn = match self.plan.churn {
            ChurnModel::None => None,
            ChurnModel::Poisson {
                leave_permille,
                down_stages,
                max_retries,
                backoff_hops,
            } => Some((
                f64::from(leave_permille) / 1000.0,
                down_stages,
                max_retries,
                backoff_hops,
            )),
        };
        let storm_now = self.storm_active(stage);
        let raw_max = total.iter().cloned().fold(0.0, f64::max);
        let mut costs = Vec::with_capacity(total.len());
        let mut faulted_comm = 0.0;
        for (i, (&t, &c)) in total.iter().zip(comm.iter()).enumerate() {
            let nu = self.link_factor(stage, i);
            let r = self.retries(stage, i);
            self.stats.retries += r;
            let eff_comm = (1.0 + r as f64) * nu * c;
            let base = t - c + eff_comm;
            let mut cost = if self.crashed(stage, i) {
                self.stats.crashes += 1;
                self.stats.recovered_stages += 1;
                2.0 * base + self.env.checkpoint_words as f64 * self.env.hop * nu
            } else {
                base
            };

            // Churn: leave draws, redelivery backoff, rejoin catch-up.
            let mut rejoining = false;
            if let Some((p_leave, down_stages, max_retries, backoff_hops)) = churn {
                if self.procs[i].down {
                    if stage >= self.procs[i].down_until {
                        self.procs[i].down = false;
                        rejoining = true;
                    }
                } else {
                    let u = unit_f64(hash4(self.plan.seed, KIND_CHURN, stage, i as u64));
                    if u < p_leave {
                        self.procs[i].down = true;
                        self.procs[i].down_until = stage + down_stages;
                        self.stats.departures += 1;
                    }
                }
                if self.procs[i].down {
                    // Away: defer the work, charge only the redelivery
                    // backoff, and give up once retries are exhausted.
                    self.procs[i].debt += cost;
                    self.procs[i].attempts += 1;
                    if self.procs[i].attempts > max_retries {
                        return Err(ScenarioExhausted {
                            stage,
                            proc: i,
                            stats: self.stats.clone(),
                        });
                    }
                    let backoff = self.env.hop
                        * backoff_hops
                        * f64::exp2(f64::from(self.procs[i].attempts - 1));
                    self.stats.backoff_retries += 1;
                    self.stats.backoff_delay += backoff;
                    costs.push(backoff);
                    continue;
                }
                if rejoining {
                    let restore = self.env.checkpoint_words as f64 * self.env.hop * nu;
                    cost += self.procs[i].debt + restore;
                    self.procs[i].debt = 0.0;
                    self.procs[i].attempts = 0;
                    self.stats.rejoins += 1;
                    self.stats.recovered_stages += 1;
                }
            }

            // Partition storm: queue cross-partition traffic while the
            // window is open, charge the catch-up delivery on heal.
            if self.in_region(i) {
                if storm_now {
                    self.procs[i].queued_comm += eff_comm;
                    cost -= eff_comm;
                    self.procs[i].was_out = true;
                    self.stats.outage_stages += 1;
                    self.stats.deferred_comm += eff_comm;
                    costs.push(cost);
                    continue;
                }
                if self.procs[i].was_out {
                    cost += self.procs[i].queued_comm;
                    faulted_comm += self.procs[i].queued_comm;
                    self.procs[i].queued_comm = 0.0;
                    self.procs[i].was_out = false;
                    self.stats.heals += 1;
                }
            }
            faulted_comm += eff_comm;
            costs.push(cost);
        }
        let faulted_max = costs.iter().cloned().fold(0.0, f64::max);
        // Deferral can make a stage *cheaper* than its fault-free self;
        // injected delay only accumulates genuine extra critical path.
        self.stats.injected_delay += (faulted_max - raw_max).max(0.0);
        Ok(StageOutcome {
            costs,
            faulted_comm,
        })
    }

    /// Whether outstanding scenario state (churn debt, an unfinished
    /// down period, or storm-queued traffic) still needs a settlement
    /// stage before the run can close.
    pub fn needs_settlement(&self) -> bool {
        self.procs
            .iter()
            .any(|ps| ps.down || ps.debt > 0.0 || ps.queued_comm > 0.0 || ps.was_out)
    }

    /// Close out the scenario: deliver all storm-queued traffic and
    /// repay all churn debt (plus restores for still-down processors) in
    /// one final settlement stage.  Returns `None` when nothing is
    /// outstanding.
    pub fn settle(&mut self) -> Option<StageOutcome> {
        if !self.needs_settlement() {
            return None;
        }
        let stage = self.stage;
        self.stage += 1;
        let mut costs = vec![0.0; self.procs.len()];
        let mut faulted_comm = 0.0;
        for (i, cost) in costs.iter_mut().enumerate() {
            let nu = self.link_factor(stage, i);
            let restore = self.env.checkpoint_words as f64 * self.env.hop * nu;
            let ps = &mut self.procs[i];
            if ps.down || ps.debt > 0.0 {
                *cost += ps.debt + restore;
                ps.debt = 0.0;
                ps.attempts = 0;
                ps.down = false;
                self.stats.rejoins += 1;
                self.stats.recovered_stages += 1;
            }
            if ps.queued_comm > 0.0 || ps.was_out {
                *cost += ps.queued_comm;
                faulted_comm += ps.queued_comm;
                ps.queued_comm = 0.0;
                ps.was_out = false;
                self.stats.heals += 1;
            }
        }
        let mx = costs.iter().cloned().fold(0.0, f64::max);
        self.stats.injected_delay += mx;
        Some(StageOutcome {
            costs,
            faulted_comm,
        })
    }

    /// Stages processed so far (the global stage counter).
    pub fn stages_seen(&self) -> u64 {
        self.stage
    }

    /// Take the accumulated statistics out of the session.
    pub fn into_stats(self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Region;

    fn env(p: usize) -> FaultEnv {
        FaultEnv {
            p,
            hop: 1.0,
            checkpoint_words: 8,
            proc_side: 1,
        }
    }

    fn apply(s: &mut FaultSession, total: &[f64], comm: &[f64]) -> Vec<f64> {
        s.try_apply_stage(total, comm).expect("not exhausted").costs
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut s = FaultSession::inactive();
        let total = [3.0, 5.0, 4.0];
        let comm = [1.0, 2.0, 0.0];
        let out = s.try_apply_stage(&total, &comm).unwrap();
        assert_eq!(out.costs, total.to_vec());
        assert_eq!(out.faulted_comm, 3.0);
        assert_eq!(s.stats, FaultStats::default());
        assert_eq!(s.stages_seen(), 1);
        assert!(!s.needs_settlement());
        assert_eq!(s.settle(), None);
    }

    #[test]
    fn constant_slowdown_inflates_only_comm() {
        let plan = FaultPlan::uniform_slowdown(3.0);
        let mut s = FaultSession::new(&plan, env(2));
        let out = apply(&mut s, &[10.0, 10.0], &[4.0, 0.0]);
        // base = total + (ν−1)·comm
        assert_eq!(out, vec![10.0 + 2.0 * 4.0, 10.0]);
        assert!((s.stats.injected_delay - 8.0).abs() < 1e-12);
        assert_eq!(s.stats.retries, 0);
        assert_eq!(s.stats.crashes, 0);
    }

    #[test]
    fn slowdown_bounded_by_nu_times_total() {
        let plan = FaultPlan::uniform_slowdown(4.0);
        let mut s = FaultSession::new(&plan, env(3));
        let total = [7.0, 9.0, 11.0];
        let comm = [7.0, 3.0, 0.5];
        let out = apply(&mut s, &total, &comm);
        for (i, &o) in out.iter().enumerate() {
            assert!(o >= total[i]);
            assert!(o <= 4.0 * total[i] + 1e-12);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let plan = FaultPlan::none().seed(42).jitter(1.5, 2.5);
        let a = FaultSession::new(&plan, env(4));
        let b = FaultSession::new(&plan, env(4));
        for stage in 0..10 {
            for proc in 0..4 {
                let fa = a.link_factor(stage, proc);
                assert_eq!(fa, b.link_factor(stage, proc));
                assert!((1.5..2.5).contains(&fa));
            }
        }
        let other = FaultSession::new(&plan.seed(43), env(4));
        assert_ne!(a.link_factor(0, 0), other.link_factor(0, 0));
    }

    #[test]
    fn lognormal_and_pareto_draws_are_valid_and_deterministic() {
        for plan in [
            FaultPlan::none().seed(7).lognormal(0.3, 0.6),
            FaultPlan::none().seed(7).pareto(1.0, 1.5),
        ] {
            plan.validate().unwrap();
            let a = FaultSession::new(&plan, env(4));
            let b = FaultSession::new(&plan, env(4));
            let mut distinct = false;
            for stage in 0..64 {
                for proc in 0..4 {
                    let fa = a.link_factor(stage, proc);
                    assert_eq!(fa.to_bits(), b.link_factor(stage, proc).to_bits());
                    assert!(fa.is_finite() && fa >= 1.0, "factor {fa} out of range");
                    assert!(fa <= PARETO_CAP);
                    if (fa - a.link_factor(0, 0)).abs() > 1e-12 {
                        distinct = true;
                    }
                }
            }
            assert!(distinct, "distribution draws must vary across coordinates");
        }
    }

    #[test]
    fn asymmetric_links_are_static_and_distance_keyed() {
        let plan = FaultPlan::none().seed(11).asymmetric(1.0);
        let s = FaultSession::new(&plan, env(8));
        assert_eq!(s.link_table().len(), 8);
        let mut distinct = false;
        for i in 0..8 {
            let f = s.asym_factor(i);
            assert!((1.0..2.0).contains(&f));
            // Stage-independent: asymmetry is a static link property.
            assert_eq!(s.link_factor(0, i).to_bits(), s.link_factor(9, i).to_bits());
            if (f - s.asym_factor(0)).abs() > 1e-12 {
                distinct = true;
            }
        }
        assert!(distinct, "directions must differ across processors");
        // A different hop distance re-keys the table.
        let far = FaultSession::new(&plan, FaultEnv { hop: 2.0, ..env(8) });
        assert_ne!(s.asym_factor(0), far.asym_factor(0));
    }

    #[test]
    fn retries_capped_and_charged() {
        // Certain loss: every draw fails, so retries hit the cap.
        let plan = FaultPlan::none().loss(1000, 3);
        let mut s = FaultSession::new(&plan, env(1));
        assert_eq!(s.retries(0, 0), 3);
        let out = apply(&mut s, &[10.0], &[2.0]);
        // base = 10 + 0 + 3·1·2 = 16
        assert_eq!(out, vec![16.0]);
        assert_eq!(s.stats.retries, 3);
    }

    #[test]
    fn no_loss_draws_zero_retries() {
        let plan = FaultPlan::none().loss(0, 5);
        let s = FaultSession::new(&plan, env(1));
        for stage in 0..20 {
            assert_eq!(s.retries(stage, 0), 0);
        }
    }

    #[test]
    fn crash_at_stage_replays_and_restores() {
        let plan = FaultPlan::none().crash_at(1, 0);
        let mut s = FaultSession::new(&plan, env(2));
        let first = apply(&mut s, &[5.0, 5.0], &[1.0, 1.0]);
        assert_eq!(first, vec![5.0, 5.0]);
        let second = apply(&mut s, &[5.0, 5.0], &[1.0, 1.0]);
        // crashed proc 0: 2·5 + 8·1·1 = 18; proc 1 untouched.
        assert_eq!(second, vec![18.0, 5.0]);
        assert_eq!(s.stats.crashes, 1);
        assert_eq!(s.stats.recovered_stages, 1);
        let third = apply(&mut s, &[5.0, 5.0], &[1.0, 1.0]);
        assert_eq!(third, vec![5.0, 5.0]);
        assert_eq!(s.stats.crashes, 1);
    }

    #[test]
    fn storm_defers_comm_and_heals_with_catchup() {
        // One-shot storm over proc 0, stages [1, 3).
        let region = Region::Interval { lo: 0, hi: 1 };
        let plan = FaultPlan::none().storm(region, 1, 2, 0);
        let mut s = FaultSession::new(&plan, env(2));
        let total = [10.0, 10.0];
        let comm = [4.0, 4.0];

        let s0 = apply(&mut s, &total, &comm);
        assert_eq!(s0, vec![10.0, 10.0]);

        // Stages 1 and 2: proc 0's comm queues; it pays only local work.
        let s1 = apply(&mut s, &total, &comm);
        assert_eq!(s1, vec![6.0, 10.0]);
        let s2 = apply(&mut s, &total, &comm);
        assert_eq!(s2, vec![6.0, 10.0]);
        assert_eq!(s.stats.outage_stages, 2);
        assert!((s.stats.deferred_comm - 8.0).abs() < 1e-12);

        // Stage 3: heal — catch-up delivery of both queued charges.
        let s3 = apply(&mut s, &total, &comm);
        assert_eq!(s3, vec![10.0 + 8.0, 10.0]);
        assert_eq!(s.stats.heals, 1);
        assert!(!s.needs_settlement());
    }

    #[test]
    fn periodic_storm_repeats() {
        let region = Region::Interval { lo: 0, hi: 1 };
        let plan = FaultPlan::none().storm(region, 0, 1, 3);
        let s = FaultSession::new(&plan, env(1));
        let windows: Vec<bool> = (0..7).map(|st| s.storm_active(st)).collect();
        assert_eq!(windows, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn storm_unhealed_at_end_settles() {
        let region = Region::Interval { lo: 0, hi: 1 };
        let plan = FaultPlan::none().storm(region, 0, 10, 0);
        let mut s = FaultSession::new(&plan, env(2));
        apply(&mut s, &[10.0, 10.0], &[4.0, 4.0]);
        assert!(s.needs_settlement());
        let out = s.settle().unwrap();
        assert_eq!(out.costs, vec![4.0, 0.0]);
        assert!((out.faulted_comm - 4.0).abs() < 1e-12);
        assert_eq!(s.stats.heals, 1);
        assert!(!s.needs_settlement());
    }

    #[test]
    fn churn_defers_and_rejoins_with_restore() {
        // Certain departure at stage 0, down for 2 stages, generous cap.
        let plan = FaultPlan::none().churn(1000, 2, 10, 1.0);
        let mut s = FaultSession::new(&plan, env(1));
        let total = [10.0];
        let comm = [2.0];

        // Stage 0: leaves immediately — backoff 1·1·2^0 = 1.
        let s0 = apply(&mut s, &total, &comm);
        assert_eq!(s0, vec![1.0]);
        assert_eq!(s.stats.departures, 1);
        // Stage 1: still down — backoff doubles.
        let s1 = apply(&mut s, &total, &comm);
        assert_eq!(s1, vec![2.0]);
        assert_eq!(s.stats.backoff_retries, 2);
        assert!((s.stats.backoff_delay - 3.0).abs() < 1e-12);
        // Stage 2: rejoin — pays this stage + 20 debt + 8-word restore.
        let s2 = apply(&mut s, &total, &comm);
        assert_eq!(s2, vec![10.0 + 20.0 + 8.0]);
        assert_eq!(s.stats.rejoins, 1);
        assert_eq!(s.stats.recovered_stages, 1);
        assert_eq!(s.stats.departures, 1);
        // Stage 3: up again, so the certain leave draw re-departs it.
        let s3 = apply(&mut s, &total, &comm);
        assert_eq!(s3, vec![1.0]);
        assert_eq!(s.stats.departures, 2);
    }

    #[test]
    fn churn_exhaustion_is_typed_not_a_panic() {
        // Down for 5 stages but only 2 redelivery attempts allowed.
        let plan = FaultPlan::none().churn(1000, 5, 2, 1.0);
        let mut s = FaultSession::new(&plan, env(1));
        let total = [10.0];
        let comm = [2.0];
        assert!(s.try_apply_stage(&total, &comm).is_ok());
        assert!(s.try_apply_stage(&total, &comm).is_ok());
        let err = s.try_apply_stage(&total, &comm).unwrap_err();
        assert_eq!(err.stage, 2);
        assert_eq!(err.proc, 0);
        assert_eq!(err.stats.departures, 1);
        assert_eq!(err.stats.backoff_retries, 2);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn churn_down_at_end_settles() {
        let plan = FaultPlan::none().churn(1000, 50, 100, 1.0);
        let mut s = FaultSession::new(&plan, env(1));
        apply(&mut s, &[10.0], &[2.0]);
        assert!(s.needs_settlement());
        let out = s.settle().unwrap();
        // debt 10 + restore 8.
        assert_eq!(out.costs, vec![18.0]);
        assert_eq!(s.stats.rejoins, 1);
        assert!(!s.needs_settlement());
        assert_eq!(s.settle(), None);
    }

    #[test]
    fn apply_stage_bit_reproducible() {
        let plan = FaultPlan::none()
            .seed(9)
            .lognormal(0.2, 0.4)
            .asymmetric(0.5)
            .loss(250, 4)
            .random_crashes(100)
            .storm(Region::Interval { lo: 1, hi: 3 }, 2, 3, 8)
            .churn(40, 2, 20, 1.0);
        let total = [4.0, 6.5, 3.25, 8.0];
        let comm = [1.0, 2.0, 0.25, 4.0];
        let mut a = FaultSession::new(&plan, env(4));
        let mut b = FaultSession::new(&plan, env(4));
        for _ in 0..50 {
            let xa = a.try_apply_stage(&total, &comm).unwrap();
            let xb = b.try_apply_stage(&total, &comm).unwrap();
            assert_eq!(xa, xb);
        }
        assert_eq!(a.settle(), b.settle());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn injected_delay_tracks_stage_max_difference() {
        let plan = FaultPlan::uniform_slowdown(2.0);
        let mut s = FaultSession::new(&plan, env(2));
        // raw max = 10; faulted: [10+3, 10] → max 13; delta 3.
        apply(&mut s, &[10.0, 10.0], &[3.0, 0.0]);
        assert!((s.stats.injected_delay - 3.0).abs() < 1e-12);
    }
}
