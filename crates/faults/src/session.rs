//! Per-run fault state: turns a [`FaultPlan`] plus the machine
//! environment into per-stage cost adjustments and accumulated
//! accounting.

use crate::plan::{CrashModel, FaultPlan, LossModel, SlowdownModel};
use crate::rng::{hash4, unit_f64};

/// Tags separating the fault kinds in the stateless hash, so the same
/// `(stage, proc)` coordinate draws independently for each kind.
const KIND_JITTER: u64 = 0x4A49;
const KIND_LOSS: u64 = 0x4C4F;
const KIND_CRASH: u64 = 0x4352;

/// Machine-side facts a session needs to price recovery traffic.
#[derive(Clone, Copy, Debug)]
pub struct FaultEnv {
    /// Number of host processors.
    pub p: usize,
    /// Distance (in the host metric) to the nearest neighbour — the hop
    /// charge used for checkpoint/restore traffic.
    pub hop: f64,
    /// Words per checkpoint image (one processor's memory share).
    pub checkpoint_words: u64,
}

impl FaultEnv {
    /// Environment for a run with no fault plan attached; the values
    /// are never read because the empty plan takes the fast path.
    pub fn trivial() -> Self {
        FaultEnv {
            p: 1,
            hop: 1.0,
            checkpoint_words: 0,
        }
    }
}

/// Fault accounting accumulated over a run, reported in `SimReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Total message retries charged across all stages and processors.
    pub retries: u64,
    /// Stages replayed due to a crash (one per crash event).
    pub recovered_stages: u64,
    /// Crash events injected.
    pub crashes: u64,
    /// Extra parallel time attributable to faults:
    /// `Σ_stages (faulted stage max − fault-free stage max)`.
    pub injected_delay: f64,
}

/// Live fault state for one engine run: the plan, the environment, a
/// global stage counter, and the accumulated statistics.
#[derive(Clone, Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    env: FaultEnv,
    stage: u64,
    /// Accounting, read out into the report when the run finishes.
    pub stats: FaultStats,
}

impl FaultSession {
    pub fn new(plan: &FaultPlan, env: FaultEnv) -> Self {
        FaultSession {
            plan: *plan,
            env,
            stage: 0,
            stats: FaultStats::default(),
        }
    }

    /// A session that injects nothing (for engines run without a plan).
    pub fn inactive() -> Self {
        FaultSession::new(&FaultPlan::none(), FaultEnv::trivial())
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Link slowdown factor `ν ≥ 1` for `(stage, proc)`.
    pub fn link_factor(&self, stage: u64, proc: usize) -> f64 {
        match self.plan.slowdown {
            SlowdownModel::None => 1.0,
            SlowdownModel::Constant(nu) => nu,
            SlowdownModel::Jitter { lo, hi } => {
                let u = unit_f64(hash4(self.plan.seed, KIND_JITTER, stage, proc as u64));
                lo + u * (hi - lo)
            }
        }
    }

    /// Number of delivery retries for `(stage, proc)`: consecutive
    /// failed Bernoulli draws, capped at `max_retries`.
    pub fn retries(&self, stage: u64, proc: usize) -> u64 {
        match self.plan.loss {
            LossModel::None => 0,
            LossModel::Bernoulli {
                loss_permille,
                max_retries,
            } => {
                let pr = f64::from(loss_permille) / 1000.0;
                let mut r = 0u64;
                while r < u64::from(max_retries) {
                    let u = unit_f64(hash4(
                        self.plan.seed,
                        KIND_LOSS ^ r.rotate_left(13),
                        stage,
                        proc as u64,
                    ));
                    if u >= pr {
                        break;
                    }
                    r += 1;
                }
                r
            }
        }
    }

    /// Whether processor `proc` crashes at the end of stage `stage`.
    pub fn crashed(&self, stage: u64, proc: usize) -> bool {
        match self.plan.crash {
            CrashModel::None => false,
            CrashModel::AtStage { stage: s, proc: q } => s == stage && q == proc,
            CrashModel::Random { crash_permille } => {
                let pr = f64::from(crash_permille) / 1000.0;
                unit_f64(hash4(self.plan.seed, KIND_CRASH, stage, proc as u64)) < pr
            }
        }
    }

    /// Apply the plan to one bulk-synchronous stage.
    ///
    /// `total[i]` is processor `i`'s full stage cost (computation plus
    /// its half of the communication charge); `comm[i]` is the
    /// communication component alone, so `comm[i] ≤ total[i]`.
    ///
    /// Returns the faulted per-processor costs:
    ///
    /// ```text
    /// base_i = total_i + (ν_i − 1)·comm_i + r_i·ν_i·comm_i
    /// cost_i = base_i                              (no crash)
    /// cost_i = 2·base_i + checkpoint_words·hop·ν_i (crash: replay +
    ///                                               restore traffic)
    /// ```
    ///
    /// Because `comm_i ≤ total_i`, a pure slowdown gives
    /// `cost_i ≤ ν_i · total_i`, which is what the envelope tests lean
    /// on.  Always advances the global stage counter; the empty plan
    /// returns `total` unchanged.
    pub fn apply_stage(&mut self, total: &[f64], comm: &[f64]) -> Vec<f64> {
        let stage = self.stage;
        self.stage += 1;
        if self.plan.is_none() {
            return total.to_vec();
        }
        debug_assert_eq!(total.len(), comm.len());
        let raw_max = total.iter().cloned().fold(0.0, f64::max);
        let out: Vec<f64> = total
            .iter()
            .zip(comm.iter())
            .enumerate()
            .map(|(i, (&t, &c))| {
                let nu = self.link_factor(stage, i);
                let r = self.retries(stage, i);
                self.stats.retries += r;
                let base = t + (nu - 1.0) * c + r as f64 * nu * c;
                if self.crashed(stage, i) {
                    self.stats.crashes += 1;
                    self.stats.recovered_stages += 1;
                    2.0 * base + self.env.checkpoint_words as f64 * self.env.hop * nu
                } else {
                    base
                }
            })
            .collect();
        let faulted_max = out.iter().cloned().fold(0.0, f64::max);
        self.stats.injected_delay += faulted_max - raw_max;
        out
    }

    /// Stages processed so far (the global stage counter).
    pub fn stages_seen(&self) -> u64 {
        self.stage
    }

    /// Take the accumulated statistics out of the session.
    pub fn into_stats(self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(p: usize) -> FaultEnv {
        FaultEnv {
            p,
            hop: 1.0,
            checkpoint_words: 8,
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut s = FaultSession::inactive();
        let total = [3.0, 5.0, 4.0];
        let comm = [1.0, 2.0, 0.0];
        assert_eq!(s.apply_stage(&total, &comm), total.to_vec());
        assert_eq!(s.stats, FaultStats::default());
        assert_eq!(s.stages_seen(), 1);
    }

    #[test]
    fn constant_slowdown_inflates_only_comm() {
        let plan = FaultPlan::uniform_slowdown(3.0);
        let mut s = FaultSession::new(&plan, env(2));
        let out = s.apply_stage(&[10.0, 10.0], &[4.0, 0.0]);
        // base = total + (ν−1)·comm
        assert_eq!(out, vec![10.0 + 2.0 * 4.0, 10.0]);
        assert!((s.stats.injected_delay - 8.0).abs() < 1e-12);
        assert_eq!(s.stats.retries, 0);
        assert_eq!(s.stats.crashes, 0);
    }

    #[test]
    fn slowdown_bounded_by_nu_times_total() {
        let plan = FaultPlan::uniform_slowdown(4.0);
        let mut s = FaultSession::new(&plan, env(3));
        let total = [7.0, 9.0, 11.0];
        let comm = [7.0, 3.0, 0.5];
        let out = s.apply_stage(&total, &comm);
        for (i, &o) in out.iter().enumerate() {
            assert!(o >= total[i]);
            assert!(o <= 4.0 * total[i] + 1e-12);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let plan = FaultPlan::none().seed(42).jitter(1.5, 2.5);
        let a = FaultSession::new(&plan, env(4));
        let b = FaultSession::new(&plan, env(4));
        for stage in 0..10 {
            for proc in 0..4 {
                let fa = a.link_factor(stage, proc);
                assert_eq!(fa, b.link_factor(stage, proc));
                assert!((1.5..2.5).contains(&fa));
            }
        }
        let other = FaultSession::new(&plan.seed(43), env(4));
        assert_ne!(a.link_factor(0, 0), other.link_factor(0, 0));
    }

    #[test]
    fn retries_capped_and_charged() {
        // Certain loss: every draw fails, so retries hit the cap.
        let plan = FaultPlan::none().loss(1000, 3);
        let mut s = FaultSession::new(&plan, env(1));
        assert_eq!(s.retries(0, 0), 3);
        let out = s.apply_stage(&[10.0], &[2.0]);
        // base = 10 + 0 + 3·1·2 = 16
        assert_eq!(out, vec![16.0]);
        assert_eq!(s.stats.retries, 3);
    }

    #[test]
    fn no_loss_draws_zero_retries() {
        let plan = FaultPlan::none().loss(0, 5);
        let s = FaultSession::new(&plan, env(1));
        for stage in 0..20 {
            assert_eq!(s.retries(stage, 0), 0);
        }
    }

    #[test]
    fn crash_at_stage_replays_and_restores() {
        let plan = FaultPlan::none().crash_at(1, 0);
        let mut s = FaultSession::new(&plan, env(2));
        let first = s.apply_stage(&[5.0, 5.0], &[1.0, 1.0]);
        assert_eq!(first, vec![5.0, 5.0]);
        let second = s.apply_stage(&[5.0, 5.0], &[1.0, 1.0]);
        // crashed proc 0: 2·5 + 8·1·1 = 18; proc 1 untouched.
        assert_eq!(second, vec![18.0, 5.0]);
        assert_eq!(s.stats.crashes, 1);
        assert_eq!(s.stats.recovered_stages, 1);
        let third = s.apply_stage(&[5.0, 5.0], &[1.0, 1.0]);
        assert_eq!(third, vec![5.0, 5.0]);
        assert_eq!(s.stats.crashes, 1);
    }

    #[test]
    fn apply_stage_bit_reproducible() {
        let plan = FaultPlan::none()
            .seed(9)
            .jitter(1.0, 3.0)
            .loss(250, 4)
            .random_crashes(100);
        let total = [4.0, 6.5, 3.25, 8.0];
        let comm = [1.0, 2.0, 0.25, 4.0];
        let mut a = FaultSession::new(&plan, env(4));
        let mut b = FaultSession::new(&plan, env(4));
        for _ in 0..50 {
            let xa = a.apply_stage(&total, &comm);
            let xb = b.apply_stage(&total, &comm);
            assert_eq!(xa, xb);
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn injected_delay_tracks_stage_max_difference() {
        let plan = FaultPlan::uniform_slowdown(2.0);
        let mut s = FaultSession::new(&plan, env(2));
        // raw max = 10; faulted: [10+3, 10] → max 13; delta 3.
        s.apply_stage(&[10.0, 10.0], &[3.0, 0.0]);
        assert!((s.stats.injected_delay - 3.0).abs() < 1e-12);
    }
}
