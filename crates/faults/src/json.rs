//! Hand-rolled JSON (de)serialization for [`FaultPlan`] — the on-disk
//! scenario format behind the CLI's `--faults <plan.json>` flag.
//!
//! The workspace is dependency-free by policy, so the reader is a small
//! recursive-descent parser over exactly the subset the schema needs:
//! one object of optional sections, each an object of numeric fields.
//! Every section is optional and defaults to its `None` model, so `{}`
//! parses to [`FaultPlan::none`].
//!
//! ```json
//! {
//!   "seed": 42,
//!   "slowdown": {"model": "lognormal", "mu": 0.2, "sigma": 0.5},
//!   "link": {"spread": 0.5},
//!   "loss": {"loss_permille": 50, "max_retries": 3},
//!   "crash": {"crash_permille": 10},
//!   "outage": {"region": {"lo": 0, "hi": 2}, "onset": 4, "duration": 3, "period": 10},
//!   "churn": {"leave_permille": 30, "down_stages": 2, "max_retries": 6, "backoff_hops": 1.0}
//! }
//! ```
//!
//! Slowdown models: `constant {nu}`, `jitter {lo, hi}`,
//! `lognormal {mu, sigma}`, `pareto {xm, alpha}`.  Crash models:
//! `{at_stage, proc}` or `{crash_permille}`.  Outage regions:
//! `{lo, hi}` (interval) or `{r0, r1, c0, c1}` (tile).
//!
//! Parsing only checks shape; callers run [`FaultPlan::validate`] for
//! the semantic checks, so a well-formed file with a bad parameter gets
//! the same typed [`FaultError`](crate::plan::FaultError) as a plan
//! built in code.

use std::error::Error;
use std::fmt;

use crate::plan::{
    ChurnModel, CrashModel, FaultPlan, LinkModel, LossModel, OutageModel, Region, SlowdownModel,
};

/// A malformed fault-plan document (syntax or shape; semantic range
/// checks stay in [`FaultPlan::validate`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanParseError {
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed fault plan: {}", self.message)
    }
}

impl Error for PlanParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, PlanParseError> {
    Err(PlanParseError {
        message: message.into(),
    })
}

/// The JSON subset the plan schema uses.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Obj(Vec<(String, Val)>),
}

impl Val {
    fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Val::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, PlanParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) => Ok(b),
            None => err("unexpected end of input"),
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), PlanParseError> {
        if self.peek()? != b {
            return err(format!("expected '{}' at byte {}", char::from(b), self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Val, PlanParseError> {
        match self.peek()? {
            b'{' => self.object(),
            b'"' => Ok(Val::Str(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Val, PlanParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, PlanParseError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| PlanParseError {
                        message: "invalid UTF-8 in string".into(),
                    })?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return err("escape sequences are not used by the plan schema");
            }
            self.pos += 1;
        }
        err("unterminated string")
    }

    fn number(&mut self) -> Result<Val, PlanParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return err(format!("expected a value at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(x) => Ok(Val::Num(x)),
            Err(_) => err(format!("bad number '{text}' at byte {start}")),
        }
    }
}

fn get_f64(v: &Val, key: &str, section: &str) -> Result<f64, PlanParseError> {
    match v.get(key) {
        Some(Val::Num(x)) => Ok(*x),
        Some(_) => err(format!("'{section}.{key}' must be a number")),
        None => err(format!("'{section}' is missing field '{key}'")),
    }
}

fn get_u64(v: &Val, key: &str, section: &str) -> Result<u64, PlanParseError> {
    let x = get_f64(v, key, section)?;
    if x < 0.0 || x.fract() != 0.0 || x > 9.007_199_254_740_992e15 {
        return err(format!(
            "'{section}.{key}' must be a non-negative integer, got {x}"
        ));
    }
    Ok(x as u64)
}

fn get_u32(v: &Val, key: &str, section: &str) -> Result<u32, PlanParseError> {
    let x = get_u64(v, key, section)?;
    u32::try_from(x).map_err(|_| PlanParseError {
        message: format!("'{section}.{key}' does not fit in u32: {x}"),
    })
}

fn check_keys(v: &Val, allowed: &[&str], section: &str) -> Result<(), PlanParseError> {
    for k in v.keys() {
        if !allowed.contains(&k) {
            return err(format!("unknown field '{k}' in '{section}'"));
        }
    }
    Ok(())
}

fn parse_slowdown(v: &Val) -> Result<SlowdownModel, PlanParseError> {
    let model = match v.get("model") {
        Some(Val::Str(s)) => s.as_str(),
        _ => return err("'slowdown' needs a string field 'model'"),
    };
    match model {
        "constant" => {
            check_keys(v, &["model", "nu"], "slowdown")?;
            Ok(SlowdownModel::Constant(get_f64(v, "nu", "slowdown")?))
        }
        "jitter" => {
            check_keys(v, &["model", "lo", "hi"], "slowdown")?;
            Ok(SlowdownModel::Jitter {
                lo: get_f64(v, "lo", "slowdown")?,
                hi: get_f64(v, "hi", "slowdown")?,
            })
        }
        "lognormal" => {
            check_keys(v, &["model", "mu", "sigma"], "slowdown")?;
            Ok(SlowdownModel::Lognormal {
                mu: get_f64(v, "mu", "slowdown")?,
                sigma: get_f64(v, "sigma", "slowdown")?,
            })
        }
        "pareto" => {
            check_keys(v, &["model", "xm", "alpha"], "slowdown")?;
            Ok(SlowdownModel::Pareto {
                xm: get_f64(v, "xm", "slowdown")?,
                alpha: get_f64(v, "alpha", "slowdown")?,
            })
        }
        other => err(format!(
            "unknown slowdown model '{other}' (expected constant, jitter, lognormal, or pareto)"
        )),
    }
}

fn parse_region(v: &Val) -> Result<Region, PlanParseError> {
    let region = match v.get("region") {
        Some(r @ Val::Obj(_)) => r,
        _ => return err("'outage' needs an object field 'region'"),
    };
    if region.get("lo").is_some() || region.get("hi").is_some() {
        check_keys(region, &["lo", "hi"], "outage.region")?;
        Ok(Region::Interval {
            lo: get_u64(region, "lo", "outage.region")? as usize,
            hi: get_u64(region, "hi", "outage.region")? as usize,
        })
    } else {
        check_keys(region, &["r0", "r1", "c0", "c1"], "outage.region")?;
        Ok(Region::Tile {
            r0: get_u64(region, "r0", "outage.region")? as usize,
            r1: get_u64(region, "r1", "outage.region")? as usize,
            c0: get_u64(region, "c0", "outage.region")? as usize,
            c1: get_u64(region, "c1", "outage.region")? as usize,
        })
    }
}

impl FaultPlan {
    /// Parse a fault plan from its JSON document.  Shape errors come
    /// back as [`PlanParseError`]; run
    /// [`FaultPlan::validate`] afterwards for the semantic checks.
    pub fn from_json(src: &str) -> Result<FaultPlan, PlanParseError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        let doc = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        check_keys(
            &doc,
            &[
                "seed", "slowdown", "link", "loss", "crash", "outage", "churn",
            ],
            "plan",
        )?;
        let mut plan = FaultPlan::none();
        if doc.get("seed").is_some() {
            plan.seed = get_u64(&doc, "seed", "plan")?;
        }
        if let Some(v) = doc.get("slowdown") {
            plan.slowdown = parse_slowdown(v)?;
        }
        if let Some(v) = doc.get("link") {
            check_keys(v, &["spread"], "link")?;
            plan.link = LinkModel::Asymmetric {
                spread: get_f64(v, "spread", "link")?,
            };
        }
        if let Some(v) = doc.get("loss") {
            check_keys(v, &["loss_permille", "max_retries"], "loss")?;
            plan.loss = LossModel::Bernoulli {
                loss_permille: get_u32(v, "loss_permille", "loss")?,
                max_retries: get_u32(v, "max_retries", "loss")?,
            };
        }
        if let Some(v) = doc.get("crash") {
            if v.get("at_stage").is_some() || v.get("proc").is_some() {
                check_keys(v, &["at_stage", "proc"], "crash")?;
                plan.crash = CrashModel::AtStage {
                    stage: get_u64(v, "at_stage", "crash")?,
                    proc: get_u64(v, "proc", "crash")? as usize,
                };
            } else {
                check_keys(v, &["crash_permille"], "crash")?;
                plan.crash = CrashModel::Random {
                    crash_permille: get_u32(v, "crash_permille", "crash")?,
                };
            }
        }
        if let Some(v) = doc.get("outage") {
            check_keys(v, &["region", "onset", "duration", "period"], "outage")?;
            plan.outage = OutageModel::Storm {
                region: parse_region(v)?,
                onset: get_u64(v, "onset", "outage")?,
                duration: get_u64(v, "duration", "outage")?,
                period: match v.get("period") {
                    Some(_) => get_u64(v, "period", "outage")?,
                    None => 0,
                },
            };
        }
        if let Some(v) = doc.get("churn") {
            check_keys(
                v,
                &[
                    "leave_permille",
                    "down_stages",
                    "max_retries",
                    "backoff_hops",
                ],
                "churn",
            )?;
            plan.churn = ChurnModel::Poisson {
                leave_permille: get_u32(v, "leave_permille", "churn")?,
                down_stages: get_u64(v, "down_stages", "churn")?,
                max_retries: get_u32(v, "max_retries", "churn")?,
                backoff_hops: match v.get("backoff_hops") {
                    Some(_) => get_f64(v, "backoff_hops", "churn")?,
                    None => 1.0,
                },
            };
        }
        Ok(plan)
    }

    /// Serialize to the JSON document [`FaultPlan::from_json`] reads.
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:?}")
            } else {
                "null".to_string()
            }
        }
        let mut sections: Vec<String> = vec![format!("  \"seed\": {}", self.seed)];
        match self.slowdown {
            SlowdownModel::None => {}
            SlowdownModel::Constant(nu) => sections.push(format!(
                "  \"slowdown\": {{\"model\": \"constant\", \"nu\": {}}}",
                num(nu)
            )),
            SlowdownModel::Jitter { lo, hi } => sections.push(format!(
                "  \"slowdown\": {{\"model\": \"jitter\", \"lo\": {}, \"hi\": {}}}",
                num(lo),
                num(hi)
            )),
            SlowdownModel::Lognormal { mu, sigma } => sections.push(format!(
                "  \"slowdown\": {{\"model\": \"lognormal\", \"mu\": {}, \"sigma\": {}}}",
                num(mu),
                num(sigma)
            )),
            SlowdownModel::Pareto { xm, alpha } => sections.push(format!(
                "  \"slowdown\": {{\"model\": \"pareto\", \"xm\": {}, \"alpha\": {}}}",
                num(xm),
                num(alpha)
            )),
        }
        if let LinkModel::Asymmetric { spread } = self.link {
            sections.push(format!("  \"link\": {{\"spread\": {}}}", num(spread)));
        }
        if let LossModel::Bernoulli {
            loss_permille,
            max_retries,
        } = self.loss
        {
            sections.push(format!(
                "  \"loss\": {{\"loss_permille\": {loss_permille}, \"max_retries\": {max_retries}}}"
            ));
        }
        match self.crash {
            CrashModel::None => {}
            CrashModel::AtStage { stage, proc } => sections.push(format!(
                "  \"crash\": {{\"at_stage\": {stage}, \"proc\": {proc}}}"
            )),
            CrashModel::Random { crash_permille } => sections.push(format!(
                "  \"crash\": {{\"crash_permille\": {crash_permille}}}"
            )),
        }
        if let OutageModel::Storm {
            region,
            onset,
            duration,
            period,
        } = self.outage
        {
            let region = match region {
                Region::Interval { lo, hi } => format!("{{\"lo\": {lo}, \"hi\": {hi}}}"),
                Region::Tile { r0, r1, c0, c1 } => {
                    format!("{{\"r0\": {r0}, \"r1\": {r1}, \"c0\": {c0}, \"c1\": {c1}}}")
                }
            };
            sections.push(format!(
                "  \"outage\": {{\"region\": {region}, \"onset\": {onset}, \"duration\": {duration}, \"period\": {period}}}"
            ));
        }
        if let ChurnModel::Poisson {
            leave_permille,
            down_stages,
            max_retries,
            backoff_hops,
        } = self.churn
        {
            sections.push(format!(
                "  \"churn\": {{\"leave_permille\": {leave_permille}, \"down_stages\": {down_stages}, \"max_retries\": {max_retries}, \"backoff_hops\": {}}}",
                num(backoff_hops)
            ));
        }
        format!("{{\n{}\n}}\n", sections.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_is_the_none_plan() {
        let plan = FaultPlan::from_json("{}").unwrap();
        assert_eq!(plan, FaultPlan::none());
        assert!(plan.is_none());
    }

    #[test]
    fn full_plan_round_trips() {
        let plan = FaultPlan::none()
            .seed(42)
            .lognormal(0.2, 0.5)
            .asymmetric(0.5)
            .loss(50, 3)
            .random_crashes(10)
            .storm(Region::Interval { lo: 0, hi: 2 }, 4, 3, 10)
            .churn(30, 2, 6, 1.0);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        back.validate().unwrap();
    }

    #[test]
    fn tile_region_and_at_stage_crash_round_trip() {
        let plan = FaultPlan::none()
            .seed(7)
            .pareto(1.5, 2.0)
            .crash_at(5, 2)
            .storm(
                Region::Tile {
                    r0: 0,
                    r1: 1,
                    c0: 0,
                    c1: 2,
                },
                2,
                1,
                0,
            );
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parses_handwritten_document() {
        let doc = r#"{
            "seed": 9,
            "slowdown": {"model": "jitter", "lo": 1.0, "hi": 2.5},
            "loss": {"loss_permille": 100, "max_retries": 4},
            "churn": {"leave_permille": 20, "down_stages": 3, "max_retries": 8}
        }"#;
        let plan = FaultPlan::from_json(doc).unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.slowdown, SlowdownModel::Jitter { lo: 1.0, hi: 2.5 });
        assert_eq!(
            plan.churn,
            ChurnModel::Poisson {
                leave_permille: 20,
                down_stages: 3,
                max_retries: 8,
                backoff_hops: 1.0,
            }
        );
        plan.validate().unwrap();
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1, 2]",
            "{\"seed\": -1}",
            "{\"seed\": 1.5}",
            "{\"unknown\": 3}",
            "{\"slowdown\": {\"model\": \"warp\"}}",
            "{\"slowdown\": {\"model\": \"constant\"}}",
            "{\"outage\": {\"onset\": 1, \"duration\": 1}}",
            "{\"churn\": {\"leave_permille\": 10}}",
            "{} trailing",
        ] {
            let e = FaultPlan::from_json(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "no message for {bad:?}");
        }
    }

    #[test]
    fn shape_ok_but_invalid_parameters_fail_validate() {
        let doc = r#"{"slowdown": {"model": "constant", "nu": 0.5}}"#;
        let plan = FaultPlan::from_json(doc).unwrap();
        assert!(plan.validate().is_err());
    }
}
