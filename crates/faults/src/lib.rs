//! # bsmp-faults
//!
//! A seeded, fully deterministic fault-injection layer for the
//! simulation engines.  The paper's premise is that message propagation
//! is physically constrained; this crate models the *degraded* versions
//! of that physical world:
//!
//! * **delay inflation** — every link runs at a propagation-speed factor
//!   `ν ≥ 1` (constant, or seeded jitter per stage and processor),
//!   multiplying the `words × hops × distance` communication charge;
//! * **transient message loss** — a lost rendezvous is retried, and each
//!   retry re-pays the stage's communication charge on both endpoints'
//!   clocks (the charge is applied to each processor's own stage cost,
//!   which is exactly the half/half split the engines already use);
//! * **node crash at a stage boundary** — the crashed processor replays
//!   the stage from the last bulk-synchronous checkpoint and restores
//!   its memory image, with the recovery traffic charged at model cost.
//!
//! Faults are *cost-level* by construction: every engine checkpoints at
//! bulk-synchronous stage boundaries, and deterministic re-execution
//! from the last boundary reproduces the same values, so the functional
//! output is untouched while `T_p` inflates.  This is what the
//! robustness tests assert: under `FaultPlan::uniform_slowdown(ν)` the
//! engines stay functionally equivalent to direct guest execution and
//! `T_p` stays within `ν ×` the fault-free time (hence within `ν ×` the
//! Theorem-1 envelope).
//!
//! Everything is driven by stateless hashing over
//! `(seed, kind, stage, processor)` — no generator state is threaded
//! through the engines, so the same plan produces bit-identical costs
//! regardless of evaluation order.
//!
//! The crate has no dependencies; [`rng`] also serves as the
//! workspace's deterministic random-input source.

pub mod plan;
pub mod rng;
pub mod session;

pub use plan::{CrashModel, FaultError, FaultPlan, LossModel, SlowdownModel};
pub use session::{FaultEnv, FaultSession, FaultStats};
