//! # bsmp-faults
//!
//! A seeded, fully deterministic fault-injection layer for the
//! simulation engines.  The paper's premise is that message propagation
//! is physically constrained; this crate models the *degraded* versions
//! of that physical world:
//!
//! * **delay inflation** — every link runs at a propagation-speed factor
//!   `ν ≥ 1` (constant, or seeded jitter per stage and processor),
//!   multiplying the `words × hops × distance` communication charge;
//! * **transient message loss** — a lost rendezvous is retried, and each
//!   retry re-pays the stage's communication charge on both endpoints'
//!   clocks (the charge is applied to each processor's own stage cost,
//!   which is exactly the half/half split the engines already use);
//! * **node crash at a stage boundary** — the crashed processor replays
//!   the stage from the last bulk-synchronous checkpoint and restores
//!   its memory image, with the recovery traffic charged at model cost;
//! * **heavy-tailed per-link jitter** — lognormal and Pareto slowdown
//!   distributions drawn per `(stage, processor)` from the same seeded
//!   hash, so tail events replay bit-identically;
//! * **asymmetric links** — an independent static speed factor per link
//!   direction, keyed by processor index and hop distance, exposed as a
//!   link table shared with `StageClock`'s communication ledger;
//! * **partition storms** — correlated regional outages over an address
//!   interval (d=1) or mesh tile (d=2) with onset/duration/period
//!   schedules; cross-partition traffic queues during a window and is
//!   charged catch-up delivery cost on heal;
//! * **node churn** — a Poisson-like seeded leave/rejoin process layered
//!   on the checkpoint/restore path, with bounded-retry exponential
//!   backoff; exhausting the retry budget degrades to a typed
//!   [`ScenarioExhausted`] error carrying partial [`FaultStats`], never
//!   a panic.
//!
//! Faults are *cost-level* by construction: every engine checkpoints at
//! bulk-synchronous stage boundaries, and deterministic re-execution
//! from the last boundary reproduces the same values, so the functional
//! output is untouched while `T_p` inflates.  This is what the
//! robustness tests assert: under `FaultPlan::uniform_slowdown(ν)` the
//! engines stay functionally equivalent to direct guest execution and
//! `T_p` stays within `ν ×` the fault-free time (hence within `ν ×` the
//! Theorem-1 envelope).
//!
//! Everything is driven by stateless hashing over
//! `(seed, kind, stage, processor)` — no generator state is threaded
//! through the engines, so the same plan produces bit-identical costs
//! regardless of evaluation order.
//!
//! The crate has no dependencies; [`rng`] also serves as the
//! workspace's deterministic random-input source.

pub mod json;
pub mod plan;
pub mod rng;
pub mod session;

pub use json::PlanParseError;
pub use plan::{
    ChurnModel, CrashModel, FaultError, FaultPlan, LinkModel, LossModel, OutageModel, Region,
    SlowdownModel, PARETO_CAP,
};
pub use session::{FaultEnv, FaultSession, FaultStats, ScenarioExhausted, StageOutcome};
