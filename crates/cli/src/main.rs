//! `bsmp-repro` — run the full experiment suite of the reproduction and
//! print every table as markdown (the contents of EXPERIMENTS.md).
//!
//! Usage: `bsmp-repro [--quick] [--slow <ν>] [--fault-seed <u64>] [E1 E4 ...]`
//!
//! * `--quick` — the seconds-scale variant of every experiment;
//! * `--slow <ν>` — run a faulted demo sweep with a uniform link
//!   slowdown ν ≥ 1 before the experiment tables;
//! * `--fault-seed <s>` — seed for the demo sweep's jitter/loss/crash
//!   plan (implies the sweep; default plan is pure slowdown);
//! * `E1 … E13` — restrict to the named experiments.
//!
//! Exit status: 0 on success, 1 on an engine/validation error, 2 on bad
//! command-line arguments.

use bsmp::workloads::{inputs, Eca};
use bsmp::{FaultPlan, Simulation, Strategy};
use bsmp_bench::{all_experiments, Scale};

struct Args {
    scale: Scale,
    wanted: Vec<String>,
    slow: Option<f64>,
    fault_seed: Option<u64>,
}

fn parse_args(raw: &[String], valid_ids: &[&str]) -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Full,
        wanted: Vec::new(),
        slow: None,
        fault_seed: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--slow" => {
                let v = it.next().ok_or("--slow requires a value (ν ≥ 1)")?;
                let nu: f64 = v
                    .parse()
                    .map_err(|_| format!("--slow: `{v}` is not a number"))?;
                args.slow = Some(nu);
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed requires a u64 value")?;
                let seed: u64 = v
                    .parse()
                    .map_err(|_| format!("--fault-seed: `{v}` is not a u64"))?;
                args.fault_seed = Some(seed);
            }
            id if id.starts_with('E') => {
                if !valid_ids.contains(&id) {
                    return Err(format!(
                        "unknown experiment `{id}` — valid ids: {}",
                        valid_ids.join(", ")
                    ));
                }
                args.wanted.push(id.to_string());
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(args)
}

/// The `--slow`/`--fault-seed` demo: one TwoRegime run per plan,
/// checked against the clean run, reported as a small markdown table.
fn fault_sweep(nu: f64, seed: Option<u64>) -> Result<(), bsmp::SimError> {
    let (n, p, steps) = (64u64, 4u64, 64i64);
    let init = inputs::random_bits(seed.unwrap_or(1), n as usize);
    let prog = Eca::rule110();
    let sim = Simulation::try_linear(n, p, 1)?;
    let base = sim
        .strategy(Strategy::TwoRegime)
        .try_run(&prog, &init, steps)?;
    let mut plan = FaultPlan::uniform_slowdown(nu);
    if let Some(s) = seed {
        plan = plan.seed(s).loss(50, 3).random_crashes(10);
    }
    let rep = sim
        .strategy(Strategy::TwoRegime)
        .faults(plan)
        .try_run(&prog, &init, steps)?;
    rep.sim.check_matches(&base.sim.mem, &base.sim.values)?;
    println!("## Fault sweep — ν = {nu}, seed = {seed:?} (n = {n}, p = {p})\n");
    println!("| T_p clean | T_p faulted | ratio | retries | recovered | injected delay |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| {:.1} | {:.1} | {:.3} | {} | {} | {:.1} |\n",
        base.sim.host_time,
        rep.sim.host_time,
        rep.sim.host_time / base.sim.host_time,
        rep.sim.faults.retries,
        rep.sim.faults.recovered_stages,
        rep.sim.faults.injected_delay,
    );
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();
    let valid_ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();

    let args = match parse_args(&raw, &valid_ids) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bsmp-repro: {msg}");
            eprintln!("usage: bsmp-repro [--quick] [--slow <ν>] [--fault-seed <u64>] [E1 E4 ...]");
            std::process::exit(2);
        }
    };

    if args.slow.is_some() || args.fault_seed.is_some() {
        let nu = args.slow.unwrap_or(1.0);
        if let Err(e) = fault_sweep(nu, args.fault_seed) {
            eprintln!("bsmp-repro: fault sweep failed: {e}");
            std::process::exit(1);
        }
    }

    println!("# Reproduction report — Bilardi & Preparata, SPAA 1995");
    println!(
        "\nScale: {:?}. Every engine run in these tables also re-verified\n\
         functional equivalence against direct guest execution.\n",
        args.scale
    );
    for exp in experiments {
        if !args.wanted.is_empty() && !args.wanted.iter().any(|w| w == exp.id) {
            continue;
        }
        println!("## {} — {}\n", exp.id, exp.artifact);
        for table in (exp.run)(args.scale) {
            println!("{}", table.to_markdown());
        }
    }
}
