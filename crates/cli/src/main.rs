//! `bsmp-repro` — run the full experiment suite of the reproduction and
//! print every table as markdown (the contents of EXPERIMENTS.md).
//!
//! Usage: `bsmp-repro [--quick] [E1 E4 ...]`

use bsmp_bench::{all_experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") { Scale::Quick } else { Scale::Full };
    let wanted: Vec<&String> = args.iter().filter(|a| a.starts_with('E')).collect();

    println!("# Reproduction report — Bilardi & Preparata, SPAA 1995");
    println!(
        "\nScale: {:?}. Every engine run in these tables also re-verified\n\
         functional equivalence against direct guest execution.\n",
        scale
    );
    for exp in all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| *w == exp.id) {
            continue;
        }
        println!("## {} — {}\n", exp.id, exp.artifact);
        for table in (exp.run)(scale) {
            println!("{}", table.to_markdown());
        }
    }
}
