//! `bsmp-repro` — run the full experiment suite of the reproduction and
//! print every table as markdown (the contents of EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! bsmp-repro [--quick] [--threads <N>] [--core dense|event] [--slow <ν>] [--fault-seed <u64>] [--faults <PLAN.json>] [--trace <PATH>] [--engine <NAME>] [E1 E4 ...]
//! bsmp-repro bench [--out <PATH>] [--meta <STR>] [--threads <N>] [--iters <K>] [--trace-counters] [--certify] [--mem] [--against <BASELINE.json>]
//! bsmp-repro trace-validate <PATH>
//! bsmp-repro trace-certify <PATH>
//! bsmp-repro serve [--threads <N>] [--max-inflight <K>] [--plan-cache-bytes <B>]
//! ```
//!
//! * `--quick` — the seconds-scale variant of every experiment;
//! * `--threads <N>` — host OS threads for the stage-parallel engines
//!   (0 = auto-detect; model costs are identical for every value);
//! * `--core dense|event` — execution core for the demo runs: the dense
//!   stage loop or the discrete-event sparse core (model costs are
//!   bit-identical; only wall-clock and footprint change);
//! * `--slow <ν>` — run a faulted demo sweep with a uniform link
//!   slowdown ν ≥ 1 before the experiment tables;
//! * `--fault-seed <s>` — seed for the demo sweep's jitter/loss/crash
//!   plan (implies the sweep; default plan is pure slowdown);
//! * `--faults <PLAN.json>` — load a full scenario plan (DESIGN.md §14:
//!   delay distributions, asymmetric links, partition storms, churn)
//!   and run the demo sweep under it; mutually exclusive with the
//!   `--slow`/`--fault-seed` shorthands;
//! * `--trace <PATH>` — run a traced demo simulation and write its
//!   `bsmp-trace/v1` JSON log to `PATH` (honors `--slow`/`--faults`);
//! * `--engine <NAME>` — which engine the `--trace` demo runs:
//!   `naive1`, `multi1` (default), or `dnc1` on the linear array;
//!   `naive2`, `multi2`, or `dnc2` on the mesh (the `dnc*` engines are
//!   uniprocessor, so they trace with p = 1);
//! * `E1 … E15` — restrict to the named experiments;
//! * `bench` — instead of the report, time the engine suite and write
//!   the wall-clock baseline as JSON (default `BENCH_engines.json`);
//!   with `--against <BASELINE.json>` the fresh points/sec figures are
//!   gated against a committed baseline (exit 1 on a >20% regression on
//!   any gated case); with `--mem` only the event-core footprint probe
//!   runs: a million-node `naive1` run on the sparse core, reporting
//!   peak resident bytes and bytes per guest node;
//! * `trace-validate <PATH>` — parse a trace log and check every
//!   structural invariant plus the Theorem-1 regime tag, then exit;
//! * `trace-certify <PATH>` — everything `trace-validate` does, then
//!   sandwich the recorded slowdown and communication totals between
//!   the Gunther/Brent and Scquizzato–Silvestri-style floors and the
//!   engine's Theorem 1–5 upper envelope (exit 0 = certified, 1 = a
//!   measured figure escaped its envelope, 2 = the trace cannot be
//!   certified at all);
//! * `bench --certify` — also run the engine × regime certification
//!   matrix and write one verdict per cell into the bench document's
//!   `certificates` section (exit 1 if any cell is not `Certified`);
//! * `serve` — the batch server: read newline-delimited
//!   `bsmp-serve/v1` job requests from stdin until EOF, run them
//!   concurrently over the shared stage pool and plan cache, and write
//!   one JSON result line per job (completion order) plus a final
//!   summary line to stdout.  `--max-inflight <K>` bounds the in-flight
//!   window (default 8; the reader blocks, giving stdin backpressure);
//!   `--plan-cache-bytes <B>` caps the plan cache's budget.  A
//!   malformed request yields a typed `bad_request` line and never
//!   kills the server, so `serve` exits 0 whenever the batch ran to
//!   completion — per-job failures are results, counted in the summary
//!   line, not a server failure.
//!
//! Exit status: 0 on success, 1 on an engine/validation error, 2 on bad
//! command-line arguments.

use bsmp::workloads::{inputs, Eca, TokenShift, VonNeumannLife};
use bsmp::{CoreKind, FaultPlan, MachineSpec, Simulation, Strategy};
use bsmp_bench::{all_experiments, perf, Scale};

struct Args {
    scale: Scale,
    wanted: Vec<String>,
    slow: Option<f64>,
    fault_seed: Option<u64>,
    faults_path: Option<String>,
    threads: usize,
    core: CoreKind,
    bench: Option<BenchArgs>,
    trace_out: Option<String>,
    trace_engine: String,
    trace_validate: Option<String>,
    trace_certify: Option<String>,
    serve: Option<ServeCliArgs>,
}

struct ServeCliArgs {
    max_inflight: usize,
    plan_cache_bytes: Option<usize>,
}

struct BenchArgs {
    out: String,
    meta: String,
    iters: u32,
    trace_counters: bool,
    certify: bool,
    mem: bool,
    against: Option<String>,
}

fn parse_args(raw: &[String], valid_ids: &[&str]) -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Full,
        wanted: Vec::new(),
        slow: None,
        fault_seed: None,
        faults_path: None,
        threads: 0,
        core: CoreKind::Dense,
        bench: None,
        trace_out: None,
        trace_engine: "multi1".to_string(),
        trace_validate: None,
        trace_certify: None,
        serve: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--threads" => {
                let v = it.next().ok_or("--threads requires a count (0 = auto)")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a thread count"))?;
            }
            "--core" => {
                let v = it.next().ok_or("--core requires `dense` or `event`")?;
                args.core = CoreKind::parse(v)
                    .ok_or_else(|| format!("--core: `{v}` is not a core (dense|event)"))?;
            }
            "--slow" => {
                let v = it.next().ok_or("--slow requires a value (ν ≥ 1)")?;
                let nu: f64 = v
                    .parse()
                    .map_err(|_| format!("--slow: `{v}` is not a number"))?;
                args.slow = Some(nu);
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed requires a u64 value")?;
                let seed: u64 = v
                    .parse()
                    .map_err(|_| format!("--fault-seed: `{v}` is not a u64"))?;
                args.fault_seed = Some(seed);
            }
            "--faults" => {
                let v = it.next().ok_or("--faults requires a plan path (JSON)")?;
                args.faults_path = Some(v.clone());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace requires an output path")?;
                args.trace_out = Some(v.clone());
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine requires a name (naive1|multi1|dnc1|naive2|multi2|dnc2)")?;
                if !["naive1", "multi1", "dnc1", "naive2", "multi2", "dnc2"].contains(&v.as_str()) {
                    return Err(format!(
                        "--engine: `{v}` is not a traceable demo engine \
                         (naive1|multi1|dnc1|naive2|multi2|dnc2)"
                    ));
                }
                args.trace_engine = v.clone();
            }
            "trace-validate" => {
                let v = it.next().ok_or("trace-validate requires a trace path")?;
                args.trace_validate = Some(v.clone());
            }
            "trace-certify" => {
                let v = it.next().ok_or("trace-certify requires a trace path")?;
                args.trace_certify = Some(v.clone());
            }
            "serve" => {
                args.serve = Some(ServeCliArgs {
                    max_inflight: 8,
                    plan_cache_bytes: None,
                });
            }
            "--max-inflight" => {
                let v = it.next().ok_or("--max-inflight requires a count ≥ 1")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("--max-inflight: `{v}` is not a count"))?;
                if k == 0 {
                    return Err("--max-inflight must be ≥ 1".into());
                }
                match &mut args.serve {
                    Some(s) => s.max_inflight = k,
                    None => return Err("--max-inflight is only valid after `serve`".into()),
                }
            }
            "--plan-cache-bytes" => {
                let v = it
                    .next()
                    .ok_or("--plan-cache-bytes requires a byte budget")?;
                let b: usize = v
                    .parse()
                    .map_err(|_| format!("--plan-cache-bytes: `{v}` is not a byte count"))?;
                match &mut args.serve {
                    Some(s) => s.plan_cache_bytes = Some(b),
                    None => return Err("--plan-cache-bytes is only valid after `serve`".into()),
                }
            }
            "bench" => {
                args.bench = Some(BenchArgs {
                    out: "BENCH_engines.json".to_string(),
                    meta: String::new(),
                    iters: 5,
                    trace_counters: false,
                    certify: false,
                    mem: false,
                    against: None,
                });
            }
            "--out" => {
                let v = it.next().ok_or("--out requires a path")?;
                match &mut args.bench {
                    Some(b) => b.out = v.clone(),
                    None => return Err("--out is only valid after `bench`".into()),
                }
            }
            "--meta" => {
                let v = it.next().ok_or("--meta requires a string")?;
                match &mut args.bench {
                    Some(b) => b.meta = v.clone(),
                    None => return Err("--meta is only valid after `bench`".into()),
                }
            }
            "--iters" => {
                let v = it.next().ok_or("--iters requires a count ≥ 1")?;
                let k: u32 = v
                    .parse()
                    .map_err(|_| format!("--iters: `{v}` is not a count"))?;
                if k == 0 {
                    return Err("--iters must be ≥ 1".into());
                }
                match &mut args.bench {
                    Some(b) => b.iters = k,
                    None => return Err("--iters is only valid after `bench`".into()),
                }
            }
            "--trace-counters" => match &mut args.bench {
                Some(b) => b.trace_counters = true,
                None => return Err("--trace-counters is only valid after `bench`".into()),
            },
            "--certify" => match &mut args.bench {
                Some(b) => b.certify = true,
                None => return Err("--certify is only valid after `bench`".into()),
            },
            "--mem" => match &mut args.bench {
                Some(b) => b.mem = true,
                None => return Err("--mem is only valid after `bench`".into()),
            },
            "--against" => {
                let v = it.next().ok_or("--against requires a baseline path")?;
                match &mut args.bench {
                    Some(b) => b.against = Some(v.clone()),
                    None => return Err("--against is only valid after `bench`".into()),
                }
            }
            id if id.starts_with('E') => {
                if !valid_ids.contains(&id) {
                    return Err(format!(
                        "unknown experiment `{id}` — valid ids: {}",
                        valid_ids.join(", ")
                    ));
                }
                args.wanted.push(id.to_string());
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if args.faults_path.is_some() && (args.slow.is_some() || args.fault_seed.is_some()) {
        return Err(
            "--faults replaces the --slow/--fault-seed shorthands; pass one or the other".into(),
        );
    }
    Ok(args)
}

/// Load, parse, and validate a scenario plan file for `--faults`.
/// Any failure here is a bad-argument error (exit status 2): the plan
/// never reached an engine.
fn load_plan(path: &str) -> Result<FaultPlan, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let plan = FaultPlan::from_json(&src).map_err(|e| format!("{path}: {e}"))?;
    plan.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(plan)
}

/// The `--slow`/`--fault-seed`/`--faults` demo: one TwoRegime run under
/// the scenario plan, checked against the clean run, reported as a
/// small markdown table.
fn fault_sweep(
    plan: &FaultPlan,
    label: &str,
    input_seed: u64,
    core: CoreKind,
) -> Result<(), bsmp::SimError> {
    let (n, p, steps) = (64u64, 4u64, 64i64);
    let init = inputs::random_bits(input_seed, n as usize);
    let prog = Eca::rule110();
    let sim = Simulation::try_linear(n, p, 1)?.core(core);
    let base = sim
        .strategy(Strategy::TwoRegime)
        .try_run(&prog, &init, steps)?;
    let rep = sim
        .strategy(Strategy::TwoRegime)
        .faults(*plan)
        .try_run(&prog, &init, steps)?;
    rep.sim.check_matches(&base.sim.mem, &base.sim.values)?;
    let f = &rep.sim.faults;
    println!("## Fault sweep — {label} (n = {n}, p = {p})\n");
    println!(
        "| T_p clean | T_p faulted | ratio | retries | recovered | injected delay | storm proc-stages | departures | rejoins |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    println!(
        "| {:.1} | {:.1} | {:.3} | {} | {} | {:.1} | {} | {} | {} |\n",
        base.sim.host_time,
        rep.sim.host_time,
        rep.sim.host_time / base.sim.host_time,
        f.retries,
        f.recovered_stages,
        f.injected_delay,
        f.outage_stages,
        f.departures,
        f.rejoins,
    );
    Ok(())
}

/// The `--trace` demo: one traced run of the `--engine` selection
/// (faulted if `--slow` or `--faults` was given), validated, then
/// written as `bsmp-trace/v1` JSON.
fn trace_demo(
    path: &str,
    engine: &str,
    plan: Option<&FaultPlan>,
    input_seed: u64,
    core: CoreKind,
) -> Result<(), String> {
    // The dnc engines are uniprocessor; the d = 2 demo runs fewer steps
    // because a mesh stage touches every node.
    let (mesh, strategy) = match engine {
        "naive1" => (false, Strategy::Naive),
        "multi1" => (false, Strategy::TwoRegime),
        "dnc1" => (false, Strategy::DivideAndConquer),
        "naive2" => (true, Strategy::Naive),
        "multi2" => (true, Strategy::TwoRegime),
        "dnc2" => (true, Strategy::DivideAndConquer),
        other => return Err(format!("no traceable demo engine `{other}`")),
    };
    let n = 64u64;
    let p = if strategy == Strategy::DivideAndConquer {
        1u64
    } else {
        4u64
    };
    let steps = if mesh { 16i64 } else { 64i64 };
    let init = inputs::random_bits(input_seed, n as usize);
    let mut sim = if mesh {
        Simulation::try_mesh(n, p, 1)
    } else {
        Simulation::try_linear(n, p, 1)
    }
    .map_err(|e| e.to_string())?
    .strategy(strategy)
    .core(core);
    if let Some(plan) = plan {
        sim = sim.faults(*plan);
    }
    let (rep, trace) = if mesh {
        sim.try_trace_mesh(&VonNeumannLife::fredkin(), &init, steps)
    } else {
        sim.try_trace(&Eca::rule110(), &init, steps)
    }
    .map_err(|e| e.to_string())?;
    if let Some(reason) = rep.sim.core_fallback {
        println!("note: event core fell back to the dense stage loop: {reason}\n");
    }
    bsmp::validate_trace(&trace)?;
    std::fs::write(path, trace.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "wrote {path}: engine {}, {} stages, slowdown {:.2} = {:.2} (Brent) × {:.4} (locality), regime {}\n",
        trace.engine,
        trace.summary.stages,
        trace.summary.slowdown,
        trace.summary.brent_term,
        trace.summary.locality_term,
        trace.summary.regime,
    );
    Ok(())
}

/// The `bench --mem` probe: one million-node `naive1` run on the
/// event core, reporting wall-clock, peak resident footprint, and
/// bytes per guest node.  The output line is machine-parsable (ci.sh
/// asserts a bytes-per-node budget on it).
fn mem_probe() -> Result<(), bsmp::SimError> {
    let n = 1u64 << 20;
    let steps = 512i64;
    let mut init = vec![0u64; n as usize];
    init[(n / 2) as usize] = 1;
    let spec = MachineSpec::new(1, n, 16, 1);
    let t0 = std::time::Instant::now();
    let (rep, st) =
        bsmp::sim::event1::naive1_event_footprint(&spec, &TokenShift::new(0), &init, steps)?;
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "mem-probe naive1 n={n} T={steps} core=event used_event_core={} wall_s={wall:.3} \
         peak_bytes={} bytes_per_node={:.3} peak_active={} total_active={} host_time={:.6e}",
        st.used_event_core,
        st.peak_bytes,
        st.bytes_per_node(),
        st.peak_active,
        st.total_active,
        rep.host_time,
    );
    if let Some(reason) = st.fallback {
        println!("mem-probe fallback_reason={reason:?}");
    }
    Ok(())
}

/// The `trace-validate` subcommand: parse + full structural/semantic
/// validation of a written trace log.
fn trace_validate(path: &str) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = bsmp::RunTrace::from_json(&src)?;
    bsmp::validate_trace(&trace)?;
    println!(
        "{path}: OK — engine {}, {} stages, slowdown {:.3}, regime {}",
        trace.engine, trace.summary.stages, trace.summary.slowdown, trace.summary.regime,
    );
    Ok(())
}

/// The `trace-certify` subcommand: full validation, then the two-sided
/// bound sandwich.  Returns the process exit code: 0 certified, 1
/// violated, 2 uncertifiable (unreadable, malformed, stamped with the
/// wrong regime, or parameters outside the bounds' domain).
fn trace_certify(path: &str) -> i32 {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bsmp-repro: trace-certify: cannot read {path}: {e}");
            return 2;
        }
    };
    let trace = match bsmp::RunTrace::from_json(&src) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bsmp-repro: trace-certify: {path}: {e}");
            return 2;
        }
    };
    let cert = match bsmp::trace::certify::certify(&trace) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bsmp-repro: trace-certify: {path}: {e}");
            return 2;
        }
    };
    println!(
        "{path}: {} — engine {}, regime {}, slowdown {:.3} in [{:.3}, {:.3}], \
         comm {:.1} in [{:.1}, {:.1}], margin {:.2} ({} stages)",
        cert.verdict,
        cert.engine,
        cert.regime,
        cert.measured,
        cert.lower,
        cert.upper,
        cert.comm_measured,
        cert.comm_lower,
        cert.comm_upper,
        cert.margin,
        cert.stages.len(),
    );
    for f in &cert.failures {
        eprintln!("bsmp-repro: trace-certify: {path}: {f}");
    }
    match cert.verdict {
        bsmp::trace::certify::Verdict::Certified => 0,
        bsmp::trace::certify::Verdict::Violated => 1,
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();
    let valid_ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();

    let args = match parse_args(&raw, &valid_ids) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bsmp-repro: {msg}");
            eprintln!(
                "usage: bsmp-repro [--quick] [--threads <N>] [--core dense|event] [--slow <ν>] [--fault-seed <u64>] [--faults <PLAN.json>] [--trace <PATH>] [E1 E4 ...]\n\
                 \x20      bsmp-repro bench [--out <PATH>] [--meta <STR>] [--threads <N>] [--iters <K>] [--trace-counters] [--mem] [--against <BASELINE.json>]\n\
                 \x20      bsmp-repro trace-validate <PATH>\n\
                 \x20      bsmp-repro trace-certify <PATH>\n\
                 \x20      bsmp-repro serve [--threads <N>] [--max-inflight <K>] [--plan-cache-bytes <B>]"
            );
            std::process::exit(2);
        }
    };

    // Resolve the scenario plan once: a `--faults` file, or the legacy
    // `--slow`/`--fault-seed` shorthands. A malformed or invalid plan
    // file is a usage error (exit 2) — it never reached an engine.
    let plan: Option<FaultPlan> = if let Some(path) = &args.faults_path {
        match load_plan(path) {
            Ok(p) => Some(p),
            Err(msg) => {
                eprintln!("bsmp-repro: --faults: {msg}");
                std::process::exit(2);
            }
        }
    } else if args.slow.is_some() || args.fault_seed.is_some() {
        let mut p = FaultPlan::uniform_slowdown(args.slow.unwrap_or(1.0));
        if let Some(s) = args.fault_seed {
            p = p.seed(s).loss(50, 3).random_crashes(10);
        }
        Some(p)
    } else {
        None
    };
    let plan_label = if let Some(path) = &args.faults_path {
        format!("plan `{path}`")
    } else {
        format!(
            "ν = {}, seed = {:?}",
            args.slow.unwrap_or(1.0),
            args.fault_seed
        )
    };
    let input_seed = args.fault_seed.unwrap_or(1);

    if let Some(path) = &args.trace_validate {
        if let Err(msg) = trace_validate(path) {
            eprintln!("bsmp-repro: trace-validate: {msg}");
            std::process::exit(1);
        }
        return;
    }

    if let Some(path) = &args.trace_certify {
        std::process::exit(trace_certify(path));
    }

    // Plumb the host thread budget to every engine (ExecPolicy::auto()
    // resolves to this process default).
    bsmp::set_default_threads(args.threads);

    if let Some(serve) = &args.serve {
        if let Some(bytes) = serve.plan_cache_bytes {
            bsmp::plan_cache().set_capacity(bytes);
        }
        // One persistent stage pool shared by every concurrent job; the
        // re-entrant engines lease scratch arenas from it per request.
        bsmp::init_shared_pool(args.threads);
        let input = std::io::BufReader::new(std::io::stdin());
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        let opts = bsmp::serve_suite::ServeOptions {
            max_inflight: serve.max_inflight,
        };
        match bsmp::serve_suite::serve(input, &mut out, opts) {
            Ok(summary) => {
                eprintln!(
                    "bsmp-repro: serve: {} job(s), {} ok, {} error(s)",
                    summary.jobs, summary.ok, summary.errors
                );
            }
            Err(e) => {
                eprintln!("bsmp-repro: serve: i/o failure: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(bench) = &args.bench {
        if bench.mem {
            if let Err(e) = mem_probe() {
                eprintln!("bsmp-repro: bench --mem: {e}");
                std::process::exit(1);
            }
            return;
        }
        let cases = perf::run_engine_suite(args.threads, bench.iters);
        let traces = if bench.trace_counters {
            perf::run_trace_counters(args.threads)
        } else {
            Vec::new()
        };
        let certs = if bench.certify {
            perf::run_certify_suite()
        } else {
            Vec::new()
        };
        // The batch-server warm/cold suite always rides along: repeated
        // -shape dnc/multi traffic, cold (cleared plan cache) vs warm
        // (pre-seeded).  The warm/cold ratio floor is a CI gate.
        let serves = perf::run_serve_suite(8);
        let doc = perf::to_json_full(&cases, &traces, &certs, &serves, args.threads, &bench.meta);
        if let Err(e) = perf::validate_json(&doc) {
            eprintln!("bsmp-repro: bench produced a malformed document: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&bench.out, &doc) {
            eprintln!("bsmp-repro: cannot write {}: {e}", bench.out);
            std::process::exit(1);
        }
        for c in &cases {
            println!(
                "{:<28} median {:>12.6} s  min {:>12.6} s  {:>14.0} points/s{}  ({} iters)",
                c.name,
                c.m.median_s,
                c.m.min_s,
                c.pps(),
                if c.gated { "  [gated]" } else { "" },
                c.m.iters
            );
        }
        for c in &certs {
            println!(
                "certify {:<14} {:>10.1} <= {:>12.1} <= {:>14.1}  margin {:>7.2}  {}",
                c.case, c.lower, c.measured, c.upper, c.margin, c.verdict
            );
        }
        for s in &serves {
            println!(
                "serve   {:<28} cold {:>9.1} jobs/s  warm {:>11.1} jobs/s  ratio {:>8.1}×",
                s.name,
                s.cold_jps,
                s.warm_jps,
                s.ratio()
            );
        }
        match perf::serve_gate(&serves) {
            Ok(n) => println!(
                "serve warm/cold gate: {n} case(s) at ≥ {:.0}× cold throughput",
                perf::SERVE_WARM_RATIO_FLOOR
            ),
            Err(e) => {
                eprintln!("bsmp-repro: bench: serve warm path regressed: {e}");
                std::process::exit(1);
            }
        }
        println!("wrote {} ({} cases)", bench.out, cases.len());
        if certs.iter().any(|c| c.verdict != "Certified") {
            eprintln!("bsmp-repro: bench --certify: a matrix cell failed certification");
            std::process::exit(1);
        }
        if let Some(base_path) = &bench.against {
            let committed = match std::fs::read_to_string(base_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bsmp-repro: cannot read baseline {base_path}: {e}");
                    std::process::exit(1);
                }
            };
            // Two re-measurement attempts absorb transient slow phases
            // of shared hosts; a real regression fails all three.
            let mut gated = cases.clone();
            match perf::gate_with_retries(&committed, &mut gated, 2, || {
                eprintln!("bsmp-repro: gate failed; re-measuring (transient host slow phase?)");
                perf::run_engine_suite(args.threads, bench.iters)
            }) {
                Ok(n) => println!(
                    "regression gate vs {base_path}: {n} gated case(s) within {:.0}% of baseline",
                    perf::GATE_FRACTION * 100.0
                ),
                Err(e) => {
                    eprintln!("bsmp-repro: points/sec regression vs {base_path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    if let Some(path) = &args.trace_out {
        if let Err(msg) = trace_demo(
            path,
            &args.trace_engine,
            plan.as_ref(),
            input_seed,
            args.core,
        ) {
            eprintln!("bsmp-repro: trace: {msg}");
            std::process::exit(1);
        }
    }

    if let Some(plan) = &plan {
        if let Err(e) = fault_sweep(plan, &plan_label, input_seed, args.core) {
            eprintln!("bsmp-repro: fault sweep failed: {e}");
            std::process::exit(1);
        }
    }

    println!("# Reproduction report — Bilardi & Preparata, SPAA 1995");
    println!(
        "\nScale: {:?}. Every engine run in these tables also re-verified\n\
         functional equivalence against direct guest execution.\n",
        args.scale
    );
    for exp in experiments {
        if !args.wanted.is_empty() && !args.wanted.iter().any(|w| w == exp.id) {
            continue;
        }
        println!("## {} — {}\n", exp.id, exp.artifact);
        for table in (exp.run)(args.scale) {
            println!("{}", table.to_markdown());
        }
    }
}
