//! Section-6 extensions, quantified:
//!
//! * the **d = 3 conjecture** — Theorem 1's form with `d = 3`, supported
//!   constructively by the 4-D topological separator in
//!   `bsmp_geometry::domain3` (γ = 3/4 meets the 3-D H-RAM's α = 1/3 at
//!   Proposition 3's admissibility boundary exactly);
//! * the **pipelined-memory machine** — `p < n` processors whose
//!   memories accept a new request before earlier ones complete: a batch
//!   of `k` accesses with maximum address `X` costs `f(X) + k`, and the
//!   naive simulation then incurs *no locality slowdown*.

use crate::logp2;

/// The conjectured locality slowdown `A(n, m, p)` for `d = 3` — Theorem
/// 1's expressions with `d = 3` substituted (ranges split at
/// `(n/p)^{1/6}`, `(np)^{1/6}` and `n^{1/3}`).
///
/// Status: *conjecture* in the paper (Section 6); the critical
/// ingredient — a `(c·x^{3/4}, δ)`-topological separator for 4-D
/// domains — is constructed and machine-verified in
/// `bsmp_geometry::domain3`, and satisfies Proposition 3's admissibility
/// condition with equality, so the uniprocessor part (the analogues of
/// Theorems 2/5) follows by the paper's own argument.
pub fn locality_slowdown_d3(n: f64, m: f64, p: f64) -> f64 {
    assert!(n >= 1.0 && m >= 1.0 && p >= 1.0 && p <= n);
    let p3 = p.cbrt();
    let n3 = n.cbrt();
    let np6 = (n / p).powf(1.0 / 6.0);
    if m <= np6 {
        (m / p3) * logp2(m) + m * logp2(2.0 * n3 / (p3 * m * m))
    } else if m <= (n * p).powf(1.0 / 6.0) {
        (m / p3) * logp2(np6) + 2.0 * np6
    } else if m <= n3 {
        (m / p3) * logp2(2.0 * n3 / m) + n3 / m
    } else {
        (n / p).cbrt()
    }
}

/// Slowdown of the naive simulation on a **pipelined-memory** host
/// (Section 6): each guest step's `n/p` accesses overlap, costing the
/// batch `f(n·m/p) + n/p = (n/p)^{1/d} + n/p` — so the slowdown is
/// `Θ(n/p)`: Brent recovered, zero locality slowdown.
pub fn pipelined_slowdown(d: u8, n: f64, p: f64) -> f64 {
    let batch = (n / p).powf(1.0 / d as f64) + n / p;
    // Guest step is Θ(1): the slowdown is the batch time itself.
    batch
}

/// The hardware cost the paper attributes to pipelinable memory: the
/// number of in-flight requests is `Θ(n)`-proportional, "making the cost
/// of such machine closer to the one with n fully-fledged processors".
/// Returns the in-flight request count at full utilization.
pub fn pipelined_inflight(d: u8, n: f64, p: f64) -> f64 {
    // Requests issued during one worst-case latency f(nm/p) = (n/p)^{1/d},
    // across all p processors.
    p * (n / p).powf(1.0 / d as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_conjecture_matches_low_d_pattern() {
        // Range 4: A = (n/p)^{1/3}.
        assert_eq!(
            locality_slowdown_d3(32768.0, 1e9, 4.0),
            (32768.0f64 / 4.0).cbrt()
        );
        // m = 1, p = 1: Θ(log n) — the Theorem-2/5 analogue.
        let a = locality_slowdown_d3(1e9, 1.0, 1.0);
        let l = logp2(1e9);
        assert!(a > l / 4.0 && a < l * 4.0);
    }

    #[test]
    fn d3_ranges_are_continuous_enough() {
        let (n, p): (f64, f64) = (1e12, 64.0);
        for boundary in [(n / p).powf(1.0 / 6.0), (n * p).powf(1.0 / 6.0), n.cbrt()] {
            let lo = locality_slowdown_d3(n, boundary * 0.99, p);
            let hi = locality_slowdown_d3(n, boundary * 1.01, p);
            let r = (lo / hi).max(hi / lo);
            assert!(r < 4.0, "jump ×{r} at {boundary}");
        }
    }

    #[test]
    fn pipelining_removes_locality_slowdown() {
        let (n, p) = (65536.0, 16.0);
        for d in [1u8, 2] {
            let pip = pipelined_slowdown(d, n, p);
            let brent = n / p;
            assert!(pip <= 2.0 * brent, "pipelined ≈ Brent");
            // The bounded-speed naive slowdown is (n/p)^{1+1/d} ≫.
            assert!(pip < crate::bounds::naive_multiprocessor(d, n, p) / 8.0);
        }
    }

    #[test]
    fn pipelining_hardware_grows_with_n() {
        // Fixing p, in-flight hardware grows polynomially in n — the
        // paper's point that the pipelined machine is "closer to the one
        // with n fully-fledged processors".
        let p = 16.0;
        let a = pipelined_inflight(1, 1024.0, p);
        let b = pipelined_inflight(1, 4096.0, p);
        assert!(b / a > 3.0);
    }
}
