//! Brent's Principle [B74] and the Fundamental Principle of Parallel
//! Computation [S86] — the *instantaneous-model* baseline that the
//! limiting technology breaks.

/// Brent's Principle: a `T`-step computation on `n` processors can be
/// emulated in at most `⌈n/p⌉·T` steps on `p ≤ n` processors of the same
/// type — slowdown `⌈n/p⌉`.
pub fn brent_slowdown(n: u64, p: u64) -> u64 {
    assert!(p >= 1 && p <= n);
    n.div_ceil(p)
}

/// The Fundamental Principle corollary: the best parallel algorithm on
/// `p` processors cannot be more than `p` times faster than the best
/// sequential one.  Returns the classical speedup cap.
pub fn classical_speedup_cap(p: u64) -> u64 {
    p
}

/// How much the bounded-speed bound exceeds the classical cap:
/// `A(n, m, p)` is exactly the superlinearity factor.
pub fn superlinearity_factor(d: u8, n: f64, m: f64, p: f64) -> f64 {
    crate::theorem1::slowdown_bound(d, n, m, p) / (n / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_is_ceiling() {
        assert_eq!(brent_slowdown(10, 3), 4);
        assert_eq!(brent_slowdown(8, 4), 2);
        assert_eq!(brent_slowdown(8, 8), 1);
    }

    #[test]
    fn superlinearity_equals_locality_slowdown() {
        let f = superlinearity_factor(1, 65536.0, 16.0, 16.0);
        let a = crate::theorem1::locality_slowdown(1, 65536.0, 16.0, 16.0);
        assert!((f - a).abs() < 1e-9);
        assert!(f > 1.0, "bounded speed ⇒ superlinear potential");
    }

    #[test]
    fn no_superlinearity_in_range4() {
        // m ≥ n: A = (n/p)^{1/d}… which is itself the locality loss of the
        // *host*; the factor is still > 1, but it is achieved by naive
        // simulation — check it equals (n/p)^{1/d} exactly.
        let f = superlinearity_factor(1, 1024.0, 2048.0, 4.0);
        assert_eq!(f, 256.0);
    }
}
