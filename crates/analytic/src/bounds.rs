//! Theorems 2, 3 and 5, and Proposition 1 (the naive simulation), as
//! evaluable bounds.  All are *slowdowns* `T_host/T_guest` unless noted.

use crate::logp2;

/// **Proposition 1** — naive simulation of `M_d(n, n, m)` by
/// `M_d(n, 1, m)`: slowdown `O(n^{1 + 1/d})` (each guest step costs the
/// host `n` remote accesses at up to `f(nm) = n^{1/d}`).
pub fn prop1_naive_uniprocessor(d: u8, n: f64) -> f64 {
    n * n.powf(1.0 / d as f64)
}

/// Parallel naive simulation by `M_d(n, p, m)` (Section 4.2 opening):
/// slowdown `O((n/p)^{1 + 1/d})`.
pub fn naive_multiprocessor(d: u8, n: f64, p: f64) -> f64 {
    let c = n / p;
    c * c.powf(1.0 / d as f64)
}

/// **Theorem 2** — `M_1(n, n, 1)` by `M_1(n, 1, 1)`: slowdown
/// `O(n log n)`.
pub fn thm2_slowdown(n: f64) -> f64 {
    n * logp2(n)
}

/// **Theorem 3** — `M_1(n, n, m)` by `M_1(n, 1, m)`: slowdown
/// `O(n · min(n, m·log(n/m)))`.
pub fn thm3_slowdown(n: f64, m: f64) -> f64 {
    n * thm3_locality(n, m)
}

/// Theorem 3's locality factor `min(n, m·log(n/m))`.
pub fn thm3_locality(n: f64, m: f64) -> f64 {
    n.min(m * logp2(n / m))
}

/// Section 4.1's crossover between the *block-relocation* D&C variant
/// (`T_1 = O(T_n·n·m·log n)`, every level relocates whole private
/// memories) and the naive simulation (`O(T_n·n²)`): D&C wins for
/// `m < n / log n`.
pub fn dnc_block_crossover_m(n: f64) -> f64 {
    n / logp2(n)
}

/// The saturation point of Theorem 3's *combined* scheme: the locality
/// term `min(n, m·log(n/m))` reaches its naive ceiling `n` at the root of
/// `m·log(n/m) = n` — with the footnote log this is exactly `m = n/2`.
pub fn thm3_crossover_m(n: f64) -> f64 {
    // Solve m·log(n/m) = n by bisection; m·logp2(n/m) is increasing on
    // [1, n] and exceeds n at m = n (logp2(1) = log₂3 > 1).
    let f = |m: f64| m * logp2(n / m) - n;
    let (mut lo, mut hi) = (1.0f64, n);
    if f(hi) < 0.0 {
        return n;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// **Theorem 5** — `M_2(n, n, 1)` by `M_2(n, 1, 1)`: slowdown
/// `O(n log n)`.
pub fn thm5_slowdown(n: f64) -> f64 {
    n * logp2(n)
}

// ---------------------------------------------------------------------
// Non-panicking twins for untrusted parameters.
//
// The bare functions above are total on positive finite inputs but
// degrade silently outside that domain (`d = 0` → `n^∞`, `p = 0` → ∞,
// `m = 0` → a zero locality term), which would let a corrupt trace be
// "certified" against a garbage envelope.  The `try_` variants validate
// first and return a typed [`BoundError`].  Inside the domain the
// formulas need no further guards:
//
// * `p = 1` is fine everywhere (`naive_multiprocessor` reduces to
//   Proposition 1);
// * `n < m` saturates: `thm3_locality` hits its naive ceiling `min`
//   branch (`logp2` keeps `m·log(n/m)` positive even at `n/m < 1`), so
//   oversized memories price as the naive simulation — documented
//   saturation, not an error;
// * non-power-of-two `m` is fine: every form is continuous in `m`.

use crate::lower::{check_params, BoundError};

/// Non-panicking, domain-checked [`prop1_naive_uniprocessor`].
pub fn try_prop1_naive_uniprocessor(d: u8, n: f64) -> Result<f64, BoundError> {
    check_params(d, n, 1.0, 1.0)?;
    Ok(prop1_naive_uniprocessor(d, n))
}

/// Non-panicking, domain-checked [`naive_multiprocessor`].
pub fn try_naive_multiprocessor(d: u8, n: f64, p: f64) -> Result<f64, BoundError> {
    check_params(d, n, 1.0, p)?;
    Ok(naive_multiprocessor(d, n, p))
}

/// Non-panicking, domain-checked [`thm2_slowdown`].
pub fn try_thm2_slowdown(n: f64) -> Result<f64, BoundError> {
    check_params(1, n, 1.0, 1.0)?;
    Ok(thm2_slowdown(n))
}

/// Non-panicking, domain-checked [`thm3_slowdown`] (saturates at the
/// naive ceiling `n²` for `m ≥ thm3_crossover_m(n)`, including `m > n`).
pub fn try_thm3_slowdown(n: f64, m: f64) -> Result<f64, BoundError> {
    check_params(1, n, m, 1.0)?;
    Ok(thm3_slowdown(n, m))
}

/// Non-panicking, domain-checked [`thm3_locality`].
pub fn try_thm3_locality(n: f64, m: f64) -> Result<f64, BoundError> {
    check_params(1, n, m, 1.0)?;
    Ok(thm3_locality(n, m))
}

/// Non-panicking, domain-checked [`thm5_slowdown`].
pub fn try_thm5_slowdown(n: f64) -> Result<f64, BoundError> {
    check_params(2, n, 1.0, 1.0)?;
    Ok(thm5_slowdown(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_d1_is_quadratic() {
        assert_eq!(prop1_naive_uniprocessor(1, 64.0), 4096.0);
    }

    #[test]
    fn naive_d2_is_n_to_three_halves() {
        assert_eq!(prop1_naive_uniprocessor(2, 64.0), 512.0);
    }

    #[test]
    fn naive_multiproc_shrinks_with_p() {
        assert_eq!(naive_multiprocessor(1, 64.0, 8.0), 64.0);
        assert!(naive_multiprocessor(1, 64.0, 8.0) < prop1_naive_uniprocessor(1, 64.0));
    }

    #[test]
    fn thm2_beats_naive_asymptotically() {
        for n in [64.0, 1024.0, 1_048_576.0] {
            assert!(thm2_slowdown(n) < prop1_naive_uniprocessor(1, n));
        }
    }

    #[test]
    fn thm3_reduces_to_thm2_at_m1() {
        let n = 4096.0;
        let r = thm3_slowdown(n, 1.0) / thm2_slowdown(n);
        assert!(r > 0.5 && r < 2.0);
    }

    #[test]
    fn thm3_saturates_at_naive_for_huge_m() {
        let n = 4096.0;
        assert_eq!(thm3_slowdown(n, 2.0 * n), n * n);
    }

    #[test]
    fn block_crossover_is_n_over_log_n() {
        let n = 65536.0;
        assert_eq!(dnc_block_crossover_m(n), n / logp2(n));
        // Below it, block D&C beats naive; above, naive wins.
        let m_lo = dnc_block_crossover_m(n) / 2.0;
        let m_hi = dnc_block_crossover_m(n) * 2.0;
        assert!(n * m_lo * logp2(n) < n * n);
        assert!(n * m_hi * logp2(n) > n * n);
    }

    #[test]
    fn combined_crossover_is_half_n_with_footnote_log() {
        for n in [1024.0, 65536.0, 1_048_576.0] {
            let m = thm3_crossover_m(n);
            // m·log₂(n/m + 2) = n has root exactly n/2 (log₂4 = 2).
            assert!((m - n / 2.0).abs() / n < 1e-6, "n={n}: {m}");
            assert!((m * logp2(n / m) - n).abs() / n < 1e-6);
        }
    }

    #[test]
    fn thm5_matches_thm2_form() {
        assert_eq!(thm5_slowdown(256.0), thm2_slowdown(256.0));
    }

    #[test]
    fn try_variants_reject_degenerates() {
        assert!(try_prop1_naive_uniprocessor(0, 64.0).is_err());
        assert!(try_naive_multiprocessor(1, 64.0, 0.0).is_err());
        assert!(try_naive_multiprocessor(1, 64.0, 128.0).is_err());
        assert!(try_thm2_slowdown(f64::NAN).is_err());
        assert!(try_thm3_slowdown(64.0, 0.0).is_err());
        assert!(try_thm3_slowdown(64.0, f64::INFINITY).is_err());
        assert!(try_thm5_slowdown(0.5).is_err());
    }

    #[test]
    fn try_variants_match_bare_forms_in_domain() {
        assert_eq!(
            try_naive_multiprocessor(1, 64.0, 1.0).unwrap(),
            prop1_naive_uniprocessor(1, 64.0)
        );
        // n < m saturates at the naive ceiling instead of erroring.
        assert_eq!(try_thm3_slowdown(64.0, 4096.0).unwrap(), 64.0 * 64.0);
        // Non-power-of-two m evaluates continuously.
        let lo = try_thm3_slowdown(4096.0, 47.0).unwrap();
        let hi = try_thm3_slowdown(4096.0, 48.0).unwrap();
        assert!(lo < hi);
    }
}
