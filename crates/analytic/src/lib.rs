//! # bsmp-analytic
//!
//! Closed-form bounds from the paper, as executable formulas:
//!
//! * [`theorem1`] — the headline tradeoff `T_p/T_n = O((n/p)·A(n, m, p))`
//!   with the four-range locality slowdown `A`, for general `d`;
//! * [`theorem4`] — the `d = 1` statement, the Section-4.2 objective
//!   `λ(s)` and its optimizer `s*` (the four ranges), plus a numeric
//!   minimizer used to *verify* the ranges;
//! * [`bounds`] — Theorems 2, 3 and 5 and Proposition 1 (naive
//!   simulation);
//! * [`lower`] — the floors (Gunther/Brent critical path,
//!   Scquizzato–Silvestri distance-weighted communication) that the
//!   trace certifier sandwiches measured runs against;
//! * [`brent`] — the classical Brent-principle baseline `⌈n/p⌉` and the
//!   Fundamental Principle of Parallel Computation;
//! * [`matmul`] — the introduction's matrix-multiplication example
//!   (superlinear `Θ(n^{3/2})` speedup of the mesh over the
//!   uniprocessor).
//!
//! Everything here is pure arithmetic on `f64`; the measurement side
//! lives in `bsmp-sim`, and `bsmp-bench` compares the two.

pub mod bounds;
pub mod brent;
pub mod extensions;
pub mod lower;
pub mod matmul;
pub mod theorem1;
pub mod theorem4;

pub use lower::{brent_floor, comm_floor, BoundError};
pub use theorem1::{locality_slowdown, slowdown_bound, Range};
pub use theorem4::{lambda, optimal_s, range_of, LambdaParts};

/// The paper's footnote logarithm: `log(x) := log₂(x + 2)`, so that
/// `log(x) ≥ 1` for all `x ≥ 0`.
#[inline]
pub fn logp2(x: f64) -> f64 {
    (x + 2.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logp2_floor_is_one() {
        assert_eq!(logp2(0.0), 1.0);
        assert!(logp2(0.5) > 1.0);
    }
}
