//! The introduction's motivating example: multiplying two `√n × √n`
//! matrices.
//!
//! * a `√n × √n` mesh of processors does it in `Θ(√n)` steps, and mesh
//!   steps are unit time even under bounded speed (near-neighbor wires
//!   have length independent of `n`);
//! * a uniprocessor with `O(n)` memory needs `Θ(n^{3/2})` operations;
//!   under bounded speed a *straightforward* implementation pays the
//!   average access distance `Θ(√n)` per operation, while the
//!   locality-careful blocked algorithm of [AACS87] pays only
//!   `Θ(log n)`;
//! * hence the mesh's speedup is `Θ(n^{3/2})` (naive serial) or
//!   `Θ(n·log n)` (blocked serial) — *superlinear* in the `n`
//!   processors either way.

use crate::logp2;

/// Mesh time: `Θ(√n)` unit steps.
pub fn mesh_time(n: f64) -> f64 {
    n.sqrt()
}

/// Uniprocessor operation count `Θ(n^{3/2})` (classical three-loop
/// product of `√n × √n` matrices).
pub fn serial_ops(n: f64) -> f64 {
    n.powf(1.5)
}

/// Straightforward uniprocessor time under bounded speed: every
/// operation pays the average memory distance `Θ(√n)`.
pub fn serial_time_naive(n: f64) -> f64 {
    serial_ops(n) * n.sqrt()
}

/// Blocked (hierarchy-aware) uniprocessor time: access overhead
/// `Θ(log n)` per operation [AACS87].
pub fn serial_time_blocked(n: f64) -> f64 {
    serial_ops(n) * logp2(n)
}

/// Mesh speedup over the naive uniprocessor: `Θ(n^{3/2})`.
pub fn speedup_over_naive(n: f64) -> f64 {
    serial_time_naive(n) / mesh_time(n)
}

/// Mesh speedup over the blocked uniprocessor: `Θ(n·log n)`.
pub fn speedup_over_blocked(n: f64) -> f64 {
    serial_time_blocked(n) / mesh_time(n)
}

/// Speedup in the instantaneous model: `Θ(n)` — linear, per the
/// Fundamental Principle.
pub fn speedup_instantaneous(n: f64) -> f64 {
    serial_ops(n) / mesh_time(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_speedup_is_n_to_three_halves() {
        let n = 4096.0;
        assert_eq!(speedup_over_naive(n), n.powf(1.5));
    }

    #[test]
    fn blocked_speedup_is_n_log_n() {
        let n = 4096.0;
        assert_eq!(speedup_over_blocked(n), n * logp2(n));
    }

    #[test]
    fn instantaneous_speedup_is_linear() {
        let n = 4096.0;
        assert_eq!(speedup_instantaneous(n), n);
    }

    #[test]
    fn both_bounded_speed_speedups_are_superlinear() {
        for n in [256.0, 4096.0, 65536.0] {
            assert!(speedup_over_naive(n) > n);
            assert!(speedup_over_blocked(n) > n);
        }
    }

    #[test]
    fn blocked_beats_naive_serial() {
        assert!(serial_time_blocked(65536.0) < serial_time_naive(65536.0));
    }
}
