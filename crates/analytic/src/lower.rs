//! Lower bounds: the floors that certified traces must clear.
//!
//! The rest of this crate evaluates the paper's *upper* bounds; this
//! module supplies the matching floors so a traced run can be
//! sandwiched from both sides (`lower ≤ measured ≤ upper`):
//!
//! * [`brent_floor`] — the critical-path/work floor
//!   `max(T_serial/p, T_∞)` in the sense of Gunther's *A Note on
//!   Parallel Algorithmic Speedup Bounds* (and Brent's principle): a
//!   host with `p` processors cannot simulate a `T`-step guest in less
//!   than `max(n/p, 1)·T` host time, because each guest step costs at
//!   least `n` unit operations of work and at least one host step of
//!   depth.  As a *slowdown* floor this is `max(n/p, 1)`.
//! * [`comm_floor`] — a distance-weighted communication floor in the
//!   style of Scquizzato–Silvestri's *Communication Lower Bounds for
//!   Distributed-Memory Computations*: with the guest volume split into
//!   `p` contiguous blocks, every guest step forces at least the block
//!   boundary across each inter-block cut, and each such word travels
//!   at least the inter-block distance under bounded-speed propagation.
//!
//! Both floors are deliberately conservative (they under-count by a
//! documented safety factor) so that *every* engine in `bsmp-sim`
//! clears them on a clean run; a measured figure *below* a floor can
//! only mean the trace is corrupt or the reporting path is broken.
//!
//! All entry points validate their inputs and return [`BoundError`]
//! instead of panicking — the certifier feeds them parameters from
//! untrusted trace files.

/// A bound evaluation was asked for parameters outside the domain where
/// the closed forms are meaningful.  Returned instead of panicking so
/// certification of untrusted traces degrades to a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundError {
    /// The layout dimension is not one this crate models.
    UnsupportedDimension { d: u8 },
    /// A parameter was NaN or infinite.
    NonFinite { what: &'static str },
    /// A parameter was below its documented minimum.
    TooSmall {
        what: &'static str,
        min: f64,
        got: f64,
    },
    /// `p > n` violates the Definition 2 precondition `1 ≤ p ≤ n`.
    ProcessorsExceedNodes { n: f64, p: f64 },
    /// A strip length outside `1 ≤ s ≤ n/p` (Theorem 4's domain).
    BadStripLength { s: f64, max: f64 },
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::UnsupportedDimension { d } => {
                write!(f, "unsupported dimension d={d} (bounds cover d in 1..=3)")
            }
            BoundError::NonFinite { what } => write!(f, "parameter {what} is not finite"),
            BoundError::TooSmall { what, min, got } => {
                write!(f, "parameter {what}={got} is below its minimum {min}")
            }
            BoundError::ProcessorsExceedNodes { n, p } => {
                write!(f, "p={p} exceeds n={n} (Definition 2 requires 1 <= p <= n)")
            }
            BoundError::BadStripLength { s, max } => {
                write!(f, "strip length s={s} outside 1 <= s <= n/p = {max}")
            }
        }
    }
}

impl std::error::Error for BoundError {}

fn finite(what: &'static str, x: f64) -> Result<f64, BoundError> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(BoundError::NonFinite { what })
    }
}

fn at_least(what: &'static str, min: f64, x: f64) -> Result<f64, BoundError> {
    let x = finite(what, x)?;
    if x < min {
        Err(BoundError::TooSmall { what, min, got: x })
    } else {
        Ok(x)
    }
}

/// Validate a `(d, n, m, p)` machine-parameter tuple against the
/// Definition 2 preconditions: `d ∈ {1, 2, 3}`, `n ≥ 1`, `m ≥ 1`,
/// `1 ≤ p ≤ n`, all finite.  Every floor and `try_`-prefixed bound in
/// this crate funnels through here.
pub fn check_params(d: u8, n: f64, m: f64, p: f64) -> Result<(), BoundError> {
    if !(1..=3).contains(&d) {
        return Err(BoundError::UnsupportedDimension { d });
    }
    let n = at_least("n", 1.0, n)?;
    at_least("m", 1.0, m)?;
    let p = at_least("p", 1.0, p)?;
    if p > n {
        return Err(BoundError::ProcessorsExceedNodes { n, p });
    }
    Ok(())
}

/// The Gunther/Brent critical-path floor, as a *slowdown*:
/// `max(T_serial/p, T_∞) / T_guest = max(n/p, 1)`.
///
/// Each guest step performs `n` node updates (work `n·T` over `T`
/// steps, so `≥ n·T/p` host time on `p` processors) and has depth at
/// least one host step (`T_∞ ≥ T`).  No simulation strategy, however
/// clever, reports a slowdown below this.
pub fn brent_floor(n: f64, p: f64) -> Result<f64, BoundError> {
    at_least("n", 1.0, n)?;
    at_least("p", 1.0, p)?;
    if p > n {
        return Err(BoundError::ProcessorsExceedNodes { n, p });
    }
    Ok((n / p).max(1.0))
}

/// Safety divisor applied to the ideal cut-based traffic count, so the
/// floor stays below every engine's actual charge.  Engines that batch
/// boundary traffic (the Theorem 4 strip scheme ships `s` words per cut
/// once per `s`-step phase) still average about one boundary word per
/// cut per guest step, but boundary strips at the array ends exchange
/// on one side only and a degenerate strip width (Range 4 drives
/// `s* → 1`) can shave the per-batch count below the ideal; the
/// calibrated worst case across the engine × regime matrix sits at
/// 0.23× the ideal count, so a factor-8 cushion keeps the floor sound
/// while remaining within a constant of the ideal.
pub const COMM_FLOOR_SLACK: f64 = 8.0;

/// Distance-weighted communication floor for simulating `steps` guest
/// steps of `M_d(n, n, m)` on `p` processors holding contiguous blocks,
/// in the Scquizzato–Silvestri style: per guest step, each directed
/// inter-block cut must carry at least the block boundary (the guest
/// dependency cone crosses every cut every step), and each word
/// travels at least the inter-block hop distance `f(n·m/p)`.
///
/// * `d = 1`: `2(p−1)` directed cuts × boundary 1 × hop `n/p`;
/// * `d = 2`: `4r(r−1)` directed cuts (`r = √p`) × boundary `√(n/p)`
///   × hop `√(n/p)`;
/// * `d = 3`: the repo's volume engines are uniprocessor-only, so the
///   floor is stated as 0 for `p = 1` and conservatively 0 for `p > 1`
///   (no d = 3 multiprocessor engine exists to calibrate against).
///
/// The count is divided by [`COMM_FLOOR_SLACK`]; at `p = 1` there is no
/// cut and the floor is 0.  The result is in host time units, directly
/// comparable to a trace's `comm_delay` total.
pub fn comm_floor(d: u8, n: f64, m: f64, p: f64, steps: f64) -> Result<f64, BoundError> {
    check_params(d, n, m, p)?;
    let steps = at_least("steps", 0.0, steps)?;
    if p <= 1.0 {
        return Ok(0.0);
    }
    let per_step = match d {
        1 => {
            let hop = n / p;
            2.0 * (p - 1.0) * hop
        }
        2 => {
            let r = p.sqrt();
            let boundary = (n / p).sqrt();
            let hop = (n / p).sqrt();
            4.0 * r * (r - 1.0) * boundary * hop
        }
        _ => 0.0,
    };
    Ok(steps * per_step / COMM_FLOOR_SLACK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_floor_matches_work_over_p() {
        assert_eq!(brent_floor(64.0, 4.0).unwrap(), 16.0);
        // Saturates at the depth floor once p = n.
        assert_eq!(brent_floor(64.0, 64.0).unwrap(), 1.0);
    }

    #[test]
    fn brent_floor_rejects_p_above_n() {
        assert!(matches!(
            brent_floor(8.0, 16.0),
            Err(BoundError::ProcessorsExceedNodes { .. })
        ));
    }

    #[test]
    fn comm_floor_vanishes_at_p1() {
        assert_eq!(comm_floor(1, 64.0, 1.0, 1.0, 64.0).unwrap(), 0.0);
        assert_eq!(comm_floor(2, 64.0, 4.0, 1.0, 16.0).unwrap(), 0.0);
    }

    #[test]
    fn comm_floor_d1_counts_cuts_times_hop() {
        // p=4, n=64: 2·3 cuts × hop 16 = 96 per step, over slack 4.
        let f = comm_floor(1, 64.0, 1.0, 4.0, 10.0).unwrap();
        assert_eq!(f, 10.0 * 96.0 / COMM_FLOOR_SLACK);
    }

    #[test]
    fn comm_floor_d2_scales_with_block_area() {
        // p=4 (r=2), n=64: 4·2·1 cuts × boundary 4 × hop 4 = 128/step.
        let f = comm_floor(2, 64.0, 1.0, 4.0, 1.0).unwrap();
        assert_eq!(f, 128.0 / COMM_FLOOR_SLACK);
    }

    #[test]
    fn check_params_rejects_degenerates() {
        assert!(check_params(0, 64.0, 1.0, 1.0).is_err());
        assert!(check_params(4, 64.0, 1.0, 1.0).is_err());
        assert!(check_params(1, 0.0, 1.0, 1.0).is_err());
        assert!(check_params(1, 64.0, 0.0, 1.0).is_err());
        assert!(check_params(1, 64.0, 1.0, 0.0).is_err());
        assert!(check_params(1, 64.0, f64::NAN, 1.0).is_err());
        assert!(check_params(1, 64.0, 1.0, 128.0).is_err());
        assert!(check_params(2, 4096.0, 17.0, 16.0).is_ok());
    }
}
