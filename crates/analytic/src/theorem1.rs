//! **Theorem 1** — for `T_n ≥ n^{1/d}` and `d = 1, 2`, a `T_n`-step
//! computation of `M_d(n, n, m)` can be simulated by `M_d(n, p, m)` with
//! slowdown
//!
//! ```text
//! T_p / T_n = O( (n/p) · A(n, m, p) )
//! ```
//!
//! where the locality slowdown `A` takes four expressions depending on
//! where `m` falls relative to `(n/p)^{1/2d}`, `(np)^{1/2d}` and
//! `n^{1/d}`.
//!
//! The statement's range-2 coefficient is written `(m/p)` in the paper's
//! `d = 1` instantiation (Theorem 4: `(m/2p)·log(n/p)`); for general `d`
//! we use `(m/p^{1/d})`, which is the unique reading that makes `A`
//! continuous (up to constants) across the range boundaries and agrees
//! with Theorem 4 at `d = 1`.

use crate::logp2;

/// Which of Theorem 1's four ranges a parameter triple falls in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Range {
    /// `m ≤ (n/p)^{1/2d}` — recursion dominates; memory rearrangement
    /// alone spreads work (Regime 1 vacuous at the low end).
    R1,
    /// `(n/p)^{1/2d} < m ≤ (np)^{1/2d}` — relocation levels plus naive
    /// execution balance.
    R2,
    /// `(np)^{1/2d} < m ≤ n^{1/d}` — relocation recedes; naive execution
    /// predominates.
    R3,
    /// `n^{1/d} < m` — only the naive simulation is profitable;
    /// `A = (n/p)^{1/d}` exactly.
    R4,
}

/// Classify `(n, m, p)` into Theorem 1's ranges for dimension `d`.
pub fn range(d: u8, n: f64, m: f64, p: f64) -> Range {
    let inv2d = 1.0 / (2.0 * d as f64);
    if m <= (n / p).powf(inv2d) {
        Range::R1
    } else if m <= (n * p).powf(inv2d) {
        Range::R2
    } else if m <= n.powf(1.0 / d as f64) {
        Range::R3
    } else {
        Range::R4
    }
}

/// The locality slowdown `A(n, m, p)` of Theorem 1 for dimension `d`.
pub fn locality_slowdown(d: u8, n: f64, m: f64, p: f64) -> f64 {
    assert!(d == 1 || d == 2, "Theorem 1 covers d = 1, 2");
    assert!(n >= 1.0 && m >= 1.0 && p >= 1.0 && p <= n);
    let dd = d as f64;
    let p_d = p.powf(1.0 / dd); // p^{1/d}
    let n_d = n.powf(1.0 / dd); // n^{1/d}
    let np_2d = (n / p).powf(1.0 / (2.0 * dd)); // (n/p)^{1/2d}
    match range(d, n, m, p) {
        Range::R1 => (m / p_d) * logp2(m) + m * logp2(2.0 * n_d / (p_d * m * m)),
        Range::R2 => (m / p_d) * logp2(np_2d) + 2.0 * np_2d,
        Range::R3 => (m / p_d) * logp2(2.0 * n_d / m) + n_d / m,
        Range::R4 => (n / p).powf(1.0 / dd),
    }
}

/// The full slowdown bound `(n/p) · A(n, m, p)`.
pub fn slowdown_bound(d: u8, n: f64, m: f64, p: f64) -> f64 {
    (n / p) * locality_slowdown(d, n, m, p)
}

/// The *speedup* of the fully parallel machine over the `p`-processor
/// machine predicted by the bound — superlinear in `n/p` whenever
/// `A > 1` (Section 6).
pub fn speedup_bound(d: u8, n: f64, m: f64, p: f64) -> f64 {
    slowdown_bound(d, n, m, p)
}

/// Non-panicking twin of [`locality_slowdown`] for parameters read from
/// untrusted traces: validates `d ∈ {1, 2}`, `n, m, p ≥ 1`, `p ≤ n` and
/// returns a [`BoundError`](crate::lower::BoundError) instead of
/// tripping the asserts.
pub fn try_locality_slowdown(
    d: u8,
    n: f64,
    m: f64,
    p: f64,
) -> Result<f64, crate::lower::BoundError> {
    crate::lower::check_params(d, n, m, p)?;
    if d == 3 {
        return Err(crate::lower::BoundError::UnsupportedDimension { d });
    }
    Ok(locality_slowdown(d, n, m, p))
}

/// Non-panicking twin of [`slowdown_bound`].
pub fn try_slowdown_bound(d: u8, n: f64, m: f64, p: f64) -> Result<f64, crate::lower::BoundError> {
    Ok((n / p) * try_locality_slowdown(d, n, m, p)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_matches_theorem4_statement() {
        // Range 1, d = 1: A = (m/p)·log m + m·log(2n/(p m²)).
        let (n, p, m) = (65536.0, 16.0, 4.0);
        assert_eq!(range(1, n, m, p), Range::R1);
        let expect = (m / p) * logp2(m) + m * logp2(2.0 * n / (p * m * m));
        assert!((locality_slowdown(1, n, m, p) - expect).abs() < 1e-9);
    }

    #[test]
    fn range_boundaries_ordered() {
        let (n, p): (f64, f64) = (65536.0, 16.0);
        let b1 = (n / p).sqrt().sqrt(); // d = 2 boundary (n/p)^{1/4}
        let b2 = (n * p).sqrt().sqrt();
        let b3 = n.sqrt();
        assert!(b1 < b2 && b2 < b3);
        assert_eq!(range(2, n, b1 * 0.9, p), Range::R1);
        assert_eq!(range(2, n, b1 * 1.5, p), Range::R2);
        assert_eq!(range(2, n, b2 * 1.5, p), Range::R3);
        assert_eq!(range(2, n, b3 * 1.5, p), Range::R4);
    }

    #[test]
    fn a_is_continuous_up_to_constants_at_boundaries() {
        for d in [1u8, 2] {
            let (n, p): (f64, f64) = (16_777_216.0, 64.0);
            let dd = d as f64;
            for boundary in [
                (n / p).powf(1.0 / (2.0 * dd)),
                (n * p).powf(1.0 / (2.0 * dd)),
                n.powf(1.0 / dd),
            ] {
                let lo = locality_slowdown(d, n, boundary * 0.99, p);
                let hi = locality_slowdown(d, n, boundary * 1.01, p);
                let ratio = (lo / hi).max(hi / lo);
                assert!(ratio < 4.0, "d={d} boundary {boundary}: jump ×{ratio}");
            }
        }
    }

    #[test]
    fn large_m_gives_pure_parallel_loss() {
        // Range 4: A = (n/p)^{1/d} — the naive step-by-step simulation.
        assert_eq!(locality_slowdown(1, 1024.0, 2048.0, 4.0), 256.0);
        assert_eq!(locality_slowdown(2, 1024.0, 64.0, 4.0), 16.0);
    }

    #[test]
    fn m_one_recovers_theorem2_shape() {
        // With m = 1 and p = 1, the bound should be Θ(log n): Theorem 2's
        // slowdown is n·log n = (n/p)·A with A = Θ(log n).
        let n = 1_048_576.0;
        let a = locality_slowdown(1, n, 1.0, 1.0);
        let l = logp2(n);
        assert!(a > l / 4.0 && a < l * 4.0, "A={a} vs log n={l}");
    }

    #[test]
    fn slowdown_superlinear_in_parallelism_loss() {
        // For moderate m the slowdown strictly exceeds n/p — the
        // superlinear-speedup phenomenon.
        let (d, n, m, p) = (1u8, 65536.0, 16.0, 16.0);
        assert!(slowdown_bound(d, n, m, p) > 1.5 * n / p);
    }

    #[test]
    fn slowdown_monotone_decreasing_in_p() {
        let (d, n, m) = (1u8, 65536.0, 8.0);
        let mut last = f64::INFINITY;
        for p in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let s = slowdown_bound(d, n, m, p);
            assert!(s < last, "p={p}: {s} ≥ {last}");
            last = s;
        }
    }
}
