//! **Theorem 4 / Section 4.2** — the `d = 1` multiprocessor simulation:
//! the objective
//!
//! ```text
//! λ(s) = (m/p)·log(n/(p s)) + min(s, m·log(s/m)) + n/(p s)
//! ```
//!
//! (locality slowdown as a function of the strip width `s`), the paper's
//! piecewise-optimal `s*`, and a numeric minimizer used to verify that
//! the four ranges of `s*` really are where λ bottoms out:
//!
//! 1. `s* ≈ n/(m p)`   for `1 ≤ m ≤ √(n/p)`;
//! 2. `s* = √(n/p)`    for `√(n/p) < m ≤ √(n p)`;
//! 3. `s* = m/p`       for `√(n p) < m ≤ n`;
//! 4. `s* = n/p`       for `n < m` (pure naive simulation).

use crate::logp2;

/// The three terms of λ(s), separately (useful for the regime plots of
/// experiment E3/E9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LambdaParts {
    /// Regime-1 relocation: `(m/p)·log(n/(p s))`.
    pub relocation: f64,
    /// Intra-processor execution of a `D(s)`: `min(s, m·log(s/m))`.
    pub execution: f64,
    /// Cooperating-mode communication: `n/(p s)`.
    pub cooperation: f64,
}

impl LambdaParts {
    pub fn total(&self) -> f64 {
        self.relocation + self.execution + self.cooperation
    }
}

/// Evaluate λ(s) for guest size `n`, processors `p`, density `m`.
pub fn lambda_parts(n: f64, m: f64, p: f64, s: f64) -> LambdaParts {
    assert!(
        s >= 1.0 && s <= n / p + 1e-9,
        "strip width 1 ≤ s ≤ n/p, got {s}"
    );
    LambdaParts {
        relocation: (m / p) * logp2(n / (p * s)).max(0.0),
        execution: s.min(m * logp2(s / m)),
        cooperation: n / (p * s),
    }
}

/// λ(s) itself.
pub fn lambda(n: f64, m: f64, p: f64, s: f64) -> f64 {
    lambda_parts(n, m, p, s).total()
}

/// Non-panicking twin of [`lambda`] for parameters read from untrusted
/// traces: validates the Definition 2 preconditions and the strip
/// domain `1 ≤ s ≤ n/p` before evaluating.
pub fn try_lambda(n: f64, m: f64, p: f64, s: f64) -> Result<f64, crate::lower::BoundError> {
    crate::lower::check_params(1, n, m, p)?;
    if !s.is_finite() || s < 1.0 || s > n / p + 1e-9 {
        return Err(crate::lower::BoundError::BadStripLength { s, max: n / p });
    }
    Ok(lambda(n, m, p, s))
}

/// The paper's optimal strip width `s*` (clamped to `[1, n/p]`).
pub fn optimal_s(n: f64, m: f64, p: f64) -> f64 {
    let s = if m <= (n / p).sqrt() {
        // Range 1: s* = (p/(p-1))·n/(m p) ≈ n/(m p).
        if p > 1.0 {
            (p / (p - 1.0)) * n / (m * p)
        } else {
            n / m
        }
    } else if m <= (n * p).sqrt() {
        (n / p).sqrt()
    } else if m <= n {
        m / p
    } else {
        n / p
    };
    s.clamp(1.0, n / p)
}

/// Which Theorem-4 range `(n, m, p)` falls in (d = 1).
pub fn range_of(n: f64, m: f64, p: f64) -> crate::theorem1::Range {
    crate::theorem1::range(1, n, m, p)
}

/// Numerically minimize λ over integer-ish strip widths (geometric grid),
/// returning `(s_min, λ(s_min))`.  Used to validate `optimal_s`.
pub fn minimize_lambda(n: f64, m: f64, p: f64) -> (f64, f64) {
    let mut best = (1.0, lambda(n, m, p, 1.0));
    let mut s = 1.0f64;
    while s <= n / p {
        let v = lambda(n, m, p, s);
        if v < best.1 {
            best = (s, v);
        }
        s *= 1.05;
    }
    let v_end = lambda(n, m, p, n / p);
    if v_end < best.1 {
        best = (n / p, v_end);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: &[(f64, f64)] = &[(65536.0, 16.0), (1_048_576.0, 64.0), (262144.0, 8.0)];

    #[test]
    fn paper_s_star_is_near_optimal_everywhere() {
        // λ(s*) within a constant factor of the numeric minimum, across
        // all four ranges of m.
        for &(n, p) in SIZES {
            let mut m = 1.0;
            while m <= 2.0 * n {
                let s_star = optimal_s(n, m, p);
                let at_star = lambda(n, m, p, s_star);
                let (_, at_min) = minimize_lambda(n, m, p);
                assert!(
                    at_star <= 3.0 * at_min,
                    "n={n} p={p} m={m}: λ(s*)={at_star} vs min={at_min}"
                );
                m *= 4.0;
            }
        }
    }

    #[test]
    fn range1_s_star_decreases_with_m() {
        let (n, p) = (65536.0, 16.0);
        let s1 = optimal_s(n, 1.0, p);
        let s4 = optimal_s(n, 4.0, p);
        let s16 = optimal_s(n, 16.0, p);
        assert!(s1 > s4 && s4 > s16, "{s1} > {s4} > {s16}");
    }

    #[test]
    fn range2_s_star_is_sqrt_n_over_p() {
        let (n, p) = (65536.0, 16.0);
        let m = 256.0; // between √(n/p) = 64 and √(np) = 1024
        assert_eq!(optimal_s(n, m, p), 64.0);
    }

    #[test]
    fn range3_s_star_is_m_over_p() {
        let (n, p) = (65536.0, 16.0);
        let m = 8192.0; // between √(np) = 1024 and n
        assert_eq!(optimal_s(n, m, p), 512.0);
    }

    #[test]
    fn range4_uses_full_chunk() {
        let (n, p) = (65536.0, 16.0);
        assert_eq!(optimal_s(n, 2.0 * n, p), n / p);
    }

    #[test]
    fn lambda_at_s_star_matches_theorem4_a() {
        // λ(s*) should reproduce (up to constants) the A(n, m, p) of
        // Theorem 4 in every range.
        for &(n, p) in SIZES {
            let mut m = 1.0;
            while m <= 2.0 * n {
                let a = crate::theorem1::locality_slowdown(1, n, m, p);
                let l = lambda(n, m, p, optimal_s(n, m, p));
                let ratio = (a / l).max(l / a);
                assert!(ratio < 6.0, "n={n} p={p} m={m}: A={a} λ(s*)={l} ×{ratio}");
                m *= 4.0;
            }
        }
    }

    #[test]
    fn parts_sum_to_total() {
        let parts = lambda_parts(65536.0, 8.0, 16.0, 64.0);
        assert!((parts.total() - lambda(65536.0, 8.0, 16.0, 64.0)).abs() < 1e-12);
        assert!(parts.relocation > 0.0 && parts.execution > 0.0 && parts.cooperation > 0.0);
    }

    #[test]
    fn uniprocessor_case_degenerates_gracefully() {
        // p = 1: the cooperating mode is unavailable; s* = n/m (range 1)
        // recovers the Theorem-3 recursion depth.
        let s = optimal_s(4096.0, 4.0, 1.0);
        assert_eq!(s, 1024.0);
    }
}
