//! Property-based tests of the analytic bounds.

use bsmp_analytic::{
    bounds, lambda, locality_slowdown, logp2, matmul, optimal_s, slowdown_bound,
    theorem4::minimize_lambda,
};
use proptest::prelude::*;

fn pow2(lo: u32, hi: u32) -> impl Strategy<Value = f64> {
    (lo..hi).prop_map(|e| (1u64 << e) as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn a_is_at_least_one_in_every_range(n in pow2(8, 24), m in pow2(0, 20), p in pow2(0, 8)) {
        prop_assume!(p <= n);
        for d in [1u8, 2] {
            prop_assert!(locality_slowdown(d, n, m, p) >= 0.9,
                "A(n={n}, m={m}, p={p}, d={d}) below 1");
        }
    }

    #[test]
    fn slowdown_bound_dominates_brent(n in pow2(8, 20), m in pow2(0, 16), p in pow2(0, 6)) {
        prop_assume!(p <= n);
        prop_assert!(slowdown_bound(1, n, m, p) >= 0.9 * n / p);
    }

    #[test]
    fn a_roughly_continuous_in_m(n in pow2(12, 24), p in pow2(0, 6), m in pow2(0, 10)) {
        prop_assume!(p <= n);
        let a1 = locality_slowdown(1, n, m, p);
        let a2 = locality_slowdown(1, n, 2.0 * m, p);
        // Doubling m can at most ~double A plus a log factor, and never
        // collapse it by more than the range-transition constant.
        prop_assert!(a2 / a1 < 4.0 && a2 / a1 > 0.25, "jump {} at m={m}", a2 / a1);
    }

    #[test]
    fn lambda_minimizer_never_beats_paper_by_much(n in pow2(12, 22), p in pow2(1, 7), m in pow2(0, 14)) {
        prop_assume!(p <= n / 4.0);
        let s_star = optimal_s(n, m, p);
        prop_assert!(s_star >= 1.0 && s_star <= n / p + 1e-9);
        let (_, best) = minimize_lambda(n, m, p);
        let at_star = lambda(n, m, p, s_star);
        prop_assert!(at_star <= 3.0 * best, "λ(s*)={at_star} vs min {best} (n={n} m={m} p={p})");
    }

    #[test]
    fn lambda_parts_positive(n in pow2(10, 20), p in pow2(1, 6), m in pow2(0, 10), se in 1u32..8) {
        prop_assume!(p <= n / 4.0);
        let s = ((1u64 << se) as f64).min(n / p);
        let l = lambda(n, m, p, s);
        prop_assert!(l.is_finite() && l > 0.0);
    }

    #[test]
    fn thm3_locality_below_both_arms(n in pow2(6, 20), m in pow2(0, 20)) {
        let l = bounds::thm3_locality(n, m);
        prop_assert!(l <= n + 1e-9);
        prop_assert!(l <= m * logp2(n / m) + 1e-9);
    }

    #[test]
    fn naive_always_at_least_dnc_bound_for_small_m(n in pow2(10, 24)) {
        // m = 1: n log n ≤ n² asymptotically (and for all n ≥ 2 here).
        prop_assert!(bounds::thm2_slowdown(n) <= bounds::prop1_naive_uniprocessor(1, n));
    }

    #[test]
    fn matmul_speedups_ordered(n in pow2(8, 24)) {
        // For n ≥ 256, √n ≥ log(n): naive-serial speedup ≥ blocked-serial
        // speedup ≥ classical cap (blocked ≥ cap holds for all n since
        // log(x) ≥ 1).
        prop_assert!(matmul::speedup_over_naive(n) >= matmul::speedup_over_blocked(n));
        prop_assert!(matmul::speedup_over_blocked(n) >= matmul::speedup_instantaneous(n));
    }

    #[test]
    fn logp2_monotone(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(logp2(lo) <= logp2(hi));
        prop_assert!(logp2(lo) >= 1.0);
    }
}
