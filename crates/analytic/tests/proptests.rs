//! Property-based tests of the analytic bounds, driven by the in-repo
//! seeded [`Rng64`] case generator.

use bsmp_analytic::{
    bounds, lambda, locality_slowdown, logp2, matmul, optimal_s, slowdown_bound,
    theorem4::minimize_lambda,
};
use bsmp_faults::rng::Rng64;

const CASES: u64 = 96;

fn pow2(rng: &mut Rng64, lo: u32, hi: u32) -> f64 {
    (1u64 << rng.range_u64(lo as u64, hi as u64)) as f64
}

#[test]
fn a_is_at_least_one_in_every_range() {
    let mut rng = Rng64::new(0xA001);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 8, 24);
        let m = pow2(&mut rng, 0, 20);
        let p = pow2(&mut rng, 0, 8);
        if p > n {
            continue;
        }
        for d in [1u8, 2] {
            assert!(
                locality_slowdown(d, n, m, p) >= 0.9,
                "A(n={n}, m={m}, p={p}, d={d}) below 1"
            );
        }
    }
}

#[test]
fn slowdown_bound_dominates_brent() {
    let mut rng = Rng64::new(0xA002);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 8, 20);
        let m = pow2(&mut rng, 0, 16);
        let p = pow2(&mut rng, 0, 6);
        if p > n {
            continue;
        }
        assert!(slowdown_bound(1, n, m, p) >= 0.9 * n / p);
    }
}

#[test]
fn a_roughly_continuous_in_m() {
    let mut rng = Rng64::new(0xA003);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 12, 24);
        let p = pow2(&mut rng, 0, 6);
        let m = pow2(&mut rng, 0, 10);
        if p > n {
            continue;
        }
        let a1 = locality_slowdown(1, n, m, p);
        let a2 = locality_slowdown(1, n, 2.0 * m, p);
        // Doubling m can at most ~double A plus a log factor, and never
        // collapse it by more than the range-transition constant.
        assert!(a2 / a1 < 4.0 && a2 / a1 > 0.25, "jump {} at m={m}", a2 / a1);
    }
}

#[test]
fn lambda_minimizer_never_beats_paper_by_much() {
    let mut rng = Rng64::new(0xA004);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 12, 22);
        let p = pow2(&mut rng, 1, 7);
        let m = pow2(&mut rng, 0, 14);
        if p > n / 4.0 {
            continue;
        }
        let s_star = optimal_s(n, m, p);
        assert!(s_star >= 1.0 && s_star <= n / p + 1e-9);
        let (_, best) = minimize_lambda(n, m, p);
        let at_star = lambda(n, m, p, s_star);
        assert!(
            at_star <= 3.0 * best,
            "λ(s*)={at_star} vs min {best} (n={n} m={m} p={p})"
        );
    }
}

#[test]
fn lambda_parts_positive() {
    let mut rng = Rng64::new(0xA005);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 10, 20);
        let p = pow2(&mut rng, 1, 6);
        let m = pow2(&mut rng, 0, 10);
        let se = rng.range_u64(1, 8) as u32;
        if p > n / 4.0 {
            continue;
        }
        let s = ((1u64 << se) as f64).min(n / p);
        let l = lambda(n, m, p, s);
        assert!(l.is_finite() && l > 0.0);
    }
}

#[test]
fn thm3_locality_below_both_arms() {
    let mut rng = Rng64::new(0xA006);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 6, 20);
        let m = pow2(&mut rng, 0, 20);
        let l = bounds::thm3_locality(n, m);
        assert!(l <= n + 1e-9);
        assert!(l <= m * logp2(n / m) + 1e-9);
    }
}

#[test]
fn naive_always_at_least_dnc_bound_for_small_m() {
    let mut rng = Rng64::new(0xA007);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 10, 24);
        // m = 1: n log n ≤ n² asymptotically (and for all n ≥ 2 here).
        assert!(bounds::thm2_slowdown(n) <= bounds::prop1_naive_uniprocessor(1, n));
    }
}

#[test]
fn matmul_speedups_ordered() {
    let mut rng = Rng64::new(0xA008);
    for _ in 0..CASES {
        let n = pow2(&mut rng, 8, 24);
        // For n ≥ 256, √n ≥ log(n): naive-serial speedup ≥ blocked-serial
        // speedup ≥ classical cap (blocked ≥ cap holds for all n since
        // log(x) ≥ 1).
        assert!(matmul::speedup_over_naive(n) >= matmul::speedup_over_blocked(n));
        assert!(matmul::speedup_over_blocked(n) >= matmul::speedup_instantaneous(n));
    }
}

#[test]
fn logp2_monotone() {
    let mut rng = Rng64::new(0xA009);
    for _ in 0..CASES {
        let a = rng.unit_f64() * 1e9;
        let b = rng.unit_f64() * 1e9;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(logp2(lo) <= logp2(hi));
        assert!(logp2(lo) >= 1.0);
    }
}
