//! # bsmp-dag
//!
//! Computation dags and the topological-separator framework of Section 3.
//!
//! * [`dag1`] / [`dag2`] — the dags `G_T(H)` of Definition 3 for the
//!   linear array and the mesh;
//! * [`partition`] — machine checking of Definition 4 (topological
//!   partition), Definition 5 (convexity) and preboundaries `Γ_in(U)`;
//! * [`separator`] — Definition 6 ((g(x), δ)-topological separator),
//!   with the space/time recurrences of Propositions 2 and 3;
//! * [`schedule`] — refinement of a topological partition into a
//!   topological sorting of individual vertices.
//!
//! The simulation engines of `bsmp-sim` use the geometry crate's analytic
//! decompositions directly for speed; this crate is the *specification*
//! they are tested against.

pub mod dag1;
pub mod dag2;
pub mod partition;
pub mod schedule;
pub mod separator;

pub use dag1::Dag1;
pub use dag2::Dag2;
pub use partition::{preboundary1, preboundary2, PartitionError};
pub use separator::{SeparatorSpec, SpaceTimeBounds};
