//! `G_T(M_2)` — the computation dag of a `T`-step mesh run
//! (Definition 3, with `H` the `√n × √n` mesh of Definition 2).

use bsmp_geometry::{IBox, Pt3};

/// The dag `G_T(H)` for the `side × side` square mesh: vertices
/// `((i, j), t)`; arcs from a vertex and its 4 mesh neighbors at `t - 1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dag2 {
    /// Mesh side (`√n` in the paper's notation).
    pub side: i64,
    /// Number of computation steps.
    pub t: i64,
}

impl Dag2 {
    pub fn new(side: i64, t: i64) -> Self {
        assert!(side >= 1 && t >= 0);
        Dag2 { side, t }
    }

    pub fn vertex_box(&self) -> IBox {
        IBox::computation(self.side, self.t)
    }

    /// The box of computed vertices only (`t ≥ 1`).
    pub fn computed_box(&self) -> IBox {
        IBox::new(0, self.side, 0, self.side, 1, self.t + 1)
    }

    #[inline]
    pub fn contains(&self, p: Pt3) -> bool {
        0 <= p.x && p.x < self.side && 0 <= p.y && p.y < self.side && 0 <= p.t && p.t <= self.t
    }

    #[inline]
    pub fn is_input(&self, p: Pt3) -> bool {
        self.contains(p) && p.t == 0
    }

    pub fn preds(&self, p: Pt3) -> Vec<Pt3> {
        if p.t == 0 {
            return Vec::new();
        }
        p.preds()
            .into_iter()
            .filter(|q| self.contains(*q))
            .collect()
    }

    pub fn succs(&self, p: Pt3) -> Vec<Pt3> {
        p.succs()
            .into_iter()
            .filter(|q| self.contains(*q))
            .collect()
    }

    /// Total vertex count `side² (T + 1)`.
    pub fn len(&self) -> i64 {
        self.side * self.side * (self.t + 1)
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_vertex_has_five_preds() {
        let d = Dag2::new(5, 5);
        assert_eq!(d.preds(Pt3::new(2, 2, 3)).len(), 5);
    }

    #[test]
    fn corner_vertex_has_three_preds() {
        let d = Dag2::new(5, 5);
        assert_eq!(d.preds(Pt3::new(0, 0, 1)).len(), 3);
    }

    #[test]
    fn edge_vertex_has_four_preds() {
        let d = Dag2::new(5, 5);
        assert_eq!(d.preds(Pt3::new(0, 2, 1)).len(), 4);
    }

    #[test]
    fn counts() {
        let d = Dag2::new(3, 2);
        assert_eq!(d.len(), 27);
        assert_eq!(d.vertex_box().volume(), 27);
        assert_eq!(d.computed_box().volume(), 18);
    }
}
