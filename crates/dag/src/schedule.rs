//! Refinement of topological partitions into vertex schedules.
//!
//! "A topological partition of `U` can be refined into a topological
//! sorting of `U`" (Section 3.2) — concatenating the pieces and sorting
//! each piece by time yields a legal execution order.

use bsmp_geometry::{Pt2, Pt3};
use std::collections::HashSet;

/// Concatenate the pieces of an ordered partition, sorting each piece
/// internally by time (a valid intra-piece order, since all dag arcs
/// advance `t` by one).
pub fn refine1(pieces: &[Vec<Pt2>]) -> Vec<Pt2> {
    let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for piece in pieces {
        let mut p = piece.clone();
        p.sort(); // Pt2 orders by (t, x)
        out.extend(p);
    }
    out
}

/// As [`refine1`] for the mesh dag.
pub fn refine2(pieces: &[Vec<Pt3>]) -> Vec<Pt3> {
    let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for piece in pieces {
        let mut p = piece.clone();
        p.sort();
        out.extend(p);
    }
    out
}

/// Is `order` a topological sorting of its own vertex set?  Every in-set
/// predecessor of a vertex must appear earlier.
pub fn is_topological_order1(order: &[Pt2]) -> bool {
    let all: HashSet<Pt2> = order.iter().copied().collect();
    let mut done: HashSet<Pt2> = HashSet::with_capacity(order.len());
    for p in order {
        for q in p.preds() {
            if all.contains(&q) && !done.contains(&q) {
                return false;
            }
        }
        done.insert(*p);
    }
    true
}

/// As [`is_topological_order1`] for the mesh dag.
pub fn is_topological_order2(order: &[Pt3]) -> bool {
    let all: HashSet<Pt3> = order.iter().copied().collect();
    let mut done: HashSet<Pt3> = HashSet::with_capacity(order.len());
    for p in order {
        for q in p.preds() {
            if all.contains(&q) && !done.contains(&q) {
                return false;
            }
        }
        done.insert(*p);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_geometry::{Diamond, Domain2};

    #[test]
    fn diamond_partition_refines_to_topological_order() {
        let d = Diamond::new(0, 0, 8);
        let pieces: Vec<Vec<Pt2>> = d.children().iter().map(|c| c.points()).collect();
        let order = refine1(&pieces);
        assert_eq!(order.len() as i64, d.volume());
        assert!(is_topological_order1(&order));
    }

    #[test]
    fn recursive_refinement_still_topological() {
        let d = Diamond::new(0, 0, 8);
        let mut pieces = Vec::new();
        for c in d.children() {
            for cc in c.children() {
                pieces.push(cc.points());
            }
        }
        let order = refine1(&pieces);
        assert!(is_topological_order1(&order));
    }

    #[test]
    fn octa_partition_refines_to_topological_order() {
        let p = Domain2::octahedron(0, 0, 0, 4);
        let pieces: Vec<Vec<Pt3>> = p.children().iter().map(|c| c.points()).collect();
        let order = refine2(&pieces);
        assert_eq!(order.len() as i64, p.volume());
        assert!(is_topological_order2(&order));
    }

    #[test]
    fn bad_order_detected() {
        let d = Diamond::new(0, 0, 2);
        let mut order = d.points();
        order.reverse();
        assert!(!is_topological_order1(&order));
    }

    #[test]
    fn bad_order_detected_2d() {
        let p = Domain2::octahedron(0, 0, 0, 2);
        let mut order = p.points();
        order.reverse();
        assert!(!is_topological_order2(&order));
    }
}
