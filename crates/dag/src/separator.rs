//! Definition 6 — `(g(x), δ)`-topological separators — together with the
//! space/time recurrences of Propositions 2 and 3.
//!
//! Proposition 2 (execution of a topological partition `U₁ … U_q` on an
//! `f(x)`-H-RAM):
//!
//! ```text
//! S(U) ≤ max_i S(U_i) + P(U),            P(U) = Σ_i |Γ_in(U_i)|
//! T(U) ≤ Σ_i T(U_i) + 4 f(S(U)) P(U)
//! ```
//!
//! Proposition 3 (for a `(c x^γ, δ)`-separator executed on an
//! `(a x^α)`-H-RAM with `0 < α ≤ (1-γ)/γ ≤ 1`):
//!
//! ```text
//! σ(k) ≤ σ₀ k^γ,        σ₀ = q c δ^γ / (1 - δ^γ)
//! τ(k) ≤ τ₀ k log k,    τ₀ = 4 q a σ₀^α c δ^γ / log(1/δ)
//! ```

/// The parameters of a `(c·x^γ, δ)`-topological separator (Definition 6)
/// for a family of convex sets: every member of size `> 1` has an ordered
/// partition into at most `q` pieces, each of size at most `δ·|U|`, each
/// again in the family, and `|Γ_in(U)| ≤ c·|U|^γ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeparatorSpec {
    /// Preboundary constant `c` in `g(x) = c·x^γ`.
    pub c: f64,
    /// Preboundary exponent `γ` (`1/2 ≤ γ < 1`).
    pub gamma: f64,
    /// Shrink factor `δ` (`0 < δ < 1`).
    pub delta: f64,
    /// Maximum number of pieces `q`.
    pub q: usize,
}

impl SeparatorSpec {
    /// The diamond separator of Theorem 2's proof:
    /// `Γ_in(D(r)) ≤ 2r = 2√2·|D|^{1/2}`, four pieces of size `|D|/4`.
    pub fn diamond() -> Self {
        SeparatorSpec {
            c: 2.0 * 2f64.sqrt(),
            gamma: 0.5,
            delta: 0.25,
            q: 4,
        }
    }

    /// The octahedron/tetrahedron separator of Theorem 5's proof:
    /// pieces of size at most `|U|/2`, `q = 14`, `Γ_in ≤ 2·3^{2/3}|U|^{2/3}`.
    pub fn octa_tetra() -> Self {
        SeparatorSpec {
            c: 2.0 * 3f64.powf(2.0 / 3.0),
            gamma: 2.0 / 3.0,
            delta: 0.5,
            q: 14,
        }
    }

    /// Preboundary bound `g(x) = c·x^γ`.
    pub fn g(&self, x: f64) -> f64 {
        self.c * x.powf(self.gamma)
    }

    /// Verify the admissibility condition of Proposition 3 against an
    /// `(a·x^α)`-H-RAM: `0 < α ≤ (1-γ)/γ ≤ 1`.
    pub fn admissible(&self, alpha: f64) -> bool {
        alpha > 0.0
            && alpha <= (1.0 - self.gamma) / self.gamma
            && (1.0 - self.gamma) / self.gamma <= 1.0
    }
}

/// The closed-form bounds of Proposition 3 for executing a set of size
/// `k` with separator `spec` on an `(a·x^α)`-H-RAM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceTimeBounds {
    /// `σ₀` with `σ(k) ≤ σ₀·k^γ`.
    pub sigma0: f64,
    /// `τ₀` with `τ(k) ≤ τ₀·k·log k`.
    pub tau0: f64,
    /// The exponent `γ` of the space bound.
    pub gamma: f64,
}

impl SpaceTimeBounds {
    /// Instantiate Proposition 3.
    ///
    /// # Panics
    /// If the admissibility condition fails.
    pub fn from_spec(spec: &SeparatorSpec, a: f64, alpha: f64) -> Self {
        assert!(
            spec.admissible(alpha),
            "Proposition 3 requires 0 < α ≤ (1-γ)/γ ≤ 1"
        );
        let dg = spec.delta.powf(spec.gamma);
        let sigma0 = spec.q as f64 * spec.c * dg / (1.0 - dg);
        let tau0 =
            4.0 * spec.q as f64 * a * sigma0.powf(alpha) * spec.c * dg / (1.0 / spec.delta).log2();
        SpaceTimeBounds {
            sigma0,
            tau0,
            gamma: spec.gamma,
        }
    }

    /// The space bound `σ(k) = σ₀ k^γ` (Proposition 3 eq. (3)).
    pub fn space(&self, k: f64) -> f64 {
        self.sigma0 * k.powf(self.gamma)
    }

    /// The time bound `τ(k) = τ₀ k log k` (Proposition 3 eq. (4)).
    pub fn time(&self, k: f64) -> f64 {
        self.tau0 * k * logp2(k)
    }
}

/// The paper's footnote log: `log(x) := log₂(x + 2) ≥ 1` for `x ≥ 0`.
pub fn logp2(x: f64) -> f64 {
    (x + 2.0).log2()
}

/// Numerically iterate the Proposition-2 recurrences — used to
/// cross-check the closed forms of Proposition 3.
///
/// The worst case compatible with the partition property `Σ|U_i| = |U|`
/// and `|U_i| ≤ δ|U|` is `1/δ` children of size `δk` each, while the
/// total preboundary `P(U)` is still bounded by `q·g(δk)` pieces.
pub fn iterate_recurrence(spec: &SeparatorSpec, a: f64, alpha: f64, k: f64) -> (f64, f64) {
    if k <= 1.0 {
        return (1.0, 1.0);
    }
    let (s_child, t_child) = iterate_recurrence(spec, a, alpha, spec.delta * k);
    let p = spec.q as f64 * spec.g(spec.delta * k);
    let s = s_child + p;
    let f_s = a * s.powf(alpha);
    let t = (1.0 / spec.delta) * t_child + 4.0 * f_s * p;
    (s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_spec_is_admissible_for_d1() {
        // Theorem 2 executes diamonds on an (x)-H-RAM: α = 1, γ = 1/2.
        assert!(SeparatorSpec::diamond().admissible(1.0));
    }

    #[test]
    fn octa_spec_is_admissible_for_d2() {
        // Theorem 5 executes octahedra on an (x^{1/2})-H-RAM: α = 1/2, γ = 2/3.
        assert!(SeparatorSpec::octa_tetra().admissible(0.5));
        assert!(!SeparatorSpec::octa_tetra().admissible(0.75));
    }

    #[test]
    fn recurrence_stays_below_closed_form() {
        let spec = SeparatorSpec::diamond();
        let b = SpaceTimeBounds::from_spec(&spec, 1.0, 1.0);
        for k in [64.0, 256.0, 1024.0, 16384.0] {
            let (s, t) = iterate_recurrence(&spec, 1.0, 1.0, k);
            assert!(s <= b.space(k) * 1.01, "space k={k}: {s} vs {}", b.space(k));
            assert!(t <= b.time(k) * 1.5, "time k={k}: {t} vs {}", b.time(k));
        }
    }

    #[test]
    fn recurrence_2d_below_closed_form() {
        let spec = SeparatorSpec::octa_tetra();
        let b = SpaceTimeBounds::from_spec(&spec, 1.0, 0.5);
        for k in [100.0, 1000.0, 100_000.0] {
            let (s, t) = iterate_recurrence(&spec, 1.0, 0.5, k);
            assert!(s <= b.space(k) * 1.01, "space k={k}");
            assert!(t <= b.time(k) * 2.0, "time k={k}: {t} vs {}", b.time(k));
        }
    }

    #[test]
    fn space_grows_sublinearly() {
        let b = SpaceTimeBounds::from_spec(&SeparatorSpec::diamond(), 1.0, 1.0);
        // σ(4k)/σ(k) = 2 for γ = 1/2.
        let r = b.space(4096.0) / b.space(1024.0);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn time_is_klogk() {
        let b = SpaceTimeBounds::from_spec(&SeparatorSpec::diamond(), 1.0, 1.0);
        let r = b.time(2048.0) / b.time(1024.0);
        assert!(r > 2.0 && r < 2.3, "k log k doubling ratio, got {r}");
    }

    #[test]
    fn logp2_matches_footnote() {
        assert_eq!(logp2(0.0), 1.0);
        assert_eq!(logp2(2.0), 2.0);
        assert!(logp2(1e6) > 19.0);
    }

    #[test]
    #[should_panic(expected = "Proposition 3")]
    fn inadmissible_panics() {
        SpaceTimeBounds::from_spec(&SeparatorSpec::octa_tetra(), 1.0, 1.0);
    }
}
