//! `G_T(M_1)` — the computation dag of a `T`-step linear-array run
//! (Definition 3, with `H` the path graph of Definition 2).

use bsmp_geometry::{IRect, Pt2};

/// The dag `G_T(H)` for the `n`-node linear array: vertices
/// `(v, t)` with `v ∈ [0, n)`, `t ∈ [0, T]`; arcs
/// `((u, t-1), (v, t))` for `u = v` or `|u - v| = 1`.
///
/// Vertices with `t = 0` are the input vertices (initial memory
/// contents); the vertex *count* is `n·(T+1)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dag1 {
    /// Array length (the paper's machine volume `n`).
    pub n: i64,
    /// Number of computation steps `T`.
    pub t: i64,
}

impl Dag1 {
    pub fn new(n: i64, t: i64) -> Self {
        assert!(n >= 1 && t >= 0);
        Dag1 { n, t }
    }

    /// The space-time box containing all vertices (including inputs).
    pub fn vertex_box(&self) -> IRect {
        IRect::computation(self.n, self.t)
    }

    /// The box of *computed* vertices only (`t ≥ 1`) — the set the
    /// simulation engines must execute.
    pub fn computed_box(&self) -> IRect {
        IRect::new(0, self.n, 1, self.t + 1)
    }

    #[inline]
    pub fn contains(&self, p: Pt2) -> bool {
        0 <= p.x && p.x < self.n && 0 <= p.t && p.t <= self.t
    }

    /// Is `p` an input vertex?
    #[inline]
    pub fn is_input(&self, p: Pt2) -> bool {
        self.contains(p) && p.t == 0
    }

    /// In-dag predecessors of `p` (up to 3; 2 at the array ends, 0 for
    /// inputs).
    pub fn preds(&self, p: Pt2) -> Vec<Pt2> {
        if p.t == 0 {
            return Vec::new();
        }
        p.preds()
            .into_iter()
            .filter(|q| self.contains(*q))
            .collect()
    }

    /// In-dag successors of `p`.
    pub fn succs(&self, p: Pt2) -> Vec<Pt2> {
        p.succs()
            .into_iter()
            .filter(|q| self.contains(*q))
            .collect()
    }

    /// Total vertex count `n (T + 1)`.
    pub fn len(&self) -> i64 {
        self.n * (self.t + 1)
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_vertex_has_three_preds() {
        let d = Dag1::new(8, 8);
        assert_eq!(d.preds(Pt2::new(4, 3)).len(), 3);
    }

    #[test]
    fn boundary_vertex_has_two_preds() {
        let d = Dag1::new(8, 8);
        assert_eq!(d.preds(Pt2::new(0, 3)).len(), 2);
        assert_eq!(d.preds(Pt2::new(7, 3)).len(), 2);
    }

    #[test]
    fn inputs_have_no_preds() {
        let d = Dag1::new(4, 4);
        for x in 0..4 {
            assert!(d.preds(Pt2::new(x, 0)).is_empty());
            assert!(d.is_input(Pt2::new(x, 0)));
        }
    }

    #[test]
    fn last_row_has_no_succs() {
        let d = Dag1::new(4, 4);
        assert!(d.succs(Pt2::new(2, 4)).is_empty());
    }

    #[test]
    fn vertex_count() {
        let d = Dag1::new(5, 3);
        assert_eq!(d.len(), 5 * 4);
        assert_eq!(d.vertex_box().volume(), d.len());
        assert_eq!(d.computed_box().volume(), 5 * 3);
    }
}
