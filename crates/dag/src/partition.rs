//! Machine-checking of the Section-3 definitions:
//!
//! * `Γ_in(U)` — the preboundary (Section 3.2);
//! * Definition 4 — topological partitions;
//! * Definition 5 — convex vertex sets.
//!
//! These checkers work on *explicit* point sets and are meant for tests
//! and validation harnesses; the engines use the analytic geometry.

use bsmp_geometry::{Pt2, Pt3};
use std::collections::HashSet;

/// Why a candidate ordered partition fails Definition 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A point appears in two pieces (indices given).
    Overlap(usize, usize),
    /// The pieces do not cover the set.
    MissingPoints(usize),
    /// Piece `piece` has a preboundary point that is neither in
    /// `Γ_in(U)` nor in an earlier piece.
    OrderViolation { piece: usize },
}

/// `Γ_in(U)` for a `d = 1` point set, within the dag `dag_contains`
/// describes: all in-dag predecessors of members that are not members.
pub fn preboundary1(
    points: &[Pt2],
    contains: impl Fn(Pt2) -> bool,
    dag_contains: impl Fn(Pt2) -> bool,
) -> Vec<Pt2> {
    let mut out = HashSet::new();
    for p in points {
        if p.t == 0 {
            continue; // inputs have no predecessors
        }
        for q in p.preds() {
            if dag_contains(q) && !contains(q) {
                out.insert(q);
            }
        }
    }
    let mut v: Vec<Pt2> = out.into_iter().collect();
    v.sort();
    v
}

/// `Γ_in(U)` for a `d = 2` point set.
pub fn preboundary2(
    points: &[Pt3],
    contains: impl Fn(Pt3) -> bool,
    dag_contains: impl Fn(Pt3) -> bool,
) -> Vec<Pt3> {
    let mut out = HashSet::new();
    for p in points {
        if p.t == 0 {
            continue;
        }
        for q in p.preds() {
            if dag_contains(q) && !contains(q) {
                out.insert(q);
            }
        }
    }
    let mut v: Vec<Pt3> = out.into_iter().collect();
    v.sort();
    v
}

/// Check Definition 4 for an ordered partition of `universe` (a `d = 1`
/// vertex set): the pieces must partition it, and each piece's
/// preboundary must lie in `Γ_in(universe) ∪ (earlier pieces)`.
///
/// `dag_contains` delimits the ambient dag (predecessors outside it do
/// not exist).
pub fn check_topological_partition1(
    universe: &[Pt2],
    pieces: &[Vec<Pt2>],
    dag_contains: impl Fn(Pt2) -> bool + Copy,
) -> Result<(), PartitionError> {
    let uset: HashSet<Pt2> = universe.iter().copied().collect();
    // Partition property.
    let mut owner: std::collections::HashMap<Pt2, usize> = std::collections::HashMap::new();
    for (i, piece) in pieces.iter().enumerate() {
        for p in piece {
            if !uset.contains(p) {
                return Err(PartitionError::MissingPoints(i));
            }
            if let Some(j) = owner.insert(*p, i) {
                return Err(PartitionError::Overlap(j, i));
            }
        }
    }
    if owner.len() != uset.len() {
        return Err(PartitionError::MissingPoints(usize::MAX));
    }
    // Ordering property.
    let gamma_u: HashSet<Pt2> = preboundary1(universe, |p| uset.contains(&p), dag_contains)
        .into_iter()
        .collect();
    let mut earlier: HashSet<Pt2> = HashSet::new();
    for (i, piece) in pieces.iter().enumerate() {
        let pset: HashSet<Pt2> = piece.iter().copied().collect();
        for g in preboundary1(piece, |p| pset.contains(&p), dag_contains) {
            if !gamma_u.contains(&g) && !earlier.contains(&g) {
                return Err(PartitionError::OrderViolation { piece: i });
            }
        }
        earlier.extend(piece.iter().copied());
    }
    Ok(())
}

/// Check Definition 4 for a `d = 2` ordered partition.
pub fn check_topological_partition2(
    universe: &[Pt3],
    pieces: &[Vec<Pt3>],
    dag_contains: impl Fn(Pt3) -> bool + Copy,
) -> Result<(), PartitionError> {
    let uset: HashSet<Pt3> = universe.iter().copied().collect();
    let mut owner: std::collections::HashMap<Pt3, usize> = std::collections::HashMap::new();
    for (i, piece) in pieces.iter().enumerate() {
        for p in piece {
            if !uset.contains(p) {
                return Err(PartitionError::MissingPoints(i));
            }
            if let Some(j) = owner.insert(*p, i) {
                return Err(PartitionError::Overlap(j, i));
            }
        }
    }
    if owner.len() != uset.len() {
        return Err(PartitionError::MissingPoints(usize::MAX));
    }
    let gamma_u: HashSet<Pt3> = preboundary2(universe, |p| uset.contains(&p), dag_contains)
        .into_iter()
        .collect();
    let mut earlier: HashSet<Pt3> = HashSet::new();
    for (i, piece) in pieces.iter().enumerate() {
        let pset: HashSet<Pt3> = piece.iter().copied().collect();
        for g in preboundary2(piece, |p| pset.contains(&p), dag_contains) {
            if !gamma_u.contains(&g) && !earlier.contains(&g) {
                return Err(PartitionError::OrderViolation { piece: i });
            }
        }
        earlier.extend(piece.iter().copied());
    }
    Ok(())
}

/// Definition 5 (convexity), checked by brute force: `U` is convex iff
/// whenever `u, v ∈ U`, every vertex on every dag path from `u` to `v`
/// is in `U`.  Equivalent local form used here: there is no path
/// `u → w₁ → … → w_k → v` with `u, v ∈ U` and all `w_i ∉ U`.
///
/// Intended for small sets (tests); cost is O(|reachable region|²)-ish.
pub fn is_convex1(points: &[Pt2], dag_contains: impl Fn(Pt2) -> bool + Copy) -> bool {
    let uset: HashSet<Pt2> = points.iter().copied().collect();
    // Forward BFS from U through non-U vertices; if any non-U vertex that
    // is reachable from U can reach U again, convexity fails.  Since all
    // arcs increase t by 1, layer the search by t.
    let mut outside_reachable: HashSet<Pt2> = HashSet::new();
    let t_max = points.iter().map(|p| p.t).max().unwrap_or(0);
    let mut frontier: Vec<Pt2> = points.to_vec();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for p in frontier {
            if p.t > t_max {
                continue;
            }
            for s in p.succs() {
                if !dag_contains(s) {
                    continue;
                }
                if uset.contains(&s) {
                    // A path re-entering U: fine if it never left.
                    if outside_reachable.contains(&p) {
                        return false;
                    }
                } else if outside_reachable.insert(s) {
                    next.push(s);
                }
            }
        }
        frontier = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_geometry::{Diamond, IRect};

    fn all(r: IRect) -> Vec<Pt2> {
        r.points()
    }

    #[test]
    fn row_partition_is_topological() {
        let rect = IRect::new(0, 4, 0, 4);
        let pieces: Vec<Vec<Pt2>> = (0..4)
            .map(|t| (0..4).map(|x| Pt2::new(x, t)).collect())
            .collect();
        check_topological_partition1(&all(rect), &pieces, |p| rect.contains(p)).unwrap();
    }

    #[test]
    fn reversed_rows_violate_order() {
        let rect = IRect::new(0, 4, 0, 4);
        let pieces: Vec<Vec<Pt2>> = (0..4)
            .rev()
            .map(|t| (0..4).map(|x| Pt2::new(x, t)).collect())
            .collect();
        let err =
            check_topological_partition1(&all(rect), &pieces, |p| rect.contains(p)).unwrap_err();
        assert!(matches!(err, PartitionError::OrderViolation { piece: 0 }));
    }

    #[test]
    fn column_partition_of_a_square_is_not_topological() {
        // The paper (Section 3.2): "if the dag under consideration is a
        // cubic lattice, a partition of such dag into cubes is not a
        // topological partition".  The 1-D analogue: vertical strips of a
        // square are not topologically ordered, whichever order is chosen:
        // information flows both ways between adjacent strips.
        let rect = IRect::new(0, 4, 0, 4);
        let pieces: Vec<Vec<Pt2>> = (0..2)
            .map(|s| rect.points().into_iter().filter(|p| p.x / 2 == s).collect())
            .collect();
        assert!(
            check_topological_partition1(&all(rect), &pieces, |p| rect.contains(p)).is_err(),
            "strips left-to-right"
        );
        let rev: Vec<Vec<Pt2>> = pieces.into_iter().rev().collect();
        assert!(
            check_topological_partition1(&all(rect), &rev, |p| rect.contains(p)).is_err(),
            "strips right-to-left"
        );
    }

    #[test]
    fn overlap_detected() {
        let rect = IRect::new(0, 2, 0, 1);
        let pieces = vec![vec![Pt2::new(0, 0), Pt2::new(1, 0)], vec![Pt2::new(1, 0)]];
        let err =
            check_topological_partition1(&all(rect), &pieces, |p| rect.contains(p)).unwrap_err();
        assert_eq!(err, PartitionError::Overlap(0, 1));
    }

    #[test]
    fn missing_points_detected() {
        let rect = IRect::new(0, 2, 0, 1);
        let pieces = vec![vec![Pt2::new(0, 0)]];
        assert!(matches!(
            check_topological_partition1(&all(rect), &pieces, |p| rect.contains(p)),
            Err(PartitionError::MissingPoints(_))
        ));
    }

    #[test]
    fn diamond_children_pass_full_check() {
        let d = Diamond::new(8, 8, 4);
        let rect = IRect::new(0, 32, 0, 32);
        let pieces: Vec<Vec<Pt2>> = d.children().iter().map(|c| c.points()).collect();
        check_topological_partition1(&d.points(), &pieces, |p| rect.contains(p)).unwrap();
    }

    #[test]
    fn diamonds_are_convex() {
        let rect = IRect::new(-20, 20, -20, 20);
        for h in 1..5 {
            let d = Diamond::new(0, 0, h);
            assert!(is_convex1(&d.points(), |p| rect.contains(p)), "h={h}");
        }
    }

    #[test]
    fn split_diamond_is_not_convex() {
        // Remove the center column: paths leave and re-enter.
        let rect = IRect::new(-20, 20, -20, 20);
        let d = Diamond::new(0, 0, 3);
        let holed: Vec<Pt2> = d.points().into_iter().filter(|p| p.x != 0).collect();
        assert!(!is_convex1(&holed, |p| rect.contains(p)));
    }

    #[test]
    fn preboundary_respects_dag_boundary() {
        // Points on the dag edge have fewer in-dag predecessors.
        let rect = IRect::new(0, 4, 0, 4);
        let piece = vec![Pt2::new(0, 1)];
        let g = preboundary1(&piece, |p| p == Pt2::new(0, 1), |p| rect.contains(p));
        assert_eq!(g, vec![Pt2::new(0, 0), Pt2::new(1, 0)]);
    }
}
