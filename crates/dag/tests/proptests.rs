//! Property-based tests of the Definition-4 checker and the separator
//! recurrences.

use bsmp_dag::partition::{check_topological_partition1, preboundary1, PartitionError};
use bsmp_dag::schedule::{is_topological_order1, refine1};
use bsmp_dag::separator::{iterate_recurrence, SeparatorSpec, SpaceTimeBounds};
use bsmp_geometry::{diamond_cover, IRect, Pt2};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn row_major_partitions_always_pass(w in 1i64..10, t in 1i64..10) {
        let rect = IRect::new(0, w, 0, t);
        let pieces: Vec<Vec<Pt2>> =
            (0..t).map(|r| (0..w).map(|x| Pt2::new(x, r)).collect()).collect();
        prop_assert!(check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)).is_ok());
    }

    #[test]
    fn shuffled_piece_order_fails_unless_consistent(w in 2i64..8, t in 3i64..8, swap_a in 0usize..8, swap_b in 0usize..8) {
        // Swapping two *time rows* always breaks Definition 4 (row r+1
        // depends on row r).
        let rect = IRect::new(0, w, 0, t);
        let mut pieces: Vec<Vec<Pt2>> =
            (0..t).map(|r| (0..w).map(|x| Pt2::new(x, r)).collect()).collect();
        let a = swap_a % pieces.len();
        let b = swap_b % pieces.len();
        prop_assume!(a != b);
        pieces.swap(a, b);
        prop_assert!(check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)).is_err());
    }

    #[test]
    fn missing_point_always_detected(w in 2i64..8, t in 2i64..8, dx in 0i64..8, dt in 0i64..8) {
        let rect = IRect::new(0, w, 0, t);
        let hole = Pt2::new(dx % w, dt % t);
        let pieces: Vec<Vec<Pt2>> = (0..t)
            .map(|r| (0..w).map(|x| Pt2::new(x, r)).filter(|p| *p != hole).collect())
            .collect();
        prop_assert!(matches!(
            check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)),
            Err(PartitionError::MissingPoints(_))
        ));
    }

    #[test]
    fn duplicated_point_always_detected(w in 2i64..8, t in 2i64..8) {
        let rect = IRect::new(0, w, 0, t);
        let mut pieces: Vec<Vec<Pt2>> =
            (0..t).map(|r| (0..w).map(|x| Pt2::new(x, r)).collect()).collect();
        pieces[1].push(Pt2::new(0, 0)); // also in piece 0
        prop_assert!(matches!(
            check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)),
            Err(PartitionError::Overlap(_, _))
        ));
    }

    #[test]
    fn refinement_of_valid_cover_is_topological_order(w in 2i64..12, t in 2i64..12,
                                                      h in prop_oneof![Just(1i64), Just(2)]) {
        let rect = IRect::new(0, w, 1, t + 1);
        let pieces: Vec<Vec<Pt2>> =
            diamond_cover(rect, h, Pt2::new(0, 0)).iter().map(|c| c.points()).collect();
        prop_assert!(is_topological_order1(&refine1(&pieces)));
    }

    #[test]
    fn preboundary_size_bounded_by_surface(cx in -5i64..5, ct in -5i64..5, h in 1i64..6) {
        // For diamonds: |Γ_in| = 4h + 1 ≤ 2·r with r = 2h.
        let d = bsmp_geometry::Diamond::new(cx, ct, h);
        let set: HashSet<Pt2> = d.points().into_iter().collect();
        let g = preboundary1(&d.points(), |p| set.contains(&p), |_| true);
        prop_assert!(g.len() as i64 <= 4 * h + 1);
    }

    #[test]
    fn proposition3_space_bound_holds_numerically(e in 6u32..18) {
        let k = (1u64 << e) as f64;
        let spec = SeparatorSpec::diamond();
        let b = SpaceTimeBounds::from_spec(&spec, 1.0, 1.0);
        let (s, t) = iterate_recurrence(&spec, 1.0, 1.0, k);
        prop_assert!(s <= b.space(k) * 1.05, "σ({k})={s} vs {}", b.space(k));
        prop_assert!(t <= b.time(k) * 1.6, "τ({k})={t} vs {}", b.time(k));
    }

    #[test]
    fn separator_g_is_monotone(x in 1.0f64..1e9, y in 1.0f64..1e9) {
        let spec = SeparatorSpec::octa_tetra();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(spec.g(lo) <= spec.g(hi));
    }
}
