//! Property-based tests of the Definition-4 checker and the separator
//! recurrences, driven by the in-repo seeded [`Rng64`] case generator.

use bsmp_dag::partition::{check_topological_partition1, preboundary1, PartitionError};
use bsmp_dag::schedule::{is_topological_order1, refine1};
use bsmp_dag::separator::{iterate_recurrence, SeparatorSpec, SpaceTimeBounds};
use bsmp_faults::rng::Rng64;
use bsmp_geometry::{diamond_cover, IRect, Pt2};
use std::collections::HashSet;

const CASES: u64 = 48;

#[test]
fn row_major_partitions_always_pass() {
    let mut rng = Rng64::new(0xD001);
    for _ in 0..CASES {
        let w = rng.range_i64(1, 10);
        let t = rng.range_i64(1, 10);
        let rect = IRect::new(0, w, 0, t);
        let pieces: Vec<Vec<Pt2>> = (0..t)
            .map(|r| (0..w).map(|x| Pt2::new(x, r)).collect())
            .collect();
        assert!(
            check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)).is_ok()
        );
    }
}

#[test]
fn shuffled_piece_order_fails_unless_consistent() {
    let mut rng = Rng64::new(0xD002);
    for _ in 0..CASES {
        let w = rng.range_i64(2, 8);
        let t = rng.range_i64(3, 8);
        let swap_a = rng.below(8) as usize;
        let swap_b = rng.below(8) as usize;
        // Swapping two *time rows* always breaks Definition 4 (row r+1
        // depends on row r).
        let rect = IRect::new(0, w, 0, t);
        let mut pieces: Vec<Vec<Pt2>> = (0..t)
            .map(|r| (0..w).map(|x| Pt2::new(x, r)).collect())
            .collect();
        let a = swap_a % pieces.len();
        let b = swap_b % pieces.len();
        if a == b {
            continue;
        }
        pieces.swap(a, b);
        assert!(
            check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)).is_err()
        );
    }
}

#[test]
fn missing_point_always_detected() {
    let mut rng = Rng64::new(0xD003);
    for _ in 0..CASES {
        let w = rng.range_i64(2, 8);
        let t = rng.range_i64(2, 8);
        let dx = rng.range_i64(0, 8);
        let dt = rng.range_i64(0, 8);
        let rect = IRect::new(0, w, 0, t);
        let hole = Pt2::new(dx % w, dt % t);
        let pieces: Vec<Vec<Pt2>> = (0..t)
            .map(|r| {
                (0..w)
                    .map(|x| Pt2::new(x, r))
                    .filter(|p| *p != hole)
                    .collect()
            })
            .collect();
        assert!(matches!(
            check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)),
            Err(PartitionError::MissingPoints(_))
        ));
    }
}

#[test]
fn duplicated_point_always_detected() {
    let mut rng = Rng64::new(0xD004);
    for _ in 0..CASES {
        let w = rng.range_i64(2, 8);
        let t = rng.range_i64(2, 8);
        let rect = IRect::new(0, w, 0, t);
        let mut pieces: Vec<Vec<Pt2>> = (0..t)
            .map(|r| (0..w).map(|x| Pt2::new(x, r)).collect())
            .collect();
        pieces[1].push(Pt2::new(0, 0)); // also in piece 0
        assert!(matches!(
            check_topological_partition1(&rect.points(), &pieces, |p| rect.contains(p)),
            Err(PartitionError::Overlap(_, _))
        ));
    }
}

#[test]
fn refinement_of_valid_cover_is_topological_order() {
    let mut rng = Rng64::new(0xD005);
    for _ in 0..CASES {
        let w = rng.range_i64(2, 12);
        let t = rng.range_i64(2, 12);
        let h = [1i64, 2][rng.below(2) as usize];
        let rect = IRect::new(0, w, 1, t + 1);
        let pieces: Vec<Vec<Pt2>> = diamond_cover(rect, h, Pt2::new(0, 0))
            .iter()
            .map(|c| c.points())
            .collect();
        assert!(is_topological_order1(&refine1(&pieces)));
    }
}

#[test]
fn preboundary_size_bounded_by_surface() {
    let mut rng = Rng64::new(0xD006);
    for _ in 0..CASES {
        let cx = rng.range_i64(-5, 5);
        let ct = rng.range_i64(-5, 5);
        let h = rng.range_i64(1, 6);
        // For diamonds: |Γ_in| = 4h + 1 ≤ 2·r with r = 2h.
        let d = bsmp_geometry::Diamond::new(cx, ct, h);
        let set: HashSet<Pt2> = d.points().into_iter().collect();
        let g = preboundary1(&d.points(), |p| set.contains(&p), |_| true);
        assert!(g.len() as i64 <= 4 * h + 1);
    }
}

#[test]
fn proposition3_space_bound_holds_numerically() {
    let mut rng = Rng64::new(0xD007);
    for _ in 0..CASES {
        let e = rng.range_u64(6, 18) as u32;
        let k = (1u64 << e) as f64;
        let spec = SeparatorSpec::diamond();
        let b = SpaceTimeBounds::from_spec(&spec, 1.0, 1.0);
        let (s, t) = iterate_recurrence(&spec, 1.0, 1.0, k);
        assert!(s <= b.space(k) * 1.05, "σ({k})={s} vs {}", b.space(k));
        assert!(t <= b.time(k) * 1.6, "τ({k})={t} vs {}", b.time(k));
    }
}

#[test]
fn separator_g_is_monotone() {
    let mut rng = Rng64::new(0xD008);
    for _ in 0..CASES {
        let x = 1.0 + rng.unit_f64() * 1e9;
        let y = 1.0 + rng.unit_f64() * 1e9;
        let spec = SeparatorSpec::octa_tetra();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        assert!(spec.g(lo) <= spec.g(hi));
    }
}
