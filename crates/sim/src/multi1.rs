//! **Theorem 4** — the two-regime multiprocessor simulation of
//! `M_1(n, n, m)` by `M_1(n, p, m)` (Section 4.2).
//!
//! ## Structure
//!
//! * **Memory rearrangement** `π = π₂ ∘ π₁` on the `q = n/s` width-`s`
//!   strips: `π₁` reverses the odd length-`p` segments, `π₂` is the
//!   `(q/p)`-way shuffle.  Afterwards each processor holds one strip of
//!   every segment, initially-consecutive strips are either adjacent or
//!   `n/p` apart, and the strips of one segment map *bijectively* onto
//!   the `p` processors ([`rearrangement`]).  The rearrangement itself is
//!   performed (and charged) as a preprocessing stage.
//!
//! * **Regime 1** — the space-time is covered by diamonds `D(ps)`
//!   (executed sequentially, in topological order).  Before executing a
//!   tile, each strip's private-memory block and each preboundary value
//!   cascades through `log₂(n/(ps))` halving levels: at level `k` the
//!   word is relocated between staging addresses `≈ n·m·2^{-k}/p` and
//!   charged one near-neighbor hop (`n/p`), which is exactly the
//!   `O(n²m/p)`-per-stage accounting the paper derives from the
//!   rearranged layout.  The symmetric scatter runs after the tile.
//!
//! * **Regime 2** — a `D(ps)` tile splits into `2p - 1` rows of `D(s)`
//!   diamonds.  Aligned rows sit inside strips: each diamond is executed
//!   by its strip's processor with the full Theorem-3 recursion (the
//!   per-processor [`DiamondExec`]).  Offset rows straddle strip
//!   boundaries: the *cooperating mode* splits such a diamond
//!   recursively — off-center children go wholly to the left/right
//!   processor, the central chain of leaf diamonds is executed
//!   vertex-by-vertex with each vertex on its own side and `O(s)` words
//!   exchanged across the seam at distance `n/p`.
//!
//! ## Fidelity notes (also in DESIGN.md)
//!
//! * The Regime-1 cascade performs one physical move per word and adds
//!   the per-level staging charges explicitly; the level distances rely
//!   on the rearrangement adjacency properties, which are implemented
//!   and property-tested in [`rearrangement`] rather than re-derived
//!   per word.
//! * In the central band of a shared diamond, operand reads are charged
//!   at the top of the working region (the staging area they physically
//!   occupy) rather than through a per-word address map.

use std::sync::Arc;

use bsmp_machine::{FxHashMap, FxHashSet};

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_geometry::{diamond_cover, ClippedDiamond, IRect, Pt2};
use bsmp_hram::Word;
use bsmp_machine::{
    lease_scratch, linear_guest_time, plan_cache, CoreKind, EventQueue, LinearProgram, MachineSpec,
    PlanKey, ScratchLease, StageClock,
};
use bsmp_trace::{RunMeta, Tracer};

use crate::dnc1::exec1_plan_key;
use crate::error::SimError;
use crate::exec1::{DiamondExec, DiamondPlan};
use crate::report::SimReport;
use crate::zone::ZoneAlloc;
use crate::{settle_scenario, stage_totals};

/// The strip rearrangement `π = π₂ ∘ π₁` of Section 4.2.
pub mod rearrangement {
    /// Slot of strip `j` after the rearrangement, with `q` strips and
    /// `p` processors (`p | q`).
    ///
    /// `π₁` reverses odd segments of length `p`; `π₂` sends segment `i`,
    /// position `r` to slot `r·(q/p) + i`.
    pub fn slot_of(j: usize, q: usize, p: usize) -> usize {
        let seg = j / p;
        let pos = j % p;
        let pos1 = if seg % 2 == 1 { p - 1 - pos } else { pos };
        pos1 * (q / p) + seg
    }

    /// Processor holding strip `j` after the rearrangement.
    pub fn proc_of(j: usize, q: usize, p: usize) -> usize {
        slot_of(j, q, p) / (q / p)
    }

    /// Local slot (within its processor's memory) of strip `j`.
    pub fn local_slot_of(j: usize, q: usize, p: usize) -> usize {
        slot_of(j, q, p) % (q / p)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn is_a_permutation() {
            let (q, p) = (16, 4);
            let mut seen = vec![false; q];
            for j in 0..q {
                let s = slot_of(j, q, p);
                assert!(!seen[s]);
                seen[s] = true;
            }
        }

        #[test]
        fn consecutive_strips_adjacent_or_q_over_p_apart() {
            // The paper's first property: initially consecutive indices
            // are either consecutive or at distance q/p in the
            // rearranged array.
            let (q, p) = (32, 4);
            for j in 0..q - 1 {
                let d =
                    (slot_of(j, q, p) as i64 - slot_of(j + 1, q, p) as i64).unsigned_abs() as usize;
                assert!(d == 1 || d == q / p, "strips {j},{} at distance {d}", j + 1);
            }
        }

        #[test]
        fn each_processor_gets_one_strip_per_segment() {
            // The paper's second property: every segment of I has a
            // member in every processor's region.
            let (q, p) = (32, 8);
            for seg in 0..q / p {
                let procs: bsmp_machine::FxHashSet<usize> =
                    (0..p).map(|r| proc_of(seg * p + r, q, p)).collect();
                assert_eq!(procs.len(), p, "segment {seg} covers all processors");
            }
        }

        #[test]
        fn seam_strips_share_a_processor() {
            // Across a segment boundary, the two adjacent strips are
            // homologous and land on the same processor (so inter-segment
            // shared diamonds need no communication).
            let (q, p) = (32, 4);
            for seg in 0..q / p - 1 {
                let a = proc_of(seg * p + p - 1, q, p);
                let b = proc_of((seg + 1) * p, q, p);
                assert_eq!(a, b, "seam after segment {seg}");
            }
        }
    }
}

/// Tuning/introspection knobs for the multiprocessor engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Multi1Options {
    /// Strip width `s`; `None` selects the paper's `s*` (rounded to a
    /// power of two dividing `n/p`-compatible grids).
    pub strip: Option<u64>,
    /// Execution core: the dense tile loop, or the discrete-event
    /// calendar that drains `D(ps)` tiles by center time.  Reports are
    /// bit-identical either way (the tile cover is emitted in
    /// non-decreasing center-time order, which the calendar replays
    /// verbatim).
    pub core: CoreKind,
}

/// Pick the engine's strip width: the admissible width (`s | n`,
/// `p | n/s`, `s ≥ 2`) closest to the paper's `s*` in log-scale.
/// Returns `None` when no admissible width exists (e.g. prime `n`) —
/// callers fall back to the naive scheme.
pub fn engine_strip(n: u64, m: u64, p: u64) -> Option<u64> {
    let star = bsmp_analytic::optimal_s(n as f64, m as f64, p as f64);
    let mut best: Option<(f64, u64)> = None;
    let mut s = 2u64;
    while s <= n / p.max(1) {
        if s.is_power_of_two() && n.is_multiple_of(s) && (n / s).is_multiple_of(p) {
            let dist = (s as f64 / star).ln().abs();
            if best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, s));
            }
        }
        s += 1;
    }
    best.map(|(_, s)| s)
}

/// Simulate with the paper's optimal strip width, injecting faults per
/// `plan`, with preconditions checked.
pub fn try_simulate_multi1_faulted(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_multi1_opt_faulted(spec, prog, init, steps, Multi1Options::default(), plan)
}

/// Simulate with the paper's optimal strip width, with preconditions
/// checked.
pub fn try_simulate_multi1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_multi1_faulted(spec, prog, init, steps, &FaultPlan::none())
}

/// Simulate with the paper's optimal strip width.
pub fn simulate_multi1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_multi1(spec, prog, init, steps).unwrap_or_else(|e| panic!("multi1: {e}"))
}

/// Simulate with explicit options and a fault plan, with preconditions
/// checked.
pub fn try_simulate_multi1_opt_faulted(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    opts: Multi1Options,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_multi1_traced(spec, prog, init, steps, opts, plan, &mut Tracer::off())
}

/// [`try_simulate_multi1_opt_faulted`] with a [`Tracer`] observing every
/// rearrangement/gather/row/scatter stage.  A disabled tracer costs one
/// `None` check per stage; the report is bit-identical either way.
pub fn try_simulate_multi1_traced(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    opts: Multi1Options,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    let expected = spec.n as usize * prog.m();
    if init.len() != expected {
        return Err(SimError::InitLength {
            expected,
            got: init.len(),
        });
    }
    plan.validate()?;
    let mut eng = Engine::new(spec, prog, steps, opts, plan)?;
    eng.tracer = std::mem::take(tracer);
    eng.tracer.ensure_procs(spec.p as usize);
    let outcome = eng.run(init);
    if outcome.is_ok() {
        settle_scenario(&mut eng.clock, &mut eng.session, &mut eng.tracer, 1);
    }
    let rep = outcome.map(|()| eng.finish(spec, prog, steps));
    *tracer = std::mem::take(&mut eng.tracer);
    rep
}

/// [`try_simulate_multi1_traced`] with an explicit execution core: the
/// dense tile loop or the discrete-event calendar ([`CoreKind::Event`]).
/// Reports are bit-identical across cores.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_multi1_core(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    opts: Multi1Options,
    plan: &FaultPlan,
    core: CoreKind,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_multi1_traced(
        spec,
        prog,
        init,
        steps,
        Multi1Options { core, ..opts },
        plan,
        tracer,
    )
}

/// Simulate with explicit options (strip-width sweeps for experiment E9).
pub fn simulate_multi1_opt(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    opts: Multi1Options,
) -> SimReport {
    try_simulate_multi1_opt_faulted(spec, prog, init, steps, opts, &FaultPlan::none())
        .unwrap_or_else(|e| panic!("multi1: {e}"))
}

struct Engine<'a, P: LinearProgram> {
    n: usize,
    p: usize,
    m: usize,
    s: usize,
    q: usize,
    t_steps: i64,
    hop: f64,
    cbox: IRect,
    /// Per-processor executor (owns that processor's H-RAM).
    execs: Vec<DiamondExec<'a, P>>,
    prog: &'a P,
    /// Ground-truth words for every live dag value (addresses are
    /// tracked in `placed`/`home`).
    vals: FxHashMap<Pt2, Word>,
    /// Transient placement during one `D(ps)` tile: value → (proc, addr).
    placed: FxHashMap<Pt2, (usize, usize)>,
    /// Persistent placement between tiles: value → (proc, addr in the
    /// value-home region).
    home: FxHashMap<Pt2, (usize, usize)>,
    home_zones: Vec<ZoneAlloc>,
    transit_zones: Vec<ZoneAlloc>,
    /// Per-strip staged state base during a tile (proc, addr), `m > 1`.
    staged_state: FxHashMap<usize, (usize, usize)>,
    clock: StageClock,
    /// Reusable stage buffers (snapshots + deltas), allocated once.
    scratch: ScratchLease,
    /// Layout constants (per processor).
    tile_space: usize,
    transit_base: usize,
    transit_cap: usize,
    strip_home_base: usize,
    /// Regime-1 cascade levels `log₂(n/(p·s))`.
    levels: u32,
    preprocessing_time: f64,
    debug_ctx: String,
    session: FaultSession,
    tracer: Tracer,
    core: CoreKind,
    /// Shared-plan bookkeeping: the cache key of the per-tile
    /// decomposition plan, the cached plan all `p` executors adopted,
    /// and the probe's discoveries (harvested with the executors' in
    /// [`finish`](Self::finish)).
    plan_key: PlanKey,
    plan_cached: Option<Arc<DiamondPlan>>,
    plan_found: DiamondPlan,
}

impl<'a, P: LinearProgram> Engine<'a, P> {
    fn new(
        spec: &MachineSpec,
        prog: &'a P,
        steps: i64,
        opts: Multi1Options,
        plan: &FaultPlan,
    ) -> Result<Self, SimError> {
        if spec.d != 1 {
            return Err(SimError::DimensionMismatch {
                expected: 1,
                got: spec.d,
            });
        }
        let n = spec.n as usize;
        let p = spec.p as usize;
        let m = prog.m();
        if m as u64 != spec.m {
            return Err(SimError::DensityMismatch {
                spec_m: spec.m,
                prog_m: m as u64,
            });
        }
        let s = match opts.strip {
            Some(s) => {
                let su = s as usize;
                if su < 2 || !n.is_multiple_of(su) || !(n / su).is_multiple_of(p) {
                    return Err(SimError::InvalidStrip {
                        s,
                        n: spec.n,
                        p: spec.p,
                    });
                }
                su
            }
            None => match engine_strip(spec.n, spec.m, spec.p) {
                Some(s) => s as usize,
                None => {
                    return Err(SimError::NoAdmissibleStrip {
                        n: spec.n,
                        m: spec.m,
                        p: spec.p,
                    })
                }
            },
        };
        let q = n / s;
        let cbox = IRect::new(0, n as i64, 1, steps + 1);

        // Per-processor layout: probe the worst-case inner-tile footprint.
        // The probe and all `p` executors recurse over translates of the
        // same tile shapes, so they all share one frozen decomposition
        // plan from the global cache (the probe's own discoveries seed
        // the harvest folded back in at `finish`).
        let pseudo = MachineSpec::new(1, spec.n, 1, spec.m);
        let leaf_h = (m as i64 / 2).max(1);
        let plan_key = exec1_plan_key(spec.n, spec.m, steps, leaf_h);
        let plan_cached = plan_cache().get_as::<DiamondPlan>(&plan_key);
        let mut probe = DiamondExec::new(&pseudo, prog, steps, leaf_h);
        if let Some(pl) = &plan_cached {
            probe.set_plan(Arc::clone(pl));
        }
        let interior = ClippedDiamond::new(
            bsmp_geometry::Diamond::new((n / 2) as i64, (steps / 2).max(1), (s / 2) as i64),
            cbox,
        );
        let tile_space = probe.space(&interior) * 2 + 64;
        let plan_found = probe.drain_discoveries();
        let transit_cap = 8 * s * m + 48 * s + 1024;
        let home_cap = 16 * (n / p).max(s) + 8 * s + 512;
        let transit_base = tile_space;
        let home_base = transit_base + transit_cap;
        let strip_home_base = home_base + home_cap;

        let execs: Vec<DiamondExec<'a, P>> = (0..p)
            .map(|_| {
                let mut e = DiamondExec::new(&pseudo, prog, steps, leaf_h);
                if let Some(pl) = &plan_cached {
                    e.set_plan(Arc::clone(pl));
                }
                e
            })
            .collect();
        let home_zones = (0..p)
            .map(|_| ZoneAlloc::new(home_base, home_cap))
            .collect();
        let transit_zones = (0..p)
            .map(|_| ZoneAlloc::new(transit_base, transit_cap))
            .collect();
        let levels = ((n as f64) / (p as f64 * s as f64)).log2().max(0.0).round() as u32;
        let session = FaultSession::new(
            plan,
            FaultEnv {
                p,
                hop: spec.neighbor_distance(),
                checkpoint_words: spec.node_mem(),
                proc_side: 1,
            },
        );

        Ok(Engine {
            n,
            p,
            m,
            s,
            q,
            t_steps: steps,
            hop: spec.neighbor_distance(),
            cbox,
            execs,
            prog,
            vals: FxHashMap::default(),
            placed: FxHashMap::default(),
            home: FxHashMap::default(),
            home_zones,
            transit_zones,
            staged_state: FxHashMap::default(),
            clock: StageClock::new(),
            scratch: lease_scratch(p),
            tile_space,
            transit_base,
            transit_cap,
            strip_home_base,
            levels,
            preprocessing_time: 0.0,
            debug_ctx: String::new(),
            session,
            tracer: Tracer::off(),
            core: opts.core,
            plan_key,
            plan_cached,
            plan_found,
        })
    }

    /// Credit points/messages to processor `pr`'s tally slot (no-op when
    /// tracing is disabled).
    #[inline]
    fn tmark(&self, pr: usize, points: u64, msgs: u64) {
        if let Some(tl) = self.tracer.tally() {
            tl.add(pr, points, msgs);
        }
    }

    fn proc_of_strip(&self, j: usize) -> usize {
        rearrangement::proc_of(j, self.q, self.p)
    }

    /// Local base address of strip `j`'s private-memory home block.
    fn strip_home(&self, j: usize) -> usize {
        self.strip_home_base + rearrangement::local_slot_of(j, self.q, self.p) * self.s * self.m
    }

    fn strip_of_col(&self, x: i64) -> usize {
        (x as usize) / self.s
    }

    /// Snapshot each processor's (total time, comm charge) into the
    /// reusable scratch — marks the start of a stage.
    fn begin_stage(&mut self, label: &str) {
        self.tracer.begin_stage(label);
        let scratch = &mut *self.scratch;
        for ((time, comm), e) in scratch
            .time_before
            .iter_mut()
            .zip(scratch.comm_before.iter_mut())
            .zip(&self.execs)
        {
            *time = e.ram.time();
            *comm = e.ram.meter.comm;
        }
    }

    /// Close the stage opened by the matching [`begin_stage`](Self::begin_stage).
    fn close_stage(&mut self) -> Result<(), SimError> {
        let scratch = &mut *self.scratch;
        for (((delta, comm), e), (t0, c0)) in scratch
            .per_proc
            .iter_mut()
            .zip(scratch.per_comm.iter_mut())
            .zip(&self.execs)
            .zip(scratch.time_before.iter().zip(&scratch.comm_before))
        {
            *delta = e.ram.time() - t0;
            *comm = e.ram.meter.comm - c0;
        }
        self.clock.add_stage_faulted(
            &self.scratch.per_proc,
            &self.scratch.per_comm,
            &mut self.session,
        )?;
        self.tracer
            .end_stage(stage_totals(&self.clock, &self.session.stats), 1);
        Ok(())
    }

    /// Lay out the guest image at the *natural* strip homes (uncharged:
    /// problem statement), then perform and charge the rearrangement.
    fn preprocess(&mut self, init: &[Word]) -> Result<(), SimError> {
        // Natural placement: strip j at slot j.
        let seg = self.q / self.p;
        let sm = self.s * self.m;
        let home_base = self.strip_home_base;
        let natural_home =
            move |j: usize| -> (usize, usize) { (j / seg, home_base + (j % seg) * sm) };
        for j in 0..self.q {
            let (pr, base) = natural_home(j);
            for w in 0..sm {
                self.execs[pr].ram.poke(base + w, init[j * sm + w]);
            }
        }
        // Rearrangement stage: move every strip to its π-home.
        self.begin_stage("rearrange");
        // Stage via a scratch buffer in the transit region to avoid
        // overwriting unmoved strips (cycle-safe: copy all out, then in).
        let mut buf: Vec<Vec<Word>> = Vec::with_capacity(self.q);
        for j in 0..self.q {
            let (pr, base) = natural_home(j);
            let mut b = Vec::with_capacity(sm);
            for w in 0..sm {
                b.push(self.execs[pr].ram.read(base + w));
            }
            buf.push(b);
        }
        for (j, bwords) in buf.iter().enumerate() {
            let (src_p, _) = natural_home(j);
            let dst_p = self.proc_of_strip(j);
            let dst = self.strip_home(j);
            let hops = (src_p as i64 - dst_p as i64).unsigned_abs() as f64;
            if hops > 0.0 {
                let c = sm as f64 * hops * self.hop;
                self.execs[src_p].ram.meter.add_comm(c / 2.0);
                self.execs[dst_p].ram.meter.add_comm(c / 2.0);
                self.tmark(src_p, 0, sm as u64);
            }
            for (w, word) in bwords.iter().enumerate() {
                self.execs[dst_p].ram.write(dst + w, *word);
            }
        }
        self.close_stage()?;
        self.preprocessing_time = self.clock.parallel_time;

        // Seed the input-row values: value (x, 0) is the content of cell
        // (x, cell(x,0)) inside the strip home (no copy needed).
        for x in 0..self.n {
            let j = self.strip_of_col(x as i64);
            let pr = self.proc_of_strip(j);
            let addr = self.strip_home(j) + (x - j * self.s) * self.m + self.prog.cell(x, 0);
            self.home.insert(Pt2::new(x as i64, 0), (pr, addr));
        }
        Ok(())
    }

    /// Charge the Regime-1 cascade for one word arriving at (or leaving)
    /// a tile: one staging relocation and one near-neighbor hop per
    /// halving level.
    fn cascade_charge(&mut self, pr: usize, words: usize) {
        let ram = &mut self.execs[pr].ram;
        for k in 0..self.levels {
            let stage_addr = (self.n * self.m) >> (k + 1).min(63);
            let c = 2.0 + 2.0 * ram.access.f(stage_addr / self.p.max(1));
            ram.meter.add_transfer(c * words as f64);
            ram.meter.add_comm(words as f64 * self.hop);
        }
        if self.levels > 0 {
            self.tmark(pr, 0, words as u64 * self.levels as u64);
        }
    }

    /// Move one value into processor `pr`'s transit zone; returns the
    /// address.  Sources: current tile placement, or the inter-tile home.
    fn stage_value(&mut self, pt: Pt2, pr: usize) -> Result<usize, SimError> {
        if let Some(&(owner, addr)) = self.placed.get(&pt) {
            if owner == pr {
                return Ok(addr);
            }
            // Cross-seam exchange (cooperating mode): one word, charged
            // on both endpoints at the true processor distance.
            let hops = (owner as i64 - pr as i64).unsigned_abs() as f64;
            let w = self.vals[&pt];
            let _ = self.execs[owner].ram.read(addr);
            self.execs[owner].ram.meter.add_comm(hops * self.hop / 2.0);
            let dst = self.transit_zones[pr].alloc();
            self.execs[pr].ram.meter.add_comm(hops * self.hop / 2.0);
            self.tmark(pr, 0, 1);
            self.execs[pr].ram.write(dst, w);
            self.placed.insert(pt, (pr, dst));
            return Ok(dst);
        }
        let (owner, addr) = *self.home.get(&pt).ok_or(SimError::Internal {
            what: "staged value neither placed nor home",
        })?;
        // Inter-tile ingest: cascade through the Regime-1 levels.
        let w = if self.vals.contains_key(&pt) {
            self.vals[&pt]
        } else {
            // Input-row value read straight out of the strip home.
            self.execs[owner].ram.peek(addr)
        };
        let _ = self.execs[owner].ram.read(addr);
        self.cascade_charge(pr, 1);
        if owner != pr {
            let hops = (owner as i64 - pr as i64).unsigned_abs() as f64;
            self.execs[owner].ram.meter.add_comm(hops * self.hop / 2.0);
            self.execs[pr].ram.meter.add_comm(hops * self.hop / 2.0);
            self.tmark(pr, 0, 1);
        }
        let dst = self.transit_zones[pr].alloc();
        self.execs[pr].ram.write(dst, w);
        self.vals.insert(pt, w);
        self.placed.insert(pt, (pr, dst));
        Ok(dst)
    }

    /// Stage strip `j`'s private memory into its processor's transit
    /// region for the duration of a tile (Regime-1 gather).
    fn stage_strip(&mut self, j: usize) {
        if self.m == 1 || self.staged_state.contains_key(&j) {
            return;
        }
        let pr = self.proc_of_strip(j);
        let sm = self.s * self.m;
        let src = self.strip_home(j);
        let dst = self.transit_zones[pr].alloc_block(sm);
        self.execs[pr].ram.relocate_block(src, dst, sm);
        self.cascade_charge(pr, sm);
        self.staged_state.insert(j, (pr, dst));
    }

    /// Return strip `j`'s private memory to its home (Regime-1 scatter).
    fn unstage_strip(&mut self, j: usize) {
        if let Some((pr, base)) = self.staged_state.remove(&j) {
            let sm = self.s * self.m;
            let dst = self.strip_home(j);
            self.execs[pr].ram.relocate_block(base, dst, sm);
            self.cascade_charge(pr, sm);
            self.transit_zones[pr].free_block(base, sm);
        }
    }

    /// The vertices of `piece` whose successors escape it — the values
    /// later pieces (or the final report) will need.
    fn outbound(&self, piece: &ClippedDiamond) -> Vec<Pt2> {
        // Row-strip form of the per-point `succs()` scan: a vertex
        // escapes iff it sits on the last row, or some successor inside
        // the computation box falls outside the piece's next row (piece
        // rows are contiguous intervals).  Emission order equals the
        // `for_each_point` order the per-point scan produced.
        let n = self.n as i64;
        let mut out = Vec::new();
        piece.for_each_row(|t, a, b| {
            let nr = if t == self.t_steps {
                None
            } else {
                piece.row_range(t + 1)
            };
            match nr {
                // Last row, or no next row in the piece: everything
                // escapes (each vertex has an in-box successor at t+1
                // whenever t < t_steps; at t = t_steps it reports out).
                None => {
                    for x in a..=b {
                        out.push(Pt2::new(x, t));
                    }
                }
                Some((a2, b2)) => {
                    for x in a..=b {
                        if (x - 1).max(0) < a2 || (x + 1).min(n - 1) > b2 {
                            out.push(Pt2::new(x, t));
                        }
                    }
                }
            }
        });
        out
    }

    /// The in-dag preboundary of a piece (values needed before running
    /// it).
    fn gamma(&self, piece: &ClippedDiamond) -> Vec<Pt2> {
        // Row-strip form of the per-point `preds()` scan: row t's
        // members [a, b] pull [a−1, b+1] at t−1; whatever the piece
        // doesn't own of that span (its rows are contiguous intervals)
        // is preboundary.  Rows are disjoint, so no dedup set is needed.
        let n = self.n as i64;
        let mut v: Vec<Pt2> = Vec::new();
        piece.for_each_row(|t, a, b| {
            let tp = t - 1;
            if tp < 0 {
                return;
            }
            let lo = (a - 1).max(0);
            let hi = (b + 1).min(n - 1);
            // Empty own-row sentinel subtracts nothing from [lo, hi].
            let (c, d) = piece.row_range(tp).unwrap_or((hi + 1, hi));
            for x in lo..=hi.min(c - 1) {
                v.push(Pt2::new(x, tp));
            }
            for x in (d + 1).max(lo)..=hi {
                v.push(Pt2::new(x, tp));
            }
        });
        v.sort();
        v
    }

    /// Execute one (whole) `D(·)` piece on processor `pr` via the full
    /// Theorem-3 recursion, staging its inputs first.
    fn run_piece_on(&mut self, pr: usize, piece: &ClippedDiamond) -> Result<(), SimError> {
        if piece.points_count() == 0 {
            return Ok(());
        }
        self.tmark(pr, piece.points_count() as u64, 0);
        self.debug_ctx = format!("piece {:?} on proc {pr}", piece.d);
        // Stage preboundary values.  Each piece gets *private* copies of
        // its preboundary (the recursion consumes and frees them); the
        // canonical placement in `placed`/`home` is untouched.
        let g: Vec<Pt2> = self.gamma(piece);
        let mut seeds = Vec::with_capacity(g.len());
        for pt in &g {
            let addr = self.stage_value(*pt, pr)?;
            let w = self.execs[pr].ram.peek(addr);
            let copy = self.transit_zones[pr].alloc();
            let _ = self.execs[pr].ram.read(addr);
            self.execs[pr].ram.write(copy, w);
            seeds.push((*pt, copy));
        }
        // Columns and their staged states.  The recursion relocates the
        // per-column blocks; we write them back to the strip block after
        // the piece completes so the staging area stays canonical.
        let b = piece.d.bbox().intersect(&self.cbox);
        let mut state_seeds = Vec::new();
        if self.m > 1 {
            for x in b.x0.max(0)..b.x1.min(self.n as i64) {
                if !piece_has_column(piece, x, &self.cbox) {
                    continue;
                }
                let j = self.strip_of_col(x);
                let (owner, base) = *self.staged_state.get(&j).ok_or(SimError::Internal {
                    what: "piece column's strip not staged",
                })?;
                assert_eq!(
                    owner, pr,
                    "piece columns must be on the executing processor"
                );
                // Private copy of the column block for the recursion.
                let home_addr = base + (x as usize - j * self.s) * self.m;
                let copy = self.transit_zones[pr].alloc_block(self.m);
                self.execs[pr].ram.relocate_block(home_addr, copy, self.m);
                state_seeds.push((x, copy, home_addr));
            }
        }

        // Run the recursion on this processor's H-RAM.
        // `outbound` emits in time-major order — sorted and duplicate-free,
        // exactly what `exec` wants.
        let out_pts = self.outbound(piece);
        debug_assert!(out_pts.windows(2).all(|w| w[0] < w[1]));
        {
            let exec = &mut self.execs[pr];
            exec.clear_seeds();
            for (x, addr, _) in &state_seeds {
                exec.seed_state(*x, *addr);
            }
        }
        // The staged preboundary copies become the recursion's value
        // directory (sorting is host bookkeeping — the staging charges
        // above already happened in Γ emission order).
        seeds.sort_unstable();
        let space = self.execs[pr].space(piece);
        assert!(
            space <= self.tile_space,
            "tile footprint {space} exceeds budget"
        );
        // Parent zone: the transit zone (park results there).
        let mut zone = std::mem::replace(&mut self.transit_zones[pr], ZoneAlloc::new(0, 0));
        let mut out_addrs = Vec::with_capacity(out_pts.len());
        let exec_res = self.execs[pr].exec(piece, &out_pts, &mut zone, &seeds, &mut out_addrs);
        self.transit_zones[pr] = zone;
        exec_res?;
        if out_addrs.len() != out_pts.len() {
            return Err(SimError::Internal {
                what: "piece output not parked",
            });
        }

        // Harvest: record outbound values (they stay parked in transit).
        for (pt, addr) in out_pts.into_iter().zip(out_addrs) {
            let w = self.execs[pr].ram.peek(addr);
            self.vals.insert(pt, w);
            if let Some((old_pr, old_addr)) = self.placed.insert(pt, (pr, addr)) {
                // Superseded stale placement (shouldn't generally happen).
                self.transit_zones[old_pr].free_if_owned(old_addr);
            }
        }
        // Write the evolved column states back into the strip block and
        // release the recursion's parked blocks.
        if self.m > 1 {
            for (x, _, home_addr) in &state_seeds {
                let parked = self.execs[pr].state_addr(*x).ok_or(SimError::Internal {
                    what: "piece column state not parked",
                })?;
                self.execs[pr]
                    .ram
                    .relocate_block(parked, *home_addr, self.m);
                self.transit_zones[pr].free_block(parked, self.m);
            }
        }
        self.execs[pr].clear_seeds();
        Ok(())
    }

    /// Execute a strip-boundary diamond in cooperating mode: off-center
    /// children go wholly to one side; the central leaf chain runs
    /// vertex-by-vertex, each vertex on its own side.
    fn run_shared(&mut self, piece: &ClippedDiamond, pl: usize, pr: usize) -> Result<(), SimError> {
        if piece.points_count() == 0 {
            return Ok(());
        }
        let leaf_h = (self.m as i64 / 2).max(1);
        if piece.d.h <= leaf_h {
            return self.run_band_leaf(piece, pl, pr);
        }
        for kid in piece.d.children() {
            let ck = ClippedDiamond::new(kid, self.cbox);
            if ck.points_count() == 0 {
                continue;
            }
            if kid.cx < piece.d.cx {
                self.run_piece_on(pl, &ck)?;
            } else if kid.cx > piece.d.cx {
                self.run_piece_on(pr, &ck)?;
            } else {
                self.run_shared(&ck, pl, pr)?;
            }
        }
        Ok(())
    }

    /// Central-band leaf of a shared diamond: naive execution split by
    /// side, with seam crossings charged at one hop.
    fn run_band_leaf(
        &mut self,
        piece: &ClippedDiamond,
        pl: usize,
        pr: usize,
    ) -> Result<(), SimError> {
        let mut pts = Vec::with_capacity(piece.points_count() as usize);
        piece.for_each_point(|pt| {
            if self.cbox.contains(pt) {
                pts.push(pt);
            }
        });
        pts.sort();
        if pts.is_empty() {
            return Ok(());
        }
        let cx = piece.d.cx;
        let nominal = self.transit_base; // operands live in the transit band
        let out_set: FxHashSet<Pt2> = self.outbound(piece).into_iter().collect();
        for pt in &pts {
            let side = if pt.x < cx { pl } else { pr };
            self.tmark(side, 1, 0);
            // Operand fetches: previous values from `vals` (placed on
            // either side); charge a read at the transit band plus a hop
            // when the operand lives across the seam.
            let fetch = |me: &mut Self, qp: Pt2| -> Result<Word, SimError> {
                if qp.x < 0 || qp.x >= me.n as i64 {
                    return Ok(me.prog.boundary());
                }
                let w = if qp.t == 0 {
                    let a = me.stage_value(qp, side)?;
                    me.execs[side].ram.peek(a)
                } else {
                    *me.vals.get(&qp).ok_or(SimError::Internal {
                        what: "band-leaf operand missing",
                    })?
                };
                let owner = me.placed.get(&qp).map(|&(o, _)| o).unwrap_or(side);
                let _ = me.execs[side].ram.read(nominal);
                if owner != side {
                    let hops = (owner as i64 - side as i64).unsigned_abs() as f64;
                    me.execs[owner].ram.meter.add_comm(hops * me.hop / 2.0);
                    me.execs[side].ram.meter.add_comm(hops * me.hop / 2.0);
                    me.tmark(side, 0, 1);
                }
                Ok(w)
            };
            let prev = fetch(self, Pt2::new(pt.x, pt.t - 1))?;
            let left = fetch(self, Pt2::new(pt.x - 1, pt.t - 1))?;
            let right = fetch(self, Pt2::new(pt.x + 1, pt.t - 1))?;
            let own = if self.m > 1 {
                let j = self.strip_of_col(pt.x);
                let (owner, base) = self.staged_state[&j];
                assert_eq!(owner, side, "band vertex state must be on its own side");
                self.execs[side].ram.read(
                    base + (pt.x as usize - j * self.s) * self.m
                        + self.prog.cell(pt.x as usize, pt.t),
                )
            } else {
                prev
            };
            let out = self.prog.delta(pt.x as usize, pt.t, own, prev, left, right);
            self.execs[side].ram.compute();
            if self.m > 1 {
                let j = self.strip_of_col(pt.x);
                let (_, base) = self.staged_state[&j];
                self.execs[side].ram.write(
                    base + (pt.x as usize - j * self.s) * self.m
                        + self.prog.cell(pt.x as usize, pt.t),
                    out,
                );
            }
            self.vals.insert(*pt, out);
            if out_set.contains(pt) {
                let dst = self.transit_zones[side].alloc();
                self.execs[side].ram.write(dst, out);
                self.placed.insert(*pt, (side, dst));
            }
        }
        Ok(())
    }

    /// Execute one `D(ps)` tile: Regime-1 gather, the `2p-1` Regime-2
    /// stage rows, Regime-1 scatter.
    fn run_tile(&mut self, tile: &ClippedDiamond) -> Result<(), SimError> {
        self.debug_ctx = format!("tile {:?}", tile.d);
        let ps = (self.p * self.s) as i64;
        // --- Gather stage: stage all strips the tile touches.
        self.begin_stage("gather");
        let b = tile.d.bbox().intersect(&self.cbox);
        if b.is_empty() {
            return Ok(());
        }
        let strips: Vec<usize> = {
            let lo = self.strip_of_col(b.x0.max(0));
            let hi = self.strip_of_col((b.x1 - 1).min(self.n as i64 - 1));
            (lo..=hi).collect()
        };
        for &j in &strips {
            self.stage_strip(j);
        }
        self.close_stage()?;

        // --- Regime 2: rows of D(s) diamonds inside the tile.
        // The radius-s/2 tiling exactly refines the radius-ps/2 tiling
        // (anchored identically), so this tile's interior diamonds are
        // the s-cover members whose (always-included) top tip lies in the
        // tile diamond.
        // The radius-hs tiling that *nests* inside the radius-hp tiling
        // is anchored at (0, hp - hs): each halving level shifts the
        // center lattice down by the child radius.
        let hs = (self.s / 2) as i64;
        let hp = ((self.p * self.s) / 2) as i64;
        let inner = diamond_cover(IRect::new(b.x0, b.x1, b.t0, b.t1), hs, Pt2::new(0, hp - hs));
        let mut rows: Vec<(i64, Vec<ClippedDiamond>)> = Vec::new();
        for d in inner {
            if !tile.d.contains(Pt2::new(d.d.cx, d.d.ct + hs)) {
                continue;
            }
            let within = ClippedDiamond::new(d.d, self.cbox);
            if within.points_count() == 0 {
                continue;
            }
            match rows.last_mut() {
                Some((ct, v)) if *ct == d.d.ct => v.push(within),
                _ => rows.push((d.d.ct, vec![within])),
            }
        }
        let _ = ps;
        let mut prev_row_lo = i64::MIN;
        for (row_ct, row) in rows {
            self.begin_stage("row");
            // Free transit slots of values that no later piece (in this
            // tile or any other) can consume: everything below the
            // previous row's floor that does not escape the tile.
            let row_lo = row_ct - hs;
            if prev_row_lo > i64::MIN {
                let mut dead: Vec<Pt2> =
                    self.placed
                        .iter()
                        .filter(|(pt, _)| {
                            pt.t < prev_row_lo - 1
                                && pt.t != self.t_steps
                                && pt.succs().iter().all(|sq| {
                                    !self.cbox.contains(*sq) || self.vals.contains_key(sq)
                                })
                                && pt
                                    .succs()
                                    .iter()
                                    .all(|sq| !self.cbox.contains(*sq) || tile.contains(*sq))
                        })
                        .map(|(pt, _)| *pt)
                        .collect();
                dead.sort();
                for pt in dead {
                    let (pr2, addr) = self.placed.remove(&pt).ok_or(SimError::Internal {
                        what: "transit placement missing for a dead value",
                    })?;
                    self.transit_zones[pr2].free_if_owned(addr);
                }
            }
            prev_row_lo = row_lo;
            for piece in row {
                let cxu = piece.d.cx;
                if cxu.rem_euclid(self.s as i64) == 0 && self.p > 1 {
                    // Strip-boundary diamond: cooperating mode between the
                    // strips left and right of the seam (edge seams where
                    // one side is outside the array degenerate to one
                    // processor).
                    let jl = self.strip_of_col((cxu - 1).clamp(0, self.n as i64 - 1));
                    let jr = self.strip_of_col(cxu.clamp(0, self.n as i64 - 1));
                    let (pl, pr) = (self.proc_of_strip(jl), self.proc_of_strip(jr));
                    if pl == pr {
                        self.run_piece_on(pl, &piece)?;
                    } else {
                        self.run_shared(&piece, pl, pr)?;
                    }
                } else {
                    let j = self.strip_of_col(piece.d.cx.clamp(0, self.n as i64 - 1));
                    self.run_piece_on(self.proc_of_strip(j), &piece)?;
                }
            }
            self.close_stage()?;
        }

        // --- Scatter stage: return strips home; persist still-needed
        // boundary values; drop the rest.
        self.begin_stage("scatter");
        for &j in &strips {
            self.unstage_strip(j);
        }
        let mut placed: Vec<(Pt2, (usize, usize))> =
            std::mem::take(&mut self.placed).into_iter().collect();
        placed.sort_by_key(|(pt, _)| *pt);
        for (pt, (pr, addr)) in placed {
            let needed = pt.t == self.t_steps
                || pt.succs().iter().any(|sq| {
                    self.cbox.contains(*sq) && !self.vals.contains_key(sq) && !tile.contains(*sq)
                });
            self.transit_zones[pr].free_if_owned(addr);
            if needed && !self.home.contains_key(&pt) {
                let w = self.vals[&pt];
                let _ = self.execs[pr].ram.read(addr);
                self.cascade_charge(pr, 1);
                let dst = self.home_zones[pr].alloc();
                self.execs[pr].ram.write(dst, w);
                self.home.insert(pt, (pr, dst));
            }
        }
        // Garbage-collect home values no longer reachable.
        let cutoff = b.t0 - 2;
        let mut dead: Vec<Pt2> = self
            .home
            .keys()
            .copied()
            .filter(|pt| pt.t < cutoff && pt.t != self.t_steps)
            .collect();
        dead.sort();
        for pt in dead {
            let (pr, addr) = self.home.remove(&pt).ok_or(SimError::Internal {
                what: "home placement missing for a dead value",
            })?;
            // Input-row entries are views into the strip homes, not
            // allocated slots.
            if pt.t > 0 {
                self.home_zones[pr].free(addr);
            }
        }
        self.close_stage()?;
        // Fresh transit zones for the next tile (everything in them has
        // been scattered or dropped).
        for z in &mut self.transit_zones {
            *z = ZoneAlloc::new(self.transit_base, self.transit_cap);
        }
        Ok(())
    }

    fn run(&mut self, init: &[Word]) -> Result<(), SimError> {
        self.preprocess(init)?;
        if self.t_steps == 0 {
            return Ok(());
        }
        let hp = ((self.p * self.s) / 2) as i64;
        let tiles = diamond_cover(self.cbox, hp, Pt2::new(0, 0));
        match self.core {
            CoreKind::Dense => {
                for tile in tiles {
                    self.run_tile(&tile)?;
                }
            }
            CoreKind::Event => {
                // Calendar drain keyed by tile center time.  The cover is
                // sorted by (ct, cx) and buckets pop FIFO, so the drained
                // sequence is exactly the dense iteration order — the
                // meters stay bit-identical.
                let mut cal = EventQueue::new();
                for tile in tiles {
                    cal.schedule(tile.d.ct, tile);
                }
                while let Some((_ct, batch)) = cal.pop_stage() {
                    for tile in &batch {
                        self.run_tile(tile)?;
                    }
                }
            }
        }
        // For m = 1 the node state *is* the value: write the final row
        // back into the strip homes (charged — the host must leave the
        // guest's memory as the guest would).
        if self.m == 1 {
            self.begin_stage("writeback");
            for x in 0..self.n {
                let pt = Pt2::new(x as i64, self.t_steps);
                let (pr, addr) = *self.home.get(&pt).ok_or(SimError::Internal {
                    what: "final value not homed",
                })?;
                let w = self.vals[&pt];
                let _ = self.execs[pr].ram.read(addr);
                let j = self.strip_of_col(x as i64);
                let hp_ = self.proc_of_strip(j);
                if hp_ != pr {
                    let hops = (hp_ as i64 - pr as i64).unsigned_abs() as f64;
                    self.execs[pr].ram.meter.add_comm(hops * self.hop / 2.0);
                    self.execs[hp_].ram.meter.add_comm(hops * self.hop / 2.0);
                    self.tmark(pr, 0, 1);
                }
                let dst = self.strip_home(j) + (x - j * self.s);
                self.execs[hp_].ram.write(dst, w);
            }
            self.close_stage()?;
        }

        // Final un-rearrangement (restore the guest's natural layout).
        self.begin_stage("restore");
        let sm = self.s * self.m;
        let seg = self.q / self.p;
        let mut buf: Vec<Vec<Word>> = Vec::with_capacity(self.q);
        for j in 0..self.q {
            let pr = self.proc_of_strip(j);
            let base = self.strip_home(j);
            let mut bwords = Vec::with_capacity(sm);
            for w in 0..sm {
                bwords.push(self.execs[pr].ram.read(base + w));
            }
            buf.push(bwords);
        }
        for (j, bwords) in buf.iter().enumerate() {
            let src_p = self.proc_of_strip(j);
            let dst_p = j / seg;
            let dst = self.strip_home_base + (j % seg) * sm;
            let hops = (src_p as i64 - dst_p as i64).unsigned_abs() as f64;
            if hops > 0.0 {
                let c = sm as f64 * hops * self.hop;
                self.execs[src_p].ram.meter.add_comm(c / 2.0);
                self.execs[dst_p].ram.meter.add_comm(c / 2.0);
                self.tmark(src_p, 0, sm as u64);
            }
            for (w, word) in bwords.iter().enumerate() {
                self.execs[dst_p].ram.write(dst + w, *word);
            }
        }
        self.close_stage()?;
        Ok(())
    }

    fn finish(&mut self, spec: &MachineSpec, prog: &impl LinearProgram, steps: i64) -> SimReport {
        // Fold every executor's plan discoveries (plus the probe's,
        // stashed at construction) back into the cached plan.  `finish`
        // only runs on success, so partial failed runs never pollute the
        // cache.
        let mut found = std::mem::take(&mut self.plan_found);
        for e in &mut self.execs {
            found.absorb(e.drain_discoveries());
        }
        if !found.is_empty() {
            let mut merged = match self.plan_cached.take() {
                Some(arc) => (*arc).clone(),
                None => DiamondPlan::default(),
            };
            merged.absorb(found);
            let bytes = merged.approx_bytes();
            plan_cache().insert(self.plan_key.clone(), Arc::new(merged), bytes);
        }
        let sm = self.s * self.m;
        let seg = self.q / self.p;
        let mut mem = vec![0 as Word; self.n * self.m];
        for j in 0..self.q {
            let pr = j / seg;
            let base = self.strip_home_base + (j % seg) * sm;
            for w in 0..sm {
                mem[j * sm + w] = self.execs[pr].ram.peek(base + w);
            }
        }
        let values: Vec<Word> = if steps == 0 {
            (0..self.n)
                .map(|x| mem[x * self.m + self.prog.cell(x, 0)])
                .collect()
        } else {
            (0..self.n)
                .map(|x| self.vals[&Pt2::new(x as i64, steps)])
                .collect()
        };
        let meter = self
            .execs
            .iter()
            .fold(bsmp_hram::CostMeter::new(), |acc, e| {
                acc.merged(&e.ram.meter)
            });
        let guest_time = linear_guest_time(spec, prog, steps);
        self.tracer.finish_run(
            RunMeta {
                engine: "multi1",
                d: 1,
                n: spec.n,
                m: spec.m,
                p: spec.p,
                steps: steps.max(0) as u64,
            },
            self.clock.parallel_time,
            guest_time,
        );
        SimReport {
            mem,
            values,
            host_time: self.clock.parallel_time,
            guest_time,
            meter,
            space: self
                .execs
                .iter()
                .map(|e| e.ram.high_water())
                .max()
                .unwrap_or(0),
            stages: self.clock.stages,
            faults: self.session.stats.clone(),
            core_fallback: None,
        }
    }
}

/// Does `piece` execute at least one vertex in column `x`?
fn piece_has_column(piece: &ClippedDiamond, x: i64, cbox: &IRect) -> bool {
    let k = (x - piece.d.cx).abs();
    let lo = (piece.d.ct - piece.d.h + k + 1)
        .max(cbox.t0)
        .max(piece.clip.t0);
    let hi = (piece.d.ct + piece.d.h - k)
        .min(cbox.t1 - 1)
        .min(piece.clip.t1 - 1);
    let xlo = piece.clip.x0.max(cbox.x0);
    let xhi = piece.clip.x1.min(cbox.x1);
    x >= xlo && x < xhi && lo <= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_linear;
    use bsmp_workloads::{inputs, CyclicWave, Eca, OddEvenSort};

    fn check_equiv(
        prog: &impl LinearProgram,
        n: u64,
        p: u64,
        steps: i64,
        init: &[Word],
    ) -> SimReport {
        let spec = MachineSpec::new(1, n, p, prog.m() as u64);
        let guest = run_linear(&spec, prog, init, steps);
        let rep = simulate_multi1(&spec, prog, init, steps);
        rep.assert_matches(&guest.mem, &guest.values);
        rep
    }

    #[test]
    fn rule110_small() {
        let init = inputs::random_bits(40, 16);
        check_equiv(&Eca::rule110(), 16, 2, 16, &init);
    }

    #[test]
    fn rule110_various_p() {
        let n = 32u64;
        let init = inputs::random_bits(41, n as usize);
        for p in [1u64, 2, 4, 8] {
            check_equiv(&Eca::rule110(), n, p, n as i64, &init);
        }
    }

    #[test]
    fn sorting_multiproc() {
        let init = inputs::random_words(42, 32, 999);
        let rep = check_equiv(&OddEvenSort::new(32), 32, 4, 32, &init);
        let mut expect = init.clone();
        expect.sort();
        assert_eq!(rep.values, expect);
    }

    #[test]
    fn multi_cell_wave() {
        for m in [2usize, 4] {
            let n = 32usize;
            let init = inputs::random_words(43 + m as u64, n * m, 100);
            check_equiv(&CyclicWave::new(m), n as u64, 4, 16, &init);
        }
    }

    #[test]
    fn nonsquare_time() {
        let init = inputs::random_bits(44, 32);
        for steps in [1i64, 5, 11, 40] {
            check_equiv(&Eca::rule90(), 32, 4, steps, &init);
        }
    }

    #[test]
    fn explicit_strip_widths() {
        let n = 32u64;
        let init = inputs::random_bits(45, n as usize);
        let spec = MachineSpec::new(1, n, 4, 1);
        let guest = run_linear(&spec, &Eca::rule110(), &init, n as i64);
        for s in [2u64, 4, 8] {
            let rep = simulate_multi1_opt(
                &spec,
                &Eca::rule110(),
                &init,
                n as i64,
                Multi1Options {
                    strip: Some(s),
                    ..Multi1Options::default()
                },
            );
            rep.assert_matches(&guest.mem, &guest.values);
        }
    }

    #[test]
    fn uniform_slowdown_stays_within_nu_envelope() {
        let n = 32u64;
        let init = inputs::random_bits(47, n as usize);
        let spec = MachineSpec::new(1, n, 4, 1);
        let base = simulate_multi1(&spec, &Eca::rule110(), &init, n as i64);
        for nu in [1.0, 2.0, 4.0] {
            let plan = FaultPlan::uniform_slowdown(nu);
            let rep = try_simulate_multi1_faulted(&spec, &Eca::rule110(), &init, n as i64, &plan)
                .unwrap();
            rep.assert_matches(&base.mem, &base.values);
            assert!(rep.host_time >= base.host_time - 1e-9);
            assert!(rep.host_time <= nu * base.host_time + 1e-6, "ν = {nu}");
        }
    }

    #[test]
    fn try_variant_reports_bad_parameters() {
        let init = inputs::random_bits(48, 32);
        let spec = MachineSpec::new(1, 32, 4, 1);
        assert!(matches!(
            try_simulate_multi1(&spec, &Eca::rule110(), &init[..30], 8),
            Err(SimError::InitLength { .. })
        ));
        assert!(matches!(
            try_simulate_multi1_opt_faulted(
                &spec,
                &Eca::rule110(),
                &init,
                8,
                Multi1Options {
                    strip: Some(3),
                    ..Multi1Options::default()
                },
                &FaultPlan::none(),
            ),
            Err(SimError::InvalidStrip { s: 3, .. })
        ));
    }

    #[test]
    fn locality_slowdown_shape_beats_naive() {
        // Theorem 4: the two-regime scheme's locality slowdown A is
        // polylogarithmic in n (for m = 1), while the naive scheme's is
        // Θ(n/p).  Absolute crossover happens beyond unit-test scale
        // (the scheme's constants are ~τ₀ of Proposition 3; see the E3
        // bench), so assert the *growth rates*: quadrupling n must
        // multiply naive's A by ~4 and the two-regime A by far less.
        let p = 4u64;
        let a_of = |n: u64| {
            let init = inputs::random_bits(46, n as usize);
            let steps = (n / 4) as i64;
            let spec = MachineSpec::new(1, n, p, 1);
            let guest = run_linear(&spec, &Eca::rule90(), &init, steps);
            let rep = simulate_multi1(&spec, &Eca::rule90(), &init, steps);
            rep.assert_matches(&guest.mem, &guest.values);
            let naive = crate::naive1::simulate_naive1(&spec, &Eca::rule90(), &init, steps);
            (rep.locality_slowdown(n, p), naive.locality_slowdown(n, p))
        };
        let (two_a, naive_a) = a_of(128);
        let (two_b, naive_b) = a_of(512);
        let naive_growth = naive_b / naive_a;
        let two_growth = two_b / two_a;
        assert!(naive_growth > 2.5, "naive A ~ n/p: ×{naive_growth}");
        assert!(
            two_growth < naive_growth / 1.5,
            "two-regime A nearly flat: ×{two_growth} vs naive ×{naive_growth}"
        );
        // Brent floor: slowdown exceeds n/p (A > 1).
        assert!(two_a > 1.0 && two_b > 1.0);
    }
}
