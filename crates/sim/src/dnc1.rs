//! **Theorems 2 and 3** — divide-and-conquer uniprocessor simulation of
//! the linear array, built on the [`crate::exec1`] executor.
//!
//! * Theorem 2 (`m = 1`): leaf diamonds of radius 1, slowdown
//!   `O(n log n)`.
//! * Theorem 3 (`m > 1`): recursion down to the *executable diamonds*
//!   `D(m)` (radius `m/2`), executed naively; slowdown
//!   `O(n · min(n, m log(n/m)))`.  For `m ≥ n` the whole computation is
//!   one executable diamond — the naive regime.

use std::sync::Arc;

use bsmp_faults::{FaultPlan, FaultStats};
use bsmp_hram::Word;
use bsmp_machine::{linear_guest_time, plan_cache, LinearProgram, MachineSpec, PlanKey};
use bsmp_trace::{RunMeta, StageTotals, Tracer};

use crate::error::SimError;
use crate::exec1::{DiamondExec, DiamondPlan};
use crate::report::SimReport;

/// Cache key of the frozen [`DiamondPlan`] for one decomposition shape.
/// The plan is pure geometry — guest program identity, cost model, and
/// fault plan are deliberately absent (they cannot change the memos) —
/// so every engine recursing over the same `(n, T, m, leaf_h)` diamond
/// dag shares one entry.
pub(crate) fn exec1_plan_key(n: u64, m: u64, steps: i64, leaf_h: i64) -> PlanKey {
    PlanKey {
        engine: "exec1-plan",
        d: 1,
        n,
        p: 1,
        m,
        steps: steps.max(0),
        core: 0,
        extra: leaf_h.max(1) as u64,
        salt: String::new(),
    }
}

/// Attach the cached plan (if any) to a fresh executor; returns the key
/// and the plan so the caller can harvest discoveries afterwards.
pub(crate) fn adopt_plan<P: LinearProgram>(
    exec: &mut DiamondExec<'_, P>,
    n: u64,
    m: u64,
    steps: i64,
    leaf_h: i64,
) -> (PlanKey, Option<Arc<DiamondPlan>>) {
    let key = exec1_plan_key(n, m, steps, leaf_h);
    let cached = plan_cache().get_as::<DiamondPlan>(&key);
    if let Some(plan) = &cached {
        exec.set_plan(Arc::clone(plan));
    }
    (key, cached)
}

/// After a successful run, fold the executor's newly discovered memos
/// into the cached plan (no-op when the plan already covered the run).
pub(crate) fn harvest_plan<P: LinearProgram>(
    exec: &mut DiamondExec<'_, P>,
    key: PlanKey,
    cached: Option<Arc<DiamondPlan>>,
) {
    let found = exec.drain_discoveries();
    if found.is_empty() {
        return;
    }
    let mut merged = match cached {
        Some(arc) => (*arc).clone(),
        None => DiamondPlan::default(),
    };
    merged.absorb(found);
    let bytes = merged.approx_bytes();
    plan_cache().insert(key, Arc::new(merged), bytes);
}

/// Simulate `steps` guest steps of `M_1(n, n, m)` on the uniprocessor
/// `M_1(n, 1, m)` with the paper's leaf size (`D(m)` executable
/// diamonds), with preconditions checked.
pub fn try_simulate_dnc1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    let leaf_h = (prog.m() as i64 / 2).max(1);
    try_simulate_dnc1_with_leaf(spec, prog, init, steps, leaf_h)
}

/// Simulate `steps` guest steps of `M_1(n, n, m)` on the uniprocessor
/// `M_1(n, 1, m)` with the paper's leaf size (`D(m)` executable
/// diamonds).
pub fn simulate_dnc1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_dnc1(spec, prog, init, steps).unwrap_or_else(|e| panic!("dnc1: {e}"))
}

/// As [`try_simulate_dnc1`] with an explicit leaf radius (for the
/// ablation benches: leaf size trades recursion overhead against
/// naive-execution locality loss).
pub fn try_simulate_dnc1_with_leaf(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    leaf_h: i64,
) -> Result<SimReport, SimError> {
    try_simulate_dnc1_traced(spec, prog, init, steps, leaf_h, &mut Tracer::off())
}

/// [`try_simulate_dnc1_with_leaf`] with a [`Tracer`] observing the run.
/// Uniprocessor engines are a single bulk stage from the tracer's point
/// of view: one record carries the whole run's totals.
pub fn try_simulate_dnc1_traced(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    leaf_h: i64,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    if spec.d != 1 {
        return Err(SimError::DimensionMismatch {
            expected: 1,
            got: spec.d,
        });
    }
    if spec.p != 1 {
        return Err(SimError::UniprocessorOnly {
            engine: "dnc1",
            p: spec.p,
        });
    }
    if prog.m() as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: prog.m() as u64,
        });
    }
    let expected = spec.n as usize * prog.m();
    if init.len() != expected {
        return Err(SimError::InitLength {
            expected,
            got: init.len(),
        });
    }
    tracer.ensure_procs(1);
    tracer.begin_stage("run");
    let mut exec = DiamondExec::new(spec, prog, steps, leaf_h);
    let (key, cached) = adopt_plan(&mut exec, spec.n, spec.m, steps, leaf_h);
    let (mem, values) = exec.run(init)?;
    harvest_plan(&mut exec, key, cached);
    let host_time = exec.ram.time();
    if let Some(tl) = tracer.tally() {
        tl.add(0, spec.n * steps.max(0) as u64, 0);
    }
    tracer.end_stage(
        StageTotals {
            parallel: host_time,
            busy: host_time,
            comm: exec.ram.meter.comm,
            ..StageTotals::default()
        },
        1,
    );
    let guest_time = linear_guest_time(spec, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "dnc1",
            d: 1,
            n: spec.n,
            m: spec.m,
            p: 1,
            steps: steps.max(0) as u64,
        },
        host_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values,
        host_time,
        guest_time,
        meter: exec.ram.meter,
        space: exec.ram.high_water(),
        stages: 0,
        faults: FaultStats::default(),
        core_fallback: None,
    })
}

/// As [`try_simulate_dnc1`] with a fault scenario applied to the run
/// treated as one bulk stage (the uniprocessor view of DESIGN.md §14:
/// jitter, asymmetry, outage windows, and churn scale the whole run).
/// A [`FaultPlan::none`] plan takes the plain path bit-identically.
pub fn try_simulate_dnc1_faulted(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_dnc1_faulted_traced(spec, prog, init, steps, plan, &mut Tracer::off())
}

/// [`try_simulate_dnc1_faulted`] with a [`Tracer`] observing the run.
pub fn try_simulate_dnc1_faulted_traced(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    plan.validate()?;
    let leaf_h = (prog.m() as i64 / 2).max(1);
    if plan.is_none() {
        return try_simulate_dnc1_traced(spec, prog, init, steps, leaf_h, tracer);
    }
    let rep = try_simulate_dnc1_with_leaf(spec, prog, init, steps, leaf_h)?;
    crate::scenario_over_report(
        rep,
        RunMeta {
            engine: "dnc1",
            d: 1,
            n: spec.n,
            m: spec.m,
            p: 1,
            steps: steps.max(0) as u64,
        },
        spec.neighbor_distance(),
        spec.node_mem(),
        plan,
        tracer,
    )
}

/// As [`simulate_dnc1`] with an explicit leaf radius.
pub fn simulate_dnc1_with_leaf(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    leaf_h: i64,
) -> SimReport {
    try_simulate_dnc1_with_leaf(spec, prog, init, steps, leaf_h)
        .unwrap_or_else(|e| panic!("dnc1: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_linear;
    use bsmp_workloads::{inputs, CyclicWave, Eca, OddEvenSort, TokenShift};

    fn check_equiv(prog: &impl LinearProgram, n: u64, steps: i64, init: &[Word]) -> SimReport {
        let spec = MachineSpec::new(1, n, 1, prog.m() as u64);
        let guest = run_linear(&spec, prog, init, steps);
        let rep = simulate_dnc1(&spec, prog, init, steps);
        rep.assert_matches(&guest.mem, &guest.values);
        rep
    }

    #[test]
    fn token_shift_tiny() {
        let init: Vec<Word> = vec![10, 20, 30, 40];
        check_equiv(&TokenShift::new(7), 4, 4, &init);
    }

    #[test]
    fn rule110_various_sizes() {
        for n in [4u64, 8, 16, 32, 64] {
            let init = inputs::random_bits(n, n as usize);
            check_equiv(&Eca::rule110(), n, n as i64, &init);
        }
    }

    #[test]
    fn non_square_time_ranges() {
        // T ≠ n exercises clipped top/bottom tiles.
        let init = inputs::random_bits(20, 16);
        for steps in [1i64, 3, 7, 16, 40] {
            check_equiv(&Eca::rule90(), 16, steps, &init);
        }
    }

    #[test]
    fn odd_sizes() {
        for n in [3u64, 5, 7, 13] {
            let init = inputs::random_bits(n, n as usize);
            check_equiv(&Eca::rule110(), n, (n + 2) as i64, &init);
        }
    }

    #[test]
    fn sorting_via_dnc() {
        let init = inputs::random_words(21, 16, 500);
        let rep = check_equiv(&OddEvenSort::new(16), 16, 16, &init);
        let mut expect = init.clone();
        expect.sort();
        assert_eq!(rep.values, expect);
    }

    #[test]
    fn multi_cell_wave_equivalence() {
        for m in [2usize, 3, 4, 8] {
            let n = 16usize;
            let init = inputs::random_words(22 + m as u64, n * m, 100);
            check_equiv(&CyclicWave::new(m), n as u64, 20, &init);
        }
    }

    #[test]
    fn m_exceeding_n_still_works() {
        // Range-4 situation: the executable diamond swallows everything.
        let (n, m) = (8usize, 16usize);
        let init = inputs::random_words(30, n * m, 100);
        check_equiv(&CyclicWave::new(m), n as u64, 12, &init);
    }

    #[test]
    fn dnc_beats_naive_for_small_m() {
        // Theorem 2 vs Proposition 1: n·log n ≪ n² asymptotically.  The
        // scheme's constants (Proposition 3's τ₀) put the crossover near
        // n ≈ 300 in this implementation; at n = 512 D&C wins clearly,
        // and its advantage doubles with n (shape check).
        let n = 512u64;
        let init = inputs::random_bits(23, n as usize);
        let spec = MachineSpec::new(1, n, 1, 1);
        let dnc = simulate_dnc1(&spec, &Eca::rule90(), &init, n as i64);
        let naive = crate::naive1::simulate_naive1(&spec, &Eca::rule90(), &init, n as i64);
        assert!(
            dnc.host_time < naive.host_time / 1.3,
            "D&C {} should beat naive {}",
            dnc.host_time,
            naive.host_time
        );
    }

    #[test]
    fn slowdown_tracks_n_log_n() {
        // Theorem 2 shape: slowdown(2n)/slowdown(n) ≈ 2·log(2n)/log(n),
        // clearly below the naive ratio of 4.
        let init_a = inputs::random_bits(24, 64);
        let init_b = inputs::random_bits(25, 128);
        let s_a = check_equiv(&Eca::rule90(), 64, 64, &init_a).slowdown();
        let s_b = check_equiv(&Eca::rule90(), 128, 128, &init_b).slowdown();
        let ratio = s_b / s_a;
        assert!(ratio > 1.6 && ratio < 3.4, "n log n doubling, got {ratio}");
    }

    #[test]
    fn space_is_near_linear_not_quadratic() {
        // Proposition 3: σ(|V|) = O(|V|^{1/2}) = O(n) for T = n — so
        // doubling n doubles (not quadruples) the footprint.
        let s128 = {
            let init = inputs::random_bits(26, 128);
            check_equiv(&Eca::rule90(), 128, 128, &init).space as f64
        };
        let s256 = {
            let init = inputs::random_bits(26, 256);
            check_equiv(&Eca::rule90(), 256, 256, &init).space as f64
        };
        let ratio = s256 / s128;
        assert!(
            ratio < 2.5,
            "space should scale ~linearly in n, got ×{ratio}"
        );
        assert!((s256 as usize) < 256 * 256 / 4, "far below |V|");
    }

    #[test]
    fn multiprocessor_spec_is_rejected() {
        let init = inputs::random_bits(31, 16);
        let spec = MachineSpec::new(1, 16, 4, 1);
        assert_eq!(
            try_simulate_dnc1(&spec, &Eca::rule110(), &init, 4).err(),
            Some(SimError::UniprocessorOnly {
                engine: "dnc1",
                p: 4
            })
        );
    }

    #[test]
    fn leaf_size_ablation_runs() {
        let n = 32u64;
        let init = inputs::random_bits(27, n as usize);
        let spec = MachineSpec::new(1, n, 1, 1);
        let guest = run_linear(&spec, &Eca::rule110(), &init, n as i64);
        for leaf in [1i64, 2, 4, 8] {
            let rep = simulate_dnc1_with_leaf(&spec, &Eca::rule110(), &init, n as i64, leaf);
            rep.assert_matches(&guest.mem, &guest.values);
        }
    }
}
