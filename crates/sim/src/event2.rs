//! Event-driven sparse core for the `d = 2` naive simulation.
//!
//! The same meters/values split as [`crate::event1`], adapted to the
//! mesh.  The `d = 2` access charges are irrational, so the dense tiled
//! kernel ([`crate::naive2`]) meters through a *register chain*: a
//! single f64 accumulator replaying table lookups in point order.  Two
//! observations make that replicable without touching all processors:
//!
//! * the chain's addend sequence depends only on the block-local
//!   position `(ii, jj)` and the row parity — a missing in-block
//!   neighbor contributes nothing whether the point sits at the mesh
//!   border or at a processor boundary — so **every processor's chain
//!   is the same chain**, and one O(q)-per-stage replay serves all `p`;
//! * communication differs only by the number of adjacent host sides
//!   `s ∈ {0, 2, 3, 4}`, giving ≤ 4 distinct per-processor meter
//!   trajectories (corner / edge / interior / lone), each replayed with
//!   its exact `s·b`-hop chain plus the outbound product term.
//!
//! Values advance through the same copy-on-write
//! [`bsmp_machine::SparseState`] + [`bsmp_machine::Frontier`] pair, on
//! the von Neumann neighborhood.  Ineligible runs (multi-cell or
//! clock-reading programs) fall back to the dense loop.

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_hram::{CostMeter, CostTable, Word};
use bsmp_machine::{
    lease_scratch, ExecPolicy, Frontier, MachineSpec, MeshProgram, SparseState, StageClock,
};
use bsmp_trace::{RunMeta, Tracer};

use crate::error::SimError;
use crate::event1::EventCoreStats;
use crate::naive2::try_simulate_naive2_impl;
use crate::report::SimReport;
use crate::{settle_scenario, stage_totals};

/// [`crate::naive2::try_simulate_naive2_traced`] on the event core.
/// Bit-identical report and trace; falls back to the dense loop when
/// the run does not satisfy the core's preconditions.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_naive2_event(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    naive2_event_impl(spec, prog, init, steps, plan, exec, tracer, None)
}

/// Run the event core fault-free and report its resident footprint
/// alongside the simulation report (the `bench --mem` probe).
pub fn naive2_event_footprint(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> Result<(SimReport, EventCoreStats), SimError> {
    let mut stats = EventCoreStats::default();
    let rep = naive2_event_impl(
        spec,
        prog,
        init,
        steps,
        &FaultPlan::none(),
        ExecPolicy::auto(),
        &mut Tracer::off(),
        Some(&mut stats),
    )?;
    Ok((rep, stats))
}

/// Per-side-class replica of one processor's dense meter trajectory.
struct SideClass {
    meter: CostMeter,
    /// Adjacent host-grid sides (0, 2, 3, or 4).
    sides: usize,
    cost: f64,
    comm_delta: f64,
}

#[allow(clippy::too_many_arguments)]
fn naive2_event_impl(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
    mut stats: Option<&mut EventCoreStats>,
) -> Result<SimReport, SimError> {
    if spec.d != 2 {
        return Err(SimError::DimensionMismatch {
            expected: 2,
            got: spec.d,
        });
    }
    let side = spec.mesh_side() as usize;
    let n = side * side;
    let sp = spec.proc_side() as usize;
    let m = prog.m();
    if m as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: m as u64,
        });
    }
    if init.len() != n * m {
        return Err(SimError::InitLength {
            expected: n * m,
            got: init.len(),
        });
    }
    if !side.is_multiple_of(sp) {
        return Err(SimError::IndivisibleMeshSide {
            side: side as u64,
            proc_side: sp as u64,
        });
    }
    plan.validate()?;
    let eligible = steps >= 1 && m == 1 && prog.time_invariant();
    if !eligible {
        let reason = if steps < 1 {
            "no guest steps to schedule"
        } else if m != 1 {
            "multi-cell program (event core needs m = 1)"
        } else {
            "clock-reading program (quiescence unsound)"
        };
        if let Some(st) = stats.as_deref_mut() {
            st.nodes = n;
            st.used_event_core = false;
            st.fallback = Some(reason);
        }
        let mut rep = try_simulate_naive2_impl(spec, prog, init, steps, plan, exec, tracer, false)?;
        rep.core_fallback = Some(reason);
        return Ok(rep);
    }
    let b = side / sp;
    let q = b * b;
    let p = sp * sp;
    let access = spec.access_fn();
    let hop = spec.neighbor_distance();
    let mut session = FaultSession::new(
        plan,
        FaultEnv {
            p,
            hop,
            checkpoint_words: spec.node_mem(),
            proc_side: sp,
        },
    );
    let va = q * m;
    let vb = q * m + q;
    let table = CostTable::new(access, q * m + 2 * q);
    let accesses = 8 * q as u64 - 4 * b as u64;

    // ≤ 4 distinct per-processor meter trajectories, keyed by the number
    // of adjacent host sides.
    let sides_of = |pid: usize| {
        let (pi_, pj) = (pid % sp, pid / sp);
        let mut s = 0usize;
        if pi_ > 0 {
            s += 1;
        }
        if pi_ + 1 < sp {
            s += 1;
        }
        if pj > 0 {
            s += 1;
        }
        if pj + 1 < sp {
            s += 1;
        }
        s
    };
    let mut class_idx = [usize::MAX; 5];
    let mut classes: Vec<SideClass> = Vec::new();
    let class_map: Vec<usize> = (0..p)
        .map(|pid| {
            let s = sides_of(pid);
            if class_idx[s] == usize::MAX {
                class_idx[s] = classes.len();
                classes.push(SideClass {
                    meter: CostMeter::new(),
                    sides: s,
                    cost: 0.0,
                    comm_delta: 0.0,
                });
            }
            class_idx[s]
        })
        .collect();

    let threads = if exec.resolved().min(p) > 1 && q >= 256 {
        exec.resolved().min(p.max(1))
    } else {
        1
    };

    let mut clock = StageClock::new();
    let mut scratch = lease_scratch(p);
    tracer.ensure_procs(p);

    // m = 1: the initial value plane is the initial image itself.
    let mut state = SparseState::new(init);
    let mut frontier = Frontier::new();
    let mut writes: Vec<(usize, Word)> = Vec::new();
    if let Some(st) = stats.as_deref_mut() {
        st.nodes = n;
        st.used_event_core = true;
    }

    // The shared access chain: the dense kernel's register accumulator,
    // continued across stages.  At m = 1 the touched block address of
    // local point `l` is `l` itself, so the addend sequence is fixed by
    // (ii, jj, parity) alone.
    let mut acc = 0.0f64;
    let cb = table.charges();

    for t in 1..=steps {
        tracer.begin_stage("step");
        let tally = tracer.tally();

        // Replay the chain for this stage (identical for every
        // processor): border rows in point order, interior rows with the
        // branch-free middle — the same iteration the dense kernel runs.
        let (rp, rn) = if t % 2 == 1 { (va, vb) } else { (vb, va) };
        let cbp = &cb[rp..rp + q];
        let cbn = &cb[rn..rn + q];
        {
            let point_acc = |ii: usize, jj: usize, acc: &mut f64| {
                let l = jj * b + ii;
                *acc += cb[l];
                if ii > 0 {
                    *acc += cbp[l - 1];
                }
                if ii + 1 < b {
                    *acc += cbp[l + 1];
                }
                if jj > 0 {
                    *acc += cbp[l - b];
                }
                if jj + 1 < b {
                    *acc += cbp[l + b];
                }
                *acc += cbp[l];
                *acc += cb[l];
                *acc += cbn[l];
            };
            for jj in 0..b {
                if jj == 0 || jj + 1 == b {
                    for ii in 0..b {
                        point_acc(ii, jj, &mut acc);
                    }
                    continue;
                }
                point_acc(0, jj, &mut acc);
                for ii in 1..b - 1 {
                    let l = jj * b + ii;
                    acc += cb[l];
                    acc += cbp[l - 1];
                    acc += cbp[l + 1];
                    acc += cbp[l - b];
                    acc += cbp[l + b];
                    acc += cbp[l];
                    acc += cb[l];
                    acc += cbn[l];
                }
                point_acc(b - 1, jj, &mut acc);
            }
        }

        for class in classes.iter_mut() {
            let comm_before = class.meter.comm;
            let t0 = class.meter.total();
            // In-loop hops (one per cross-processor fetch, b per
            // adjacent side), then the outbound product term — the
            // dense kernel's exact add sequence.
            let mut comm = 0.0;
            for _ in 0..class.sides * b {
                comm += hop;
            }
            class.meter.access = acc;
            class.meter.ops += accesses;
            class.meter.add_table_hits(accesses);
            class.meter.add_compute(q as f64);
            comm += (class.sides * b) as f64 * hop;
            class.meter.add_comm(comm);
            class.cost = class.meter.total() - t0;
            class.comm_delta = class.meter.comm - comm_before;
        }

        // Values on the von Neumann neighborhood: gather-then-write.
        writes.clear();
        let mut active = 0usize;
        {
            let bd = prog.boundary();
            let mut eval = |v: usize| {
                let (i, j) = (v % side, v / side);
                let own = state.get(v);
                let w = if i > 0 { state.get(v - 1) } else { bd };
                let e = if i + 1 < side { state.get(v + 1) } else { bd };
                let s = if j > 0 { state.get(v - side) } else { bd };
                let nn = if j + 1 < side {
                    state.get(v + side)
                } else {
                    bd
                };
                let out = prog.delta(i, j, t, own, own, w, e, s, nn);
                if out != own {
                    writes.push((v, out));
                }
            };
            if t == 1 {
                active = n;
                for v in 0..n {
                    eval(v);
                }
            } else {
                for v in frontier.drain(t) {
                    active += 1;
                    eval(v);
                }
            }
        }
        for &(v, out) in &writes {
            state.set(v, out);
            let (i, j) = (v % side, v / side);
            frontier.mark(t + 1, v);
            if i > 0 {
                frontier.mark(t + 1, v - 1);
            }
            if i + 1 < side {
                frontier.mark(t + 1, v + 1);
            }
            if j > 0 {
                frontier.mark(t + 1, v - side);
            }
            if j + 1 < side {
                frontier.mark(t + 1, v + side);
            }
        }

        for pid in 0..p {
            let class = &classes[class_map[pid]];
            scratch.per_proc[pid] = class.cost;
            scratch.per_comm[pid] = class.comm_delta;
            if let Some(tl) = tally {
                tl.add(pid, q as u64, 2 * (class.sides * b) as u64);
            }
        }
        clock.add_stage_faulted(&scratch.per_proc, &scratch.per_comm, &mut session)?;
        tracer.end_stage(stage_totals(&clock, &session.stats), threads);

        if let Some(st) = stats.as_deref_mut() {
            let resident = state.bytes_resident()
                + frontier.bytes()
                + writes.capacity() * std::mem::size_of::<(usize, Word)>();
            st.peak_bytes = st.peak_bytes.max(resident);
            st.peak_active = st.peak_active.max(active);
            st.total_active += active as u64;
        }
    }
    settle_scenario(&mut clock, &mut session, tracer, threads);

    let values = state.materialize();
    let mem = values.clone(); // m = 1: blocks hold the final values
    let meter = (0..p).fold(CostMeter::new(), |acc_m, pid| {
        acc_m.merged(&classes[class_map[pid]].meter)
    });
    // Guest model time, replayed in O(steps): at m = 1 every node
    // touches cell 0, so the per-step max over nodes is the (identical)
    // cost of node (0, 0) (see bsmp_machine::mesh_guest_time).
    let guest_time = {
        let guest = spec.guest_of();
        let gaccess = guest.access_fn();
        let ghop = guest.neighbor_distance();
        let mut time = 0.0;
        for t in 1..=steps {
            time += 2.0 * gaccess.charge(prog.cell(0, 0, t)) + 4.0 * ghop + 1.0;
        }
        time
    };
    tracer.finish_run(
        RunMeta {
            engine: "naive2",
            d: 2,
            n: spec.n,
            m: spec.m,
            p: spec.p,
            steps: steps.max(0) as u64,
        },
        clock.parallel_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values,
        host_time: clock.parallel_time,
        guest_time,
        meter,
        // The dense kernel reserves the full table span on every
        // processor (Hram::reserve_table), so S is the table length.
        space: table.len(),
        stages: clock.stages,
        faults: session.into_stats(),
        core_fallback: None,
    })
}
