//! The Proposition-2 executor over octahedron/tetrahedron topological
//! separators (`d = 2`) — the machinery behind Theorem 5.
//!
//! Structurally the exact twin of [`crate::exec1`], with the Figure-3
//! refinements of [`bsmp_geometry::Domain2`] in place of the diamond
//! splits: the computed box `[0, side)² × [1, T]` is wrapped in one big
//! clipped octahedron; octahedra split into 6 octahedra + 8 tetrahedra,
//! tetrahedra into 4 tetrahedra + 1 octahedron; cells of radius
//! `≤ leaf_h` are executed naively.  Node-column state blocks become
//! per-*pillar* (mesh position) blocks.
//!
//! We keep the two executors as explicit twins rather than abstracting
//! over the dimension: the boundary cases (input plane, wall proximity,
//! pillar enumeration) differ in exactly the places a shared abstraction
//! would have to re-expose, and the paper, too, develops the two cases
//! separately (Sections 4 and 5).

use bsmp_machine::{FxHashMap, FxHashSet};

use bsmp_geometry::{ClippedDomain2, Domain2, IBox, Pt3};
use bsmp_hram::{CostTable, Hram, Word};
use bsmp_machine::{MachineSpec, MeshProgram};

use crate::error::SimError;
use crate::zone::ZoneAlloc;

/// Memo key: radius, cell kind offset, and clamped distances to the six
/// dag walls (beyond `2h + 2` a wall cannot influence the footprint).
type ShapeKey = (i64, i64, i64, i64, i64, i64, i64, i64);

/// The recursive `d = 2` executor.
pub struct CellExec<'a, P: MeshProgram> {
    prog: &'a P,
    side: i64,
    t_steps: i64,
    m: usize,
    cbox: IBox,
    pub ram: Hram,
    live: FxHashMap<Pt3, usize>,
    /// Pillar (mesh node) → state block base (only `m > 1`).
    state: FxHashMap<(i64, i64), usize>,
    space_memo: FxHashMap<ShapeKey, usize>,
    pub leaf_h: i64,
    /// Plan-time charge table covering the leaf scratch band (see
    /// `DiamondExec::table`): the execute loop's reads/writes take
    /// their `1 + f(x)` from here, counted in `table_hits`, with scalar
    /// fallback above the table.  Meters stay bit-identical.
    table: CostTable,
}

impl<'a, P: MeshProgram> CellExec<'a, P> {
    pub fn new(spec: &MachineSpec, prog: &'a P, t_steps: i64, leaf_h: i64) -> Self {
        assert_eq!(spec.d, 2);
        assert_eq!(spec.p, 1, "CellExec is the uniprocessor engine");
        let side = spec.mesh_side() as i64;
        let m = prog.m();
        assert_eq!(m as u64, spec.m);
        // Leaf scratch bound: a radius-h cell has ≤ (2h + 1)³ points,
        // O(h²) preboundary slots, and ≤ (2h + 1)²·m state words.
        // Capped so degenerate leaf choices cannot balloon the table.
        let h = 2 * leaf_h.max(1) as usize + 1;
        let leaf_span = (h * h * h + 6 * h * h + h * h * m + 8).min(1 << 20);
        let table = CostTable::new(spec.access_fn(), leaf_span);
        CellExec {
            prog,
            side,
            t_steps,
            m,
            cbox: IBox::new(0, side, 0, side, 1, t_steps + 1),
            ram: Hram::new(spec.access_fn(), 0),
            live: FxHashMap::default(),
            state: FxHashMap::default(),
            space_memo: FxHashMap::default(),
            leaf_h: leaf_h.max(1),
            table,
        }
    }

    #[inline]
    fn in_exec(&self, u: &ClippedDomain2, p: Pt3) -> bool {
        u.cell.contains(p) && self.cbox.contains(p)
    }

    #[inline]
    fn in_dag(&self, p: Pt3) -> bool {
        0 <= p.x
            && p.x < self.side
            && 0 <= p.y
            && p.y < self.side
            && 0 <= p.t
            && p.t <= self.t_steps
    }

    /// Executed points of `U = cell ∩ cbox`, time-major.
    fn exec_points(&self, u: &ClippedDomain2) -> Vec<Pt3> {
        let mut v = u.points();
        v.sort();
        v
    }

    /// The executor's preboundary: dag vertices outside `U` that are
    /// predecessors of a vertex of `U` (computed from the clipped points
    /// to avoid enumerating huge unclipped cells).
    pub fn gamma(&self, u: &ClippedDomain2) -> Vec<Pt3> {
        let mut out: FxHashSet<Pt3> = FxHashSet::default();
        u.for_each_point(|p| {
            for q in p.preds() {
                if self.in_dag(q) && !self.in_exec(u, q) {
                    out.insert(q);
                }
            }
        });
        let mut v: Vec<Pt3> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Mesh pillars with at least one executed vertex.
    fn pillars(&self, u: &ClippedDomain2) -> Vec<(i64, i64)> {
        let mut set: FxHashSet<(i64, i64)> = FxHashSet::default();
        u.for_each_point(|p| {
            set.insert((p.x, p.y));
        });
        let mut v: Vec<(i64, i64)> = set.into_iter().collect();
        v.sort();
        v
    }

    /// Executed `t`-range of a pillar (inclusive).
    fn pillar_range(&self, u: &ClippedDomain2, x: i64, y: i64) -> (i64, i64) {
        let h = u.cell.h();
        let kx = (x - u.cell.dx.cx).abs();
        let ky = (y - u.cell.dy.cx).abs();
        let lo = (u.cell.dx.ct - h + kx).max(u.cell.dy.ct - h + ky) + 1;
        let hi = (u.cell.dx.ct + h - kx).min(u.cell.dy.ct + h - ky);
        (lo.max(self.cbox.t0), hi.min(self.cbox.t1 - 1))
    }

    /// Upper bound on values any ancestor can want back: the top two
    /// vertices of every pillar (side exposure beyond the clip edge
    /// points outside the dag; neighbor pillar ranges shift by at most
    /// one per step, so upward exposure is limited to the top two rows).
    fn outbound_cap(&self, u: &ClippedDomain2) -> usize {
        let mut count = 0usize;
        for (x, y) in self.pillars(u) {
            let (lo, hi) = self.pillar_range(u, x, y);
            if lo <= hi {
                count += 2.min((hi - lo + 1) as usize);
            }
        }
        count + 8
    }

    /// Non-empty children in topological order (Figure 3).
    fn kids(&self, u: &ClippedDomain2) -> Vec<ClippedDomain2> {
        u.cell
            .children()
            .into_iter()
            .map(|c| ClippedDomain2::new(c, self.cbox))
            .filter(|c| c.points_count() > 0)
            .collect()
    }

    fn shape_key(&self, u: &ClippedDomain2) -> ShapeKey {
        let h = u.cell.h();
        let cl = 2 * h + 2;
        (
            h,
            u.cell.dy.ct - u.cell.dx.ct,
            u.cell.dx.cx.clamp(-cl, cl),
            (self.side - u.cell.dx.cx).clamp(-cl, cl),
            u.cell.dy.cx.clamp(-cl, cl),
            (self.side - u.cell.dy.cx).clamp(-cl, cl),
            u.cell.dx.ct.clamp(-cl, cl),
            (self.t_steps + 1 - u.cell.dx.ct).clamp(-cl, cl),
        )
    }

    /// The space function `S(U)` of Proposition 2, memoized per shape.
    pub fn space(&mut self, u: &ClippedDomain2) -> usize {
        let key = self.shape_key(u);
        if let Some(&s) = self.space_memo.get(&key) {
            return s;
        }
        let s = if u.cell.h() <= self.leaf_h || u.cell.h() % 2 == 1 {
            let vol = u.points_count() as usize;
            let g = self.gamma(u).len();
            let st = if self.m > 1 {
                self.pillars(u).len() * self.m
            } else {
                0
            };
            vol + g + st
        } else {
            let kids = self.kids(u);
            let mut zmax = 0usize;
            let mut p_u = 0usize;
            for k in &kids {
                zmax = zmax.max(self.space(k));
                let st = if self.m > 1 {
                    self.pillars(k).len() * self.m
                } else {
                    0
                };
                p_u += self.gamma(k).len() + st;
            }
            let st_u = if self.m > 1 {
                self.pillars(u).len() * self.m
            } else {
                0
            };
            zmax + p_u + self.gamma(u).len() + self.outbound_cap(u) + st_u
        };
        self.space_memo.insert(key, s);
        s
    }

    fn move_value(
        &mut self,
        q: Pt3,
        zone: &mut ZoneAlloc,
        from: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let old = *self.live.get(&q).ok_or(SimError::Internal {
            what: "moved value not live",
        })?;
        let new = zone.alloc();
        self.ram.relocate(old, new);
        from.free_if_owned(old);
        self.live.insert(q, new);
        Ok(())
    }

    fn move_state(
        &mut self,
        xy: (i64, i64),
        zone: &mut ZoneAlloc,
        from: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let old = *self.state.get(&xy).ok_or(SimError::Internal {
            what: "moved state block not live",
        })?;
        let new = zone.alloc_block(self.m);
        for c in 0..self.m {
            self.ram.relocate(old + c, new + c);
        }
        from.free_block_if_owned(old, self.m);
        self.state.insert(xy, new);
        Ok(())
    }

    /// Execute `U` with inputs live in `parent_zone`; park `want` (and
    /// all pillar states) back there.
    ///
    /// Bookkeeping invariant violations surface as
    /// [`SimError::Internal`] rather than panicking, so a chaos run can
    /// degrade gracefully.
    pub fn exec(
        &mut self,
        u: &ClippedDomain2,
        want: &FxHashSet<Pt3>,
        parent_zone: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        if u.cell.h() <= self.leaf_h || u.cell.h() % 2 == 1 {
            return self.exec_leaf(u, want, parent_zone);
        }
        let s_u = self.space(u);
        let kids = self.kids(u);
        let mut zmax = 0usize;
        for k in &kids {
            zmax = zmax.max(self.space(k));
        }
        let mut zone = ZoneAlloc::new(zmax, s_u - zmax);

        let g_u = self.gamma(u);
        for q in &g_u {
            self.move_value(*q, &mut zone, parent_zone)?;
        }
        let pillars_u = self.pillars(u);
        if self.m > 1 {
            for &xy in &pillars_u {
                self.move_state(xy, &mut zone, parent_zone)?;
            }
        }
        let mut zone_set: FxHashSet<Pt3> = g_u.into_iter().collect();

        let kid_gammas: Vec<FxHashSet<Pt3>> = kids
            .iter()
            .map(|k| self.gamma(k).into_iter().collect())
            .collect();
        for (i, kid) in kids.iter().enumerate() {
            let mut want_kid: FxHashSet<Pt3> = FxHashSet::default();
            let relevant = |q: Pt3, me: &Self| me.in_exec(kid, q) || kid_gammas[i].contains(&q);
            for g in kid_gammas.iter().skip(i + 1) {
                for &q in g {
                    if relevant(q, self) {
                        want_kid.insert(q);
                    }
                }
            }
            for &q in want {
                if relevant(q, self) {
                    want_kid.insert(q);
                }
            }
            for q in &kid_gammas[i] {
                zone_set.remove(q);
            }
            self.exec(kid, &want_kid, &mut zone)?;
            zone_set.extend(want_kid);
        }

        let mut wanted: Vec<Pt3> = want.iter().copied().collect();
        wanted.sort();
        for q in wanted {
            if !zone_set.remove(&q) {
                return Err(SimError::Internal {
                    what: "wanted value missing from zone",
                });
            }
            self.move_value(q, parent_zone, &mut zone)?;
        }
        let mut rest: Vec<Pt3> = zone_set.into_iter().collect();
        rest.sort();
        for q in rest {
            let old = self.live.remove(&q).ok_or(SimError::Internal {
                what: "zone bookkeeping lost a live value",
            })?;
            zone.free_if_owned(old);
        }
        if self.m > 1 {
            for &xy in &pillars_u {
                self.move_state(xy, parent_zone, &mut zone)?;
            }
        }
        Ok(())
    }

    fn exec_leaf(
        &mut self,
        u: &ClippedDomain2,
        want: &FxHashSet<Pt3>,
        parent_zone: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let pts = self.exec_points(u);
        if pts.is_empty() {
            return Ok(());
        }
        let g_u = self.gamma(u);
        let pillars_u = self.pillars(u);
        let n_pts = pts.len();
        let mut slot: FxHashMap<Pt3, usize> =
            FxHashMap::with_capacity_and_hasher(n_pts + g_u.len(), Default::default());
        for (i, p) in pts.iter().enumerate() {
            slot.insert(*p, i);
        }
        for (i, q) in g_u.iter().enumerate() {
            let dst = n_pts + i;
            let old = *self.live.get(q).ok_or(SimError::Internal {
                what: "preboundary value not live at leaf ingest",
            })?;
            self.ram.relocate(old, dst);
            parent_zone.free_if_owned(old);
            self.live.insert(*q, dst);
            slot.insert(*q, dst);
        }
        let mut st_base: FxHashMap<(i64, i64), usize> = FxHashMap::default();
        if self.m > 1 {
            let base0 = n_pts + g_u.len();
            for (i, &xy) in pillars_u.iter().enumerate() {
                let dst = base0 + i * self.m;
                let old = *self.state.get(&xy).ok_or(SimError::Internal {
                    what: "state block not live at leaf ingest",
                })?;
                for c in 0..self.m {
                    self.ram.relocate(old + c, dst + c);
                }
                parent_zone.free_block_if_owned(old, self.m);
                st_base.insert(xy, dst);
            }
        }

        let bd = self.prog.boundary();
        for (i, p) in pts.iter().enumerate() {
            let (x, y, t) = (p.x, p.y, p.t);
            let read_val = |me: &mut Self, q: Pt3| -> Result<Word, SimError> {
                if !me.in_dag(q) {
                    return Ok(bd);
                }
                let a = *slot.get(&q).ok_or(SimError::Internal {
                    what: "operand unavailable in leaf",
                })?;
                Ok(me.ram.read_via(&me.table, a))
            };
            let prev = read_val(self, Pt3::new(x, y, t - 1))?;
            let west = read_val(self, Pt3::new(x - 1, y, t - 1))?;
            let east = read_val(self, Pt3::new(x + 1, y, t - 1))?;
            let south = read_val(self, Pt3::new(x, y - 1, t - 1))?;
            let north = read_val(self, Pt3::new(x, y + 1, t - 1))?;
            let own = if self.m > 1 {
                let c = self.prog.cell(x as usize, y as usize, t);
                self.ram.read_via(&self.table, st_base[&(x, y)] + c)
            } else {
                prev
            };
            let out = self.prog.delta(
                x as usize, y as usize, t, own, prev, west, east, south, north,
            );
            self.ram.compute();
            if self.m > 1 {
                let c = self.prog.cell(x as usize, y as usize, t);
                self.ram.write_via(&self.table, st_base[&(x, y)] + c, out);
            }
            self.ram.write_via(&self.table, i, out);
            self.live.insert(*p, i);
        }

        let mut wanted: Vec<Pt3> = want.iter().copied().collect();
        wanted.sort();
        for q in wanted {
            let old = *self.live.get(&q).ok_or(SimError::Internal {
                what: "wanted value not present in leaf",
            })?;
            let new = parent_zone.alloc();
            self.ram.relocate(old, new);
            self.live.insert(q, new);
        }
        for p in &pts {
            if !want.contains(p) {
                self.live.remove(p);
            }
        }
        for q in &g_u {
            if !want.contains(q) {
                self.live.remove(q);
            }
        }
        if self.m > 1 {
            for &xy in &pillars_u {
                let base = st_base[&xy];
                let new = parent_zone.alloc_block(self.m);
                for c in 0..self.m {
                    self.ram.relocate(base + c, new + c);
                }
                self.state.insert(xy, new);
            }
        }
        Ok(())
    }

    /// Seed a live value at an explicit address (multiprocessor engine).
    pub fn seed_value(&mut self, p: Pt3, addr: usize) {
        self.live.insert(p, addr);
    }

    /// Seed a pillar's state-block base address.
    pub fn seed_state(&mut self, xy: (i64, i64), addr: usize) {
        self.state.insert(xy, addr);
    }

    /// Address of a live value, if present.
    pub fn value_addr(&self, p: Pt3) -> Option<usize> {
        self.live.get(&p).copied()
    }

    /// Address of a pillar's state block, if present.
    pub fn state_addr(&self, xy: (i64, i64)) -> Option<usize> {
        self.state.get(&xy).copied()
    }

    /// Drop all live values and states (between cell executions).
    pub fn clear_seeds(&mut self) {
        self.live.clear();
        self.state.clear();
    }

    /// Run the whole simulation; returns `(final_mem, final_values)` in
    /// the guest's node-major layout (node index `y·side + x`).
    pub fn run(&mut self, init: &[Word]) -> Result<(Vec<Word>, Vec<Word>), SimError> {
        let side = self.side as usize;
        let n = side * side;
        let m = self.m;
        assert_eq!(init.len(), n * m);
        if self.t_steps == 0 {
            let values = (0..n)
                .map(|v| init[v * m + self.prog.cell(v % side, v / side, 0)])
                .collect();
            return Ok((init.to_vec(), values));
        }

        let h_top = ((self.side + self.t_steps + 4) as u64).next_power_of_two() as i64;
        let top = ClippedDomain2::new(
            Domain2::octahedron(self.side / 2, self.side / 2, self.t_steps / 2 + 1, h_top),
            self.cbox,
        );
        let s_top = self.space(&top);
        let g_top = self.gamma(&top).len();
        let zone_cap = g_top + m * n + n + 64;
        let mut driver_zone = ZoneAlloc::new(s_top, zone_cap);
        let image = s_top + zone_cap;

        for (i, w) in init.iter().enumerate() {
            self.ram.poke(image + i, *w);
        }
        for y in 0..side {
            for x in 0..side {
                let v = y * side + x;
                let p = Pt3::new(x as i64, y as i64, 0);
                self.live.insert(p, image + v * m + self.prog.cell(x, y, 0));
                if m > 1 {
                    self.state.insert((x as i64, y as i64), image + v * m);
                }
            }
        }

        let want: FxHashSet<Pt3> = (0..self.side)
            .flat_map(|y| (0..self.side).map(move |x| Pt3::new(x, y, 0)))
            .map(|p| Pt3::new(p.x, p.y, self.t_steps))
            .collect();
        self.exec(&top, &want, &mut driver_zone)?;

        let mut values = vec![0 as Word; n];
        for y in 0..side {
            for x in 0..side {
                let v = y * side + x;
                let p = Pt3::new(x as i64, y as i64, self.t_steps);
                let addr = *self.live.get(&p).ok_or(SimError::Internal {
                    what: "final value not live after top-level exec",
                })?;
                values[v] = self.ram.peek(addr);
                if m == 1 {
                    self.ram.relocate(addr, image + v);
                }
            }
        }
        if m > 1 {
            for y in 0..side {
                for x in 0..side {
                    let v = y * side + x;
                    let old = *self
                        .state
                        .get(&(x as i64, y as i64))
                        .ok_or(SimError::Internal {
                            what: "final state block not live after top-level exec",
                        })?;
                    let dst = image + v * m;
                    if old != dst {
                        for c in 0..m {
                            self.ram.relocate(old + c, dst + c);
                        }
                    }
                }
            }
        }
        let mem = (0..n * m).map(|i| self.ram.peek(image + i)).collect();
        Ok((mem, values))
    }
}
