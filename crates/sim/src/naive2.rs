//! The naive simulation for the mesh (`d = 2`): `M_2(n, p, m)` mimics
//! `M_2(n, n, m)` step by step.  Processor `(I, J)` of the `√p × √p`
//! host grid hosts the `b × b` guest sub-mesh with `b = √n/√p`; blocks in
//! natural order, two value planes above them.  Slowdown
//! `O((n/p)^{3/2})` — Proposition 1 with `d = 2`.

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_hram::{CostTable, Hram, Word};
use bsmp_machine::{
    lease_scratch, mesh_guest_time, CoreKind, DisjointSlice, ExecPolicy, MachineSpec, MeshProgram,
    PoolLease, StageClock,
};
use bsmp_trace::{RunMeta, Tracer};

use crate::error::SimError;
use crate::report::SimReport;
use crate::{settle_scenario, stage_totals};

/// Simulate `steps` guest steps of `M_2(n, n, m)` on `M_2(n, p, m)` by
/// the naive method, injecting faults per `plan`.
pub fn try_simulate_naive2_faulted(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_naive2_exec(spec, prog, init, steps, plan, ExecPolicy::auto())
}

/// [`try_simulate_naive2_faulted`] with an explicit host-thread budget.
/// The report is bit-identical for every policy — host threading never
/// touches model time (see DESIGN.md §12).
pub fn try_simulate_naive2_exec(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
) -> Result<SimReport, SimError> {
    try_simulate_naive2_traced(spec, prog, init, steps, plan, exec, &mut Tracer::off())
}

/// [`try_simulate_naive2_exec`] with a [`Tracer`] observing each stage.
/// A disabled tracer costs one `None` check per stage; the report is
/// bit-identical either way, since the tracer only reads the clock.
pub fn try_simulate_naive2_traced(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_naive2_impl(spec, prog, init, steps, plan, exec, tracer, false)
}

/// The pre-tiling per-point reference implementation, kept as the oracle
/// for the kernel bit-identity tests (`tests/kernels.rs`).  Reports 0
/// `table_hits`; every other field is bit-identical to the tiled path.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_naive2_scalar(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_naive2_impl(spec, prog, init, steps, plan, exec, tracer, true)
}

/// Select the execution core for a naive2 run: the dense stage loop or
/// the event-driven sparse core of [`crate::event2`] (bit-identical
/// report and trace; the event core falls back to the dense loop when
/// its preconditions do not hold).
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_naive2_core(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    core: CoreKind,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    match core {
        CoreKind::Dense => {
            try_simulate_naive2_impl(spec, prog, init, steps, plan, exec, tracer, false)
        }
        CoreKind::Event => {
            crate::event2::try_simulate_naive2_event(spec, prog, init, steps, plan, exec, tracer)
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn try_simulate_naive2_impl(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
    force_scalar: bool,
) -> Result<SimReport, SimError> {
    if spec.d != 2 {
        return Err(SimError::DimensionMismatch {
            expected: 2,
            got: spec.d,
        });
    }
    let side = spec.mesh_side() as usize;
    let n = side * side;
    let sp = spec.proc_side() as usize;
    let m = prog.m();
    if m as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: m as u64,
        });
    }
    if init.len() != n * m {
        return Err(SimError::InitLength {
            expected: n * m,
            got: init.len(),
        });
    }
    if !side.is_multiple_of(sp) {
        return Err(SimError::IndivisibleMeshSide {
            side: side as u64,
            proc_side: sp as u64,
        });
    }
    plan.validate()?;
    let b = side / sp; // guest nodes per host-node side
    let q = b * b;
    let access = spec.access_fn();
    let hop = spec.neighbor_distance();
    let mut session = FaultSession::new(
        plan,
        FaultEnv {
            p: sp * sp,
            hop,
            checkpoint_words: spec.node_mem(),
            proc_side: sp,
        },
    );

    // Per-processor layout: blocks [0, q·m), value plane A, value plane B.
    let va = q * m;
    let vb = q * m + q;
    let mut rams: Vec<Hram> = (0..sp * sp)
        .map(|_| Hram::new(access, q * m + 2 * q))
        .collect();

    let proc_of = |i: usize, j: usize| (j / b) * sp + (i / b);
    let loc_of = |i: usize, j: usize| (j % b) * b + (i % b);

    let mut prev: Vec<Word> = vec![0; n];
    for j in 0..side {
        for i in 0..side {
            let v = j * side + i;
            let (pi, l) = (proc_of(i, j), loc_of(i, j));
            for c in 0..m {
                rams[pi].poke(l * m + c, init[v * m + c]);
            }
            let v0 = init[v * m + prog.cell(i, j, 0)];
            rams[pi].poke(va + l, v0);
            prev[v] = v0;
        }
    }

    let mut clock = StageClock::new();
    let mut next = vec![0 as Word; n];
    let (mut row_prev, mut row_next) = (va, vb);

    // Plan-time cost table over the per-processor address range.  The
    // d = 2 charges are irrational (square roots), so the tiled kernel
    // always runs in chain mode: a register accumulator replays the
    // scalar loop's exact IEEE add order with table lookups, and the
    // result is bit-identical by construction (table values come from
    // `AccessFn::charge` itself).
    let table = CostTable::new(access, q * m + 2 * q);

    // Host processors are independent within a stage: each owns its
    // H-RAM and writes a disjoint set of guest cells in `next`.
    let pool = if exec.resolved().min(sp * sp) > 1 && q >= 256 {
        PoolLease::for_procs(sp * sp, exec)
    } else {
        PoolLease::serial()
    };
    let mut scratch = lease_scratch(sp * sp);
    tracer.ensure_procs(sp * sp);
    for t in 1..=steps {
        tracer.begin_stage("step");
        let tally = tracer.tally();
        for (before, ram) in scratch.comm_before.iter_mut().zip(&rams) {
            *before = ram.meter.comm;
        }
        let next_slots = DisjointSlice::new(&mut next);
        let run_scalar = |pid: usize, ram: &mut Hram| -> f64 {
            let (pi_, pj) = (pid % sp, pid / sp);
            let t0 = ram.time();
            let mut comm = 0.0;
            let mut msgs = 0u64;
            for jj in 0..b {
                for ii in 0..b {
                    let (i, j) = (pi_ * b + ii, pj * b + jj);
                    let c = prog.cell(i, j, t);
                    let l = jj * b + ii;
                    let own = ram.read(l * m + c);
                    let bd = prog.boundary();
                    let fetch =
                        |di: isize, dj: isize, ram: &mut Hram, comm: &mut f64, msgs: &mut u64| {
                            let (ni, nj) = (i as isize + di, j as isize + dj);
                            if ni < 0 || nj < 0 || ni >= side as isize || nj >= side as isize {
                                return bd;
                            }
                            let (ni, nj) = (ni as usize, nj as usize);
                            if proc_of(ni, nj) == pid {
                                ram.read(row_prev + loc_of(ni, nj))
                            } else {
                                *comm += hop;
                                *msgs += 1;
                                prev[nj * side + ni]
                            }
                        };
                    let w = fetch(-1, 0, ram, &mut comm, &mut msgs);
                    let e = fetch(1, 0, ram, &mut comm, &mut msgs);
                    let s = fetch(0, -1, ram, &mut comm, &mut msgs);
                    let nn = fetch(0, 1, ram, &mut comm, &mut msgs);
                    let mine = ram.read(row_prev + l);
                    let out = prog.delta(i, j, t, own, mine, w, e, s, nn);
                    ram.compute();
                    ram.write(l * m + c, out);
                    ram.write(row_next + l, out);
                    // Safety: guest cell (i, j) belongs to exactly this
                    // processor's block — no other task writes it.
                    unsafe {
                        *next_slots.get_mut(j * side + i) = out;
                    }
                }
            }
            // Outbound edge values (one per border node per adjacent side).
            let mut sides = 0;
            if pi_ > 0 {
                sides += 1;
            }
            if pi_ + 1 < sp {
                sides += 1;
            }
            if pj > 0 {
                sides += 1;
            }
            if pj + 1 < sp {
                sides += 1;
            }
            comm += (sides * b) as f64 * hop;
            msgs += (sides * b) as u64;
            if let Some(tl) = tally {
                tl.add(pid, q as u64, msgs);
            }
            ram.meter.add_comm(comm);
            ram.time() - t0
        };
        // Tiled kernel: same point order and same charge order per point
        // (own, w, e, s, nn, mine, write-own, write-next), metered
        // through the cost table into a register chain.  Border rows
        // keep gated fetches; interior rows run a branch-free middle.
        let run_tiled = |pid: usize, ram: &mut Hram| -> f64 {
            let (pi_, pj) = (pid % sp, pid / sp);
            ram.reserve_table(&table);
            let t0 = ram.time();
            let mut comm = 0.0;
            let mut msgs = 0u64;
            let mut acc = ram.meter.access;
            let cb = table.charges();
            let cbp = &cb[row_prev..row_prev + q];
            let cbn = &cb[row_next..row_next + q];
            let bd = prog.boundary();
            {
                let mem = ram.mem_table(&table);
                let (blocks, planes) = mem.split_at_mut(q * m);
                let (pa, pb_) = planes.split_at_mut(q);
                let (pprev, pnext): (&[Word], &mut [Word]) = if row_prev == va {
                    (&*pa, pb_)
                } else {
                    (&*pb_, pa)
                };
                let point = |ii: usize,
                             jj: usize,
                             blocks: &mut [Word],
                             pnext: &mut [Word],
                             acc: &mut f64,
                             comm: &mut f64,
                             msgs: &mut u64| {
                    let (i, j) = (pi_ * b + ii, pj * b + jj);
                    let c = prog.cell(i, j, t);
                    let l = jj * b + ii;
                    let a = l * m + c;
                    *acc += cb[a];
                    let own = blocks[a];
                    let w = if ii > 0 {
                        *acc += cbp[l - 1];
                        pprev[l - 1]
                    } else if pi_ > 0 {
                        *comm += hop;
                        *msgs += 1;
                        prev[j * side + i - 1]
                    } else {
                        bd
                    };
                    let e = if ii + 1 < b {
                        *acc += cbp[l + 1];
                        pprev[l + 1]
                    } else if pi_ + 1 < sp {
                        *comm += hop;
                        *msgs += 1;
                        prev[j * side + i + 1]
                    } else {
                        bd
                    };
                    let s = if jj > 0 {
                        *acc += cbp[l - b];
                        pprev[l - b]
                    } else if pj > 0 {
                        *comm += hop;
                        *msgs += 1;
                        prev[(j - 1) * side + i]
                    } else {
                        bd
                    };
                    let nn = if jj + 1 < b {
                        *acc += cbp[l + b];
                        pprev[l + b]
                    } else if pj + 1 < sp {
                        *comm += hop;
                        *msgs += 1;
                        prev[(j + 1) * side + i]
                    } else {
                        bd
                    };
                    *acc += cbp[l];
                    let mine = pprev[l];
                    let out = prog.delta(i, j, t, own, mine, w, e, s, nn);
                    *acc += cb[a];
                    blocks[a] = out;
                    *acc += cbn[l];
                    pnext[l] = out;
                    // Safety: guest cell (i, j) belongs to exactly this
                    // processor's block — no other task writes it.
                    unsafe {
                        *next_slots.get_mut(j * side + i) = out;
                    }
                };
                for jj in 0..b {
                    if jj == 0 || jj + 1 == b {
                        for ii in 0..b {
                            point(ii, jj, blocks, pnext, &mut acc, &mut comm, &mut msgs);
                        }
                        continue;
                    }
                    point(0, jj, blocks, pnext, &mut acc, &mut comm, &mut msgs);
                    let j = pj * b + jj;
                    for ii in 1..b - 1 {
                        let i = pi_ * b + ii;
                        let c = prog.cell(i, j, t);
                        let l = jj * b + ii;
                        let a = l * m + c;
                        acc += cb[a];
                        let own = blocks[a];
                        acc += cbp[l - 1];
                        acc += cbp[l + 1];
                        acc += cbp[l - b];
                        acc += cbp[l + b];
                        acc += cbp[l];
                        let out = prog.delta(
                            i,
                            j,
                            t,
                            own,
                            pprev[l],
                            pprev[l - 1],
                            pprev[l + 1],
                            pprev[l - b],
                            pprev[l + b],
                        );
                        acc += cb[a];
                        blocks[a] = out;
                        acc += cbn[l];
                        pnext[l] = out;
                        // Safety: as above — this block owns cell (i, j).
                        unsafe {
                            *next_slots.get_mut(j * side + i) = out;
                        }
                    }
                    point(b - 1, jj, blocks, pnext, &mut acc, &mut comm, &mut msgs);
                }
            }
            ram.meter.access = acc;
            // Every point reads own + mine and writes twice (4q); local
            // neighbor fetches are 4q − 4b (each edge row/column lacks
            // one in-block neighbor), independent of comm vs boundary.
            let accesses = 8 * q as u64 - 4 * b as u64;
            ram.meter.ops += accesses;
            ram.meter.add_table_hits(accesses);
            ram.meter.add_compute(q as f64);
            let mut sides = 0;
            if pi_ > 0 {
                sides += 1;
            }
            if pi_ + 1 < sp {
                sides += 1;
            }
            if pj > 0 {
                sides += 1;
            }
            if pj + 1 < sp {
                sides += 1;
            }
            comm += (sides * b) as f64 * hop;
            msgs += (sides * b) as u64;
            if let Some(tl) = tally {
                tl.add(pid, q as u64, msgs);
            }
            ram.meter.add_comm(comm);
            ram.time() - t0
        };
        {
            let rams_slots = DisjointSlice::new(&mut rams);
            pool.run_stage(sp * sp, &mut scratch.per_proc, |pid| {
                // Safety: processor pid is claimed by exactly one thread.
                let ram = unsafe { rams_slots.get_mut(pid) };
                if force_scalar {
                    run_scalar(pid, ram)
                } else {
                    run_tiled(pid, ram)
                }
            })?;
        }
        let sc = &mut *scratch;
        for ((delta, ram), before) in sc.per_comm.iter_mut().zip(&rams).zip(&sc.comm_before) {
            *delta = ram.meter.comm - before;
        }
        clock.add_stage_faulted(&scratch.per_proc, &scratch.per_comm, &mut session)?;
        tracer.end_stage(stage_totals(&clock, &session.stats), pool.threads());
        std::mem::swap(&mut prev, &mut next);
        std::mem::swap(&mut row_prev, &mut row_next);
    }
    settle_scenario(&mut clock, &mut session, tracer, pool.threads());

    let mut mem = vec![0 as Word; n * m];
    for j in 0..side {
        for i in 0..side {
            let v = j * side + i;
            let (pi, l) = (proc_of(i, j), loc_of(i, j));
            for c in 0..m {
                mem[v * m + c] = rams[pi].peek(l * m + c);
            }
        }
    }
    let meter = rams
        .iter()
        .fold(bsmp_hram::CostMeter::new(), |acc, r| acc.merged(&r.meter));
    let guest_time = mesh_guest_time(spec, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "naive2",
            d: 2,
            n: spec.n,
            m: spec.m,
            p: spec.p,
            steps: steps.max(0) as u64,
        },
        clock.parallel_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values: prev,
        host_time: clock.parallel_time,
        guest_time,
        meter,
        space: rams.iter().map(|r| r.high_water()).max().unwrap_or(0),
        stages: clock.stages,
        faults: session.into_stats(),
        core_fallback: None,
    })
}

/// Fault-free checked variant.
pub fn try_simulate_naive2(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_naive2_faulted(spec, prog, init, steps, &FaultPlan::none())
}

/// Simulate `steps` guest steps of `M_2(n, n, m)` on `M_2(n, p, m)` by
/// the naive method; panics on invalid parameters (see
/// [`try_simulate_naive2`] for the checked variant).
pub fn simulate_naive2(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_naive2(spec, prog, init, steps).unwrap_or_else(|e| panic!("naive2: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_mesh;
    use bsmp_workloads::{inputs, HeatDiffusion, SystolicMatmul, VonNeumannLife};

    fn check_equiv(
        prog: &impl MeshProgram,
        n: u64,
        p: u64,
        steps: i64,
        init: &[Word],
    ) -> SimReport {
        let spec = MachineSpec::new(2, n, p, prog.m() as u64);
        let guest = run_mesh(&spec, prog, init, steps);
        let rep = simulate_naive2(&spec, prog, init, steps);
        rep.assert_matches(&guest.mem, &guest.values);
        rep
    }

    #[test]
    fn life_matches_direct_execution() {
        let init = inputs::random_bits(11, 64);
        for p in [1u64, 4, 16, 64] {
            check_equiv(&VonNeumannLife::fredkin(), 64, p, 8, &init);
        }
    }

    #[test]
    fn heat_matches_direct_execution() {
        let init = inputs::random_words(12, 64, 10_000);
        check_equiv(&HeatDiffusion::new(0), 64, 4, 10, &init);
    }

    #[test]
    fn systolic_matmul_on_host() {
        let s = 4usize;
        let prog = SystolicMatmul::new(s);
        let a = inputs::random_matrix(13, s, 50);
        let b = inputs::random_matrix(14, s, 50);
        let init = prog.stage_inputs(&a, &b);
        let rep = check_equiv(&prog, (s * s) as u64, 4, prog.steps(), &init);
        let c = prog.extract_c(&rep.values);
        for r in 0..s {
            for q in 0..s {
                let expect: u64 = (0..s).map(|k| a[r][k] * b[k][q]).sum();
                assert_eq!(c[r][q], expect, "C[{r}][{q}]");
            }
        }
    }

    #[test]
    fn slowdown_scales_like_three_halves_power() {
        // d = 2 naive: slowdown Θ((n/p)^{3/2}).
        let n = 256u64; // 16×16 mesh
        let init = inputs::random_bits(15, n as usize);
        let steps = 16i64;
        let s1 = check_equiv(&VonNeumannLife::fredkin(), n, 1, steps, &init).slowdown();
        let s16 = check_equiv(&VonNeumannLife::fredkin(), n, 16, steps, &init).slowdown();
        let ratio = s1 / s16;
        // (n/1)^{3/2} / (n/16)^{3/2} = 16^{3/2} = 64.
        assert!(ratio > 20.0 && ratio < 200.0, "expected ~64×, got {ratio}");
    }

    #[test]
    fn uniform_slowdown_stays_within_nu_envelope() {
        let init = inputs::random_bits(16, 64);
        let spec = MachineSpec::new(2, 64, 4, 1);
        let base = simulate_naive2(&spec, &VonNeumannLife::fredkin(), &init, 8);
        for nu in [1.0, 2.0, 4.0] {
            let plan = FaultPlan::uniform_slowdown(nu);
            let rep =
                try_simulate_naive2_faulted(&spec, &VonNeumannLife::fredkin(), &init, 8, &plan)
                    .unwrap();
            rep.assert_matches(&base.mem, &base.values);
            assert!(rep.host_time >= base.host_time - 1e-9);
            assert!(rep.host_time <= nu * base.host_time + 1e-6, "ν = {nu}");
        }
    }

    #[test]
    fn try_variant_reports_bad_parameters() {
        let init = inputs::random_bits(17, 64);
        let spec = MachineSpec::new(2, 64, 4, 1);
        assert!(matches!(
            try_simulate_naive2(&spec, &VonNeumannLife::fredkin(), &init[..60], 4),
            Err(SimError::InitLength { .. })
        ));
        let linear = MachineSpec::new(1, 64, 4, 1);
        assert!(matches!(
            try_simulate_naive2(&linear, &VonNeumannLife::fredkin(), &init, 4),
            Err(SimError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }
}
