//! **Theorem 1, `d = 2`** — multiprocessor simulation of the mesh
//! `M_2(n, n, m)` by `M_2(n, p, m)`.
//!
//! The paper proves the `d = 2` multiprocessor case by an orchestration
//! "closely patterned" on Section 4.2 but published only in the
//! technical report [BP95a], which is not available.  This engine
//! implements the *block-banded* generalization of Figure 2 — the
//! analogue of the first multiprocessor scheme of §4.2:
//!
//! * processor `(I, J)` of the `√p × √p` host grid owns the `b × b`
//!   guest sub-mesh with `b = √(n/p)`; its nodes' private memories live
//!   in its local H-RAM;
//! * space-time is covered by the octahedron/tetrahedron cells of radius
//!   `b/2` (the Theorem-5 honeycomb), executed in topological order;
//!   each cell is executed by the processor owning its center, with the
//!   full Theorem-5 recursion ([`CellExec`]) on that processor's H-RAM;
//! * cells bridging two blocks (the tetrahedra of the honeycomb, ~1/3 of
//!   the volume) borrow the foreign pillars' private memories and
//!   boundary values, charged at `words × hops × √(n/p)` — which stays a
//!   lower-order term of the locality slowdown (the borrowed state is
//!   `O(m)` per pillar once per `Θ(b)` steps).
//!
//! This reproduces Theorem 1's `d = 2` bound for `m ≥ (n/p)^{1/4}`
//! (ranges 2–4, where the paper's own `s*` equals the block/band scale);
//! for very small `m` the full rearranged scheme would shave a further
//! factor (range 1), which we document as out of scope along with
//! [BP95a].  The analytic four-range `A` is available in
//! `bsmp_analytic::theorem1` for comparison (experiment E5).

use bsmp_machine::{FxHashMap, FxHashSet};

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_geometry::{cell_cover, ClippedDomain2, IBox, Pt3};
use bsmp_hram::Word;
use bsmp_machine::{
    lease_scratch, mesh_guest_time, CoreKind, EventQueue, MachineSpec, MeshProgram, ScratchLease,
    StageClock,
};
use bsmp_trace::{RunMeta, Tracer};

use crate::error::SimError;
use crate::exec2::CellExec;
use crate::report::SimReport;
use crate::zone::ZoneAlloc;
use crate::{settle_scenario, stage_totals};

/// Simulate `steps` guest steps of `M_2(n, n, m)` on `M_2(n, p, m)`,
/// injecting faults per `plan`, with preconditions checked.
pub fn try_simulate_multi2_faulted(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_multi2_traced(spec, prog, init, steps, plan, &mut Tracer::off())
}

/// [`try_simulate_multi2_faulted`] with a [`Tracer`] observing each
/// honeycomb stage row; the report is bit-identical either way.
pub fn try_simulate_multi2_traced(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_multi2_core(spec, prog, init, steps, plan, CoreKind::Dense, tracer)
}

/// [`try_simulate_multi2_traced`] with an explicit execution core: the
/// dense cell loop or the discrete-event calendar ([`CoreKind::Event`])
/// that drains honeycomb cells by projection-center time sum.  Reports
/// are bit-identical across cores.
pub fn try_simulate_multi2_core(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    core: CoreKind,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    let expected = spec.n as usize * prog.m();
    if init.len() != expected {
        return Err(SimError::InitLength {
            expected,
            got: init.len(),
        });
    }
    plan.validate()?;
    let mut eng = Engine2::new(spec, prog, steps, plan, core)?;
    eng.tracer = std::mem::take(tracer);
    eng.tracer.ensure_procs(spec.p as usize);
    let rep = eng.run(init).and_then(|()| eng.finish(spec, prog, steps));
    *tracer = std::mem::take(&mut eng.tracer);
    rep
}

/// Simulate `steps` guest steps of `M_2(n, n, m)` on `M_2(n, p, m)`,
/// with preconditions checked.
pub fn try_simulate_multi2(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_multi2_faulted(spec, prog, init, steps, &FaultPlan::none())
}

/// Simulate `steps` guest steps of `M_2(n, n, m)` on `M_2(n, p, m)`.
pub fn simulate_multi2(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_multi2(spec, prog, init, steps).unwrap_or_else(|e| panic!("multi2: {e}"))
}

struct Engine2<'a, P: MeshProgram> {
    side: usize,
    sp: usize,
    b: usize,
    m: usize,
    t_steps: i64,
    hop: f64,
    cbox: IBox,
    execs: Vec<CellExec<'a, P>>,
    prog: &'a P,
    vals: FxHashMap<Pt3, Word>,
    /// value → (proc, addr) in that proc's value-home zone.
    home: FxHashMap<Pt3, (usize, usize)>,
    home_zones: Vec<ZoneAlloc>,
    transit_zones: Vec<ZoneAlloc>,
    clock: StageClock,
    /// Reusable stage buffers (snapshots + deltas), allocated once.
    scratch: ScratchLease,
    session: FaultSession,
    tracer: Tracer,
    tile_space: usize,
    state_base: usize,
    core: CoreKind,
}

impl<'a, P: MeshProgram> Engine2<'a, P> {
    fn new(
        spec: &MachineSpec,
        prog: &'a P,
        steps: i64,
        plan: &FaultPlan,
        core: CoreKind,
    ) -> Result<Self, SimError> {
        if spec.d != 2 {
            return Err(SimError::DimensionMismatch {
                expected: 2,
                got: spec.d,
            });
        }
        let side = spec.mesh_side() as usize;
        let sp = spec.proc_side() as usize;
        let m = prog.m();
        if m as u64 != spec.m {
            return Err(SimError::DensityMismatch {
                spec_m: spec.m,
                prog_m: m as u64,
            });
        }
        if !side.is_multiple_of(sp) {
            return Err(SimError::IndivisibleMeshSide {
                side: side as u64,
                proc_side: sp as u64,
            });
        }
        let b = side / sp;
        if b < 2 {
            return Err(SimError::BlockTooSmall { block: b as u64 });
        }
        let cbox = IBox::new(0, side as i64, 0, side as i64, 1, steps + 1);

        let pseudo = MachineSpec::new(2, spec.n, 1, spec.m);
        let leaf = (m as i64 / 2).max(1);
        let mut probe = CellExec::new(&pseudo, prog, steps, leaf);
        let interior = ClippedDomain2::new(
            bsmp_geometry::Domain2::octahedron(
                (side / 2) as i64,
                (side / 2) as i64,
                (steps / 2).max(1),
                (b / 2).max(1) as i64,
            ),
            cbox,
        );
        let tile_space = probe.space(&interior) * 2 + 128;
        let transit_cap = 8 * b * b * m + 32 * b * b + 1024;
        let home_cap = 16 * b * b + 8 * b + 512;
        let transit_base = tile_space;
        let home_base = transit_base + transit_cap;
        let state_base = home_base + home_cap;
        let _ = transit_base;

        let execs = (0..sp * sp)
            .map(|_| CellExec::new(&pseudo, prog, steps, leaf))
            .collect();
        let home_zones = (0..sp * sp)
            .map(|_| ZoneAlloc::new(home_base, home_cap))
            .collect();
        let transit_zones = (0..sp * sp)
            .map(|_| ZoneAlloc::new(transit_base, transit_cap))
            .collect();

        let hop = spec.neighbor_distance();
        let session = FaultSession::new(
            plan,
            FaultEnv {
                p: sp * sp,
                hop,
                checkpoint_words: spec.node_mem(),
                proc_side: sp,
            },
        );
        Ok(Engine2 {
            side,
            sp,
            b,
            m,
            t_steps: steps,
            hop,
            cbox,
            execs,
            prog,
            vals: FxHashMap::default(),
            home: FxHashMap::default(),
            home_zones,
            transit_zones,
            clock: StageClock::new(),
            scratch: lease_scratch(sp * sp),
            session,
            tracer: Tracer::off(),
            tile_space,
            state_base,
            core,
        })
    }

    #[inline]
    fn proc_of_node(&self, x: i64, y: i64) -> usize {
        let bx = (x as usize).min(self.side - 1) / self.b;
        let by = (y as usize).min(self.side - 1) / self.b;
        by * self.sp + bx
    }

    /// Manhattan distance between two processors on the host grid.
    fn proc_hops(&self, a: usize, c: usize) -> f64 {
        let (ax, ay) = (a % self.sp, a / self.sp);
        let (cx, cy) = (c % self.sp, c / self.sp);
        ((ax as i64 - cx as i64).abs() + (ay as i64 - cy as i64).abs()) as f64
    }

    /// Local home address of node `(x, y)`'s private-memory block on its
    /// own processor.
    fn state_home(&self, x: i64, y: i64) -> usize {
        let lx = (x as usize) % self.b;
        let ly = (y as usize) % self.b;
        self.state_base + (ly * self.b + lx) * self.m
    }

    /// Credit `points` space-time points and `msgs` messages to
    /// processor `pr` in the tracer's per-stage tally (no-op when off).
    #[inline]
    fn tmark(&self, pr: usize, points: u64, msgs: u64) {
        if let Some(tl) = self.tracer.tally() {
            tl.add(pr, points, msgs);
        }
    }

    /// Snapshot each processor's (total time, comm charge) into the
    /// reusable scratch — marks the start of a stage.
    fn begin_stage(&mut self, label: &str) {
        self.tracer.begin_stage(label);
        let scratch = &mut *self.scratch;
        for ((time, comm), e) in scratch
            .time_before
            .iter_mut()
            .zip(scratch.comm_before.iter_mut())
            .zip(&self.execs)
        {
            *time = e.ram.time();
            *comm = e.ram.meter.comm;
        }
    }

    /// Close the stage opened by the matching [`begin_stage`](Self::begin_stage).
    fn close_stage(&mut self) -> Result<(), SimError> {
        let scratch = &mut *self.scratch;
        for (((delta, comm), e), (t0, c0)) in scratch
            .per_proc
            .iter_mut()
            .zip(scratch.per_comm.iter_mut())
            .zip(&self.execs)
            .zip(scratch.time_before.iter().zip(&scratch.comm_before))
        {
            *delta = e.ram.time() - t0;
            *comm = e.ram.meter.comm - c0;
        }
        self.clock.add_stage_faulted(
            &self.scratch.per_proc,
            &self.scratch.per_comm,
            &mut self.session,
        )?;
        self.tracer
            .end_stage(stage_totals(&self.clock, &self.session.stats), 1);
        Ok(())
    }

    fn gamma(&self, piece: &ClippedDomain2) -> Vec<Pt3> {
        // Preds of adjacent points repeat, so collect with duplicates
        // and sort + dedup once — cheaper than hashing every candidate,
        // and the output (a sorted set) is unchanged.
        let mut v: Vec<Pt3> = Vec::new();
        piece.for_each_point(|pt| {
            for q in pt.preds() {
                if q.x >= 0
                    && q.x < self.side as i64
                    && q.y >= 0
                    && q.y < self.side as i64
                    && q.t >= 0
                    && !piece.contains(q)
                {
                    v.push(q);
                }
            }
        });
        v.sort();
        v.dedup();
        v
    }

    fn outbound(&self, piece: &ClippedDomain2) -> Vec<Pt3> {
        let mut out = Vec::new();
        piece.for_each_point(|pt| {
            if pt.t == self.t_steps
                || pt
                    .succs()
                    .iter()
                    .any(|sq| self.cbox.contains(*sq) && !piece.contains(*sq))
            {
                out.push(pt);
            }
        });
        out
    }

    /// Fetch a value into processor `pr`'s transit zone (charging local
    /// accesses and inter-processor hops), returning the address.
    fn stage_value(&mut self, pt: Pt3, pr: usize) -> Result<usize, SimError> {
        let (owner, addr) = *self.home.get(&pt).ok_or(SimError::Internal {
            what: "preboundary value not homed",
        })?;
        let w = if let Some(&w) = self.vals.get(&pt) {
            w
        } else {
            self.execs[owner].ram.peek(addr)
        };
        let _ = self.execs[owner].ram.read(addr);
        if owner != pr {
            let hops = self.proc_hops(owner, pr);
            self.execs[owner].ram.meter.add_comm(hops * self.hop / 2.0);
            self.execs[pr].ram.meter.add_comm(hops * self.hop / 2.0);
            self.tmark(pr, 0, 1);
        }
        let dst = self.transit_zones[pr].alloc();
        self.execs[pr].ram.write(dst, w);
        Ok(dst)
    }

    /// Execute one honeycomb cell on its owner.
    fn run_cell(&mut self, piece: &ClippedDomain2) -> Result<(), SimError> {
        if piece.points_count() == 0 {
            return Ok(());
        }
        let pr = self.proc_of_node(
            piece.cell.dx.cx.clamp(0, self.side as i64 - 1),
            piece.cell.dy.cx.clamp(0, self.side as i64 - 1),
        );

        // Stage preboundary values (private copies, consumed by exec).
        let g = self.gamma(piece);
        let mut seeds = Vec::with_capacity(g.len());
        for pt in &g {
            let addr = self.stage_value(*pt, pr)?;
            seeds.push((*pt, addr));
        }

        // Stage pillar states (borrow foreign ones, charged).
        let mut state_seeds: Vec<((i64, i64), usize, usize, usize)> = Vec::new();
        if self.m > 1 {
            let mut pillars: Vec<(i64, i64)> = Vec::new();
            piece.for_each_point(|pt| {
                pillars.push((pt.x, pt.y));
            });
            pillars.sort();
            pillars.dedup();
            for (x, y) in pillars {
                let hpr = self.proc_of_node(x, y);
                let home_addr = self.state_home(x, y);
                let copy = self.transit_zones[pr].alloc_block(self.m);
                if hpr == pr {
                    self.execs[pr].ram.relocate_block(home_addr, copy, self.m);
                } else {
                    let hops = self.proc_hops(hpr, pr);
                    let c = self.m as f64 * hops * self.hop;
                    self.execs[hpr].ram.meter.add_comm(c / 2.0);
                    self.execs[pr].ram.meter.add_comm(c / 2.0);
                    self.tmark(pr, 0, self.m as u64);
                    for cc in 0..self.m {
                        let w = self.execs[hpr].ram.read(home_addr + cc);
                        self.execs[pr].ram.write(copy + cc, w);
                    }
                }
                state_seeds.push(((x, y), copy, home_addr, hpr));
            }
        }

        // Execute via the Theorem-5 recursion on the owner's H-RAM.
        let out_pts = self.outbound(piece);
        let want: FxHashSet<Pt3> = out_pts.iter().copied().collect();
        {
            let exec = &mut self.execs[pr];
            exec.clear_seeds();
            for (pt, addr) in &seeds {
                exec.seed_value(*pt, *addr);
            }
            for ((x, y), addr, _, _) in &state_seeds {
                exec.seed_state((*x, *y), *addr);
            }
        }
        let space = self.execs[pr].space(piece);
        assert!(
            space <= self.tile_space,
            "cell footprint {space} exceeds budget"
        );
        let mut zone = std::mem::replace(&mut self.transit_zones[pr], ZoneAlloc::new(0, 0));
        let exec_res = self.execs[pr].exec(piece, &want, &mut zone);
        self.transit_zones[pr] = zone;
        exec_res?;
        self.tmark(pr, piece.points_count() as u64, 0);

        // Harvest outbound values: persist them at the *consumer-side*
        // home (the processor owning the value's node).
        for pt in out_pts {
            let addr = self.execs[pr].value_addr(pt).ok_or(SimError::Internal {
                what: "cell output not parked",
            })?;
            let w = self.execs[pr].ram.peek(addr);
            let _ = self.execs[pr].ram.read(addr);
            self.transit_zones[pr].free_if_owned(addr);
            self.vals.insert(pt, w);
            let hpr = self.proc_of_node(pt.x, pt.y);
            if hpr != pr {
                let hops = self.proc_hops(hpr, pr);
                self.execs[pr].ram.meter.add_comm(hops * self.hop / 2.0);
                self.execs[hpr].ram.meter.add_comm(hops * self.hop / 2.0);
                self.tmark(pr, 0, 1);
            }
            if let Some((opr, oaddr)) = self.home.get(&pt).copied() {
                self.home_zones[opr].free(oaddr);
            }
            let dst = self.home_zones[hpr].alloc();
            self.execs[hpr].ram.write(dst, w);
            self.home.insert(pt, (hpr, dst));
        }

        // Return borrowed states.
        if self.m > 1 {
            for ((x, y), copy, home_addr, hpr) in state_seeds {
                let parked = self.execs[pr]
                    .state_addr((x, y))
                    .ok_or(SimError::Internal {
                        what: "pillar state not parked",
                    })?;
                if hpr == pr {
                    self.execs[pr].ram.relocate_block(parked, home_addr, self.m);
                } else {
                    let hops = self.proc_hops(hpr, pr);
                    let c = self.m as f64 * hops * self.hop;
                    self.execs[hpr].ram.meter.add_comm(c / 2.0);
                    self.execs[pr].ram.meter.add_comm(c / 2.0);
                    self.tmark(pr, 0, self.m as u64);
                    for cc in 0..self.m {
                        let w = self.execs[pr].ram.read(parked + cc);
                        self.execs[hpr].ram.write(home_addr + cc, w);
                    }
                }
                self.transit_zones[pr].free_block(parked, self.m);
                let _ = copy;
            }
        }
        self.execs[pr].clear_seeds();
        Ok(())
    }

    fn run(&mut self, init: &[Word]) -> Result<(), SimError> {
        // Lay out the guest image (uncharged: problem statement).
        let side = self.side;
        let m = self.m;
        for y in 0..side {
            for x in 0..side {
                let pr = self.proc_of_node(x as i64, y as i64);
                let base = self.state_home(x as i64, y as i64);
                for c in 0..m {
                    self.execs[pr]
                        .ram
                        .poke(base + c, init[(y * side + x) * m + c]);
                }
                // Input-row value: a view into the state home.
                let p0 = Pt3::new(x as i64, y as i64, 0);
                self.home.insert(p0, (pr, base + self.prog.cell(x, y, 0)));
            }
        }
        if self.t_steps == 0 {
            return Ok(());
        }

        let hb = (self.b / 2).max(1) as i64;
        let cells = cell_cover(self.cbox, hb, Pt3::new(0, 0, 0));
        // Stage rows: group by the projection-center time sum.
        self.begin_stage("cells");
        match self.core {
            CoreKind::Dense => {
                let mut last_key = i64::MIN;
                for cell in cells {
                    let key = cell.cell.dx.ct + cell.cell.dy.ct;
                    if key != last_key && last_key != i64::MIN {
                        self.close_stage()?;
                        self.begin_stage("cells");
                        self.gc(key / 2 - 2 * hb)?;
                    }
                    last_key = key;
                    self.run_cell(&cell)?;
                }
            }
            CoreKind::Event => {
                // Calendar drain keyed by the projection-center time sum.
                // The cover is sorted by (key, dx.cx, dy.cx) and buckets
                // pop FIFO, so each popped bucket is exactly one dense
                // stage row in the dense order — meters stay
                // bit-identical.
                let mut cal = EventQueue::new();
                for cell in cells {
                    cal.schedule(cell.cell.dx.ct + cell.cell.dy.ct, cell);
                }
                let mut first = true;
                while let Some((key, row)) = cal.pop_stage() {
                    if !first {
                        self.close_stage()?;
                        self.begin_stage("cells");
                        self.gc(key / 2 - 2 * hb)?;
                    }
                    first = false;
                    for cell in &row {
                        self.run_cell(cell)?;
                    }
                }
            }
        }
        self.close_stage()?;
        Ok(())
    }

    /// Drop home values below the reachable horizon.
    fn gc(&mut self, cutoff: i64) -> Result<(), SimError> {
        let mut dead: Vec<Pt3> = self
            .home
            .keys()
            .copied()
            .filter(|pt| pt.t < cutoff && pt.t != self.t_steps && pt.t > 0)
            .collect();
        dead.sort();
        for pt in dead {
            let (pr, addr) = self.home.remove(&pt).ok_or(SimError::Internal {
                what: "home placement missing for a dead value",
            })?;
            self.home_zones[pr].free(addr);
        }
        Ok(())
    }

    fn finish(
        &mut self,
        spec: &MachineSpec,
        prog: &impl MeshProgram,
        steps: i64,
    ) -> Result<SimReport, SimError> {
        let side = self.side;
        let m = self.m;
        // Final write-back for m = 1 (value is the state).
        if m == 1 && steps > 0 {
            self.begin_stage("writeback");
            for y in 0..side {
                for x in 0..side {
                    let pt = Pt3::new(x as i64, y as i64, steps);
                    let (pr, addr) = *self.home.get(&pt).ok_or(SimError::Internal {
                        what: "final value not homed",
                    })?;
                    let w = self.vals[&pt];
                    let _ = self.execs[pr].ram.read(addr);
                    let hpr = self.proc_of_node(x as i64, y as i64);
                    let dst = self.state_home(x as i64, y as i64);
                    self.execs[hpr].ram.write(dst, w);
                }
            }
            self.close_stage()?;
        }
        settle_scenario(&mut self.clock, &mut self.session, &mut self.tracer, 1);
        let mut mem = vec![0 as Word; side * side * m];
        for y in 0..side {
            for x in 0..side {
                let pr = self.proc_of_node(x as i64, y as i64);
                let base = self.state_home(x as i64, y as i64);
                for c in 0..m {
                    mem[(y * side + x) * m + c] = self.execs[pr].ram.peek(base + c);
                }
            }
        }
        let values: Vec<Word> = if steps == 0 {
            (0..side * side)
                .map(|v| mem[v * m + self.prog.cell(v % side, v / side, 0)])
                .collect()
        } else {
            (0..side * side)
                .map(|v| self.vals[&Pt3::new((v % side) as i64, (v / side) as i64, steps)])
                .collect()
        };
        let meter = self
            .execs
            .iter()
            .fold(bsmp_hram::CostMeter::new(), |acc, e| {
                acc.merged(&e.ram.meter)
            });
        let guest_time = mesh_guest_time(spec, prog, steps);
        self.tracer.finish_run(
            RunMeta {
                engine: "multi2",
                d: 2,
                n: spec.n,
                m: spec.m,
                p: spec.p,
                steps: steps.max(0) as u64,
            },
            self.clock.parallel_time,
            guest_time,
        );
        Ok(SimReport {
            mem,
            values,
            host_time: self.clock.parallel_time,
            guest_time,
            meter,
            space: self
                .execs
                .iter()
                .map(|e| e.ram.high_water())
                .max()
                .unwrap_or(0),
            stages: self.clock.stages,
            faults: self.session.stats.clone(),
            core_fallback: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_mesh;
    use bsmp_workloads::{inputs, HeatDiffusion, SystolicMatmul, VonNeumannLife};

    fn check_equiv(
        prog: &impl MeshProgram,
        n: u64,
        p: u64,
        steps: i64,
        init: &[Word],
    ) -> SimReport {
        let spec = MachineSpec::new(2, n, p, prog.m() as u64);
        let guest = run_mesh(&spec, prog, init, steps);
        let rep = simulate_multi2(&spec, prog, init, steps);
        rep.assert_matches(&guest.mem, &guest.values);
        rep
    }

    #[test]
    fn life_multiproc() {
        let init = inputs::random_bits(50, 64);
        for p in [1u64, 4, 16] {
            check_equiv(&VonNeumannLife::fredkin(), 64, p, 8, &init);
        }
    }

    #[test]
    fn heat_multiproc() {
        let init = inputs::random_words(51, 64, 5_000);
        check_equiv(&HeatDiffusion::new(10), 64, 4, 6, &init);
    }

    #[test]
    fn nonsquare_times() {
        let init = inputs::random_bits(52, 64);
        for steps in [1i64, 3, 13] {
            check_equiv(&VonNeumannLife::b2s12(), 64, 4, steps, &init);
        }
    }

    #[test]
    fn systolic_matmul_multiproc() {
        let s = 4usize;
        let prog = SystolicMatmul::new(s);
        let a = inputs::random_matrix(53, s, 40);
        let b = inputs::random_matrix(54, s, 40);
        let init = prog.stage_inputs(&a, &b);
        let rep = check_equiv(&prog, (s * s) as u64, 4, prog.steps(), &init);
        let c = prog.extract_c(&rep.values);
        for r in 0..s {
            for q in 0..s {
                let expect: u64 = (0..s).map(|k| a[r][k] * b[k][q]).sum();
                assert_eq!(c[r][q], expect);
            }
        }
    }

    #[test]
    fn locality_shape_beats_naive_growth() {
        // Theorem 1 d = 2 shape: the D&C host's locality slowdown grows
        // far slower than the naive (n/p)^{1/2} law.
        let p = 4u64;
        let a_of = |side: u64| {
            let n = side * side;
            let init = inputs::random_bits(55, n as usize);
            let steps = (side / 2) as i64;
            let spec = MachineSpec::new(2, n, p, 1);
            let rep = simulate_multi2(&spec, &VonNeumannLife::fredkin(), &init, steps);
            let naive =
                crate::naive2::simulate_naive2(&spec, &VonNeumannLife::fredkin(), &init, steps);
            (rep.locality_slowdown(n, p), naive.locality_slowdown(n, p))
        };
        let (two_a, naive_a) = a_of(16);
        let (two_b, naive_b) = a_of(32);
        let naive_growth = naive_b / naive_a;
        let two_growth = two_b / two_a;
        assert!(
            two_growth < naive_growth,
            "D&C growth ×{two_growth} must undercut naive ×{naive_growth}"
        );
    }

    #[test]
    fn uniform_slowdown_stays_within_nu_envelope() {
        let init = inputs::random_bits(56, 64);
        let spec = MachineSpec::new(2, 64, 4, 1);
        let prog = VonNeumannLife::fredkin();
        let base = try_simulate_multi2(&spec, &prog, &init, 6).unwrap();
        for nu in [1.0f64, 2.0, 4.0] {
            let plan = bsmp_faults::FaultPlan::uniform_slowdown(nu);
            let rep = try_simulate_multi2_faulted(&spec, &prog, &init, 6, &plan).unwrap();
            rep.assert_matches(&base.mem, &base.values);
            assert!(
                base.host_time <= rep.host_time + 1e-9
                    && rep.host_time <= nu * base.host_time + 1e-6,
                "ν={nu}: {} vs base {}",
                rep.host_time,
                base.host_time
            );
            if nu == 1.0 {
                assert_eq!(rep.host_time.to_bits(), base.host_time.to_bits());
            }
        }
    }

    #[test]
    fn try_variant_reports_bad_parameters() {
        let prog = VonNeumannLife::fredkin();
        let init = inputs::random_bits(57, 64);
        let spec = MachineSpec::new(2, 64, 4, 1);
        assert_eq!(
            try_simulate_multi2(&spec, &prog, &init[..10], 4).err(),
            Some(SimError::InitLength {
                expected: 64,
                got: 10
            })
        );
        // p = n gives block side 1 — too small for the strip machinery.
        let tight = MachineSpec::new(2, 64, 64, 1);
        assert_eq!(
            try_simulate_multi2(&tight, &prog, &init, 4).err(),
            Some(SimError::BlockTooSmall { block: 1 })
        );
    }
}
