//! **Theorem 5** — divide-and-conquer uniprocessor simulation of the
//! mesh, built on the [`crate::exec2`] executor: for `T_n ≥ √n`,
//! a `T_n`-step computation of `M_2(n, n, 1)` runs on `M_2(n, 1, 1)`
//! with slowdown `O(n log n)`; the `m > 1` generalization mirrors
//! Theorem 3 with *executable cells* of radius `~m/2`.

use bsmp_faults::{FaultPlan, FaultStats};
use bsmp_hram::Word;
use bsmp_machine::{mesh_guest_time, MachineSpec, MeshProgram};
use bsmp_trace::{RunMeta, StageTotals, Tracer};

use crate::error::SimError;
use crate::exec2::CellExec;
use crate::report::SimReport;

/// Simulate `steps` guest steps of `M_2(n, n, m)` on the uniprocessor
/// `M_2(n, 1, m)`, with preconditions checked.
pub fn try_simulate_dnc2(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    let leaf_h = (prog.m() as i64 / 2).max(1);
    try_simulate_dnc2_with_leaf(spec, prog, init, steps, leaf_h)
}

/// Simulate `steps` guest steps of `M_2(n, n, m)` on the uniprocessor
/// `M_2(n, 1, m)`.
pub fn simulate_dnc2(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_dnc2(spec, prog, init, steps).unwrap_or_else(|e| panic!("dnc2: {e}"))
}

/// As [`try_simulate_dnc2`] with an explicit leaf radius.
pub fn try_simulate_dnc2_with_leaf(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    leaf_h: i64,
) -> Result<SimReport, SimError> {
    try_simulate_dnc2_traced(spec, prog, init, steps, leaf_h, &mut Tracer::off())
}

/// [`try_simulate_dnc2_with_leaf`] with a [`Tracer`] observing the run
/// as a single bulk stage.
pub fn try_simulate_dnc2_traced(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    leaf_h: i64,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    if spec.d != 2 {
        return Err(SimError::DimensionMismatch {
            expected: 2,
            got: spec.d,
        });
    }
    if spec.p != 1 {
        return Err(SimError::UniprocessorOnly {
            engine: "dnc2",
            p: spec.p,
        });
    }
    if prog.m() as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: prog.m() as u64,
        });
    }
    let expected = spec.n as usize * prog.m();
    if init.len() != expected {
        return Err(SimError::InitLength {
            expected,
            got: init.len(),
        });
    }
    tracer.ensure_procs(1);
    tracer.begin_stage("run");
    let mut exec = CellExec::new(spec, prog, steps, leaf_h);
    let (mem, values) = exec.run(init)?;
    let host_time = exec.ram.time();
    if let Some(tl) = tracer.tally() {
        tl.add(0, spec.n * steps.max(0) as u64, 0);
    }
    tracer.end_stage(
        StageTotals {
            parallel: host_time,
            busy: host_time,
            comm: exec.ram.meter.comm,
            ..StageTotals::default()
        },
        1,
    );
    let guest_time = mesh_guest_time(spec, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "dnc2",
            d: 2,
            n: spec.n,
            m: spec.m,
            p: 1,
            steps: steps.max(0) as u64,
        },
        host_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values,
        host_time,
        guest_time,
        meter: exec.ram.meter,
        space: exec.ram.high_water(),
        stages: 0,
        faults: FaultStats::default(),
        core_fallback: None,
    })
}

/// As [`try_simulate_dnc2`] with a fault scenario applied to the run
/// treated as one bulk stage (the uniprocessor view of DESIGN.md §14).
/// A [`FaultPlan::none`] plan takes the plain path bit-identically.
pub fn try_simulate_dnc2_faulted(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_dnc2_faulted_traced(spec, prog, init, steps, plan, &mut Tracer::off())
}

/// [`try_simulate_dnc2_faulted`] with a [`Tracer`] observing the run.
pub fn try_simulate_dnc2_faulted_traced(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    plan.validate()?;
    let leaf_h = (prog.m() as i64 / 2).max(1);
    if plan.is_none() {
        return try_simulate_dnc2_traced(spec, prog, init, steps, leaf_h, tracer);
    }
    let rep = try_simulate_dnc2_with_leaf(spec, prog, init, steps, leaf_h)?;
    crate::scenario_over_report(
        rep,
        RunMeta {
            engine: "dnc2",
            d: 2,
            n: spec.n,
            m: spec.m,
            p: 1,
            steps: steps.max(0) as u64,
        },
        spec.neighbor_distance(),
        spec.node_mem(),
        plan,
        tracer,
    )
}

/// As [`simulate_dnc2`] with an explicit leaf radius.
pub fn simulate_dnc2_with_leaf(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
    leaf_h: i64,
) -> SimReport {
    try_simulate_dnc2_with_leaf(spec, prog, init, steps, leaf_h)
        .unwrap_or_else(|e| panic!("dnc2: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_mesh;
    use bsmp_workloads::{inputs, HeatDiffusion, SystolicMatmul, VonNeumannLife};

    fn check_equiv(prog: &impl MeshProgram, n: u64, steps: i64, init: &[Word]) -> SimReport {
        let spec = MachineSpec::new(2, n, 1, prog.m() as u64);
        let guest = run_mesh(&spec, prog, init, steps);
        let rep = simulate_dnc2(&spec, prog, init, steps);
        rep.assert_matches(&guest.mem, &guest.values);
        rep
    }

    #[test]
    fn life_small_meshes() {
        for side in [2u64, 3, 4, 8] {
            let n = side * side;
            let init = inputs::random_bits(31 + side, n as usize);
            check_equiv(&VonNeumannLife::fredkin(), n, side as i64, &init);
        }
    }

    #[test]
    fn life_nonsquare_time() {
        let init = inputs::random_bits(32, 16);
        for steps in [1i64, 3, 9] {
            check_equiv(&VonNeumannLife::b2s12(), 16, steps, &init);
        }
    }

    #[test]
    fn heat_equivalence() {
        let init = inputs::random_words(33, 36, 10_000);
        check_equiv(&HeatDiffusion::new(100), 36, 7, &init);
    }

    #[test]
    fn systolic_matmul_via_dnc() {
        let s = 3usize;
        let prog = SystolicMatmul::new(s);
        let a = inputs::random_matrix(34, s, 30);
        let b = inputs::random_matrix(35, s, 30);
        let init = prog.stage_inputs(&a, &b);
        let rep = check_equiv(&prog, (s * s) as u64, prog.steps(), &init);
        let c = prog.extract_c(&rep.values);
        for r in 0..s {
            for q in 0..s {
                let expect: u64 = (0..s).map(|k| a[r][k] * b[k][q]).sum();
                assert_eq!(c[r][q], expect);
            }
        }
    }

    #[test]
    fn dnc2_beats_naive2_shape() {
        // Theorem 5 vs Proposition 1 (d = 2): n·log n vs n^{3/2} — check
        // the growth-rate gap over a 4× size increase.
        let run = |side: u64| {
            let n = side * side;
            let init = inputs::random_bits(36, n as usize);
            let spec = MachineSpec::new(2, n, 1, 1);
            let d = simulate_dnc2(&spec, &VonNeumannLife::fredkin(), &init, side as i64);
            let v = crate::naive2::simulate_naive2(
                &spec,
                &VonNeumannLife::fredkin(),
                &init,
                side as i64,
            );
            (d.slowdown(), v.slowdown())
        };
        let (d8, v8) = run(8);
        let (d16, v16) = run(16);
        // Naive slowdown grows ~n^{3/2} = 8× per side-doubling (n ×4);
        // D&C grows ~n·log n ≈ 4.6×.
        let naive_growth = v16 / v8;
        let dnc_growth = d16 / d8;
        assert!(
            dnc_growth < naive_growth,
            "D&C growth {dnc_growth} must undercut naive growth {naive_growth}"
        );
        assert!(
            naive_growth > 5.5,
            "naive ~(n)^{{3/2}} growth, got {naive_growth}"
        );
        assert!(dnc_growth < 6.5, "D&C ~n log n growth, got {dnc_growth}");
    }

    #[test]
    fn multiprocessor_spec_is_rejected() {
        let init = inputs::random_bits(38, 16);
        let spec = MachineSpec::new(2, 16, 4, 1);
        assert_eq!(
            try_simulate_dnc2(&spec, &VonNeumannLife::fredkin(), &init, 4).err(),
            Some(SimError::UniprocessorOnly {
                engine: "dnc2",
                p: 4
            })
        );
    }

    #[test]
    fn space_scales_with_surface_not_volume() {
        // Proposition 3 (γ = 2/3): σ(|V|) = O(|V|^{2/3}) = O(n) for
        // T = √n: quadrupling n (×8 vertices) should ×4 the space.
        let side_a = 8u64;
        let side_b = 16u64;
        let sp = |side: u64| {
            let n = side * side;
            let init = inputs::random_bits(37, n as usize);
            let spec = MachineSpec::new(2, n, 1, 1);
            simulate_dnc2(&spec, &VonNeumannLife::fredkin(), &init, side as i64).space as f64
        };
        let ratio = sp(side_b) / sp(side_a);
        assert!(
            ratio < 6.0,
            "space should grow ~|V|^{{2/3}} (×4), got ×{ratio}"
        );
    }
}
