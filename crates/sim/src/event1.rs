//! Event-driven sparse core for the `d = 1` naive simulation.
//!
//! The dense [`crate::naive1`] stage loop visits all `n` guest nodes
//! every stage.  Its *meters*, however, are input-independent: at unit
//! density the tiled kernel charges each processor the same
//! `6·(n/p) - 2` table-served accesses per stage, at addresses fixed by
//! geometry and row parity alone, and its communication ledger depends
//! only on which block edges have neighbors.  This core exploits that
//! split:
//!
//! * **meters** are replicated per *edge class* (west edge / interior /
//!   east edge — at most three distinct per-processor cost streams) in
//!   exact dyadic units, reproducing the dense kernel's
//!   [`bsmp_hram::CostMeter`] trajectories bit-for-bit in O(p) per
//!   stage (see DESIGN.md §16 for the exactness argument);
//! * **values** advance through a [`bsmp_machine::Frontier`]: a node is
//!   re-evaluated at stage `t` only if a neighborhood member changed at
//!   `t - 1`, and quiescent regions stay represented by the initial
//!   image inside a copy-on-write [`bsmp_machine::SparseState`].
//!
//! A stage therefore costs O(active points + p), not O(n), which is
//! what lets `M_1` runs at `n = 2^20` finish in milliseconds.  Runs
//! outside the core's preconditions (multi-cell programs, clock-reading
//! programs, tiny blocks, or an exact-unit budget overflow) fall back
//! to the dense loop, so every caller gets a bit-identical report
//! either way.

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_hram::{CostMeter, CostTable, Word};
use bsmp_machine::{
    lease_scratch, ExecPolicy, Frontier, LinearProgram, MachineSpec, SparseState, StageClock,
};
use bsmp_trace::{RunMeta, Tracer};

use crate::error::SimError;
use crate::naive1::try_simulate_naive1_impl;
use crate::report::SimReport;
use crate::{settle_scenario, stage_totals};

/// Resident-footprint and activity statistics of an event-core run
/// (the `bench --mem` probe).
#[derive(Clone, Copy, Debug, Default)]
pub struct EventCoreStats {
    /// Guest nodes.
    pub nodes: usize,
    /// Peak resident bytes of the core's state (copy-on-write pages +
    /// page table + frontier queue + write buffer).  The borrowed
    /// initial image and the final report are not core state.
    pub peak_bytes: usize,
    /// Largest per-stage candidate set.
    pub peak_active: usize,
    /// Total candidate evaluations across all stages.
    pub total_active: u64,
    /// False when the run fell back to the dense loop.
    pub used_event_core: bool,
    /// The delegation precondition that forced a dense fallback
    /// (`None` when the event core actually ran).
    pub fallback: Option<&'static str>,
}

impl EventCoreStats {
    /// Peak resident bytes per guest node.
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.peak_bytes as f64 / self.nodes as f64
        }
    }
}

/// [`crate::naive1::try_simulate_naive1_traced`] on the event core.
/// Bit-identical report and trace; falls back to the dense loop when
/// the run does not satisfy the core's preconditions.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_naive1_event(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    naive1_event_impl(spec, prog, init, steps, plan, exec, tracer, None)
}

/// Run the event core fault-free and report its resident footprint
/// alongside the simulation report (the `bench --mem` probe).
pub fn naive1_event_footprint(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> Result<(SimReport, EventCoreStats), SimError> {
    let mut stats = EventCoreStats::default();
    let rep = naive1_event_impl(
        spec,
        prog,
        init,
        steps,
        &FaultPlan::none(),
        ExecPolicy::auto(),
        &mut Tracer::off(),
        Some(&mut stats),
    )?;
    Ok((rep, stats))
}

/// Per-edge-class replica of one processor's dense meter trajectory.
struct EdgeClass {
    meter: CostMeter,
    /// Communication hops (= messages) this class's processor charges
    /// per stage: 2 per live block edge.
    hops: u64,
    cost: f64,
    comm_delta: f64,
}

impl EdgeClass {
    fn new(hops: u64) -> Self {
        EdgeClass {
            meter: CostMeter::new(),
            hops,
            cost: 0.0,
            comm_delta: 0.0,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn naive1_event_impl(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
    mut stats: Option<&mut EventCoreStats>,
) -> Result<SimReport, SimError> {
    let n = spec.n as usize;
    let p = spec.p as usize;
    let m = prog.m();
    if spec.d != 1 {
        return Err(SimError::DimensionMismatch {
            expected: 1,
            got: spec.d,
        });
    }
    if m as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: m as u64,
        });
    }
    if init.len() != n * m {
        return Err(SimError::InitLength {
            expected: n * m,
            got: init.len(),
        });
    }
    if !n.is_multiple_of(p) {
        return Err(SimError::IndivisibleProcessors {
            n: spec.n,
            p: spec.p,
        });
    }
    plan.validate()?;
    let q = n / p;
    let access = spec.access_fn();
    let table = CostTable::new(access, q * m + 2 * q);
    let per_proc_accesses = (steps.max(0) as u64)
        .saturating_mul(6)
        .saturating_mul(q as u64);
    let exact = table
        .exact_units()
        .filter(|_| table.units_budget_ok(per_proc_accesses));
    // The event core needs the dense kernel's m = 1 fast path (so the
    // per-processor charge stream is input-independent and exactly
    // dyadic) and a clock-oblivious program (so quiescence is sound).
    let eligible = steps >= 1 && m == 1 && q >= 3 && prog.time_invariant() && exact.is_some();
    if !eligible {
        let reason = if steps < 1 {
            "no guest steps to schedule"
        } else if m != 1 {
            "multi-cell program (event core needs m = 1)"
        } else if q < 3 {
            "per-processor block too small (q < 3)"
        } else if !prog.time_invariant() {
            "clock-reading program (quiescence unsound)"
        } else {
            "exact-unit budget overflow"
        };
        if let Some(st) = stats.as_deref_mut() {
            st.nodes = n;
            st.used_event_core = false;
            st.fallback = Some(reason);
        }
        let mut rep = try_simulate_naive1_impl(spec, prog, init, steps, plan, exec, tracer, false)?;
        rep.core_fallback = Some(reason);
        return Ok(rep);
    }
    let e = exact.expect("eligibility checked");
    let hop = spec.neighbor_distance();
    let mut session = FaultSession::new(
        plan,
        FaultEnv {
            p,
            hop,
            checkpoint_words: spec.node_mem(),
            proc_side: 1,
        },
    );

    // The dense kernel's per-stage charge stream, in exact units (see
    // naive1::try_simulate_naive1_impl): 2q block touches at addresses
    // summing to q(q-1)/2, plus the parity-selected value-row spans.
    let va = q * m;
    let vb = q * m + q;
    let m1_addr_sum = (q as u64 * (q as u64 - 1)) / 2;
    let row_units = {
        let rows = |rp: usize, rn: usize| {
            let lr = if q >= 2 {
                e.span_units(rp, rp + q - 2) + e.span_units(rp + 1, rp + q - 1)
            } else {
                0
            };
            lr + e.span_units(rp, rp + q - 1) + e.span_units(rn, rn + q - 1)
        };
        [rows(va, vb), rows(vb, va)]
    };
    let block_units = {
        let (base, slope) = e.affine();
        2 * q as u64 * base + 2 * slope * m1_addr_sum
    };
    let accesses = 6 * q as u64 - 2;
    let mut units: u64 = 0;

    // ≤ 3 distinct per-processor meter trajectories: the two block-edge
    // processors charge 2 hops per stage (one inbound edge value, one
    // outbound), interior processors 4; a lone processor charges none.
    let (mut classes, class_of): (Vec<EdgeClass>, fn(usize, usize) -> usize) = if p == 1 {
        (vec![EdgeClass::new(0)], |_pi, _p| 0)
    } else {
        (
            vec![EdgeClass::new(2), EdgeClass::new(4), EdgeClass::new(2)],
            |pi, p| {
                if pi == 0 {
                    0
                } else if pi + 1 == p {
                    2
                } else {
                    1
                }
            },
        )
    };

    // Same worker count the dense path would report in the trace (the
    // event core has no per-stage fan-out to thread).
    let threads = if exec.resolved().min(p) > 1 && q >= 256 {
        exec.resolved().min(p.max(1))
    } else {
        1
    };

    let mut clock = StageClock::new();
    let mut scratch = lease_scratch(p);
    tracer.ensure_procs(p);

    // Sparse value state: copy-on-write pages over the initial image
    // (m = 1, so the image is the step-0 value row), plus the activity
    // frontier.
    let mut state = SparseState::new(init);
    let mut frontier = Frontier::new();
    let mut writes: Vec<(usize, Word)> = Vec::new();
    if let Some(st) = stats.as_deref_mut() {
        st.nodes = n;
        st.used_event_core = true;
    }

    for t in 1..=steps {
        tracer.begin_stage("step");
        let tally = tracer.tally();

        // Meters: replay the dense kernel's per-stage mutations on each
        // class replica.  `units` is processor-independent, so one
        // accumulator serves every class.
        let stage_row_units = row_units[if t % 2 == 1 { 0 } else { 1 }];
        units += block_units + stage_row_units;
        let access_time = e.time(units);
        for class in classes.iter_mut() {
            let comm_before = class.meter.comm;
            let t0 = class.meter.total();
            let mut comm = 0.0;
            for _ in 0..class.hops {
                comm += hop;
            }
            class.meter.access = access_time;
            class.meter.ops += accesses;
            class.meter.add_table_hits(accesses);
            class.meter.add_compute(q as f64);
            class.meter.add_comm(comm);
            class.cost = class.meter.total() - t0;
            class.comm_delta = class.meter.comm - comm_before;
        }

        // Values: evaluate this stage's candidates (all nodes at stage
        // 1, the frontier afterwards), gather-then-write, and schedule
        // the neighborhoods of changed nodes.
        writes.clear();
        let mut active = 0usize;
        {
            let mut eval = |v: usize| {
                let own = state.get(v);
                let left = if v == 0 {
                    prog.boundary()
                } else {
                    state.get(v - 1)
                };
                let right = if v == n - 1 {
                    prog.boundary()
                } else {
                    state.get(v + 1)
                };
                let out = prog.delta(v, t, own, own, left, right);
                if out != own {
                    writes.push((v, out));
                }
            };
            if t == 1 {
                active = n;
                for v in 0..n {
                    eval(v);
                }
            } else {
                for v in frontier.drain(t) {
                    active += 1;
                    eval(v);
                }
            }
        }
        for &(v, out) in &writes {
            state.set(v, out);
            if v > 0 {
                frontier.mark(t + 1, v - 1);
            }
            frontier.mark(t + 1, v);
            if v + 1 < n {
                frontier.mark(t + 1, v + 1);
            }
        }

        // Expand the class replicas into the per-processor stage shape
        // and close the stage exactly as the dense loop does.
        for pi in 0..p {
            let class = &classes[class_of(pi, p)];
            scratch.per_proc[pi] = class.cost;
            scratch.per_comm[pi] = class.comm_delta;
            if let Some(tl) = tally {
                tl.add(pi, q as u64, class.hops);
            }
        }
        clock.add_stage_faulted(&scratch.per_proc, &scratch.per_comm, &mut session)?;
        tracer.end_stage(stage_totals(&clock, &session.stats), threads);

        if let Some(st) = stats.as_deref_mut() {
            let resident = state.bytes_resident()
                + frontier.bytes()
                + writes.capacity() * std::mem::size_of::<(usize, Word)>();
            st.peak_bytes = st.peak_bytes.max(resident);
            st.peak_active = st.peak_active.max(active);
            st.total_active += active as u64;
        }
    }
    settle_scenario(&mut clock, &mut session, tracer, threads);

    let values = state.materialize();
    let mem = values.clone(); // m = 1: the block row mirrors the values
    let meter = (0..p).fold(CostMeter::new(), |acc, pi| {
        acc.merged(&classes[class_of(pi, p)].meter)
    });
    // Guest model time, replayed in O(steps): at m = 1 every node
    // touches cell 0, so the per-step max over nodes is the (identical)
    // cost of node 0 (see bsmp_machine::linear_guest_time).
    let guest_time = {
        let guest = spec.guest_of();
        let gaccess = guest.access_fn();
        let ghop = guest.neighbor_distance();
        let mut time = 0.0;
        for t in 1..=steps {
            time += 2.0 * gaccess.charge(prog.cell(0, t)) + 2.0 * ghop + 1.0;
        }
        time
    };
    tracer.finish_run(
        RunMeta {
            engine: "naive1",
            d: 1,
            n: spec.n,
            m: spec.m,
            p: spec.p,
            steps: steps.max(0) as u64,
        },
        clock.parallel_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values,
        host_time: clock.parallel_time,
        guest_time,
        meter,
        // The dense kernel reserves the full table span on every
        // processor (Hram::reserve_table), so S is the table length.
        space: table.len(),
        stages: clock.stages,
        faults: session.into_stats(),
        core_fallback: None,
    })
}
