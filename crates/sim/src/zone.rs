//! The parking-zone allocator of Proposition 2's memory discipline.
//!
//! `execute(U)` keeps its transit data — incoming preboundary values,
//! inter-child boundary values, column states — in the address band
//! `[max_i S(U_i), S(U))`, while children reuse `[0, S(U_i))` as working
//! space.  A [`ZoneAlloc`] manages one such band: fixed-size single-word
//! slots, bump allocation with a LIFO free list.

/// Single-word slot allocator over a half-open address band.
#[derive(Clone, Debug)]
pub struct ZoneAlloc {
    base: usize,
    cap: usize,
    next: usize,
    free: Vec<usize>,
    /// Free lists for recycled blocks, by length.
    free_blocks: std::collections::HashMap<usize, Vec<usize>>,
    /// Peak simultaneous occupancy (diagnostics for the space bounds).
    peak: usize,
    live: usize,
    #[cfg(debug_assertions)]
    outstanding: std::collections::HashSet<usize>,
}

impl ZoneAlloc {
    /// A zone over `[base, base + cap)`.
    pub fn new(base: usize, cap: usize) -> Self {
        ZoneAlloc {
            base,
            cap,
            next: 0,
            free: Vec::new(),
            free_blocks: std::collections::HashMap::new(),
            peak: 0,
            live: 0,
            #[cfg(debug_assertions)]
            outstanding: std::collections::HashSet::new(),
        }
    }

    /// Allocate one word.
    ///
    /// # Panics
    /// If the zone overflows — that indicates a bug in the space
    /// recurrence `S(U)`, so it must be loud.
    pub fn alloc(&mut self) -> usize {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(a) = self.free.pop() {
            #[cfg(debug_assertions)]
            assert!(self.outstanding.insert(a), "alloc returned live slot {a}");
            return a;
        }
        assert!(
            self.next < self.cap,
            "zone overflow: cap {} exhausted (S(U) too small)",
            self.cap
        );
        let a = self.base + self.next;
        self.next += 1;
        #[cfg(debug_assertions)]
        assert!(self.outstanding.insert(a), "alloc returned live slot {a}");
        a
    }

    /// Allocate `len` consecutive words (for state blocks).
    pub fn alloc_block(&mut self, len: usize) -> usize {
        if let Some(a) = self.free_blocks.get_mut(&len).and_then(Vec::pop) {
            self.live += len;
            self.peak = self.peak.max(self.live);
            return a;
        }
        assert!(
            self.next + len <= self.cap,
            "zone overflow: block of {len} does not fit in cap {} at {}",
            self.cap,
            self.next
        );
        let a = self.base + self.next;
        self.next += len;
        self.live += len;
        self.peak = self.peak.max(self.live);
        a
    }

    /// Return a single-word slot to the free list.
    pub fn free(&mut self, addr: usize) {
        debug_assert!(addr >= self.base && addr < self.base + self.cap);
        #[cfg(debug_assertions)]
        assert!(self.outstanding.remove(&addr), "double free of slot {addr}");
        self.live -= 1;
        self.free.push(addr);
    }

    /// Release a block for reuse by later same-length allocations.
    pub fn free_block(&mut self, addr: usize, len: usize) {
        self.live -= len;
        self.free_blocks.entry(len).or_default().push(addr);
    }

    /// Free a slot only if it belongs to this zone (no-op for foreign
    /// addresses, e.g. the one-time guest-image region).
    pub fn free_if_owned(&mut self, addr: usize) {
        if addr >= self.base && addr < self.base + self.cap {
            self.free(addr);
        }
    }

    /// Block variant of [`ZoneAlloc::free_if_owned`].
    pub fn free_block_if_owned(&mut self, addr: usize, len: usize) {
        if addr >= self.base && addr < self.base + self.cap {
            self.free_block(addr, len);
        }
    }

    /// Highest address usable by this zone, exclusive.
    pub fn limit(&self) -> usize {
        self.base + self.cap
    }

    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_reuse() {
        let mut z = ZoneAlloc::new(100, 4);
        let a = z.alloc();
        let b = z.alloc();
        assert_eq!((a, b), (100, 101));
        z.free(a);
        assert_eq!(z.alloc(), 100, "freed slot reused");
        assert_eq!(z.peak(), 2);
    }

    #[test]
    fn blocks_are_contiguous() {
        let mut z = ZoneAlloc::new(10, 10);
        let b = z.alloc_block(4);
        assert_eq!(b, 10);
        let c = z.alloc();
        assert_eq!(c, 14);
    }

    #[test]
    #[should_panic(expected = "zone overflow")]
    fn overflow_is_loud() {
        let mut z = ZoneAlloc::new(0, 2);
        z.alloc();
        z.alloc();
        z.alloc();
    }
}
