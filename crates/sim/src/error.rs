//! The engines' error surface: every parameter-validation failure that
//! used to panic is an explicit [`SimError`] on the `try_` paths.

use std::error::Error;
use std::fmt;

use bsmp_faults::{FaultError, FaultStats, PlanParseError, ScenarioExhausted};
use bsmp_machine::{SpecError, StagePanic};

/// Why an engine refused to run (or, for `OutputMismatch`, why a
/// result check failed).
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The engine supports a different layout dimension than the spec's.
    DimensionMismatch { expected: u8, got: u8 },
    /// The program's per-node memory density differs from the spec's.
    DensityMismatch { spec_m: u64, prog_m: u64 },
    /// The initial memory image has the wrong length.
    InitLength { expected: usize, got: usize },
    /// `d = 1` engines need `p` to divide `n`.
    IndivisibleProcessors { n: u64, p: u64 },
    /// `d = 2` engines need the processor-grid side to divide the mesh
    /// side.
    IndivisibleMeshSide { side: u64, proc_side: u64 },
    /// The `d = 2` two-regime engine needs blocks of side ≥ 2.
    BlockTooSmall { block: u64 },
    /// No admissible strip width exists for these `(n, m, p)` — the
    /// two-regime engine cannot run; fall back to naive.
    NoAdmissibleStrip { n: u64, m: u64, p: u64 },
    /// An explicitly requested strip width is inadmissible.
    InvalidStrip { s: u64, n: u64, p: u64 },
    /// A divide-and-conquer engine was asked to run with `p > 1`.
    UniprocessorOnly { engine: &'static str, p: u64 },
    /// Machine parameters failed Definition 2 validation.
    Spec(SpecError),
    /// The fault plan's parameters are invalid.
    Fault(FaultError),
    /// A fault-plan document failed to parse.
    PlanParse { message: String },
    /// The scenario's churn retry budget ran out mid-run: graceful
    /// degradation instead of a panic, carrying the partial accounting
    /// accumulated up to the failed stage.
    ScenarioExhausted {
        stage: u64,
        proc: usize,
        stats: Box<FaultStats>,
    },
    /// An engine-internal bookkeeping invariant broke (a bug, not a user
    /// error) — surfaced as a typed error so a scenario-induced edge case
    /// degrades instead of poisoning the stage pool with a panic.
    Internal { what: &'static str },
    /// Simulated outputs diverge from direct guest execution.
    OutputMismatch { what: &'static str },
    /// A host worker thread panicked while executing a stage (the guest
    /// program's `δ` raised); the stage pool caught it and drained the
    /// remaining tasks.
    HostPanic { message: String },
    /// A derived ratio (slowdown, locality term) is undefined for this
    /// report — zero or non-finite numerator/denominator.  The plain
    /// accessors return `NaN`/`∞` silently; the `try_` accessors surface
    /// this instead.
    DegenerateReport {
        what: &'static str,
        host_time: f64,
        guest_time: f64,
    },
    /// A batch-server job request is malformed — unknown engine,
    /// missing or out-of-range field, or unparseable JSON.  Carries the
    /// request's `id` (0 when the id itself was unreadable) so the
    /// server can answer the offending job without dropping the batch.
    BadRequest { job_id: u64, what: String },
    /// A run cannot be bound-certified (e.g. recorded under the
    /// instantaneous cost model, or the certifier rejected the trace as
    /// malformed before reaching a verdict).  Distinct from a
    /// `Violated` verdict, which IS a certification result.
    Uncertifiable { message: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::DimensionMismatch { expected, got } => {
                write!(f, "engine requires d = {expected}, spec has d = {got}")
            }
            SimError::DensityMismatch { spec_m, prog_m } => {
                write!(
                    f,
                    "spec density m = {spec_m} does not match program density m = {prog_m}"
                )
            }
            SimError::InitLength { expected, got } => {
                write!(
                    f,
                    "initial memory image has {got} words, expected n·m = {expected}"
                )
            }
            SimError::IndivisibleProcessors { n, p } => {
                write!(f, "p = {p} must divide n = {n}")
            }
            SimError::IndivisibleMeshSide { side, proc_side } => {
                write!(
                    f,
                    "processor-grid side {proc_side} must divide mesh side {side}"
                )
            }
            SimError::BlockTooSmall { block } => {
                write!(
                    f,
                    "block side must be ≥ 2, got {block}; use the naive engine"
                )
            }
            SimError::NoAdmissibleStrip { n, m, p } => {
                write!(
                    f,
                    "no admissible strip width for n = {n}, m = {m}, p = {p}; use the naive engine"
                )
            }
            SimError::InvalidStrip { s, n, p } => {
                write!(
                    f,
                    "strip width s = {s} is inadmissible for n = {n}, p = {p}"
                )
            }
            SimError::UniprocessorOnly { engine, p } => {
                write!(
                    f,
                    "{engine} is a uniprocessor engine (needs p = 1, got p = {p})"
                )
            }
            SimError::Spec(e) => write!(f, "{e}"),
            SimError::Fault(e) => write!(f, "{e}"),
            SimError::PlanParse { ref message } => {
                write!(f, "malformed fault plan: {message}")
            }
            SimError::ScenarioExhausted {
                stage,
                proc,
                ref stats,
            } => {
                write!(
                    f,
                    "scenario exhausted the churn retry budget at stage {stage} on processor \
                     {proc} (after {} departures, {} rejoins, {} backoff retries)",
                    stats.departures, stats.rejoins, stats.backoff_retries
                )
            }
            SimError::Internal { what } => {
                write!(f, "internal engine invariant broke: {what}")
            }
            SimError::OutputMismatch { what } => {
                write!(f, "simulated {what} diverge from direct execution")
            }
            SimError::HostPanic { ref message } => {
                write!(f, "host worker panicked during a stage: {message}")
            }
            SimError::DegenerateReport {
                what,
                host_time,
                guest_time,
            } => {
                write!(
                    f,
                    "{what} is undefined: host_time = {host_time}, guest_time = {guest_time}"
                )
            }
            SimError::BadRequest { job_id, ref what } => {
                write!(f, "bad request (job {job_id}): {what}")
            }
            SimError::Uncertifiable { ref message } => {
                write!(f, "run cannot be bound-certified: {message}")
            }
        }
    }
}

impl Error for SimError {}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

impl From<StagePanic> for SimError {
    fn from(e: StagePanic) -> Self {
        SimError::HostPanic { message: e.0 }
    }
}

impl From<PlanParseError> for SimError {
    fn from(e: PlanParseError) -> Self {
        SimError::PlanParse { message: e.message }
    }
}

impl From<ScenarioExhausted> for SimError {
    fn from(e: ScenarioExhausted) -> Self {
        SimError::ScenarioExhausted {
            stage: e.stage,
            proc: e.proc,
            stats: Box::new(e.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errs: Vec<SimError> = vec![
            SimError::DimensionMismatch {
                expected: 1,
                got: 2,
            },
            SimError::DensityMismatch {
                spec_m: 4,
                prog_m: 2,
            },
            SimError::InitLength {
                expected: 64,
                got: 60,
            },
            SimError::IndivisibleProcessors { n: 10, p: 3 },
            SimError::IndivisibleMeshSide {
                side: 9,
                proc_side: 2,
            },
            SimError::BlockTooSmall { block: 1 },
            SimError::NoAdmissibleStrip { n: 16, m: 1, p: 8 },
            SimError::InvalidStrip { s: 3, n: 16, p: 8 },
            SimError::UniprocessorOnly {
                engine: "dnc1",
                p: 4,
            },
            SimError::Spec(SpecError::ProcessorsOutOfRange { n: 4, p: 8 }),
            SimError::Fault(FaultError::SlowdownBelowOne { nu: 0.5 }),
            SimError::OutputMismatch { what: "values" },
            SimError::PlanParse {
                message: "bad json".into(),
            },
            SimError::ScenarioExhausted {
                stage: 7,
                proc: 3,
                stats: Box::default(),
            },
            SimError::Internal {
                what: "zone bookkeeping",
            },
            SimError::HostPanic {
                message: "boom".into(),
            },
            SimError::DegenerateReport {
                what: "slowdown",
                host_time: 5.0,
                guest_time: 0.0,
            },
            SimError::Uncertifiable {
                message: "instantaneous cost model".into(),
            },
            SimError::BadRequest {
                job_id: 3,
                what: "unknown engine \"dnc9\"".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let s: SimError = SpecError::ZeroExtent { n: 0, m: 1 }.into();
        assert!(matches!(s, SimError::Spec(_)));
        let f: SimError = FaultError::EmptyJitterRange { lo: 2.0, hi: 2.0 }.into();
        assert!(matches!(f, SimError::Fault(_)));
        let h: SimError = StagePanic("kaboom".into()).into();
        assert_eq!(
            h,
            SimError::HostPanic {
                message: "kaboom".into()
            }
        );
        let x: SimError = ScenarioExhausted {
            stage: 2,
            proc: 1,
            stats: FaultStats::default(),
        }
        .into();
        assert!(matches!(
            x,
            SimError::ScenarioExhausted {
                stage: 2,
                proc: 1,
                ..
            }
        ));
        let p: SimError = PlanParseError {
            message: "trailing data".into(),
        }
        .into();
        assert!(matches!(p, SimError::PlanParse { .. }));
    }
}
