//! The Proposition-2 executor over the **4-D topological separator**
//! (`d = 3`) — turning Section 6's conjecture into a measured result.
//!
//! Third of the executor twins (see [`crate::exec1`], [`crate::exec2`]):
//! the computed box `[0, side)³ × [1, T]` is wrapped in one big clipped
//! symmetric cell of [`bsmp_geometry::Domain3`]; cells refine by the
//! product-of-diamonds honeycomb (`q ≤ 46`, `δ < 1/2`,
//! `Γ = Θ(|U|^{3/4})`); cells of radius `≤ leaf_h` execute naively.
//! The host H-RAM uses the 3-D access function `f(x) = (x/m)^{1/3}`
//! (`α = 1/3`), for which the separator's `γ = 3/4` satisfies
//! Proposition 3's admissibility with equality — the predicted slowdown
//! is `O(n log n)`, verified in experiment E13.
//!
//! For simplicity this engine supports `m = 1` (the Theorem-2/5-analogue
//! setting the conjecture is about).

use bsmp_machine::{FxHashMap, FxHashSet};

use bsmp_geometry::{ClippedDomain3, Domain3, IBox4, Pt4};
use bsmp_hram::{AccessFn, Hram, Word};
use bsmp_machine::VolumeProgram;

use crate::error::SimError;
use crate::zone::ZoneAlloc;

type ShapeKey = (i64, i64, i64, i64, i64, i64, i64, i64, i64, i64, i64);

/// The recursive `d = 3` executor (`m = 1`).
pub struct VolumeExec<'a, P: VolumeProgram> {
    prog: &'a P,
    side: i64,
    t_steps: i64,
    cbox: IBox4,
    pub ram: Hram,
    live: FxHashMap<Pt4, usize>,
    space_memo: FxHashMap<ShapeKey, usize>,
    pub leaf_h: i64,
}

impl<'a, P: VolumeProgram> VolumeExec<'a, P> {
    pub fn new(side: i64, prog: &'a P, t_steps: i64, leaf_h: i64) -> Self {
        assert_eq!(prog.m(), 1, "VolumeExec supports m = 1");
        VolumeExec {
            prog,
            side,
            t_steps,
            cbox: IBox4::new(0, side, 0, side, 0, side, 1, t_steps + 1),
            ram: Hram::new(AccessFn::new(3, 1), 0),
            live: FxHashMap::default(),
            space_memo: FxHashMap::default(),
            leaf_h: leaf_h.max(1),
        }
    }

    #[inline]
    fn in_exec(&self, u: &ClippedDomain3, p: Pt4) -> bool {
        u.cell.contains(p) && self.cbox.contains(p)
    }

    #[inline]
    fn in_dag(&self, p: Pt4) -> bool {
        0 <= p.x
            && p.x < self.side
            && 0 <= p.y
            && p.y < self.side
            && 0 <= p.z
            && p.z < self.side
            && 0 <= p.t
            && p.t <= self.t_steps
    }

    fn exec_points(&self, u: &ClippedDomain3) -> Vec<Pt4> {
        let mut v = u.points();
        v.sort();
        v
    }

    pub fn gamma(&self, u: &ClippedDomain3) -> Vec<Pt4> {
        let mut out: FxHashSet<Pt4> = FxHashSet::default();
        u.for_each_point(|p| {
            for q in p.preds() {
                if self.in_dag(q) && !self.in_exec(u, q) {
                    out.insert(q);
                }
            }
        });
        let mut v: Vec<Pt4> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Outbound cap: top two vertices of every pillar (the 4-D analogue
    /// of the d = 1/2 arguments; neighbor pillar ranges shift by ≤ 1).
    fn outbound_cap(&self, u: &ClippedDomain3) -> usize {
        let mut pillars: FxHashMap<(i64, i64, i64), usize> = FxHashMap::default();
        u.for_each_point(|p| {
            *pillars.entry((p.x, p.y, p.z)).or_insert(0) += 1;
        });
        pillars.values().map(|&len| 2.min(len)).sum::<usize>() + 16
    }

    fn kids(&self, u: &ClippedDomain3) -> Vec<ClippedDomain3> {
        u.children()
    }

    fn shape_key(&self, u: &ClippedDomain3) -> ShapeKey {
        let h = u.cell.h();
        let cl = 2 * h + 2;
        (
            h,
            u.cell.dy.ct - u.cell.dx.ct,
            u.cell.dz.ct - u.cell.dx.ct,
            u.cell.dx.cx.clamp(-cl, cl),
            (self.side - u.cell.dx.cx).clamp(-cl, cl),
            u.cell.dy.cx.clamp(-cl, cl),
            (self.side - u.cell.dy.cx).clamp(-cl, cl),
            u.cell.dz.cx.clamp(-cl, cl),
            (self.side - u.cell.dz.cx).clamp(-cl, cl),
            u.cell.dx.ct.clamp(-cl, cl),
            (self.t_steps + 1 - u.cell.dx.ct).clamp(-cl, cl),
        )
    }

    pub fn space(&mut self, u: &ClippedDomain3) -> usize {
        let key = self.shape_key(u);
        if let Some(&s) = self.space_memo.get(&key) {
            return s;
        }
        let s = if u.cell.h() <= self.leaf_h || u.cell.h() % 2 == 1 {
            u.points_count() as usize + self.gamma(u).len()
        } else {
            let kids = self.kids(u);
            let mut zmax = 0usize;
            let mut p_u = 0usize;
            for k in &kids {
                zmax = zmax.max(self.space(k));
                p_u += self.gamma(k).len();
            }
            zmax + p_u + self.gamma(u).len() + self.outbound_cap(u)
        };
        self.space_memo.insert(key, s);
        s
    }

    fn move_value(
        &mut self,
        q: Pt4,
        zone: &mut ZoneAlloc,
        from: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let old = *self.live.get(&q).ok_or(SimError::Internal {
            what: "moved value not live",
        })?;
        let new = zone.alloc();
        self.ram.relocate(old, new);
        from.free_if_owned(old);
        self.live.insert(q, new);
        Ok(())
    }

    /// Execute `U` with inputs live in `parent_zone`; park `want` back
    /// there.  Bookkeeping invariant violations surface as
    /// [`SimError::Internal`] rather than panicking.
    pub fn exec(
        &mut self,
        u: &ClippedDomain3,
        want: &FxHashSet<Pt4>,
        parent_zone: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        if u.cell.h() <= self.leaf_h || u.cell.h() % 2 == 1 {
            return self.exec_leaf(u, want, parent_zone);
        }
        let s_u = self.space(u);
        let kids = self.kids(u);
        let mut zmax = 0usize;
        for k in &kids {
            zmax = zmax.max(self.space(k));
        }
        let mut zone = ZoneAlloc::new(zmax, s_u - zmax);

        let g_u = self.gamma(u);
        for q in &g_u {
            self.move_value(*q, &mut zone, parent_zone)?;
        }
        let mut zone_set: FxHashSet<Pt4> = g_u.into_iter().collect();

        let kid_gammas: Vec<FxHashSet<Pt4>> = kids
            .iter()
            .map(|k| self.gamma(k).into_iter().collect())
            .collect();
        for (i, kid) in kids.iter().enumerate() {
            let mut want_kid: FxHashSet<Pt4> = FxHashSet::default();
            let relevant = |q: Pt4, me: &Self| me.in_exec(kid, q) || kid_gammas[i].contains(&q);
            for g in kid_gammas.iter().skip(i + 1) {
                for &q in g {
                    if relevant(q, self) {
                        want_kid.insert(q);
                    }
                }
            }
            for &q in want {
                if relevant(q, self) {
                    want_kid.insert(q);
                }
            }
            for q in &kid_gammas[i] {
                zone_set.remove(q);
            }
            self.exec(kid, &want_kid, &mut zone)?;
            zone_set.extend(want_kid);
        }

        let mut wanted: Vec<Pt4> = want.iter().copied().collect();
        wanted.sort();
        for q in wanted {
            if !zone_set.remove(&q) {
                return Err(SimError::Internal {
                    what: "wanted value missing from zone",
                });
            }
            self.move_value(q, parent_zone, &mut zone)?;
        }
        let mut rest: Vec<Pt4> = zone_set.into_iter().collect();
        rest.sort();
        for q in rest {
            let old = self.live.remove(&q).ok_or(SimError::Internal {
                what: "zone bookkeeping lost a live value",
            })?;
            zone.free_if_owned(old);
        }
        Ok(())
    }

    fn exec_leaf(
        &mut self,
        u: &ClippedDomain3,
        want: &FxHashSet<Pt4>,
        parent_zone: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let pts = self.exec_points(u);
        if pts.is_empty() {
            return Ok(());
        }
        let g_u = self.gamma(u);
        let n_pts = pts.len();
        let mut slot: FxHashMap<Pt4, usize> =
            FxHashMap::with_capacity_and_hasher(n_pts + g_u.len(), Default::default());
        for (i, p) in pts.iter().enumerate() {
            slot.insert(*p, i);
        }
        for (i, q) in g_u.iter().enumerate() {
            let dst = n_pts + i;
            let old = *self.live.get(q).ok_or(SimError::Internal {
                what: "preboundary value not live at leaf ingest",
            })?;
            self.ram.relocate(old, dst);
            parent_zone.free_if_owned(old);
            self.live.insert(*q, dst);
            slot.insert(*q, dst);
        }

        let bd = self.prog.boundary();
        for (i, p) in pts.iter().enumerate() {
            let read_val = |me: &mut Self, q: Pt4| -> Result<Word, SimError> {
                if !me.in_dag(q) {
                    return Ok(bd);
                }
                let a = *slot.get(&q).ok_or(SimError::Internal {
                    what: "operand unavailable in leaf",
                })?;
                Ok(me.ram.read(a))
            };
            let prev = read_val(self, Pt4::new(p.x, p.y, p.z, p.t - 1))?;
            let nb = [
                read_val(self, Pt4::new(p.x - 1, p.y, p.z, p.t - 1))?,
                read_val(self, Pt4::new(p.x + 1, p.y, p.z, p.t - 1))?,
                read_val(self, Pt4::new(p.x, p.y - 1, p.z, p.t - 1))?,
                read_val(self, Pt4::new(p.x, p.y + 1, p.z, p.t - 1))?,
                read_val(self, Pt4::new(p.x, p.y, p.z - 1, p.t - 1))?,
                read_val(self, Pt4::new(p.x, p.y, p.z + 1, p.t - 1))?,
            ];
            let out = self.prog.delta(
                p.x as usize,
                p.y as usize,
                p.z as usize,
                p.t,
                prev,
                prev,
                nb,
            );
            self.ram.compute();
            self.ram.write(i, out);
            self.live.insert(*p, i);
        }

        let mut wanted: Vec<Pt4> = want.iter().copied().collect();
        wanted.sort();
        for q in wanted {
            let old = *self.live.get(&q).ok_or(SimError::Internal {
                what: "wanted value not present in leaf",
            })?;
            let new = parent_zone.alloc();
            self.ram.relocate(old, new);
            self.live.insert(q, new);
        }
        for p in &pts {
            if !want.contains(p) {
                self.live.remove(p);
            }
        }
        for q in &g_u {
            if !want.contains(q) {
                self.live.remove(q);
            }
        }
        Ok(())
    }

    /// Run the whole simulation; returns `(final_mem, final_values)`.
    pub fn run(&mut self, init: &[Word]) -> Result<(Vec<Word>, Vec<Word>), SimError> {
        let side = self.side as usize;
        let n = side * side * side;
        assert_eq!(init.len(), n);
        if self.t_steps == 0 {
            return Ok((init.to_vec(), init.to_vec()));
        }

        let h_top = ((self.side + self.t_steps + 4) as u64).next_power_of_two() as i64;
        let c = self.side / 2;
        let top = ClippedDomain3::new(
            Domain3::symmetric(c, c, c, self.t_steps / 2 + 1, h_top),
            self.cbox,
        );
        let s_top = self.space(&top);
        let zone_cap = self.gamma(&top).len() + 2 * n + 64;
        let mut driver_zone = ZoneAlloc::new(s_top, zone_cap);
        let image = s_top + zone_cap;

        for (i, w) in init.iter().enumerate() {
            self.ram.poke(image + i, *w);
        }
        let idx = |x: usize, y: usize, z: usize| (z * side + y) * side + x;
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    self.live.insert(
                        Pt4::new(x as i64, y as i64, z as i64, 0),
                        image + idx(x, y, z),
                    );
                }
            }
        }

        let mut want: FxHashSet<Pt4> = FxHashSet::default();
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    want.insert(Pt4::new(x as i64, y as i64, z as i64, self.t_steps));
                }
            }
        }
        self.exec(&top, &want, &mut driver_zone)?;

        let mut values = vec![0 as Word; n];
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    let p = Pt4::new(x as i64, y as i64, z as i64, self.t_steps);
                    let addr = *self.live.get(&p).ok_or(SimError::Internal {
                        what: "final value not live after top-level exec",
                    })?;
                    values[idx(x, y, z)] = self.ram.peek(addr);
                    self.ram.relocate(addr, image + idx(x, y, z));
                }
            }
        }
        let mem = (0..n).map(|i| self.ram.peek(image + i)).collect();
        Ok((mem, values))
    }
}
