//! The **naive simulation** (Proposition 1 and the opening of §4.2) for
//! the linear array: the host mimics the guest step by step.
//!
//! Processor `PE_i` of `M_1(n, p, m)` performs the actions of guest
//! nodes `i·(n/p) … (i+1)·(n/p) - 1`.  Each node's private memory is a
//! block in the host node's H-RAM, in the guest's natural order; two
//! value rows (previous / next) sit above the blocks.  Per guest step,
//! the host node touches one cell per hosted guest node — `n/p` accesses
//! at addresses up to `Θ(n·m/p)`, hence slowdown `O((n/p)^{1+1/d})`;
//! values crossing the processor boundary are charged `words × n/p`.

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_hram::{CostTable, Hram, Word};
use bsmp_machine::{
    lease_scratch, linear_guest_time, CoreKind, DisjointSlice, ExecPolicy, LinearProgram,
    MachineSpec, PoolLease, StageClock,
};
use bsmp_trace::{RunMeta, Tracer};

use crate::error::SimError;
use crate::report::SimReport;
use crate::{settle_scenario, stage_totals};

/// Simulate `steps` guest steps of `M_1(n, n, m)` on `M_1(n, p, m)` by
/// the naive method, injecting faults per `plan`.
pub fn try_simulate_naive1_faulted(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_naive1_exec(spec, prog, init, steps, plan, ExecPolicy::auto())
}

/// [`try_simulate_naive1_faulted`] with an explicit host-thread budget.
/// The report is bit-identical for every policy — host threading never
/// touches model time (see DESIGN.md §12).
pub fn try_simulate_naive1_exec(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
) -> Result<SimReport, SimError> {
    try_simulate_naive1_traced(spec, prog, init, steps, plan, exec, &mut Tracer::off())
}

/// [`try_simulate_naive1_exec`] with a [`Tracer`] observing each stage.
/// A disabled tracer costs one `None` check per stage; the report is
/// bit-identical either way, since the tracer only reads the clock.
pub fn try_simulate_naive1_traced(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_naive1_impl(spec, prog, init, steps, plan, exec, tracer, false)
}

/// The pre-tiling per-point reference implementation, kept as the oracle
/// for the kernel bit-identity tests (`tests/kernels.rs`).  Reports 0
/// `table_hits`; every other field is bit-identical to the tiled path.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_naive1_scalar(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_naive1_impl(spec, prog, init, steps, plan, exec, tracer, true)
}

/// Select the execution core for a naive1 run: the dense stage loop or
/// the event-driven sparse core of [`crate::event1`] (bit-identical
/// report and trace; the event core falls back to the dense loop when
/// its preconditions do not hold).
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_naive1_core(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    core: CoreKind,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    match core {
        CoreKind::Dense => {
            try_simulate_naive1_impl(spec, prog, init, steps, plan, exec, tracer, false)
        }
        CoreKind::Event => {
            crate::event1::try_simulate_naive1_event(spec, prog, init, steps, plan, exec, tracer)
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn try_simulate_naive1_impl(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    exec: ExecPolicy,
    tracer: &mut Tracer,
    force_scalar: bool,
) -> Result<SimReport, SimError> {
    let n = spec.n as usize;
    let p = spec.p as usize;
    let m = prog.m();
    if spec.d != 1 {
        return Err(SimError::DimensionMismatch {
            expected: 1,
            got: spec.d,
        });
    }
    if m as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: m as u64,
        });
    }
    if init.len() != n * m {
        return Err(SimError::InitLength {
            expected: n * m,
            got: init.len(),
        });
    }
    if !n.is_multiple_of(p) {
        return Err(SimError::IndivisibleProcessors {
            n: spec.n,
            p: spec.p,
        });
    }
    plan.validate()?;
    let q = n / p; // guest nodes per host node
    let access = spec.access_fn();
    let mut session = FaultSession::new(
        plan,
        FaultEnv {
            p,
            hop: spec.neighbor_distance(),
            checkpoint_words: spec.node_mem(),
            proc_side: 1,
        },
    );

    // Per-processor H-RAM: blocks [0, q·m), value row A [q·m, q·m + q),
    // value row B [q·m + q, q·m + 2q).
    let va = q * m;
    let vb = q * m + q;
    let mut rams: Vec<Hram> = (0..p).map(|_| Hram::new(access, q * m + 2 * q)).collect();
    for v in 0..n {
        let (pi, j) = (v / q, v % q);
        for c in 0..m {
            rams[pi].poke(j * m + c, init[v * m + c]);
        }
        // Initial values.
        let v0 = init[v * m + prog.cell(v, 0)];
        rams[pi].poke(va + (v % q), v0);
    }

    let mut clock = StageClock::new();
    let hop = spec.neighbor_distance();
    // Global mirror of the previous value row (functional carrier for
    // cross-processor reads; costs are charged explicitly).
    let mut prev: Vec<Word> = (0..n).map(|v| init[v * m + prog.cell(v, 0)]).collect();
    let mut next = vec![0 as Word; n];
    let (mut row_prev, mut row_next) = (va, vb);

    // Plan-time cost table over the per-processor address space, plus
    // the exact-dyadic integer-unit view when the charges allow it (d=1
    // power-of-two m, or the instantaneous model): per-stage access
    // metering then collapses to integer arithmetic that is bit-identical
    // to the scalar f64 chain (see bsmp_hram::table).  The peeled tiled
    // kernel needs at least one interior column, so tiny blocks keep the
    // scalar loop.
    let scalar = force_scalar || q < 3;
    let table = CostTable::new(access, q * m + 2 * q);
    let per_proc_accesses = (steps.max(0) as u64)
        .saturating_mul(6)
        .saturating_mul(q as u64);
    let exact = table
        .exact_units()
        .filter(|_| table.units_budget_ok(per_proc_accesses));
    // Per-stage row charges are input-independent: left reads touch
    // rp..rp+q-2, right reads rp+1..rp+q-1, mine-reads rp..rp+q-1 and
    // next-writes rn..rn+q-1, whichever processor and stage — only the
    // row parity (which row is "previous") varies.
    // At unit density every cell index is 0, so the block address of
    // node `j` is just `j`: the per-stage block-address sum collapses to
    // `q(q-1)/2`, and the block row always mirrors the previous value
    // row (both hold the node's sole cell).  The kernel can then skip
    // the block stores entirely and materialize the blocks once after
    // the last stage — the meter is unchanged because exact-units
    // accounting is order-free integer arithmetic.
    let m1_fast = !scalar && m == 1 && exact.is_some();
    let m1_addr_sum = (q as u64 * (q as u64 - 1)) / 2;
    let row_units = exact.map(|e| {
        let rows = |rp: usize, rn: usize| {
            let lr = if q >= 2 {
                e.span_units(rp, rp + q - 2) + e.span_units(rp + 1, rp + q - 1)
            } else {
                0
            };
            lr + e.span_units(rp, rp + q - 1) + e.span_units(rn, rn + q - 1)
        };
        [rows(va, vb), rows(vb, va)]
    });
    let mut units_total: Vec<u64> = vec![0; p];

    // Host processors are independent within a stage; run them on the
    // persistent worker pool when there is enough work per stage to pay
    // for the handoff (a single-thread pool otherwise — same claiming
    // semantics, no spawned workers).  Model time is unaffected: each
    // worker owns its H-RAM and returns its own metered cost into its
    // own slot.
    let pool = if exec.resolved().min(p) > 1 && q >= 256 {
        PoolLease::for_procs(p, exec)
    } else {
        PoolLease::serial()
    };
    let mut scratch = lease_scratch(p);
    tracer.ensure_procs(p);
    for t in 1..=steps {
        tracer.begin_stage("step");
        let tally = tracer.tally();
        let stage_row_units = row_units.map(|ru| if row_prev == va { ru[0] } else { ru[1] });
        let run_scalar = |pi: usize, ram: &mut Hram, next: &mut [Word]| -> f64 {
            let t0 = ram.time();
            let mut comm = 0.0;
            let mut msgs = 0u64;
            for (j, slot) in next.iter_mut().enumerate() {
                let v = pi * q + j;
                let c = prog.cell(v, t);
                let own = ram.read(j * m + c);
                let left = if v == 0 {
                    prog.boundary()
                } else if j == 0 {
                    comm += hop; // one word from the west neighbor node
                    msgs += 1;
                    prev[v - 1]
                } else {
                    ram.read(row_prev + j - 1)
                };
                let right = if v == n - 1 {
                    prog.boundary()
                } else if j == q - 1 {
                    comm += hop;
                    msgs += 1;
                    prev[v + 1]
                } else {
                    ram.read(row_prev + j + 1)
                };
                let mine = ram.read(row_prev + j);
                let out = prog.delta(v, t, own, mine, left, right);
                ram.compute();
                ram.write(j * m + c, out);
                ram.write(row_next + j, out);
                *slot = out;
            }
            // Outbound edge values to the two neighbors.
            if pi > 0 {
                comm += hop;
                msgs += 1;
            }
            if pi + 1 < p {
                comm += hop;
                msgs += 1;
            }
            if let Some(tl) = tally {
                tl.add(pi, q as u64, msgs);
            }
            ram.meter.add_comm(comm);
            ram.time() - t0
        };

        // Tiled kernel: west/east columns peeled, branch-free interior
        // over contiguous row strips, charges served by the plan-time
        // table.  Bit-identity: the chain mode replays the scalar loop's
        // f64 additions in the identical order (in a register); the
        // exact mode re-associates freely, which is lossless for dyadic
        // charges (see bsmp_hram::table).  Requires q ≥ 3 (peeling).
        let run_tiled = |pi: usize, ram: &mut Hram, next: &mut [Word], units: &mut u64| -> f64 {
            ram.reserve_table(&table);
            let t0 = ram.time();
            let vbase = pi * q;
            let mut comm = 0.0;
            let mut msgs = 0u64;
            let mut acc = ram.meter.access; // chain-mode register
            let mut addr_sum = 0u64; // exact-mode Σ of block addresses
            {
                let cb = table.charges();
                let mem = ram.mem_table(&table);
                let (blocks, rows) = mem.split_at_mut(q * m);
                let (ra, rb) = rows.split_at_mut(q);
                let (rprev, rnext) = if row_prev == va {
                    (&*ra, rb)
                } else {
                    (&*rb, ra)
                };
                let chain = exact.is_none();

                if m1_fast {
                    // West edge (j = 0).  At m = 1 the block row mirrors
                    // the previous value row, so `own` and `mine` are
                    // both `rprev[j]` and the block store is deferred to
                    // the post-run fixup.
                    let left = if pi == 0 {
                        prog.boundary()
                    } else {
                        comm += hop;
                        msgs += 1;
                        prev[vbase - 1]
                    };
                    let out = prog.delta(vbase, t, rprev[0], rprev[0], left, rprev[1]);
                    rnext[0] = out;
                    next[0] = out;
                    // Interior: contiguous strips, one store per point.
                    // Only the two edge values of the global mirror row
                    // are read cross-processor during a stage, so the
                    // interior of `next` is published once after the
                    // final stage instead of per point.
                    let inner_next = &mut rnext[1..q - 1];
                    let (wl, wc, wr) = (&rprev[..q - 2], &rprev[1..q - 1], &rprev[2..q]);
                    for (k, (((l, c), r), nx)) in wl
                        .iter()
                        .zip(wc.iter())
                        .zip(wr.iter())
                        .zip(inner_next.iter_mut())
                        .enumerate()
                    {
                        *nx = prog.delta(vbase + k + 1, t, *c, *c, *l, *r);
                    }
                    // East edge (j = q - 1).
                    let j = q - 1;
                    let right = if pi + 1 == p {
                        prog.boundary()
                    } else {
                        comm += hop;
                        msgs += 1;
                        prev[vbase + j + 1]
                    };
                    let out = prog.delta(vbase + j, t, rprev[j], rprev[j], rprev[j - 1], right);
                    rnext[j] = out;
                    next[j] = out;
                    addr_sum = m1_addr_sum;
                } else {
                    // j == 0 (west edge).
                    let c = prog.cell(vbase, t);
                    let own = blocks[c];
                    let left = if pi == 0 {
                        prog.boundary()
                    } else {
                        comm += hop;
                        msgs += 1;
                        prev[vbase - 1]
                    };
                    let (right, mine) = (rprev[1], rprev[0]);
                    let out = prog.delta(vbase, t, own, mine, left, right);
                    blocks[c] = out;
                    rnext[0] = out;
                    next[0] = out;
                    if chain {
                        acc += cb[c];
                        acc += cb[row_prev + 1];
                        acc += cb[row_prev];
                        acc += cb[c];
                        acc += cb[row_next];
                    } else {
                        addr_sum += c as u64;
                    }

                    // Interior 1..q-1: contiguous strips, no boundary or
                    // ownership branches.
                    let inner_next = &mut rnext[1..q - 1];
                    let inner_slot = &mut next[1..q - 1];
                    let win = rprev.windows(3);
                    if chain {
                        let cbp = &cb[row_prev..row_prev + q];
                        let cbn = &cb[row_next..row_next + q];
                        for (k, (w, (nx, slot))) in win
                            .zip(inner_next.iter_mut().zip(inner_slot.iter_mut()))
                            .enumerate()
                        {
                            let j = k + 1;
                            let v = vbase + j;
                            let c = prog.cell(v, t);
                            let a = j * m + c;
                            let own = blocks[a];
                            acc += cb[a];
                            acc += cbp[j - 1];
                            acc += cbp[j + 1];
                            acc += cbp[j];
                            let out = prog.delta(v, t, own, w[1], w[0], w[2]);
                            blocks[a] = out;
                            acc += cb[a];
                            acc += cbn[j];
                            *nx = out;
                            *slot = out;
                        }
                    } else {
                        for (k, (w, (nx, slot))) in win
                            .zip(inner_next.iter_mut().zip(inner_slot.iter_mut()))
                            .enumerate()
                        {
                            let j = k + 1;
                            let v = vbase + j;
                            let c = prog.cell(v, t);
                            let a = j * m + c;
                            let out = prog.delta(v, t, blocks[a], w[1], w[0], w[2]);
                            blocks[a] = out;
                            *nx = out;
                            *slot = out;
                            addr_sum += a as u64;
                        }
                    }

                    // j == q - 1 (east edge).
                    let j = q - 1;
                    let v = vbase + j;
                    let c = prog.cell(v, t);
                    let a = j * m + c;
                    let own = blocks[a];
                    let left = rprev[j - 1];
                    let right = if pi + 1 == p {
                        prog.boundary()
                    } else {
                        comm += hop;
                        msgs += 1;
                        prev[v + 1]
                    };
                    let mine = rprev[j];
                    let out = prog.delta(v, t, own, mine, left, right);
                    blocks[a] = out;
                    rnext[j] = out;
                    next[j] = out;
                    if chain {
                        acc += cb[a];
                        acc += cb[row_prev + j - 1];
                        acc += cb[row_prev + j];
                        acc += cb[a];
                        acc += cb[row_next + j];
                    } else {
                        addr_sum += a as u64;
                    }
                }
            }
            let accesses = 6 * q as u64 - 2;
            match exact {
                Some(e) => {
                    let (base, slope) = e.affine();
                    let block_units = 2 * q as u64 * base + 2 * slope * addr_sum;
                    *units += block_units + stage_row_units.unwrap_or(0);
                    ram.meter.access = e.time(*units);
                }
                None => ram.meter.access = acc,
            }
            ram.meter.ops += accesses;
            ram.meter.add_table_hits(accesses);
            ram.meter.add_compute(q as f64);
            if pi > 0 {
                comm += hop;
                msgs += 1;
            }
            if pi + 1 < p {
                comm += hop;
                msgs += 1;
            }
            if let Some(tl) = tally {
                tl.add(pi, q as u64, msgs);
            }
            ram.meter.add_comm(comm);
            ram.time() - t0
        };

        for (before, ram) in scratch.comm_before.iter_mut().zip(&rams) {
            *before = ram.meter.comm;
        }
        {
            let rams_slots = DisjointSlice::new(&mut rams);
            let next_slots = DisjointSlice::new(&mut next);
            let units_slots = DisjointSlice::new(&mut units_total);
            pool.run_stage(p, &mut scratch.per_proc, |pi| {
                // Safety: processor pi is claimed by exactly one thread;
                // its H-RAM, its q-word chunk of `next` and its unit
                // accumulator are touched by no one else this stage.
                let ram = unsafe { rams_slots.get_mut(pi) };
                let chunk = unsafe { next_slots.slice_mut(pi * q, q) };
                if scalar {
                    run_scalar(pi, ram, chunk)
                } else {
                    let u = unsafe { units_slots.get_mut(pi) };
                    run_tiled(pi, ram, chunk, u)
                }
            })?;
        }
        let sc = &mut *scratch;
        for ((delta, ram), before) in sc.per_comm.iter_mut().zip(&rams).zip(&sc.comm_before) {
            *delta = ram.meter.comm - before;
        }
        clock.add_stage_faulted(&scratch.per_proc, &scratch.per_comm, &mut session)?;
        tracer.end_stage(stage_totals(&clock, &session.stats), pool.threads());
        std::mem::swap(&mut prev, &mut next);
        std::mem::swap(&mut row_prev, &mut row_next);
    }
    // Materialize the m = 1 kernel's deferred stores: the final value
    // row *is* the final block content, and the interior of the global
    // mirror row is published here instead of per stage.
    if m1_fast && steps > 0 {
        for (pi, ram) in rams.iter_mut().enumerate() {
            let mem = ram.mem_table(&table);
            mem.copy_within(row_prev..row_prev + q, 0);
            prev[pi * q..(pi + 1) * q].copy_from_slice(&mem[row_prev..row_prev + q]);
        }
    }
    settle_scenario(&mut clock, &mut session, tracer, pool.threads());

    // Collect outputs (uncharged inspection: the blocks already sit in
    // the guest's natural layout).
    let mut mem = vec![0 as Word; n * m];
    for v in 0..n {
        let (pi, j) = (v / q, v % q);
        for c in 0..m {
            mem[v * m + c] = rams[pi].peek(j * m + c);
        }
    }
    let meter = rams
        .iter()
        .fold(bsmp_hram::CostMeter::new(), |acc, r| acc.merged(&r.meter));
    let guest_time = linear_guest_time(spec, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "naive1",
            d: 1,
            n: spec.n,
            m: spec.m,
            p: spec.p,
            steps: steps.max(0) as u64,
        },
        clock.parallel_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values: prev,
        host_time: clock.parallel_time,
        guest_time,
        meter,
        space: rams.iter().map(|r| r.high_water()).max().unwrap_or(0),
        stages: clock.stages,
        faults: session.into_stats(),
        core_fallback: None,
    })
}

/// Fault-free checked variant.
pub fn try_simulate_naive1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_naive1_faulted(spec, prog, init, steps, &FaultPlan::none())
}

/// Simulate `steps` guest steps of `M_1(n, n, m)` on `M_1(n, p, m)` by
/// the naive method; panics on invalid parameters (see
/// [`try_simulate_naive1`] for the checked variant).
pub fn simulate_naive1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_naive1(spec, prog, init, steps).unwrap_or_else(|e| panic!("naive1: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_linear;
    use bsmp_workloads::{inputs, CyclicWave, Eca, OddEvenSort, TokenShift};

    fn check_equiv(
        prog: &impl LinearProgram,
        n: u64,
        p: u64,
        steps: i64,
        init: &[Word],
    ) -> SimReport {
        let spec = MachineSpec::new(1, n, p, prog.m() as u64);
        let guest = run_linear(&spec, prog, init, steps);
        let rep = simulate_naive1(&spec, prog, init, steps);
        rep.assert_matches(&guest.mem, &guest.values);
        rep
    }

    #[test]
    fn uniprocessor_matches_direct_execution() {
        let init = inputs::random_bits(3, 32);
        check_equiv(&Eca::rule110(), 32, 1, 32, &init);
    }

    #[test]
    fn multiprocessor_matches_direct_execution() {
        let init = inputs::random_bits(4, 32);
        for p in [2u64, 4, 8, 16, 32] {
            check_equiv(&Eca::rule110(), 32, p, 32, &init);
        }
    }

    #[test]
    fn multi_cell_program_matches() {
        let m = 3usize;
        let init = inputs::random_words(5, 16 * m, 100);
        check_equiv(&CyclicWave::new(m), 16, 4, 20, &init);
    }

    #[test]
    fn sorting_on_the_host() {
        let init = inputs::random_words(6, 16, 1000);
        let rep = check_equiv(&OddEvenSort::new(16), 16, 4, 16, &init);
        let mut expect = init.clone();
        expect.sort();
        assert_eq!(rep.values, expect);
    }

    #[test]
    fn slowdown_scales_like_n_over_p_squared() {
        // Proposition 1 (d = 1): slowdown Θ((n/p)²).
        let n = 128u64;
        let init = inputs::random_bits(7, n as usize);
        let s1 = check_equiv(&Eca::rule90(), n, 1, n as i64, &init).slowdown();
        let s4 = check_equiv(&Eca::rule90(), n, 4, n as i64, &init).slowdown();
        let ratio = s1 / s4;
        assert!(
            ratio > 8.0 && ratio < 32.0,
            "quartering n/p should cut slowdown ~16×, got {ratio}"
        );
    }

    #[test]
    fn full_parallelism_has_constant_slowdown() {
        let n = 64u64;
        let init = inputs::random_bits(8, n as usize);
        let rep = check_equiv(&TokenShift::new(9), n, n, n as i64, &init);
        assert!(
            rep.slowdown() < 4.0,
            "p = n host ≈ guest, got {}",
            rep.slowdown()
        );
    }

    #[test]
    fn instantaneous_model_recovers_brent() {
        // E10: under instantaneous propagation the naive simulation's
        // slowdown is Θ(n/p), not (n/p)².
        let n = 128u64;
        let init = inputs::random_bits(9, n as usize);
        for p in [1u64, 4, 16] {
            let spec = MachineSpec::instantaneous(1, n, p, 1);
            let rep = simulate_naive1(&spec, &Eca::rule90(), &init, n as i64);
            let brent = (n / p) as f64;
            let s = rep.slowdown();
            assert!(
                s > 0.5 * brent && s < 3.0 * brent,
                "p={p}: instantaneous slowdown {s} vs Brent {brent}"
            );
        }
    }

    #[test]
    fn threaded_stage_path_matches_sequential_semantics() {
        // q ≥ 256 triggers the threaded path; a p = 1 run of the same
        // computation (sequential path) must agree functionally, and the
        // model costs must be deterministic across repeated threaded runs.
        let n = 2048u64;
        let init = inputs::random_bits(29, n as usize);
        let spec = MachineSpec::new(1, n, 4, 1);
        let a = simulate_naive1(&spec, &Eca::rule110(), &init, 8);
        let b = simulate_naive1(&spec, &Eca::rule110(), &init, 8);
        assert_eq!(a.values, b.values);
        assert!(
            (a.host_time - b.host_time).abs() < 1e-9,
            "threaded cost deterministic"
        );
        let guest = run_linear(&spec, &Eca::rule110(), &init, 8);
        a.assert_matches(&guest.mem, &guest.values);
    }

    #[test]
    fn stage_count_equals_steps() {
        let init = inputs::random_bits(10, 16);
        let spec = MachineSpec::new(1, 16, 4, 1);
        let rep = simulate_naive1(&spec, &Eca::rule90(), &init, 10);
        assert_eq!(rep.stages, 10);
    }

    #[test]
    fn try_variant_reports_bad_parameters() {
        let init = inputs::random_bits(11, 12);
        let spec = MachineSpec::new(1, 12, 4, 1);
        assert!(matches!(
            try_simulate_naive1(&spec, &Eca::rule90(), &init[..10], 4),
            Err(SimError::InitLength { .. })
        ));
        let indivisible = MachineSpec::new(1, 10, 3, 1);
        let init10 = inputs::random_bits(12, 10);
        assert!(matches!(
            try_simulate_naive1(&indivisible, &Eca::rule90(), &init10, 4),
            Err(SimError::IndivisibleProcessors { .. })
        ));
        assert!(matches!(
            try_simulate_naive1_faulted(
                &spec,
                &Eca::rule90(),
                &inputs::random_bits(13, 12),
                4,
                &FaultPlan::uniform_slowdown(0.25),
            ),
            Err(SimError::Fault(_))
        ));
    }

    #[test]
    fn uniform_slowdown_stays_within_nu_envelope() {
        let init = inputs::random_bits(14, 64);
        let spec = MachineSpec::new(1, 64, 8, 1);
        let base = simulate_naive1(&spec, &Eca::rule110(), &init, 32);
        for nu in [1.0, 2.0, 4.0] {
            let plan = FaultPlan::uniform_slowdown(nu);
            let rep =
                try_simulate_naive1_faulted(&spec, &Eca::rule110(), &init, 32, &plan).unwrap();
            rep.assert_matches(&base.mem, &base.values);
            assert!(rep.host_time >= base.host_time - 1e-9);
            assert!(rep.host_time <= nu * base.host_time + 1e-6, "ν = {nu}");
        }
    }
}
