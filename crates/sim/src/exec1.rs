//! The Proposition-2 executor over diamond topological separators
//! (`d = 1`) — the machinery behind Theorems 2 and 3.
//!
//! The whole computed vertex set `[0, n) × [1, T]` is wrapped in one big
//! clipped diamond and executed recursively: each diamond splits into its
//! four half-radius children (bottom, left, right, top — the Figure-1
//! separator), and Proposition 2's memory discipline is followed
//! *literally* on an instrumented H-RAM:
//!
//! * child working space is always the low band `[0, S(child))`;
//! * transit data (incoming preboundary values, inter-child boundary
//!   values, private-memory blocks of the diamond's node columns) lives
//!   in the parking band `[max_i S(child_i), S(U))`, managed by a
//!   [`ZoneAlloc`];
//! * every move is charged `read + write` at the true addresses, so the
//!   measured time is exactly the quantity Theorem 2/3 bound;
//! * diamonds with radius `≤ leaf_h` are executed naively (the
//!   "executable diamonds" of Theorem 3's proof, `D(m)` for density `m`).
//!
//! For `m = 1` the node state *is* the communicated value and no state
//! blocks exist; for `m > 1` each node column's `m`-cell private memory
//! is relocated as a block along the recursion, exactly as in §4.1
//! ("the access to a single variable is replaced by the access to the
//! entire private memory of an individual processor").

use std::collections::{HashMap, HashSet};

use bsmp_geometry::{ClippedDiamond, Diamond, IRect, Pt2};
use bsmp_hram::{Hram, Word};
use bsmp_machine::{LinearProgram, MachineSpec};

use crate::error::SimError;
use crate::zone::ZoneAlloc;

/// Shape key for memoizing the space function `S(U)`: the radius plus
/// the diamond's position relative to all four dag walls, clamped to
/// `±(2h + 2)` — beyond that distance a wall cannot influence `Γ`,
/// columns, or the outbound cap, so all truly interior diamonds of one
/// radius share a key.
type ShapeKey = (i64, i64, i64, i64, i64);

/// The recursive executor.  One instance per simulation run.
pub struct DiamondExec<'a, P: LinearProgram> {
    prog: &'a P,
    /// Array length.
    n: i64,
    /// Computation steps.
    t_steps: i64,
    /// Cells per node.
    m: usize,
    /// Computed vertices: `x ∈ [0, n)`, `t ∈ [1, T]`.
    cbox: IRect,
    /// The host H-RAM.
    pub ram: Hram,
    /// Current address of each live dag value.
    live: HashMap<Pt2, usize>,
    /// Current base address of each node column's `m`-cell block
    /// (only for `m > 1`).
    state: HashMap<i64, usize>,
    space_memo: HashMap<ShapeKey, usize>,
    /// Diamonds with `h ≤ leaf_h` are executed naively.
    pub leaf_h: i64,
    /// Debug oracle: expected value per vertex (tests only).
    #[doc(hidden)]
    pub oracle: Option<HashMap<Pt2, Word>>,
}

impl<'a, P: LinearProgram> DiamondExec<'a, P> {
    pub fn new(spec: &MachineSpec, prog: &'a P, t_steps: i64, leaf_h: i64) -> Self {
        assert_eq!(spec.d, 1);
        assert_eq!(spec.p, 1, "DiamondExec is the uniprocessor engine");
        let n = spec.n as i64;
        let m = prog.m();
        assert_eq!(m as u64, spec.m);
        DiamondExec {
            prog,
            n,
            t_steps,
            m,
            cbox: IRect::new(0, n, 1, t_steps + 1),
            ram: Hram::new(spec.access_fn(), 0),
            live: HashMap::new(),
            state: HashMap::new(),
            space_memo: HashMap::new(),
            leaf_h: leaf_h.max(1),
            oracle: None,
        }
    }

    /// Is `p` a vertex this engine executes?
    #[inline]
    fn in_exec(&self, u: &ClippedDiamond, p: Pt2) -> bool {
        u.d.contains(p) && self.cbox.contains(p)
    }

    /// Is `p` a dag vertex at all (including the input row)?
    #[inline]
    fn in_dag(&self, p: Pt2) -> bool {
        0 <= p.x && p.x < self.n && 0 <= p.t && p.t <= self.t_steps
    }

    /// The executor's preboundary of `U = D ∩ cbox`: all dag vertices
    /// outside `U` that are predecessors of a vertex of `U`.  This is
    /// the diamond's lattice preboundary plus the input-row vertices the
    /// diamond itself covers, filtered to actual predecessors.
    pub fn gamma(&self, u: &ClippedDiamond) -> Vec<Pt2> {
        let mut cands: Vec<Pt2> =
            u.d.preboundary()
                .into_iter()
                .filter(|q| self.in_dag(*q))
                .collect();
        // Input-row vertices inside the diamond (below cbox).
        if u.d.bbox().t0 <= 0 {
            for x in u.d.bbox().x0.max(0)..u.d.bbox().x1.min(self.n) {
                let q = Pt2::new(x, 0);
                if u.d.contains(q) {
                    cands.push(q);
                }
            }
        }
        cands
            .into_iter()
            .filter(|q| q.succs().iter().any(|s| self.in_exec(u, *s)))
            .collect()
    }

    /// Columns (node indices) with at least one executed vertex in `U`.
    fn cols(&self, u: &ClippedDiamond) -> Vec<i64> {
        let b = u.d.bbox().intersect(&self.cbox);
        (b.x0..b.x1)
            .filter(|&x| {
                let (lo, hi) = self.col_range(u, x);
                lo <= hi
            })
            .collect()
    }

    /// Executed `t`-range of column `x` in `U` (inclusive; empty if
    /// `lo > hi`).
    fn col_range(&self, u: &ClippedDiamond, x: i64) -> (i64, i64) {
        let k = (x - u.d.cx).abs();
        let lo = (u.d.ct - u.d.h + k + 1).max(self.cbox.t0);
        let hi = (u.d.ct + u.d.h - k).min(self.cbox.t1 - 1);
        (lo, hi)
    }

    /// Upper bound on how many values of `U` any ancestor can want back:
    /// vertices with a successor outside `U` that is executed later or
    /// lies above the final row.
    fn outbound_cap(&self, u: &ClippedDiamond) -> usize {
        let b = u.d.bbox().intersect(&self.cbox);
        let mut count = 0usize;
        for x in b.x0..b.x1 {
            let (lo, hi) = self.col_range(u, x);
            if lo > hi {
                continue;
            }
            // Only the top two vertices of a column can have successors
            // outside U that anyone later can consume: upward exposure is
            // limited to the top two rows of each column, and sideways
            // exposure beyond the clip edge points outside the dag (the
            // clip is the dag box), where no consumer exists.
            let _ = x;
            count += 2.min((hi - lo + 1) as usize);
        }
        count + 4
    }

    /// Non-empty children in topological order.
    fn kids(&self, u: &ClippedDiamond) -> Vec<ClippedDiamond> {
        u.d.children()
            .into_iter()
            .map(|d| ClippedDiamond::new(d, self.cbox))
            .filter(|c| c.points_count() > 0)
            .collect()
    }

    fn shape_key(&self, u: &ClippedDiamond) -> ShapeKey {
        let h = u.d.h;
        let cl = 2 * h + 2;
        (
            h,
            u.d.cx.clamp(-cl, cl),
            (self.n - u.d.cx).clamp(-cl, cl),
            u.d.ct.clamp(-cl, cl),
            (self.t_steps + 1 - u.d.ct).clamp(-cl, cl),
        )
    }

    /// The space function `S(U)` of Proposition 2, memoized per shape.
    pub fn space(&mut self, u: &ClippedDiamond) -> usize {
        let key = self.shape_key(u);
        if let Some(&s) = self.space_memo.get(&key) {
            return s;
        }
        let s = if u.d.h <= self.leaf_h || u.d.h % 2 == 1 {
            let vol = u.points_count() as usize;
            let g = self.gamma(u).len();
            let st = if self.m > 1 {
                self.cols(u).len() * self.m
            } else {
                0
            };
            vol + g + st
        } else {
            let kids = self.kids(u);
            let mut zmax = 0usize;
            let mut p_u = 0usize;
            for k in &kids {
                zmax = zmax.max(self.space(k));
                let st = if self.m > 1 {
                    self.cols(k).len() * self.m
                } else {
                    0
                };
                p_u += self.gamma(k).len() + st;
            }
            let st_u = if self.m > 1 {
                self.cols(u).len() * self.m
            } else {
                0
            };
            zmax + p_u + self.gamma(u).len() + self.outbound_cap(u) + st_u
        };
        self.space_memo.insert(key, s);
        s
    }

    /// Move a live value into `zone`, charging the copy, freeing the old
    /// slot in `from`.
    fn move_value(
        &mut self,
        q: Pt2,
        zone: &mut ZoneAlloc,
        from: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let old = *self.live.get(&q).ok_or(SimError::Internal {
            what: "moved value not live",
        })?;
        let new = zone.alloc();
        self.ram.relocate(old, new);
        from.free_if_owned(old);
        self.live.insert(q, new);
        Ok(())
    }

    /// Move a column's state block into `zone`.
    fn move_state(
        &mut self,
        x: i64,
        zone: &mut ZoneAlloc,
        from: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let old = *self.state.get(&x).ok_or(SimError::Internal {
            what: "moved state block not live",
        })?;
        let new = zone.alloc_block(self.m);
        for c in 0..self.m {
            self.ram.relocate(old + c, new + c);
        }
        from.free_block_if_owned(old, self.m);
        self.state.insert(x, new);
        Ok(())
    }

    /// Execute `U`, with all inputs live in `parent_zone`; park the
    /// values in `want` (and all column states) back into `parent_zone`.
    ///
    /// Bookkeeping invariant violations surface as
    /// [`SimError::Internal`] rather than panicking, so a chaos run can
    /// degrade gracefully.
    pub fn exec(
        &mut self,
        u: &ClippedDiamond,
        want: &HashSet<Pt2>,
        parent_zone: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        if u.d.h <= self.leaf_h || u.d.h % 2 == 1 {
            return self.exec_leaf(u, want, parent_zone);
        }
        let s_u = self.space(u);
        let kids = self.kids(u);
        let mut zmax = 0usize;
        for k in &kids {
            zmax = zmax.max(self.space(k));
        }
        let mut zone = ZoneAlloc::new(zmax, s_u - zmax);

        // Ingest: preboundary values + column states (Proposition 2 step 1
        // at this level).
        let g_u = self.gamma(u);
        for q in &g_u {
            self.move_value(*q, &mut zone, parent_zone)?;
        }
        let cols_u = self.cols(u);
        if self.m > 1 {
            for &x in &cols_u {
                self.move_state(x, &mut zone, parent_zone)?;
            }
        }
        let mut zone_set: HashSet<Pt2> = g_u.into_iter().collect();

        // Children, in topological order.
        let kid_gammas: Vec<HashSet<Pt2>> = kids
            .iter()
            .map(|k| self.gamma(k).into_iter().collect())
            .collect();
        for (i, kid) in kids.iter().enumerate() {
            // What the child must park back: values needed by later
            // siblings or by our own parent, that the child computes or
            // borrows.
            let mut want_kid: HashSet<Pt2> = HashSet::new();
            let relevant = |q: Pt2, me: &Self| me.in_exec(kid, q) || kid_gammas[i].contains(&q);
            for g in kid_gammas.iter().skip(i + 1) {
                for &q in g {
                    if relevant(q, self) {
                        want_kid.insert(q);
                    }
                }
            }
            for &q in want {
                if relevant(q, self) {
                    want_kid.insert(q);
                }
            }
            for q in &kid_gammas[i] {
                zone_set.remove(q);
            }
            self.exec(kid, &want_kid, &mut zone)?;
            zone_set.extend(want_kid);
        }

        // Park what the parent wants (Proposition 2 step 3); drop the
        // rest.  Iterate in sorted order so addresses — and therefore
        // charges — are fully deterministic.
        let mut wanted: Vec<Pt2> = want.iter().copied().collect();
        wanted.sort();
        for q in wanted {
            if !zone_set.remove(&q) {
                return Err(SimError::Internal {
                    what: "wanted value missing from zone",
                });
            }
            self.move_value(q, parent_zone, &mut zone)?;
        }
        let mut rest: Vec<Pt2> = zone_set.into_iter().collect();
        rest.sort();
        for q in rest {
            let old = self.live.remove(&q).ok_or(SimError::Internal {
                what: "zone bookkeeping lost a live value",
            })?;
            zone.free_if_owned(old);
        }
        if self.m > 1 {
            for &x in &cols_u {
                self.move_state(x, parent_zone, &mut zone)?;
            }
        }
        Ok(())
    }

    /// Naive execution of an executable diamond (Theorem 3's recursion
    /// bottom): ingest, run vertices in time order, park.
    fn exec_leaf(
        &mut self,
        u: &ClippedDiamond,
        want: &HashSet<Pt2>,
        parent_zone: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let pts = {
            let mut v: Vec<Pt2> = Vec::with_capacity(u.points_count() as usize);
            u.for_each_point(|p| {
                if self.cbox.contains(p) {
                    v.push(p);
                }
            });
            v.sort();
            v
        };
        if pts.is_empty() {
            return Ok(());
        }
        let g_u = self.gamma(u);
        let cols_u = self.cols(u);
        // Scratch layout: [0, |U|) value slots, then Γ slots, then state
        // blocks.
        let n_pts = pts.len();
        let mut slot: HashMap<Pt2, usize> = HashMap::with_capacity(n_pts + g_u.len());
        for (i, p) in pts.iter().enumerate() {
            slot.insert(*p, i);
        }
        // Ingest Γ.
        for (i, q) in g_u.iter().enumerate() {
            let dst = n_pts + i;
            let old = *self.live.get(q).ok_or(SimError::Internal {
                what: "preboundary value not live at leaf ingest",
            })?;
            self.ram.relocate(old, dst);
            if std::env::var("BSMP_TRACE").is_ok() && *q == Pt2::new(0, 2) {
                eprintln!(
                    "TRACE leaf-ingest (0,2): {old} -> {dst} val={} for leaf {u:?}",
                    self.ram.peek(dst)
                );
            }
            parent_zone.free_if_owned(old);
            self.live.insert(*q, dst);
            slot.insert(*q, dst);
        }
        // Ingest states.
        let mut st_base: HashMap<i64, usize> = HashMap::new();
        if self.m > 1 {
            let base0 = n_pts + g_u.len();
            for (i, &x) in cols_u.iter().enumerate() {
                let dst = base0 + i * self.m;
                let old = *self.state.get(&x).ok_or(SimError::Internal {
                    what: "state block not live at leaf ingest",
                })?;
                for c in 0..self.m {
                    self.ram.relocate(old + c, dst + c);
                }
                parent_zone.free_block_if_owned(old, self.m);
                st_base.insert(x, dst);
            }
        }

        // Execute in time order.
        let bd = self.prog.boundary();
        for (i, p) in pts.iter().enumerate() {
            let v = p.x as usize;
            let t = p.t;
            let read_val = |me: &mut Self, q: Pt2| -> Result<Word, SimError> {
                if !me.in_dag(q) {
                    return Ok(bd);
                }
                let a = *slot.get(&q).ok_or(SimError::Internal {
                    what: "operand unavailable in leaf",
                })?;
                Ok(me.ram.read(a))
            };
            let prev = read_val(self, Pt2::new(p.x, t - 1))?;
            let left = read_val(self, Pt2::new(p.x - 1, t - 1))?;
            let right = read_val(self, Pt2::new(p.x + 1, t - 1))?;
            let own = if self.m > 1 {
                let c = self.prog.cell(v, t);
                let a = st_base[&p.x] + c;
                self.ram.read(a)
            } else {
                prev
            };
            let out = self.prog.delta(v, t, own, prev, left, right);
            if let Some(o) = &self.oracle {
                if let Some(&exp) = o.get(p) {
                    assert_eq!(out, exp,
                        "vertex {p:?} in leaf {u:?}: operands own={own} prev={prev} l={left} r={right}");
                }
            }
            self.ram.compute();
            if self.m > 1 {
                let c = self.prog.cell(v, t);
                self.ram.write(st_base[&p.x] + c, out);
            }
            self.ram.write(i, out);
            self.live.insert(*p, i);
        }

        // Park wanted values (sorted: deterministic addresses).
        let mut wanted: Vec<Pt2> = want.iter().copied().collect();
        wanted.sort();
        for q in wanted {
            let old = *self.live.get(&q).ok_or(SimError::Internal {
                what: "wanted value not present in leaf",
            })?;
            let new = parent_zone.alloc();
            self.ram.relocate(old, new);
            self.live.insert(q, new);
        }
        // Drop everything else local.
        for p in &pts {
            if !want.contains(p) {
                self.live.remove(p);
            }
        }
        for q in &g_u {
            if !want.contains(q) {
                self.live.remove(q);
            }
        }
        // Park states.
        if self.m > 1 {
            for &x in &cols_u {
                let base = st_base[&x];
                let new = parent_zone.alloc_block(self.m);
                for c in 0..self.m {
                    self.ram.relocate(base + c, new + c);
                }
                self.state.insert(x, new);
            }
        }
        Ok(())
    }

    /// Seed a live value at an explicit address (multiprocessor engine:
    /// staging a tile's preboundary into this processor's memory).
    pub fn seed_value(&mut self, p: Pt2, addr: usize) {
        self.live.insert(p, addr);
    }

    /// Seed a column's state-block base address.
    pub fn seed_state(&mut self, col: i64, addr: usize) {
        self.state.insert(col, addr);
    }

    /// Address of a live value, if present.
    pub fn value_addr(&self, p: Pt2) -> Option<usize> {
        self.live.get(&p).copied()
    }

    /// Address of a column's state block, if present.
    pub fn state_addr(&self, col: i64) -> Option<usize> {
        self.state.get(&col).copied()
    }

    /// Drop all live values and states (between tile executions).
    pub fn clear_seeds(&mut self) {
        self.live.clear();
        self.state.clear();
    }

    /// Run the whole simulation: lay out the guest image, execute the
    /// top-level diamond, write the final image back into the guest
    /// layout.  Returns `(final_mem, final_values)`.
    pub fn run(&mut self, init: &[Word]) -> Result<(Vec<Word>, Vec<Word>), SimError> {
        let n = self.n as usize;
        let m = self.m;
        assert_eq!(init.len(), n * m);
        if self.t_steps == 0 {
            let values = (0..n).map(|v| init[v * m + self.prog.cell(v, 0)]).collect();
            return Ok((init.to_vec(), values));
        }

        // Top-level diamond covering the whole computed box.
        let h_top = ((self.n + self.t_steps + 4) as u64).next_power_of_two() as i64;
        let top = ClippedDiamond::new(
            Diamond::new(self.n / 2, self.t_steps / 2 + 1, h_top),
            self.cbox,
        );
        let s_top = self.space(&top);

        // Driver zone and guest image above the working region.
        let g_top = self.gamma(&top).len();
        let zone_cap = g_top + m * n + n + 32;
        let mut driver_zone = ZoneAlloc::new(s_top, zone_cap);
        let image = s_top + zone_cap;

        // Lay out the initial guest image (uncharged: problem statement).
        for (i, w) in init.iter().enumerate() {
            self.ram.poke(image + i, *w);
        }
        for v in 0..n {
            let p = Pt2::new(v as i64, 0);
            self.live.insert(p, image + v * m + self.prog.cell(v, 0));
        }
        if m > 1 {
            for v in 0..n {
                self.state.insert(v as i64, image + v * m);
            }
        }

        // Want the final row back.
        let want: HashSet<Pt2> = (0..self.n).map(|x| Pt2::new(x, self.t_steps)).collect();
        self.exec(&top, &want, &mut driver_zone)?;

        // Write the final image back into the guest layout (charged —
        // the host must leave memory as the guest would).
        let mut values = vec![0 as Word; n];
        for (v, slot) in values.iter_mut().enumerate() {
            let p = Pt2::new(v as i64, self.t_steps);
            let addr = *self.live.get(&p).ok_or(SimError::Internal {
                what: "final value not live after top-level exec",
            })?;
            *slot = self.ram.peek(addr);
            if m == 1 {
                self.ram.relocate(addr, image + v);
            }
        }
        if m > 1 {
            for v in 0..n {
                let old = *self.state.get(&(v as i64)).ok_or(SimError::Internal {
                    what: "final state block not live after top-level exec",
                })?;
                let dst = image + v * m;
                if old != dst {
                    for c in 0..m {
                        self.ram.relocate(old + c, dst + c);
                    }
                }
            }
        }
        let mem = (0..n * m).map(|i| self.ram.peek(image + i)).collect();
        Ok((mem, values))
    }
}
