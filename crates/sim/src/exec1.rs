//! The Proposition-2 executor over diamond topological separators
//! (`d = 1`) — the machinery behind Theorems 2 and 3.
//!
//! The whole computed vertex set `[0, n) × [1, T]` is wrapped in one big
//! clipped diamond and executed recursively: each diamond splits into its
//! four half-radius children (bottom, left, right, top — the Figure-1
//! separator), and Proposition 2's memory discipline is followed
//! *literally* on an instrumented H-RAM:
//!
//! * child working space is always the low band `[0, S(child))`;
//! * transit data (incoming preboundary values, inter-child boundary
//!   values, private-memory blocks of the diamond's node columns) lives
//!   in the parking band `[max_i S(child_i), S(U))`, managed by a
//!   [`ZoneAlloc`];
//! * every move is charged `read + write` at the true addresses, so the
//!   measured time is exactly the quantity Theorem 2/3 bound;
//! * diamonds with radius `≤ leaf_h` are executed naively (the
//!   "executable diamonds" of Theorem 3's proof, `D(m)` for density `m`).
//!
//! For `m = 1` the node state *is* the communicated value and no state
//! blocks exist; for `m > 1` each node column's `m`-cell private memory
//! is relocated as a block along the recursion, exactly as in §4.1
//! ("the access to a single variable is replaced by the access to the
//! entire private memory of an individual processor").

use std::sync::Arc;

use bsmp_machine::FxHashMap;

use bsmp_geometry::{ClippedDiamond, Diamond, IRect, Pt2};
use bsmp_hram::{CostTable, Hram, Word};
use bsmp_machine::{LinearProgram, MachineSpec};

use crate::error::SimError;
use crate::zone::ZoneAlloc;

/// Shape key for memoizing the space function `S(U)`: the radius plus
/// the diamond's position relative to all four dag walls, clamped to
/// `±(2h + 2)` — beyond that distance a wall cannot influence `Γ`,
/// columns, or the outbound cap, so all truly interior diamonds of one
/// radius share a key.
type ShapeKey = (i64, i64, i64, i64, i64);

/// Memoized Γ of one diamond shape, as offsets from the centre.
#[derive(Clone)]
struct GammaPattern {
    /// Emission order (see [`DiamondExec::gamma`]) — ingest follows it.
    emit: Vec<(i64, i64)>,
    /// The same offsets sorted — `(dt, dx)` order equals `(t, x)` order.
    sorted: Vec<(i64, i64)>,
}

/// The frozen, shareable plan of one `(n, T, m, leaf_h)` configuration:
/// every shape memo a [`DiamondExec`] builds while decomposing the dag.
/// Pure geometry — independent of the guest program, its input, the
/// cost model, and the fault plan — so one plan serves every future run
/// of the same shape (via [`bsmp_machine::plan_cache`]) and all `p`
/// per-tile executors of the two-regime engine.  An executor consults
/// its plan first and falls back to its private memos, so a plan that
/// is merely *partial* still short-circuits whatever it covers.
#[derive(Clone, Default)]
pub struct DiamondPlan {
    space: FxHashMap<ShapeKey, (usize, usize)>,
    gamma: FxHashMap<ShapeKey, GammaPattern>,
    sib_want: FxHashMap<(ShapeKey, u8), Vec<(i64, i64)>>,
}

impl DiamondPlan {
    /// No memos at all (nothing was discovered beyond the plan).
    pub fn is_empty(&self) -> bool {
        self.space.is_empty() && self.gamma.is_empty() && self.sib_want.is_empty()
    }

    /// Merge another plan's memos in (theirs win on collision — values
    /// for one key are identical by determinism, so this is moot).
    pub fn absorb(&mut self, other: DiamondPlan) {
        self.space.extend(other.space);
        self.gamma.extend(other.gamma);
        self.sib_want.extend(other.sib_want);
    }

    /// Rough heap size, for the plan cache's byte accounting.
    pub fn approx_bytes(&self) -> usize {
        let key_bytes = std::mem::size_of::<ShapeKey>() + 16;
        let mut b = self.space.len() * (key_bytes + 16);
        for g in self.gamma.values() {
            b += key_bytes + 96 + (g.emit.len() + g.sorted.len()) * 16;
        }
        for w in self.sib_want.values() {
            b += key_bytes + 40 + w.len() * 16;
        }
        b
    }
}

/// A sorted value directory: the current address of each parked dag
/// value, ordered by point.  Threaded down the recursion instead of a
/// global hash map — every lookup is a binary search over a small,
/// cache-resident slice.
type Vals = Vec<(Pt2, usize)>;

/// Address of `q` in the sorted directory `vals`, if present.
#[inline]
fn vals_get(vals: &[(Pt2, usize)], q: Pt2) -> Option<usize> {
    vals.binary_search_by_key(&q, |e| e.0)
        .ok()
        .map(|i| vals[i].1)
}

/// Remove from the sorted directory `list` every entry whose point is in
/// sorted `rm` (points of `rm` absent from `list` are ignored).  Linear.
fn remove_sorted_vals(list: &mut Vals, rm: &[Pt2]) {
    if rm.is_empty() || list.is_empty() {
        return;
    }
    let mut w = 0;
    let mut r = 0;
    for i in 0..list.len() {
        let e = list[i];
        while r < rm.len() && rm[r] < e.0 {
            r += 1;
        }
        if r < rm.len() && rm[r] == e.0 {
            continue;
        }
        list[w] = e;
        w += 1;
    }
    list.truncate(w);
}

/// Merge the sorted `(keys, addrs)` pairs into the sorted directory
/// `list`, via `scratch`.  On a key collision the incoming address wins
/// (the value was just re-parked).  Linear.
fn merge_vals(list: &mut Vals, keys: &[Pt2], addrs: &[usize], scratch: &mut Vals) {
    debug_assert_eq!(keys.len(), addrs.len());
    if keys.is_empty() {
        return;
    }
    scratch.clear();
    scratch.reserve(list.len() + keys.len());
    let (mut i, mut j) = (0, 0);
    while i < list.len() && j < keys.len() {
        match list[i].0.cmp(&keys[j]) {
            std::cmp::Ordering::Less => {
                scratch.push(list[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                scratch.push((keys[j], addrs[j]));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                scratch.push((keys[j], addrs[j]));
                i += 1;
                j += 1;
            }
        }
    }
    scratch.extend_from_slice(&list[i..]);
    while j < keys.len() {
        scratch.push((keys[j], addrs[j]));
        j += 1;
    }
    std::mem::swap(list, scratch);
}

/// Merge sorted `add` into sorted `list`, deduplicating, via `scratch`.
/// Linear — replaces per-element hash-set traffic on the recursion's
/// hot path.
fn insert_sorted(list: &mut Vec<Pt2>, add: &[Pt2], scratch: &mut Vec<Pt2>) {
    if add.is_empty() {
        return;
    }
    scratch.clear();
    scratch.reserve(list.len() + add.len());
    let (mut i, mut j) = (0, 0);
    while i < list.len() && j < add.len() {
        match list[i].cmp(&add[j]) {
            std::cmp::Ordering::Less => {
                scratch.push(list[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                scratch.push(add[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                scratch.push(list[i]);
                i += 1;
                j += 1;
            }
        }
    }
    scratch.extend_from_slice(&list[i..]);
    scratch.extend_from_slice(&add[j..]);
    std::mem::swap(list, scratch);
}

/// Per-depth scratch buffers for [`DiamondExec::exec_node`]: every
/// diamond visited at the same recursion depth reuses one set, so the
/// steady-state recursion performs no per-node heap allocation.
#[derive(Default)]
struct LevelBufs {
    kids: Vec<ClippedDiamond>,
    g_u: Vec<Pt2>,
    zone_list: Vals,
    scratch: Vec<Pt2>,
    vscratch: Vals,
    wtmp: Vec<Pt2>,
    kid_addrs: Vec<usize>,
    want_kid: Vec<Pt2>,
    kid_gammas: [Vec<Pt2>; 4],
    cols: Vec<i64>,
}

/// The recursive executor.  One instance per simulation run.
pub struct DiamondExec<'a, P: LinearProgram> {
    prog: &'a P,
    /// Array length.
    n: i64,
    /// Computation steps.
    t_steps: i64,
    /// Cells per node.
    m: usize,
    /// Computed vertices: `x ∈ [0, n)`, `t ∈ [1, T]`.
    cbox: IRect,
    /// The host H-RAM.
    pub ram: Hram,
    /// Current base address of each node column's `m`-cell block
    /// (only for `m > 1`).
    state: FxHashMap<i64, usize>,
    /// `(S(U), max_i S(child_i))` per shape (see
    /// [`space_and_zmax`](Self::space_and_zmax)).
    space_memo: FxHashMap<ShapeKey, (usize, usize)>,
    /// Γ memoized as `(dt, dx)` offsets from the diamond centre — both
    /// emission order (ingest addresses follow it) and sorted order
    /// (membership / parking) — keyed by the same wall-distance shape
    /// key as the space memo: beyond the key's clamp distance a wall
    /// cannot change which preboundary points survive the `keep` filter.
    gamma_memo: FxHashMap<ShapeKey, GammaPattern>,
    /// The shape-determined part of each kid's `want` (later-sibling
    /// gamma points the kid computes or borrows), as sorted `(dt, dx)`
    /// offsets from the *parent's* centre, per kid index.
    sib_want_memo: FxHashMap<(ShapeKey, u8), Vec<(i64, i64)>>,
    /// Shared frozen memos from a previous run of the same shape (see
    /// [`DiamondPlan`]).  Consulted before the private memos above; the
    /// private maps then hold only *discoveries* — shapes the plan did
    /// not cover — which [`drain_discoveries`](Self::drain_discoveries)
    /// harvests to grow the cached plan.
    plan: Option<Arc<DiamondPlan>>,
    /// Reusable leaf scratch (points / preboundary of the current leaf);
    /// avoids two heap allocations per executable diamond.
    leaf_pts: Vec<Pt2>,
    leaf_gamma: Vec<Pt2>,
    /// Per-recursion-depth scratch buffers (see [`LevelBufs`]).
    levels: Vec<LevelBufs>,
    /// Diamonds with `h ≤ leaf_h` are executed naively.
    pub leaf_h: i64,
    /// Plan-time charge table covering the leaf scratch band: the
    /// execute loop's operand reads and result writes take their
    /// `1 + f(x)` from here (counted in `table_hits`) instead of
    /// re-evaluating the access function per access.  The table memoizes
    /// [`bsmp_hram::AccessFn::charge`] verbatim, so meters stay
    /// bit-identical; addresses above the table fall back to the scalar
    /// evaluation.
    table: CostTable,
    /// Debug oracle: expected value per vertex (tests only).
    #[doc(hidden)]
    pub oracle: Option<FxHashMap<Pt2, Word>>,
}

impl<'a, P: LinearProgram> DiamondExec<'a, P> {
    pub fn new(spec: &MachineSpec, prog: &'a P, t_steps: i64, leaf_h: i64) -> Self {
        assert_eq!(spec.d, 1);
        assert_eq!(spec.p, 1, "DiamondExec is the uniprocessor engine");
        let n = spec.n as i64;
        let m = prog.m();
        assert_eq!(m as u64, spec.m);
        // Leaf scratch bound: a radius-h diamond has ≤ 2h² + 2h + 1
        // points, ≤ 6h + 8 preboundary slots (lattice plus input row),
        // and ≤ (2h + 1)·m state words.  Capped so degenerate leaf
        // choices cannot balloon the table.
        let h = leaf_h.max(1) as usize;
        let leaf_span = (2 * h * h + 2 * h + 1 + 6 * h + 8 + (2 * h + 1) * m).min(1 << 20);
        let table = CostTable::new(spec.access_fn(), leaf_span);
        DiamondExec {
            prog,
            n,
            t_steps,
            m,
            cbox: IRect::new(0, n, 1, t_steps + 1),
            ram: Hram::new(spec.access_fn(), 0),
            state: FxHashMap::default(),
            space_memo: FxHashMap::default(),
            gamma_memo: FxHashMap::default(),
            sib_want_memo: FxHashMap::default(),
            plan: None,
            leaf_pts: Vec::new(),
            leaf_gamma: Vec::new(),
            levels: Vec::new(),
            leaf_h: leaf_h.max(1),
            table,
            oracle: None,
        }
    }

    /// Adopt a frozen plan from a previous run of the same
    /// `(n, T, m, leaf_h)` shape.  Must be set before `run`.
    pub fn set_plan(&mut self, plan: Arc<DiamondPlan>) {
        self.plan = Some(plan);
    }

    /// Take every memo this executor built *beyond* its plan.  Empty
    /// when the plan already covered all shapes encountered.  Call
    /// after the run; the executor's memos are left empty.
    pub fn drain_discoveries(&mut self) -> DiamondPlan {
        DiamondPlan {
            space: std::mem::take(&mut self.space_memo),
            gamma: std::mem::take(&mut self.gamma_memo),
            sib_want: std::mem::take(&mut self.sib_want_memo),
        }
    }

    /// Is `p` a vertex this engine executes?
    #[inline]
    fn in_exec(&self, u: &ClippedDiamond, p: Pt2) -> bool {
        u.d.contains(p) && self.cbox.contains(p)
    }

    /// Is `p` a dag vertex at all (including the input row)?
    #[inline]
    fn in_dag(&self, p: Pt2) -> bool {
        0 <= p.x && p.x < self.n && 0 <= p.t && p.t <= self.t_steps
    }

    /// The executor's preboundary of `U = D ∩ cbox`: all dag vertices
    /// outside `U` that are predecessors of a vertex of `U`.  This is
    /// the diamond's lattice preboundary plus the input-row vertices the
    /// diamond itself covers, filtered to actual predecessors.
    pub fn gamma(&mut self, u: &ClippedDiamond) -> Vec<Pt2> {
        let mut out = Vec::new();
        self.gamma_into(u, &mut out);
        out
    }

    /// [`gamma`](Self::gamma) into a reusable buffer (cleared first).
    /// Emission order — lattice preboundary order, then the input row —
    /// is charge-relevant: ingest addresses follow it.
    fn gamma_into(&mut self, u: &ClippedDiamond, out: &mut Vec<Pt2>) {
        out.clear();
        let pat = self.gamma_pattern(u);
        let (cx, ct) = (u.d.cx, u.d.ct);
        out.extend(pat.emit.iter().map(|&(dt, dx)| Pt2::new(cx + dx, ct + dt)));
    }

    /// Γ in sorted `(t, x)` order (offset order equals absolute order).
    fn gamma_sorted_into(&mut self, u: &ClippedDiamond, out: &mut Vec<Pt2>) {
        out.clear();
        let pat = self.gamma_pattern(u);
        let (cx, ct) = (u.d.cx, u.d.ct);
        out.extend(
            pat.sorted
                .iter()
                .map(|&(dt, dx)| Pt2::new(cx + dx, ct + dt)),
        );
    }

    fn gamma_pattern(&mut self, u: &ClippedDiamond) -> &GammaPattern {
        let key = self.shape_key(u);
        if self
            .plan
            .as_ref()
            .is_some_and(|pl| pl.gamma.contains_key(&key))
        {
            return &self.plan.as_ref().unwrap().gamma[&key];
        }
        // Single hash probe on the (dominant) hit path; the miss path
        // scans with captured copies of the dag bounds so the entry's
        // mutable borrow of the memo doesn't conflict.
        let (n, t_steps, cbox, uc) = (self.n, self.t_steps, self.cbox, *u);
        self.gamma_memo.entry(key).or_insert_with(|| {
            let in_dag = |p: Pt2| 0 <= p.x && p.x < n && 0 <= p.t && p.t <= t_steps;
            let in_ex = |p: Pt2| uc.d.contains(p) && cbox.contains(p);
            let keep = |q: Pt2| in_dag(q) && q.succs().iter().any(|s| in_ex(*s));
            let mut pts = Vec::new();
            u.d.for_each_preboundary(|q| {
                if keep(q) {
                    pts.push(q);
                }
            });
            // Input-row vertices inside the diamond (below cbox).
            if u.d.bbox().t0 <= 0 {
                for x in u.d.bbox().x0.max(0)..u.d.bbox().x1.min(n) {
                    let q = Pt2::new(x, 0);
                    if u.d.contains(q) && keep(q) {
                        pts.push(q);
                    }
                }
            }
            let emit: Vec<(i64, i64)> = pts.iter().map(|q| (q.t - u.d.ct, q.x - u.d.cx)).collect();
            let mut sorted = emit.clone();
            sorted.sort_unstable();
            GammaPattern { emit, sorted }
        })
    }

    /// Columns (node indices) with at least one executed vertex in `U`.
    fn cols(&self, u: &ClippedDiamond) -> Vec<i64> {
        let mut out = Vec::new();
        self.cols_into(u, &mut out);
        out
    }

    /// [`cols`](Self::cols) into a reusable buffer (cleared first).
    fn cols_into(&self, u: &ClippedDiamond, out: &mut Vec<i64>) {
        out.clear();
        let b = u.d.bbox().intersect(&self.cbox);
        out.extend((b.x0..b.x1).filter(|&x| {
            let (lo, hi) = self.col_range(u, x);
            lo <= hi
        }));
    }

    /// Executed `t`-range of column `x` in `U` (inclusive; empty if
    /// `lo > hi`).
    fn col_range(&self, u: &ClippedDiamond, x: i64) -> (i64, i64) {
        let k = (x - u.d.cx).abs();
        let lo = (u.d.ct - u.d.h + k + 1).max(self.cbox.t0);
        let hi = (u.d.ct + u.d.h - k).min(self.cbox.t1 - 1);
        (lo, hi)
    }

    /// Upper bound on how many values of `U` any ancestor can want back:
    /// vertices with a successor outside `U` that is executed later or
    /// lies above the final row.
    fn outbound_cap(&self, u: &ClippedDiamond) -> usize {
        let b = u.d.bbox().intersect(&self.cbox);
        let mut count = 0usize;
        for x in b.x0..b.x1 {
            let (lo, hi) = self.col_range(u, x);
            if lo > hi {
                continue;
            }
            // Only the top two vertices of a column can have successors
            // outside U that anyone later can consume: upward exposure is
            // limited to the top two rows of each column, and sideways
            // exposure beyond the clip edge points outside the dag (the
            // clip is the dag box), where no consumer exists.
            let _ = x;
            count += 2.min((hi - lo + 1) as usize);
        }
        count + 4
    }

    /// Non-empty children in topological order.
    fn kids(&self, u: &ClippedDiamond) -> Vec<ClippedDiamond> {
        let mut out = Vec::new();
        self.kids_into(u, &mut out);
        out
    }

    /// [`kids`](Self::kids) into a reusable buffer (cleared first).
    fn kids_into(&self, u: &ClippedDiamond, out: &mut Vec<ClippedDiamond>) {
        out.clear();
        out.extend(
            u.d.children()
                .into_iter()
                .map(|d| ClippedDiamond::new(d, self.cbox))
                .filter(|c| c.points_count() > 0),
        );
    }

    fn shape_key(&self, u: &ClippedDiamond) -> ShapeKey {
        let h = u.d.h;
        let cl = 2 * h + 2;
        (
            h,
            u.d.cx.clamp(-cl, cl),
            (self.n - u.d.cx).clamp(-cl, cl),
            u.d.ct.clamp(-cl, cl),
            (self.t_steps + 1 - u.d.ct).clamp(-cl, cl),
        )
    }

    /// The space function `S(U)` of Proposition 2, memoized per shape.
    pub fn space(&mut self, u: &ClippedDiamond) -> usize {
        self.space_and_zmax(u).0
    }

    /// `(S(U), max_i S(child_i))` in one memo probe — the recursion
    /// needs both to size a level's zone, and the kid maximum is as
    /// shape-determined as `S` itself (children are translation-covariant
    /// and the key's clamp covers their wall distances).
    fn space_and_zmax(&mut self, u: &ClippedDiamond) -> (usize, usize) {
        let key = self.shape_key(u);
        if let Some(&v) = self.plan.as_ref().and_then(|pl| pl.space.get(&key)) {
            return v;
        }
        if let Some(&v) = self.space_memo.get(&key) {
            return v;
        }
        let v = if u.d.h <= self.leaf_h || u.d.h % 2 == 1 {
            let vol = u.points_count() as usize;
            let g = self.gamma(u).len();
            let st = if self.m > 1 {
                self.cols(u).len() * self.m
            } else {
                0
            };
            (vol + g + st, 0)
        } else {
            let kids = self.kids(u);
            let mut zmax = 0usize;
            let mut p_u = 0usize;
            for k in &kids {
                zmax = zmax.max(self.space(k));
                let st = if self.m > 1 {
                    self.cols(k).len() * self.m
                } else {
                    0
                };
                p_u += self.gamma(k).len() + st;
            }
            let st_u = if self.m > 1 {
                self.cols(u).len() * self.m
            } else {
                0
            };
            (
                zmax + p_u + self.gamma(u).len() + self.outbound_cap(u) + st_u,
                zmax,
            )
        };
        self.space_memo.insert(key, v);
        v
    }

    /// Move a column's state block into `zone`.
    fn move_state(
        &mut self,
        x: i64,
        zone: &mut ZoneAlloc,
        from: &mut ZoneAlloc,
    ) -> Result<(), SimError> {
        let old = *self.state.get(&x).ok_or(SimError::Internal {
            what: "moved state block not live",
        })?;
        let new = zone.alloc_block(self.m);
        for c in 0..self.m {
            self.ram.relocate(old + c, new + c);
        }
        from.free_block_if_owned(old, self.m);
        self.state.insert(x, new);
        Ok(())
    }

    /// Execute `U`, with all inputs parked in `parent_zone` at the
    /// addresses listed in the sorted directory `parent_vals`; park the
    /// values in `want` (a **sorted, deduplicated** point list — parking
    /// order follows it, so charges stay deterministic) and all column
    /// states back into `parent_zone`, pushing the parked address of each
    /// `want` entry onto `out_addrs` in `want` order.
    ///
    /// Bookkeeping invariant violations surface as
    /// [`SimError::Internal`] rather than panicking, so a chaos run can
    /// degrade gracefully.
    pub fn exec(
        &mut self,
        u: &ClippedDiamond,
        want: &[Pt2],
        parent_zone: &mut ZoneAlloc,
        parent_vals: &[(Pt2, usize)],
        out_addrs: &mut Vec<usize>,
    ) -> Result<(), SimError> {
        self.exec_at(u, want, parent_zone, parent_vals, out_addrs, 0)
    }

    fn exec_at(
        &mut self,
        u: &ClippedDiamond,
        want: &[Pt2],
        parent_zone: &mut ZoneAlloc,
        parent_vals: &[(Pt2, usize)],
        out_addrs: &mut Vec<usize>,
        depth: usize,
    ) -> Result<(), SimError> {
        debug_assert!(want.windows(2).all(|w| w[0] < w[1]), "want must be sorted");
        if u.d.h <= self.leaf_h || u.d.h % 2 == 1 {
            return self.exec_leaf(u, want, parent_zone, parent_vals, out_addrs);
        }
        // Per-depth scratch: every diamond visited at this depth reuses
        // the same buffers, so the steady-state recursion allocates
        // nothing per node.
        if self.levels.len() <= depth {
            self.levels.resize_with(depth + 1, LevelBufs::default);
        }
        let mut b = std::mem::take(&mut self.levels[depth]);
        let res = self.exec_node(u, want, parent_zone, parent_vals, out_addrs, depth, &mut b);
        self.levels[depth] = b;
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_node(
        &mut self,
        u: &ClippedDiamond,
        want: &[Pt2],
        parent_zone: &mut ZoneAlloc,
        parent_vals: &[(Pt2, usize)],
        out_addrs: &mut Vec<usize>,
        depth: usize,
        b: &mut LevelBufs,
    ) -> Result<(), SimError> {
        let (s_u, zmax) = self.space_and_zmax(u);
        self.kids_into(u, &mut b.kids);
        let mut zone = ZoneAlloc::new(zmax, s_u - zmax);

        // Ingest: preboundary values + column states (Proposition 2 step 1
        // at this level).  `zone_list` becomes this level's own value
        // directory: every value currently parked in our zone, sorted —
        // all mutations are linear merges over sorted inputs, which beats
        // a hash map on this path (small lists, no hashing, no rehash).
        self.gamma_into(u, &mut b.g_u);
        b.zone_list.clear();
        for i in 0..b.g_u.len() {
            let q = b.g_u[i];
            let old = vals_get(parent_vals, q).ok_or(SimError::Internal {
                what: "moved value not live",
            })?;
            let new = zone.alloc();
            self.ram.relocate(old, new);
            parent_zone.free_if_owned(old);
            b.zone_list.push((q, new));
        }
        b.cols.clear();
        if self.m > 1 {
            self.cols_into(u, &mut b.cols);
            for i in 0..b.cols.len() {
                self.move_state(b.cols[i], &mut zone, parent_zone)?;
            }
        }
        b.zone_list.sort_unstable();

        // Children, in topological order.  Each gamma is sorted (its
        // ingest order is re-derived inside the child's own `exec`) so
        // membership checks are binary searches.
        let key = self.shape_key(u);
        for i in 0..b.kids.len() {
            let k = b.kids[i];
            let mut g = std::mem::take(&mut b.kid_gammas[i]);
            self.gamma_sorted_into(&k, &mut g);
            b.kid_gammas[i] = g;
        }
        for i in 0..b.kids.len() {
            let kid = b.kids[i];
            // What the child must park back: values needed by later
            // siblings or by our own parent, that the child computes or
            // borrows.  The sibling part is shape-determined, so it is
            // memoized as offsets from our centre.
            b.want_kid.clear();
            let relevant =
                |q: Pt2, me: &Self, kg: &[Pt2]| me.in_exec(&kid, q) || kg.binary_search(&q).is_ok();
            if let Some(offs) = self
                .plan
                .as_ref()
                .and_then(|pl| pl.sib_want.get(&(key, i as u8)))
                .or_else(|| self.sib_want_memo.get(&(key, i as u8)))
            {
                b.want_kid.extend(
                    offs.iter()
                        .map(|&(dt, dx)| Pt2::new(u.d.cx + dx, u.d.ct + dt)),
                );
            } else {
                for g in b.kid_gammas[..b.kids.len()].iter().skip(i + 1) {
                    for &q in g {
                        if relevant(q, self, &b.kid_gammas[i]) {
                            b.want_kid.push(q);
                        }
                    }
                }
                b.want_kid.sort();
                b.want_kid.dedup();
                let offs: Vec<(i64, i64)> = b
                    .want_kid
                    .iter()
                    .map(|q| (q.t - u.d.ct, q.x - u.d.cx))
                    .collect();
                self.sib_want_memo.insert((key, i as u8), offs);
            }
            // Only `want` entries whose `t` lies within the kid's
            // influence band can be relevant; `want` is sorted by `t`,
            // and the filtered slice stays sorted, so a linear merge
            // finishes the job.
            let (t_lo, t_hi) = (kid.d.ct - kid.d.h, kid.d.ct + kid.d.h);
            let lo = want.partition_point(|q| q.t < t_lo);
            let hi = want.partition_point(|q| q.t <= t_hi);
            b.wtmp.clear();
            for &q in &want[lo..hi] {
                if relevant(q, self, &b.kid_gammas[i]) {
                    b.wtmp.push(q);
                }
            }
            insert_sorted(&mut b.want_kid, &b.wtmp, &mut b.scratch);
            // The kid ingests its Γ straight out of `zone_list`, then
            // parks `want_kid` back; the stale Γ entries are dropped and
            // the freshly parked addresses merged in afterwards (pure
            // host bookkeeping — no charge is involved).
            b.kid_addrs.clear();
            {
                let mut kid_addrs = std::mem::take(&mut b.kid_addrs);
                let r = self.exec_at(
                    &kid,
                    &b.want_kid,
                    &mut zone,
                    &b.zone_list,
                    &mut kid_addrs,
                    depth + 1,
                );
                b.kid_addrs = kid_addrs;
                r?;
            }
            remove_sorted_vals(&mut b.zone_list, &b.kid_gammas[i]);
            merge_vals(&mut b.zone_list, &b.want_kid, &b.kid_addrs, &mut b.vscratch);
        }

        // Park what the parent wants (Proposition 2 step 3); drop the
        // rest.  `want` and `zone_list` are both sorted: one linear walk
        // parks wants in order and frees the leftovers — already in the
        // sorted order the drop loop needs, so addresses and charges
        // stay fully deterministic.
        let mut zi = 0;
        for &q in want {
            while zi < b.zone_list.len() && b.zone_list[zi].0 < q {
                zone.free_if_owned(b.zone_list[zi].1);
                zi += 1;
            }
            if zi >= b.zone_list.len() || b.zone_list[zi].0 != q {
                return Err(SimError::Internal {
                    what: "wanted value missing from zone",
                });
            }
            let old = b.zone_list[zi].1;
            zi += 1;
            let new = parent_zone.alloc();
            self.ram.relocate(old, new);
            zone.free_if_owned(old);
            out_addrs.push(new);
        }
        for &(_, old) in &b.zone_list[zi..] {
            zone.free_if_owned(old);
        }
        for i in 0..b.cols.len() {
            self.move_state(b.cols[i], parent_zone, &mut zone)?;
        }
        Ok(())
    }

    /// Naive execution of an executable diamond (Theorem 3's recursion
    /// bottom): ingest, run vertices in time order, park.
    ///
    /// Leaves dominate the recursion's host cost, so this path avoids
    /// per-leaf heap traffic: points and Γ live in reusable scratch
    /// buffers, and every operand address comes from a binary search
    /// over those sorted/tiny lists or from the parent's sorted value
    /// directory — no hash map anywhere.
    fn exec_leaf(
        &mut self,
        u: &ClippedDiamond,
        want: &[Pt2],
        parent_zone: &mut ZoneAlloc,
        parent_vals: &[(Pt2, usize)],
        out_addrs: &mut Vec<usize>,
    ) -> Result<(), SimError> {
        let mut pts = std::mem::take(&mut self.leaf_pts);
        pts.clear();
        u.for_each_point(|p| {
            if self.cbox.contains(p) {
                pts.push(p);
            }
        });
        pts.sort();
        if pts.is_empty() {
            self.leaf_pts = pts;
            return Ok(());
        }
        let mut g_u = std::mem::take(&mut self.leaf_gamma);
        self.gamma_into(u, &mut g_u);
        let res = self.exec_leaf_inner(u, want, parent_zone, parent_vals, out_addrs, &pts, &g_u);
        self.leaf_pts = pts;
        self.leaf_gamma = g_u;
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_leaf_inner(
        &mut self,
        u: &ClippedDiamond,
        want: &[Pt2],
        parent_zone: &mut ZoneAlloc,
        parent_vals: &[(Pt2, usize)],
        out_addrs: &mut Vec<usize>,
        pts: &[Pt2],
        g_u: &[Pt2],
    ) -> Result<(), SimError> {
        let cols_u = if self.m > 1 { self.cols(u) } else { Vec::new() };
        // Scratch layout: [0, |U|) value slots, then Γ slots, then state
        // blocks.
        let n_pts = pts.len();
        // Ingest Γ into the fixed scratch slots.
        for (i, q) in g_u.iter().enumerate() {
            let dst = n_pts + i;
            let old = vals_get(parent_vals, *q).ok_or(SimError::Internal {
                what: "preboundary value not live at leaf ingest",
            })?;
            self.ram.relocate(old, dst);
            parent_zone.free_if_owned(old);
        }
        // Ingest states.
        let st_base0 = n_pts + g_u.len();
        for (i, &x) in cols_u.iter().enumerate() {
            let dst = st_base0 + i * self.m;
            let old = *self.state.get(&x).ok_or(SimError::Internal {
                what: "state block not live at leaf ingest",
            })?;
            for c in 0..self.m {
                self.ram.relocate(old + c, dst + c);
            }
            parent_zone.free_block_if_owned(old, self.m);
        }

        // Execute in time order.
        let bd = self.prog.boundary();
        for (i, p) in pts.iter().enumerate() {
            let v = p.x as usize;
            let t = p.t;
            let read_val = |me: &mut Self, q: Pt2| -> Result<Word, SimError> {
                if !me.in_dag(q) {
                    return Ok(bd);
                }
                let a = match pts.binary_search(&q) {
                    Ok(j) => j,
                    Err(_) => {
                        n_pts
                            + g_u.iter().position(|g| *g == q).ok_or(SimError::Internal {
                                what: "operand unavailable in leaf",
                            })?
                    }
                };
                Ok(me.ram.read_via(&me.table, a))
            };
            let prev = read_val(self, Pt2::new(p.x, t - 1))?;
            let left = read_val(self, Pt2::new(p.x - 1, t - 1))?;
            let right = read_val(self, Pt2::new(p.x + 1, t - 1))?;
            let own = if self.m > 1 {
                let c = self.prog.cell(v, t);
                let ci = cols_u.binary_search(&p.x).map_err(|_| SimError::Internal {
                    what: "column state missing in leaf",
                })?;
                self.ram.read_via(&self.table, st_base0 + ci * self.m + c)
            } else {
                prev
            };
            let out = self.prog.delta(v, t, own, prev, left, right);
            if let Some(o) = &self.oracle {
                if let Some(&exp) = o.get(p) {
                    assert_eq!(out, exp,
                        "vertex {p:?} in leaf {u:?}: operands own={own} prev={prev} l={left} r={right}");
                }
            }
            self.ram.compute();
            if self.m > 1 {
                let c = self.prog.cell(v, t);
                let ci = cols_u.binary_search(&p.x).map_err(|_| SimError::Internal {
                    what: "column state missing in leaf",
                })?;
                self.ram
                    .write_via(&self.table, st_base0 + ci * self.m + c, out);
            }
            self.ram.write_via(&self.table, i, out);
        }

        // Park wanted values (`want` is sorted: deterministic addresses).
        // Interior vertices sit at their point index; everything else
        // must be a Γ ingest, at its fixed scratch slot.
        for &q in want {
            let old = match pts.binary_search(&q) {
                Ok(i) => i,
                Err(_) => {
                    n_pts
                        + g_u.iter().position(|g| *g == q).ok_or(SimError::Internal {
                            what: "wanted value not present in leaf",
                        })?
                }
            };
            let new = parent_zone.alloc();
            self.ram.relocate(old, new);
            out_addrs.push(new);
        }
        // Park states.
        for (i, &x) in cols_u.iter().enumerate() {
            let base = st_base0 + i * self.m;
            let new = parent_zone.alloc_block(self.m);
            for c in 0..self.m {
                self.ram.relocate(base + c, new + c);
            }
            self.state.insert(x, new);
        }
        Ok(())
    }

    /// Seed a column's state-block base address (multiprocessor engine:
    /// staging a tile's column states into this processor's memory —
    /// values are passed positionally via [`exec`](Self::exec)'s
    /// `parent_vals` directory instead).
    pub fn seed_state(&mut self, col: i64, addr: usize) {
        self.state.insert(col, addr);
    }

    /// Address of a column's state block, if present.
    pub fn state_addr(&self, col: i64) -> Option<usize> {
        self.state.get(&col).copied()
    }

    /// Drop all seeded column states (between tile executions).
    pub fn clear_seeds(&mut self) {
        self.state.clear();
    }

    /// Run the whole simulation: lay out the guest image, execute the
    /// top-level diamond, write the final image back into the guest
    /// layout.  Returns `(final_mem, final_values)`.
    pub fn run(&mut self, init: &[Word]) -> Result<(Vec<Word>, Vec<Word>), SimError> {
        let n = self.n as usize;
        let m = self.m;
        assert_eq!(init.len(), n * m);
        if self.t_steps == 0 {
            let values = (0..n).map(|v| init[v * m + self.prog.cell(v, 0)]).collect();
            return Ok((init.to_vec(), values));
        }

        // Top-level diamond covering the whole computed box.
        let h_top = ((self.n + self.t_steps + 4) as u64).next_power_of_two() as i64;
        let top = ClippedDiamond::new(
            Diamond::new(self.n / 2, self.t_steps / 2 + 1, h_top),
            self.cbox,
        );
        let s_top = self.space(&top);

        // Driver zone and guest image above the working region.
        let g_top = self.gamma(&top).len();
        let zone_cap = g_top + m * n + n + 32;
        let mut driver_zone = ZoneAlloc::new(s_top, zone_cap);
        let image = s_top + zone_cap;

        // Lay out the initial guest image (uncharged: problem statement).
        for (i, w) in init.iter().enumerate() {
            self.ram.poke(image + i, *w);
        }
        // The input row's value directory, straight from the image
        // layout (t = 0, x ascending: already sorted).
        let driver_vals: Vals = (0..n)
            .map(|v| (Pt2::new(v as i64, 0), image + v * m + self.prog.cell(v, 0)))
            .collect();
        if m > 1 {
            for v in 0..n {
                self.state.insert(v as i64, image + v * m);
            }
        }

        // Want the final row back (ascending x: already sorted).
        let want: Vec<Pt2> = (0..self.n).map(|x| Pt2::new(x, self.t_steps)).collect();
        let mut out_addrs = Vec::with_capacity(n);
        self.exec(&top, &want, &mut driver_zone, &driver_vals, &mut out_addrs)?;

        // Write the final image back into the guest layout (charged —
        // the host must leave memory as the guest would).
        let mut values = vec![0 as Word; n];
        for (v, slot) in values.iter_mut().enumerate() {
            let addr = *out_addrs.get(v).ok_or(SimError::Internal {
                what: "final value not live after top-level exec",
            })?;
            *slot = self.ram.peek(addr);
            if m == 1 {
                self.ram.relocate(addr, image + v);
            }
        }
        if m > 1 {
            for v in 0..n {
                let old = *self.state.get(&(v as i64)).ok_or(SimError::Internal {
                    what: "final state block not live after top-level exec",
                })?;
                let dst = image + v * m;
                if old != dst {
                    for c in 0..m {
                        self.ram.relocate(old + c, dst + c);
                    }
                }
            }
        }
        let mem = (0..n * m).map(|i| self.ram.peek(image + i)).collect();
        Ok((mem, values))
    }
}
