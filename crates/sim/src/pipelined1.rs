//! The **pipelined-memory machine** of Section 6: memories that "permit
//! issuing a memory request before all the previous ones have been
//! satisfied".
//!
//! Cost rule: a *batch* of `k` accesses whose maximum address is `X`
//! costs `f(X) + k` (one worst-case latency, then one word per unit
//! time), instead of the non-pipelined `Σ (1 + f(x_i))`.  Under this
//! rule the naive step-by-step simulation incurs **no locality
//! slowdown**: each guest step batches the processor's `n/p` accesses
//! for a cost of `(n/p)^{1/d} + Θ(n/p) = Θ(n/p)` — Brent's principle is
//! restored even under bounded-speed propagation, at the hardware price
//! of `Θ(p·(n/p)^{1/d})` in-flight requests (quantified in
//! `bsmp_analytic::extensions`).

use bsmp_faults::{FaultEnv, FaultPlan, FaultSession};
use bsmp_hram::{CostMeter, Word};
use bsmp_machine::{lease_scratch, linear_guest_time, LinearProgram, MachineSpec, StageClock};
use bsmp_trace::{RunMeta, Tracer};

use crate::error::SimError;
use crate::report::SimReport;
use crate::{settle_scenario, stage_totals};

/// Naive simulation of `M_1(n, n, m)` on a pipelined-memory
/// `M_1(n, p, m)` host, injecting faults per `plan`.
pub fn try_simulate_pipelined1_faulted(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_pipelined1_traced(spec, prog, init, steps, plan, &mut Tracer::off())
}

/// [`try_simulate_pipelined1_faulted`] with a [`Tracer`] observing each
/// stage; the report is bit-identical either way.
pub fn try_simulate_pipelined1_traced(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    let n = spec.n as usize;
    let p = spec.p as usize;
    let m = prog.m();
    if spec.d != 1 {
        return Err(SimError::DimensionMismatch {
            expected: 1,
            got: spec.d,
        });
    }
    if m as u64 != spec.m {
        return Err(SimError::DensityMismatch {
            spec_m: spec.m,
            prog_m: m as u64,
        });
    }
    if init.len() != n * m {
        return Err(SimError::InitLength {
            expected: n * m,
            got: init.len(),
        });
    }
    if !n.is_multiple_of(p) {
        return Err(SimError::IndivisibleProcessors {
            n: spec.n,
            p: spec.p,
        });
    }
    plan.validate()?;
    let q = n / p;
    let access = spec.access_fn();
    let hop = spec.neighbor_distance();
    let mut session = FaultSession::new(
        plan,
        FaultEnv {
            p,
            hop,
            checkpoint_words: spec.node_mem(),
            proc_side: 1,
        },
    );

    // Functional state (plain vectors; the pipelined cost is computed
    // per batch, not per access).
    let mut mem = init.to_vec();
    let mut prev: Vec<Word> = (0..n).map(|v| mem[v * m + prog.cell(v, 0)]).collect();
    let mut next = vec![0 as Word; n];
    let mut clock = StageClock::new();
    let mut meter = CostMeter::new();

    let mut scratch = lease_scratch(p);
    tracer.ensure_procs(p);
    for t in 1..=steps {
        tracer.begin_stage("step");
        let tally = tracer.tally();
        for pi in 0..p {
            // The step's batch: one private-cell read + one write per
            // hosted node, plus the value-row traffic (2 reads + 1 write
            // per node) — all pipelined.
            let mut max_addr = 0usize;
            let mut k = 0usize;
            for j in 0..q {
                let v = pi * q + j;
                let c = prog.cell(v, t);
                max_addr = max_addr.max(j * m + c);
                k += 5;
                let left = if v == 0 { prog.boundary() } else { prev[v - 1] };
                let right = if v == n - 1 {
                    prog.boundary()
                } else {
                    prev[v + 1]
                };
                let own = mem[v * m + c];
                let out = prog.delta(v, t, own, prev[v], left, right);
                mem[v * m + c] = out;
                next[v] = out;
            }
            // Batch cost: one worst-case latency + one unit per word,
            // plus the unchanged near-neighbor exchanges.
            let local = access.f(max_addr.max(q * m + 2 * q)) + k as f64 + q as f64;
            let mut comm = 0.0;
            let mut msgs = 0u64;
            if pi > 0 {
                comm += 2.0 * hop;
                msgs += 2;
            }
            if pi + 1 < p {
                comm += 2.0 * hop;
                msgs += 2;
            }
            if let Some(tl) = tally {
                tl.add(pi, q as u64, msgs);
            }
            meter.add_transfer(local);
            meter.add_comm(comm);
            scratch.per_proc[pi] = local + comm;
            scratch.per_comm[pi] = comm;
        }
        clock.add_stage_faulted(&scratch.per_proc, &scratch.per_comm, &mut session)?;
        tracer.end_stage(stage_totals(&clock, &session.stats), 1);
        std::mem::swap(&mut prev, &mut next);
    }
    settle_scenario(&mut clock, &mut session, tracer, 1);

    let guest_time = linear_guest_time(spec, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "pipelined1",
            d: 1,
            n: spec.n,
            m: spec.m,
            p: spec.p,
            steps: steps.max(0) as u64,
        },
        clock.parallel_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values: prev,
        host_time: clock.parallel_time,
        guest_time,
        meter,
        space: n * m / p + 2 * q,
        stages: clock.stages,
        faults: session.into_stats(),
        core_fallback: None,
    })
}

/// Fault-free checked variant.
pub fn try_simulate_pipelined1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_pipelined1_faulted(spec, prog, init, steps, &FaultPlan::none())
}

/// Naive simulation of `M_1(n, n, m)` on a pipelined-memory
/// `M_1(n, p, m)` host.
pub fn simulate_pipelined1(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_pipelined1(spec, prog, init, steps).unwrap_or_else(|e| panic!("pipelined1: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_linear;
    use bsmp_workloads::{inputs, Eca};

    #[test]
    fn matches_direct_execution() {
        let n = 64u64;
        let init = inputs::random_bits(80, n as usize);
        for p in [1u64, 4, 16] {
            let spec = MachineSpec::new(1, n, p, 1);
            let guest = run_linear(&spec, &Eca::rule110(), &init, n as i64);
            let rep = simulate_pipelined1(&spec, &Eca::rule110(), &init, n as i64);
            rep.assert_matches(&guest.mem, &guest.values);
        }
    }

    #[test]
    fn no_locality_slowdown() {
        // Section 6's claim: slowdown Θ(n/p), not (n/p)².
        let n = 256u64;
        let init = inputs::random_bits(81, n as usize);
        for p in [2u64, 4, 8, 16] {
            let spec = MachineSpec::new(1, n, p, 1);
            let rep = simulate_pipelined1(&spec, &Eca::rule110(), &init, 64);
            let brent = (n / p) as f64;
            let s = rep.slowdown();
            assert!(
                s > 0.4 * brent && s < 4.0 * brent,
                "p={p}: {s} vs Brent {brent}"
            );
        }
    }

    #[test]
    fn beats_non_pipelined_naive_by_the_locality_factor() {
        let (n, p) = (256u64, 4u64);
        let init = inputs::random_bits(82, n as usize);
        let spec = MachineSpec::new(1, n, p, 1);
        let pip = simulate_pipelined1(&spec, &Eca::rule110(), &init, 64);
        let nav = crate::naive1::simulate_naive1(&spec, &Eca::rule110(), &init, 64);
        let factor = nav.host_time / pip.host_time;
        // The removed locality slowdown is Θ(n/p) = 64.
        assert!(factor > 8.0, "pipelining wins ×{factor}");
    }
}
