//! # bsmp-sim
//!
//! The simulation engines of the paper, as instrumented executable code.
//! Every engine runs a *real* guest computation (a node program from
//! `bsmp-workloads` or any [`bsmp_machine::LinearProgram`] /
//! [`bsmp_machine::MeshProgram`]) on a host machine with fewer
//! processors, producing
//!
//! 1. the exact same final memory image and values as direct guest
//!    execution (functional equivalence — asserted in tests), and
//! 2. the host's model time `T_p` under the bounded-speed cost model,
//!    which the benches compare against the analytic bounds.
//!
//! Engines:
//!
//! | module      | paper artifact                                   |
//! |-------------|--------------------------------------------------|
//! | [`naive1`]  | Proposition 1 / §4.2 naive, `d = 1`, any `p`     |
//! | [`naive2`]  | Proposition 1 naive, `d = 2`, any square `p`     |
//! | [`exec1`]   | Proposition 2 executor over diamond separators   |
//! | [`dnc1`]    | Theorems 2 & 3 (uniprocessor D&C, `d = 1`)       |
//! | [`multi1`]  | Theorem 4 (two-regime multiprocessor, `d = 1`)   |
//! | [`exec2`]   | Proposition 2 executor over octa/tetra cells     |
//! | [`dnc2`]    | Theorem 5 (uniprocessor D&C, `d = 2`)            |
//! | [`multi2`]  | Theorem 1 `d = 2` (two-regime, cost-accounted)   |
//!
//! The instantaneous-model (Brent) baseline of experiment E10 is the
//! naive engines run on a [`bsmp_machine::MachineSpec::instantaneous`]
//! host; [`pipelined1`] implements Section 6's pipelined-memory machine
//! (no locality slowdown).

pub mod dnc1;
pub mod dnc2;
pub mod dnc3;
pub mod error;
pub mod event1;
pub mod event2;
pub mod exec1;
pub mod exec2;
pub mod exec3;
pub mod multi1;
pub mod multi2;
pub mod naive1;
pub mod naive2;
pub mod pipelined1;
pub mod report;
pub mod zone;

pub use error::SimError;
pub use report::SimReport;

/// Snapshot the cumulative stage-clock and fault counters into the shape
/// the tracer differences at stage close.
pub(crate) fn stage_totals(
    clock: &bsmp_machine::StageClock,
    stats: &bsmp_faults::FaultStats,
) -> bsmp_trace::StageTotals {
    bsmp_trace::StageTotals {
        parallel: clock.parallel_time,
        busy: clock.busy_time,
        comm: clock.comm_time,
        injected_delay: stats.injected_delay,
        retries: stats.retries,
        recovered: stats.recovered_stages,
        outages: stats.outage_stages,
        churn: stats.departures + stats.rejoins,
        backoffs: stats.backoff_retries,
    }
}

/// Close out a fault session at the end of an engine's stage loop: if the
/// scenario still holds storm-queued traffic or churn debt, charge one
/// traced settlement stage so the trace's `Σ cost = host_time` invariant
/// survives scenarios that end mid-outage.
pub(crate) fn settle_scenario(
    clock: &mut bsmp_machine::StageClock,
    session: &mut bsmp_faults::FaultSession,
    tracer: &mut bsmp_trace::Tracer,
    workers: usize,
) {
    if !session.needs_settlement() {
        return;
    }
    tracer.begin_stage("settle");
    clock.settle_faulted(session);
    tracer.end_stage(stage_totals(clock, &session.stats), workers);
}

/// Apply a fault scenario to a uniprocessor run treated as one bulk
/// stage: the whole run's `[host_time]` / `[comm]` pass through a
/// single-processor [`bsmp_faults::FaultSession`] (so jitter, asymmetry,
/// outage windows, and churn scale the run exactly like any other
/// stage), plus a settlement stage if the scenario ends mid-outage.
///
/// Callers hand over the fault-free report of the plain engine; the
/// returned report keeps its memory image and meter but carries the
/// scenario-adjusted `host_time`, stage count, and fault statistics.
pub(crate) fn scenario_over_report(
    mut rep: SimReport,
    meta: bsmp_trace::RunMeta,
    hop: f64,
    checkpoint_words: u64,
    plan: &bsmp_faults::FaultPlan,
    tracer: &mut bsmp_trace::Tracer,
) -> Result<SimReport, SimError> {
    let mut session = bsmp_faults::FaultSession::new(
        plan,
        bsmp_faults::FaultEnv {
            p: 1,
            hop,
            checkpoint_words,
            proc_side: 1,
        },
    );
    let mut clock = bsmp_machine::StageClock::new();
    tracer.ensure_procs(1);
    tracer.begin_stage("run");
    if let Some(tl) = tracer.tally() {
        tl.add(0, meta.n * meta.steps, 0);
    }
    let guest_time = rep.guest_time;
    clock.add_stage_faulted(&[rep.host_time], &[rep.meter.comm], &mut session)?;
    tracer.end_stage(stage_totals(&clock, &session.stats), 1);
    settle_scenario(&mut clock, &mut session, tracer, 1);
    tracer.finish_run(meta, clock.parallel_time, guest_time);
    rep.host_time = clock.parallel_time;
    rep.stages = clock.stages;
    rep.faults = session.into_stats();
    Ok(rep)
}
