//! # bsmp-sim
//!
//! The simulation engines of the paper, as instrumented executable code.
//! Every engine runs a *real* guest computation (a node program from
//! `bsmp-workloads` or any [`bsmp_machine::LinearProgram`] /
//! [`bsmp_machine::MeshProgram`]) on a host machine with fewer
//! processors, producing
//!
//! 1. the exact same final memory image and values as direct guest
//!    execution (functional equivalence — asserted in tests), and
//! 2. the host's model time `T_p` under the bounded-speed cost model,
//!    which the benches compare against the analytic bounds.
//!
//! Engines:
//!
//! | module      | paper artifact                                   |
//! |-------------|--------------------------------------------------|
//! | [`naive1`]  | Proposition 1 / §4.2 naive, `d = 1`, any `p`     |
//! | [`naive2`]  | Proposition 1 naive, `d = 2`, any square `p`     |
//! | [`exec1`]   | Proposition 2 executor over diamond separators   |
//! | [`dnc1`]    | Theorems 2 & 3 (uniprocessor D&C, `d = 1`)       |
//! | [`multi1`]  | Theorem 4 (two-regime multiprocessor, `d = 1`)   |
//! | [`exec2`]   | Proposition 2 executor over octa/tetra cells     |
//! | [`dnc2`]    | Theorem 5 (uniprocessor D&C, `d = 2`)            |
//! | [`multi2`]  | Theorem 1 `d = 2` (two-regime, cost-accounted)   |
//!
//! The instantaneous-model (Brent) baseline of experiment E10 is the
//! naive engines run on a [`bsmp_machine::MachineSpec::instantaneous`]
//! host; [`pipelined1`] implements Section 6's pipelined-memory machine
//! (no locality slowdown).

pub mod dnc1;
pub mod dnc2;
pub mod dnc3;
pub mod error;
pub mod exec1;
pub mod exec2;
pub mod exec3;
pub mod multi1;
pub mod multi2;
pub mod naive1;
pub mod naive2;
pub mod pipelined1;
pub mod report;
pub mod zone;

pub use error::SimError;
pub use report::SimReport;

/// Snapshot the cumulative stage-clock and fault counters into the shape
/// the tracer differences at stage close.
pub(crate) fn stage_totals(
    clock: &bsmp_machine::StageClock,
    stats: &bsmp_faults::FaultStats,
) -> bsmp_trace::StageTotals {
    bsmp_trace::StageTotals {
        parallel: clock.parallel_time,
        busy: clock.busy_time,
        comm: clock.comm_time,
        injected_delay: stats.injected_delay,
        retries: stats.retries,
        recovered: stats.recovered_stages,
    }
}
