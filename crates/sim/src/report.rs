//! Simulation results: outputs + cost accounting.

use bsmp_faults::FaultStats;
use bsmp_hram::{CostMeter, Word};

use crate::error::SimError;

/// What a simulation engine returns: the guest's outputs as computed by
/// the host, plus the host's model costs.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Final guest memory image (node-major, `n·m` words) as produced by
    /// the host simulation.
    pub mem: Vec<Word>,
    /// Final guest values (one per node).
    pub values: Vec<Word>,
    /// Host parallel model time `T_p` (for `p = 1`, just the H-RAM's
    /// total time).
    pub host_time: f64,
    /// Guest model time `T_n` of the same computation (from the direct
    /// reference run or the engine's own guest-clock).
    pub guest_time: f64,
    /// Aggregate host meter (summed over processors).
    pub meter: CostMeter,
    /// Peak host memory footprint (high-water mark, words) — the space
    /// `S` of Propositions 2–3.  For multiprocessor hosts, the maximum
    /// per-node footprint.
    pub space: usize,
    /// Number of bulk-synchronous stages (1-processor engines: 0).
    pub stages: u64,
    /// Fault accounting (all zeros under `FaultPlan::none()`).
    pub faults: FaultStats,
    /// When the caller asked for the event core but the engine fell
    /// back to the dense path, the delegation precondition that forced
    /// it (`None` = no fallback).  Callers gating on the event core
    /// (e.g. `bench --mem`) must check this rather than assuming the
    /// requested core ran.
    pub core_fallback: Option<&'static str>,
}

impl SimReport {
    /// The measured slowdown `T_p / T_n` (`NaN` for an empty
    /// zero-time guest, rather than a spurious ±∞).
    pub fn slowdown(&self) -> f64 {
        if self.guest_time == 0.0 {
            return if self.host_time == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.host_time / self.guest_time
    }

    /// The measured *locality* slowdown: slowdown divided by the
    /// parallelism loss `n/p` (the paper's `A`-term, empirically).
    pub fn locality_slowdown(&self, n: u64, p: u64) -> f64 {
        self.slowdown() / (n as f64 / p as f64)
    }

    /// [`slowdown`](Self::slowdown) that surfaces the degenerate cases
    /// (zero-time guest with a nonzero host, non-finite clocks) as a
    /// typed error instead of silently returning `∞`/`NaN`.
    pub fn try_slowdown(&self) -> Result<f64, SimError> {
        let s = self.slowdown();
        if !s.is_finite() || !self.host_time.is_finite() || !self.guest_time.is_finite() {
            return Err(SimError::DegenerateReport {
                what: "slowdown",
                host_time: self.host_time,
                guest_time: self.guest_time,
            });
        }
        Ok(s)
    }

    /// [`locality_slowdown`](Self::locality_slowdown) with the same
    /// degenerate cases surfaced (including a zero-`p` baseline).
    pub fn try_locality_slowdown(&self, n: u64, p: u64) -> Result<f64, SimError> {
        let brent = n as f64 / p as f64;
        if p == 0 || !brent.is_finite() || brent == 0.0 {
            return Err(SimError::DegenerateReport {
                what: "locality slowdown",
                host_time: self.host_time,
                guest_time: self.guest_time,
            });
        }
        Ok(self.try_slowdown()? / brent)
    }

    /// Check outputs against a reference guest run.
    pub fn check_matches(&self, mem: &[Word], values: &[Word]) -> Result<(), SimError> {
        if self.values != values {
            return Err(SimError::OutputMismatch { what: "values" });
        }
        if self.mem != mem {
            return Err(SimError::OutputMismatch {
                what: "memory image",
            });
        }
        Ok(())
    }

    /// Panic unless outputs match a reference guest run exactly.
    pub fn assert_matches(&self, mem: &[Word], values: &[Word]) {
        assert_eq!(
            self.values, values,
            "simulated values diverge from direct execution"
        );
        assert_eq!(
            self.mem, mem,
            "simulated memory image diverges from direct execution"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(host_time: f64, guest_time: f64) -> SimReport {
        SimReport {
            mem: vec![],
            values: vec![],
            host_time,
            guest_time,
            meter: CostMeter::new(),
            space: 0,
            stages: 0,
            faults: FaultStats::default(),
            core_fallback: None,
        }
    }

    #[test]
    fn slowdown_math() {
        let r = report(1000.0, 10.0);
        assert_eq!(r.slowdown(), 100.0);
        assert_eq!(r.locality_slowdown(64, 16), 25.0);
    }

    #[test]
    fn zero_guest_time_is_guarded() {
        assert_eq!(report(0.0, 0.0).slowdown(), 1.0);
        assert_eq!(report(5.0, 0.0).slowdown(), f64::INFINITY);
        assert!(report(0.0, 0.0).locality_slowdown(4, 2).is_finite());
    }

    #[test]
    fn try_slowdown_surfaces_degenerate_reports() {
        // Empty report: both clocks zero — slowdown defined as 1.
        assert_eq!(report(0.0, 0.0).try_slowdown(), Ok(1.0));
        // Zero-baseline with work done: the silent API says ∞, the
        // typed API refuses.
        assert_eq!(
            report(5.0, 0.0).try_slowdown(),
            Err(SimError::DegenerateReport {
                what: "slowdown",
                host_time: 5.0,
                guest_time: 0.0,
            })
        );
        assert!(report(f64::NAN, 1.0).try_slowdown().is_err());
        assert_eq!(report(1000.0, 10.0).try_slowdown(), Ok(100.0));
        // Bit-compatibility: the plain accessor is untouched.
        assert_eq!(report(5.0, 0.0).slowdown(), f64::INFINITY);
    }

    #[test]
    fn try_locality_slowdown_guards_the_brent_term() {
        assert_eq!(report(1000.0, 10.0).try_locality_slowdown(64, 16), Ok(25.0));
        assert!(report(1000.0, 10.0).try_locality_slowdown(64, 0).is_err());
        assert!(report(1000.0, 10.0).try_locality_slowdown(0, 16).is_err());
        assert!(report(5.0, 0.0).try_locality_slowdown(64, 16).is_err());
    }

    #[test]
    fn check_matches_reports_mismatches() {
        let mut r = report(1.0, 1.0);
        r.mem = vec![1];
        r.values = vec![2];
        assert!(r.check_matches(&[1], &[2]).is_ok());
        assert_eq!(
            r.check_matches(&[1], &[3]),
            Err(SimError::OutputMismatch { what: "values" })
        );
        assert_eq!(
            r.check_matches(&[9], &[2]),
            Err(SimError::OutputMismatch {
                what: "memory image"
            })
        );
    }

    #[test]
    #[should_panic(expected = "diverge")]
    fn mismatch_detected() {
        let mut r = report(1.0, 1.0);
        r.mem = vec![1];
        r.values = vec![2];
        r.assert_matches(&[1], &[3]);
    }
}
