//! Simulation results: outputs + cost accounting.

use bsmp_hram::{CostMeter, Word};

/// What a simulation engine returns: the guest's outputs as computed by
/// the host, plus the host's model costs.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Final guest memory image (node-major, `n·m` words) as produced by
    /// the host simulation.
    pub mem: Vec<Word>,
    /// Final guest values (one per node).
    pub values: Vec<Word>,
    /// Host parallel model time `T_p` (for `p = 1`, just the H-RAM's
    /// total time).
    pub host_time: f64,
    /// Guest model time `T_n` of the same computation (from the direct
    /// reference run or the engine's own guest-clock).
    pub guest_time: f64,
    /// Aggregate host meter (summed over processors).
    pub meter: CostMeter,
    /// Peak host memory footprint (high-water mark, words) — the space
    /// `S` of Propositions 2–3.  For multiprocessor hosts, the maximum
    /// per-node footprint.
    pub space: usize,
    /// Number of bulk-synchronous stages (1-processor engines: 0).
    pub stages: u64,
}

impl SimReport {
    /// The measured slowdown `T_p / T_n`.
    pub fn slowdown(&self) -> f64 {
        self.host_time / self.guest_time
    }

    /// The measured *locality* slowdown: slowdown divided by the
    /// parallelism loss `n/p` (the paper's `A`-term, empirically).
    pub fn locality_slowdown(&self, n: u64, p: u64) -> f64 {
        self.slowdown() / (n as f64 / p as f64)
    }

    /// Panic unless outputs match a reference guest run exactly.
    pub fn assert_matches(&self, mem: &[Word], values: &[Word]) {
        assert_eq!(self.values, values, "simulated values diverge from direct execution");
        assert_eq!(self.mem, mem, "simulated memory image diverges from direct execution");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_math() {
        let r = SimReport {
            mem: vec![],
            values: vec![],
            host_time: 1000.0,
            guest_time: 10.0,
            meter: CostMeter::new(),
            space: 0,
            stages: 0,
        };
        assert_eq!(r.slowdown(), 100.0);
        assert_eq!(r.locality_slowdown(64, 16), 25.0);
    }

    #[test]
    #[should_panic(expected = "diverge")]
    fn mismatch_detected() {
        let r = SimReport {
            mem: vec![1],
            values: vec![2],
            host_time: 1.0,
            guest_time: 1.0,
            meter: CostMeter::new(),
            space: 0,
            stages: 0,
        };
        r.assert_matches(&[1], &[3]);
    }
}
