//! **Section 6's conjecture, measured**: divide-and-conquer uniprocessor
//! simulation of the 3-D mesh `M_3(n, n, 1)` on `M_3(n, 1, 1)`, built on
//! the 4-D separator executor [`crate::exec3`].  The conjectured
//! slowdown — `O(n log n)`, the d = 3 analogue of Theorems 2/5 — is
//! verified in the tests and experiment E11c, against the naive
//! `O(n^{4/3})` (Proposition 1 with d = 3).

use bsmp_faults::{FaultPlan, FaultStats};
use bsmp_hram::{CostMeter, CostTable, Word};
use bsmp_machine::{volume_guest_time, VolumeProgram};
use bsmp_trace::{RunMeta, StageTotals, Tracer};

use crate::error::SimError;
use crate::exec3::VolumeExec;
use crate::report::SimReport;

/// Simulate `steps` guest steps of `M_3(n, n, 1)` (side `n^{1/3}`) on
/// the uniprocessor `M_3(n, 1, 1)` via the 4-D separator recursion,
/// with preconditions checked.
pub fn try_simulate_dnc3(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_dnc3_traced(side, prog, init, steps, &mut Tracer::off())
}

/// [`try_simulate_dnc3`] with a [`Tracer`] observing the run as a single
/// bulk stage.
pub fn try_simulate_dnc3_traced(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    let n = side * side * side;
    if prog.m() != 1 {
        return Err(SimError::DensityMismatch {
            spec_m: 1,
            prog_m: prog.m() as u64,
        });
    }
    if init.len() != n {
        return Err(SimError::InitLength {
            expected: n,
            got: init.len(),
        });
    }
    tracer.ensure_procs(1);
    tracer.begin_stage("run");
    let mut exec = VolumeExec::new(side as i64, prog, steps, 1);
    let (mem, values) = exec.run(init)?;
    let host_time = exec.ram.time();
    if let Some(tl) = tracer.tally() {
        tl.add(0, n as u64 * steps.max(0) as u64, 0);
    }
    tracer.end_stage(
        StageTotals {
            parallel: host_time,
            busy: host_time,
            comm: exec.ram.meter.comm,
            ..StageTotals::default()
        },
        1,
    );
    let guest_time = volume_guest_time(side, 1, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "dnc3",
            d: 3,
            n: n as u64,
            m: 1,
            p: 1,
            steps: steps.max(0) as u64,
        },
        host_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values,
        host_time,
        guest_time,
        meter: exec.ram.meter,
        space: exec.ram.high_water(),
        stages: 0,
        faults: FaultStats::default(),
        core_fallback: None,
    })
}

/// As [`try_simulate_dnc3`] with a fault scenario applied to the run
/// treated as one bulk stage (the uniprocessor view of DESIGN.md §14).
/// A [`FaultPlan::none`] plan takes the plain path bit-identically.
pub fn try_simulate_dnc3_faulted(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_dnc3_faulted_traced(side, prog, init, steps, plan, &mut Tracer::off())
}

/// [`try_simulate_dnc3_faulted`] with a [`Tracer`] observing the run.
pub fn try_simulate_dnc3_faulted_traced(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    plan.validate()?;
    if plan.is_none() {
        return try_simulate_dnc3_traced(side, prog, init, steps, tracer);
    }
    let n = side * side * side;
    let rep = try_simulate_dnc3(side, prog, init, steps)?;
    crate::scenario_over_report(
        rep,
        RunMeta {
            engine: "dnc3",
            d: 3,
            n: n as u64,
            m: 1,
            p: 1,
            steps: steps.max(0) as u64,
        },
        side as f64,
        n as u64,
        plan,
        tracer,
    )
}

/// Simulate `steps` guest steps of `M_3(n, n, 1)` (side `n^{1/3}`) on
/// the uniprocessor `M_3(n, 1, 1)` via the 4-D separator recursion.
pub fn simulate_dnc3(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_dnc3(side, prog, init, steps).unwrap_or_else(|e| panic!("dnc3: {e}"))
}

/// Naive step-by-step simulation on the 3-D-mesh uniprocessor host —
/// the Proposition-1 baseline for `d = 3` (slowdown `O(n^{4/3})`),
/// with preconditions checked.
pub fn try_simulate_naive3(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_naive3_traced(side, prog, init, steps, &mut Tracer::off())
}

/// [`try_simulate_naive3`] with a [`Tracer`] observing the run as a
/// single bulk stage.
pub fn try_simulate_naive3_traced(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    try_simulate_naive3_impl(side, prog, init, steps, tracer, false)
}

/// The pre-tiling per-point reference loop, kept as the oracle for the
/// kernel bit-identity tests (`tests/kernels.rs`).  Reports 0
/// `table_hits`; every other field is bit-identical to the tiled path.
#[doc(hidden)]
pub fn try_simulate_naive3_scalar(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
) -> Result<SimReport, SimError> {
    try_simulate_naive3_impl(side, prog, init, steps, &mut Tracer::off(), true)
}

fn try_simulate_naive3_impl(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    tracer: &mut Tracer,
    force_scalar: bool,
) -> Result<SimReport, SimError> {
    let n = side * side * side;
    if prog.m() != 1 {
        return Err(SimError::DensityMismatch {
            spec_m: 1,
            prog_m: prog.m() as u64,
        });
    }
    if init.len() != n {
        return Err(SimError::InitLength {
            expected: n,
            got: init.len(),
        });
    }
    tracer.ensure_procs(1);
    tracer.begin_stage("run");
    let access = bsmp_hram::AccessFn::new(3, 1);
    let mut ram = bsmp_hram::Hram::new(access, 3 * n);
    // Layout: value row A at [0, n), row B at [n, 2n).
    for (v, w) in init.iter().enumerate() {
        ram.poke(v, *w);
    }
    let idx = |x: usize, y: usize, z: usize| (z * side + y) * side + x;
    let mut prev: Vec<Word> = init.to_vec();
    let mut next = vec![0 as Word; n];
    let (mut row_prev, mut row_next) = (0usize, n);

    // Plan-time cost table over both value rows.  The d = 3 charges are
    // irrational (cube roots), so the tiled kernel runs in chain mode:
    // a register replays the scalar loop's IEEE add order with table
    // lookups, bit-identical by construction.
    let table = CostTable::new(access, 2 * n);
    let ss = side * side;

    for t in 1..=steps {
        if force_scalar {
            for z in 0..side {
                for y in 0..side {
                    for x in 0..side {
                        let b = prog.boundary();
                        let mut rd =
                            |ok: bool, a: usize| if ok { ram.read(row_prev + a) } else { b };
                        let nb = [
                            rd(x > 0, idx(x.saturating_sub(1), y, z)),
                            rd(x + 1 < side, idx((x + 1).min(side - 1), y, z)),
                            rd(y > 0, idx(x, y.saturating_sub(1), z)),
                            rd(y + 1 < side, idx(x, (y + 1).min(side - 1), z)),
                            rd(z > 0, idx(x, y, z.saturating_sub(1))),
                            rd(z + 1 < side, idx(x, y, (z + 1).min(side - 1))),
                        ];
                        let mine = ram.read(row_prev + idx(x, y, z));
                        let out = prog.delta(x, y, z, t, mine, mine, nb);
                        ram.compute();
                        ram.write(row_next + idx(x, y, z), out);
                        next[idx(x, y, z)] = out;
                    }
                }
            }
        } else {
            // Tiled kernel: same scan order and same per-point charge
            // order (6 neighbors x±, y±, z±, then mine, then write),
            // metered through the table into a register chain.  Border
            // slabs keep gated reads; interior rows are branch-free.
            ram.reserve_table(&table);
            let mut acc = ram.meter.access;
            let cb = table.charges();
            let cbp = &cb[row_prev..row_prev + n];
            let cbn = &cb[row_next..row_next + n];
            let bd = prog.boundary();
            {
                let mem = ram.mem_table(&table);
                let (r0, r1) = mem.split_at_mut(n);
                let (rprev, rnext): (&[Word], &mut [Word]) = if row_prev == 0 {
                    (&*r0, r1)
                } else {
                    (&*r1, r0)
                };
                let point = |x: usize,
                             y: usize,
                             z: usize,
                             rnext: &mut [Word],
                             next: &mut [Word],
                             acc: &mut f64| {
                    let a = (z * side + y) * side + x;
                    let nb = [
                        if x > 0 {
                            *acc += cbp[a - 1];
                            rprev[a - 1]
                        } else {
                            bd
                        },
                        if x + 1 < side {
                            *acc += cbp[a + 1];
                            rprev[a + 1]
                        } else {
                            bd
                        },
                        if y > 0 {
                            *acc += cbp[a - side];
                            rprev[a - side]
                        } else {
                            bd
                        },
                        if y + 1 < side {
                            *acc += cbp[a + side];
                            rprev[a + side]
                        } else {
                            bd
                        },
                        if z > 0 {
                            *acc += cbp[a - ss];
                            rprev[a - ss]
                        } else {
                            bd
                        },
                        if z + 1 < side {
                            *acc += cbp[a + ss];
                            rprev[a + ss]
                        } else {
                            bd
                        },
                    ];
                    *acc += cbp[a];
                    let mine = rprev[a];
                    let out = prog.delta(x, y, z, t, mine, mine, nb);
                    *acc += cbn[a];
                    rnext[a] = out;
                    next[a] = out;
                };
                for z in 0..side {
                    for y in 0..side {
                        if z == 0 || z + 1 == side || y == 0 || y + 1 == side {
                            for x in 0..side {
                                point(x, y, z, rnext, &mut next, &mut acc);
                            }
                            continue;
                        }
                        point(0, y, z, rnext, &mut next, &mut acc);
                        for x in 1..side - 1 {
                            let a = (z * side + y) * side + x;
                            acc += cbp[a - 1];
                            acc += cbp[a + 1];
                            acc += cbp[a - side];
                            acc += cbp[a + side];
                            acc += cbp[a - ss];
                            acc += cbp[a + ss];
                            let nb = [
                                rprev[a - 1],
                                rprev[a + 1],
                                rprev[a - side],
                                rprev[a + side],
                                rprev[a - ss],
                                rprev[a + ss],
                            ];
                            acc += cbp[a];
                            let mine = rprev[a];
                            let out = prog.delta(x, y, z, t, mine, mine, nb);
                            acc += cbn[a];
                            rnext[a] = out;
                            next[a] = out;
                        }
                        point(side - 1, y, z, rnext, &mut next, &mut acc);
                    }
                }
            }
            ram.meter.access = acc;
            // n mine-reads + n writes + (6n − 6·side²) in-volume
            // neighbor reads (each face misses one direction).
            let accesses = 8 * n as u64 - 6 * ss as u64;
            ram.meter.ops += accesses;
            ram.meter.add_table_hits(accesses);
            ram.meter.add_compute(n as f64);
        }
        std::mem::swap(&mut prev, &mut next);
        std::mem::swap(&mut row_prev, &mut row_next);
    }

    let mem = prev.clone();
    let meter = {
        let mut m = CostMeter::new();
        m.add_compute(0.0);
        ram.meter.merged(&m)
    };
    let host_time = ram.time();
    if let Some(tl) = tracer.tally() {
        tl.add(0, n as u64 * steps.max(0) as u64, 0);
    }
    tracer.end_stage(
        StageTotals {
            parallel: host_time,
            busy: host_time,
            comm: meter.comm,
            ..StageTotals::default()
        },
        1,
    );
    let guest_time = volume_guest_time(side, 1, prog, steps);
    tracer.finish_run(
        RunMeta {
            engine: "naive3",
            d: 3,
            n: n as u64,
            m: 1,
            p: 1,
            steps: steps.max(0) as u64,
        },
        host_time,
        guest_time,
    );
    Ok(SimReport {
        mem,
        values: prev,
        host_time,
        guest_time,
        meter,
        space: ram.high_water(),
        stages: 0,
        faults: FaultStats::default(),
        core_fallback: None,
    })
}

/// As [`try_simulate_naive3`] with a fault scenario applied to the run
/// treated as one bulk stage (the uniprocessor view of DESIGN.md §14).
/// A [`FaultPlan::none`] plan takes the plain path bit-identically.
pub fn try_simulate_naive3_faulted(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
) -> Result<SimReport, SimError> {
    try_simulate_naive3_faulted_traced(side, prog, init, steps, plan, &mut Tracer::off())
}

/// [`try_simulate_naive3_faulted`] with a [`Tracer`] observing the run.
pub fn try_simulate_naive3_faulted_traced(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
    plan: &FaultPlan,
    tracer: &mut Tracer,
) -> Result<SimReport, SimError> {
    plan.validate()?;
    if plan.is_none() {
        return try_simulate_naive3_traced(side, prog, init, steps, tracer);
    }
    let n = side * side * side;
    let rep = try_simulate_naive3(side, prog, init, steps)?;
    crate::scenario_over_report(
        rep,
        RunMeta {
            engine: "naive3",
            d: 3,
            n: n as u64,
            m: 1,
            p: 1,
            steps: steps.max(0) as u64,
        },
        side as f64,
        n as u64,
        plan,
        tracer,
    )
}

/// Naive step-by-step simulation on the 3-D-mesh uniprocessor host —
/// the Proposition-1 baseline for `d = 3` (slowdown `O(n^{4/3})`).
pub fn simulate_naive3(
    side: usize,
    prog: &impl VolumeProgram,
    init: &[Word],
    steps: i64,
) -> SimReport {
    try_simulate_naive3(side, prog, init, steps).unwrap_or_else(|e| panic!("naive3: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_volume;
    use bsmp_workloads::{inputs, Parity3d};

    fn check_equiv(side: usize, steps: i64, seed: u64) -> (SimReport, SimReport) {
        let n = side * side * side;
        let init = inputs::random_bits(seed, n);
        let prog = Parity3d;
        let guest = run_volume(side, 1, &prog, &init, steps);
        let d = simulate_dnc3(side, &prog, &init, steps);
        d.assert_matches(&guest.mem, &guest.values);
        let v = simulate_naive3(side, &prog, &init, steps);
        v.assert_matches(&guest.mem, &guest.values);
        (d, v)
    }

    #[test]
    fn equivalence_small_volumes() {
        for (side, steps) in [(2usize, 3i64), (3, 4), (4, 4), (4, 9)] {
            check_equiv(side, steps, side as u64);
        }
    }

    #[test]
    fn conjectured_growth_rate() {
        // d = 3 analogue of Theorem 2/5: slowdown O(n log n) vs naive
        // O(n^{4/3}): growth per side-doubling (n ×8): D&C ≈ ×8·(log
        // ratio) ≈ ×9–11; naive ≈ 8^{4/3} = 16.
        let (d4, v4) = check_equiv(4, 4, 10);
        let (d8, v8) = check_equiv(8, 8, 11);
        let dnc_growth = d8.slowdown() / d4.slowdown();
        let naive_growth = v8.slowdown() / v4.slowdown();
        assert!(
            dnc_growth < naive_growth,
            "D&C ×{dnc_growth} must undercut naive ×{naive_growth}"
        );
        assert!(naive_growth > 11.0, "naive ~n^{{4/3}}: ×{naive_growth}");
        assert!(dnc_growth < 14.0, "D&C ~n·log n: ×{dnc_growth}");
    }

    #[test]
    fn space_scales_like_k_three_quarters() {
        // Proposition 3 at (α, γ) = (1/3, 3/4): σ(k) = O(k^{3/4}).
        let (d4, _) = check_equiv(4, 4, 12);
        let (d8, _) = check_equiv(8, 8, 13);
        // k grows ×16 (side³·T: 256 → 4096); k^{3/4} growth = ×8.
        let ratio = d8.space as f64 / d4.space as f64;
        assert!(ratio < 12.0, "σ ~ k^{{3/4}}: expected ~8×, got ×{ratio}");
    }
}
