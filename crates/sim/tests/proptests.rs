//! Property-based equivalence: random elementary CAs, random machine
//! shapes, random inputs — every engine must match direct execution.
//! Randomized cases are driven by the in-repo seeded [`Rng64`] so the
//! suite needs no external dependencies and is fully reproducible.

use bsmp_faults::rng::Rng64;
use bsmp_faults::FaultPlan;
use bsmp_hram::Word;
use bsmp_machine::{run_linear, run_mesh, LinearProgram, MachineSpec, MeshProgram};
use bsmp_sim::{
    dnc1::simulate_dnc1, dnc2::simulate_dnc2, multi1::simulate_multi1,
    multi1::try_simulate_multi1_faulted, naive1::simulate_naive1,
    naive1::try_simulate_naive1_faulted, naive2::simulate_naive2,
};

const CASES: u64 = 24;

/// An arbitrary elementary CA (any Wolfram rule) over arbitrary words.
struct AnyRule(u8);
impl LinearProgram for AnyRule {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, _v: usize, _t: i64, own: Word, _p: Word, l: Word, r: Word) -> Word {
        let idx = ((l & 1) << 2) | ((own & 1) << 1) | (r & 1);
        Word::from((self.0 >> idx) & 1)
    }
}

/// An m = 2 program mixing both cells and all operands.
struct Mix2;
impl LinearProgram for Mix2 {
    fn m(&self) -> usize {
        2
    }
    fn cell(&self, v: usize, t: i64) -> usize {
        ((v as i64 + t) % 2) as usize
    }
    fn delta(&self, v: usize, t: i64, own: Word, p: Word, l: Word, r: Word) -> Word {
        own.wrapping_mul(3)
            .wrapping_add(p)
            .wrapping_add(l.rotate_left(1))
            .wrapping_add(r ^ (v as u64 + t as u64))
    }
}

struct MeshMix;
impl MeshProgram for MeshMix {
    fn m(&self) -> usize {
        1
    }
    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        i: usize,
        j: usize,
        t: i64,
        _own: Word,
        p: Word,
        w: Word,
        e: Word,
        s: Word,
        n: Word,
    ) -> Word {
        p.wrapping_add(w)
            .wrapping_sub(e)
            .wrapping_add(s.rotate_left(3))
            .wrapping_add(n ^ ((i + j) as u64 + t as u64))
    }
}

#[test]
fn any_rule_any_input_all_engines() {
    let mut rng = Rng64::new(0xA11E);
    for _ in 0..CASES {
        let rule = rng.below(256) as u8;
        let bits: Vec<Word> = rng.vec_below(16, 2);
        let steps = rng.range_i64(1, 24);
        let p = [1u64, 2, 4][rng.below(3) as usize];
        let n = 16u64;
        let prog = AnyRule(rule);
        let spec = MachineSpec::new(1, n, p, 1);
        let guest = run_linear(&spec, &prog, &bits, steps);
        simulate_naive1(&spec, &prog, &bits, steps).assert_matches(&guest.mem, &guest.values);
        if p == 1 {
            simulate_dnc1(&spec, &prog, &bits, steps).assert_matches(&guest.mem, &guest.values);
        } else {
            simulate_multi1(&spec, &prog, &bits, steps).assert_matches(&guest.mem, &guest.values);
        }
    }
}

#[test]
fn two_cell_program_random_inputs() {
    let mut rng = Rng64::new(0x2CE1);
    for _ in 0..CASES {
        let words: Vec<Word> = (0..32).map(|_| rng.next_u64()).collect();
        let steps = rng.range_i64(1, 16);
        let n = 16u64;
        let spec = MachineSpec::new(1, n, 1, 2);
        let guest = run_linear(&spec, &Mix2, &words, steps);
        simulate_dnc1(&spec, &Mix2, &words, steps).assert_matches(&guest.mem, &guest.values);
        let spec4 = MachineSpec::new(1, n, 4, 2);
        simulate_multi1(&spec4, &Mix2, &words, steps).assert_matches(&guest.mem, &guest.values);
    }
}

#[test]
fn mesh_random_inputs() {
    let mut rng = Rng64::new(0x3E5D);
    for _ in 0..CASES {
        let words: Vec<Word> = (0..16).map(|_| rng.next_u64()).collect();
        let steps = rng.range_i64(1, 8);
        let spec = MachineSpec::new(2, 16, 1, 1);
        let guest = run_mesh(&spec, &MeshMix, &words, steps);
        simulate_naive2(&spec, &MeshMix, &words, steps).assert_matches(&guest.mem, &guest.values);
        simulate_dnc2(&spec, &MeshMix, &words, steps).assert_matches(&guest.mem, &guest.values);
    }
}

#[test]
fn cost_is_input_independent() {
    // The cost model charges by address trace, which for these
    // programs is data-independent: two different inputs must cost
    // exactly the same.
    let mut rng = Rng64::new(0xC057);
    for _ in 0..CASES {
        let bits_a: Vec<Word> = rng.vec_below(32, 2);
        let bits_b: Vec<Word> = rng.vec_below(32, 2);
        let spec = MachineSpec::new(1, 32, 1, 1);
        let a = simulate_dnc1(&spec, &AnyRule(110), &bits_a, 16);
        let b = simulate_dnc1(&spec, &AnyRule(110), &bits_b, 16);
        assert!((a.host_time - b.host_time).abs() < 1e-9);
        assert_eq!(a.space, b.space);
    }
}

#[test]
fn determinism() {
    let mut rng = Rng64::new(0xDE7E);
    for _ in 0..CASES {
        let bits: Vec<Word> = rng.vec_below(24, 2);
        let p = [2u64, 4][rng.below(2) as usize];
        let spec = MachineSpec::new(1, 24, p, 1);
        let r1 = simulate_multi1(&spec, &AnyRule(90), &bits, 12);
        let r2 = simulate_multi1(&spec, &AnyRule(90), &bits, 12);
        assert_eq!(r1.values, r2.values);
        assert!((r1.host_time - r2.host_time).abs() < 1e-9);
    }
}

#[test]
fn faulted_runs_are_deterministic() {
    // Same seed + same FaultPlan ⇒ bit-identical values AND costs.
    let mut rng = Rng64::new(0xFA17);
    for _ in 0..CASES {
        let bits: Vec<Word> = rng.vec_below(24, 2);
        let seed = rng.next_u64();
        let plan = FaultPlan::uniform_slowdown(1.5)
            .seed(seed)
            .jitter(1.0, 2.0)
            .loss(50, 3)
            .random_crashes(20);
        for (spec, faulted) in [
            (MachineSpec::new(1, 24, 4, 1), true),
            (MachineSpec::new(1, 24, 2, 1), false),
        ] {
            let run = |plan: &FaultPlan| {
                if faulted {
                    try_simulate_naive1_faulted(&spec, &AnyRule(30), &bits, 12, plan).unwrap()
                } else {
                    try_simulate_multi1_faulted(&spec, &AnyRule(30), &bits, 12, plan).unwrap()
                }
            };
            let r1 = run(&plan);
            let r2 = run(&plan);
            assert_eq!(r1.values, r2.values);
            assert_eq!(r1.mem, r2.mem);
            assert_eq!(r1.host_time.to_bits(), r2.host_time.to_bits());
            assert_eq!(r1.faults, r2.faults);
        }
    }
}

#[test]
fn empty_plan_reproduces_unfaulted_costs_bitwise() {
    // FaultPlan::none() must leave the accounting bit-identical to the
    // engine run without any fault machinery.
    let mut rng = Rng64::new(0x0F17);
    for _ in 0..CASES {
        let bits: Vec<Word> = rng.vec_below(32, 2);
        let steps = rng.range_i64(1, 16);
        let spec = MachineSpec::new(1, 32, 4, 1);
        let plain = simulate_naive1(&spec, &AnyRule(110), &bits, steps);
        let none =
            try_simulate_naive1_faulted(&spec, &AnyRule(110), &bits, steps, &FaultPlan::none())
                .unwrap();
        assert_eq!(plain.values, none.values);
        assert_eq!(plain.host_time.to_bits(), none.host_time.to_bits());
        assert_eq!(plain.guest_time.to_bits(), none.guest_time.to_bits());
        assert_eq!(plain.stages, none.stages);
        assert_eq!(none.faults, Default::default());
    }
}
