//! Property-based equivalence: random elementary CAs, random machine
//! shapes, random inputs — every engine must match direct execution.

use bsmp_hram::Word;
use bsmp_machine::{run_linear, run_mesh, LinearProgram, MachineSpec, MeshProgram};
use bsmp_sim::{
    dnc1::simulate_dnc1, dnc2::simulate_dnc2, multi1::simulate_multi1, naive1::simulate_naive1,
    naive2::simulate_naive2,
};
use proptest::prelude::*;

/// An arbitrary elementary CA (any Wolfram rule) over arbitrary words.
struct AnyRule(u8);
impl LinearProgram for AnyRule {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, _v: usize, _t: i64, own: Word, _p: Word, l: Word, r: Word) -> Word {
        let idx = ((l & 1) << 2) | ((own & 1) << 1) | (r & 1);
        Word::from((self.0 >> idx) & 1)
    }
}

/// An m = 2 program mixing both cells and all operands.
struct Mix2;
impl LinearProgram for Mix2 {
    fn m(&self) -> usize {
        2
    }
    fn cell(&self, v: usize, t: i64) -> usize {
        ((v as i64 + t) % 2) as usize
    }
    fn delta(&self, v: usize, t: i64, own: Word, p: Word, l: Word, r: Word) -> Word {
        own.wrapping_mul(3)
            .wrapping_add(p)
            .wrapping_add(l.rotate_left(1))
            .wrapping_add(r ^ (v as u64 + t as u64))
    }
}

struct MeshMix;
impl MeshProgram for MeshMix {
    fn m(&self) -> usize {
        1
    }
    #[allow(clippy::too_many_arguments)]
    fn delta(&self, i: usize, j: usize, t: i64, _own: Word, p: Word, w: Word, e: Word, s: Word, n: Word) -> Word {
        p.wrapping_add(w)
            .wrapping_sub(e)
            .wrapping_add(s.rotate_left(3))
            .wrapping_add(n ^ ((i + j) as u64 + t as u64))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_rule_any_input_all_engines(rule in any::<u8>(),
                                      bits in prop::collection::vec(0u64..2, 16),
                                      steps in 1i64..24,
                                      p in prop_oneof![Just(1u64), Just(2), Just(4)]) {
        let n = 16u64;
        let prog = AnyRule(rule);
        let spec = MachineSpec::new(1, n, p, 1);
        let guest = run_linear(&spec, &prog, &bits, steps);
        simulate_naive1(&spec, &prog, &bits, steps).assert_matches(&guest.mem, &guest.values);
        if p == 1 {
            simulate_dnc1(&spec, &prog, &bits, steps).assert_matches(&guest.mem, &guest.values);
        } else {
            simulate_multi1(&spec, &prog, &bits, steps).assert_matches(&guest.mem, &guest.values);
        }
    }

    #[test]
    fn two_cell_program_random_inputs(words in prop::collection::vec(any::<u64>(), 32),
                                      steps in 1i64..16) {
        let n = 16u64;
        let spec = MachineSpec::new(1, n, 1, 2);
        let guest = run_linear(&spec, &Mix2, &words, steps);
        simulate_dnc1(&spec, &Mix2, &words, steps).assert_matches(&guest.mem, &guest.values);
        let spec4 = MachineSpec::new(1, n, 4, 2);
        simulate_multi1(&spec4, &Mix2, &words, steps).assert_matches(&guest.mem, &guest.values);
    }

    #[test]
    fn mesh_random_inputs(words in prop::collection::vec(any::<u64>(), 16),
                          steps in 1i64..8) {
        let spec = MachineSpec::new(2, 16, 1, 1);
        let guest = run_mesh(&spec, &MeshMix, &words, steps);
        simulate_naive2(&spec, &MeshMix, &words, steps).assert_matches(&guest.mem, &guest.values);
        simulate_dnc2(&spec, &MeshMix, &words, steps).assert_matches(&guest.mem, &guest.values);
    }

    #[test]
    fn cost_is_input_independent(bits_a in prop::collection::vec(0u64..2, 32),
                                 bits_b in prop::collection::vec(0u64..2, 32)) {
        // The cost model charges by address trace, which for these
        // programs is data-independent: two different inputs must cost
        // exactly the same.
        let spec = MachineSpec::new(1, 32, 1, 1);
        let a = simulate_dnc1(&spec, &AnyRule(110), &bits_a, 16);
        let b = simulate_dnc1(&spec, &AnyRule(110), &bits_b, 16);
        prop_assert!((a.host_time - b.host_time).abs() < 1e-9);
        prop_assert_eq!(a.space, b.space);
    }

    #[test]
    fn determinism(bits in prop::collection::vec(0u64..2, 24), p in prop_oneof![Just(2u64), Just(4)]) {
        let spec = MachineSpec::new(1, 24, p, 1);
        let r1 = simulate_multi1(&spec, &AnyRule(90), &bits, 12);
        let r2 = simulate_multi1(&spec, &AnyRule(90), &bits, 12);
        prop_assert_eq!(r1.values, r2.values);
        prop_assert!((r1.host_time - r2.host_time).abs() < 1e-9);
    }
}
