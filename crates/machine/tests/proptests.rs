//! Property-based tests of the machine model and guest execution,
//! driven by the workspace's deterministic generator.

use bsmp_faults::rng::Rng64;
use bsmp_hram::Word;
use bsmp_machine::{linear_guest_time, run_linear, LinearProgram, MachineSpec, StageClock};

const CASES: usize = 64;

struct Rule(u8);
impl LinearProgram for Rule {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, _v: usize, _t: i64, own: Word, _p: Word, l: Word, r: Word) -> Word {
        let idx = ((l & 1) << 2) | ((own & 1) << 1) | (r & 1);
        Word::from((self.0 >> idx) & 1)
    }
}

#[test]
fn guest_execution_is_deterministic() {
    let mut rng = Rng64::new(0x6D31);
    for _ in 0..CASES {
        let rule = rng.below(256) as u8;
        let bits = rng.vec_below(12, 2);
        let steps = rng.range_i64(0, 20);
        let spec = MachineSpec::new(1, 12, 12, 1);
        let a = run_linear(&spec, &Rule(rule), &bits, steps);
        let b = run_linear(&spec, &Rule(rule), &bits, steps);
        assert_eq!(a.values, b.values);
        assert_eq!(a.mem, b.mem);
        assert!((a.time - b.time).abs() < 1e-12);
    }
}

#[test]
fn guest_time_matches_clock_helper() {
    let mut rng = Rng64::new(0x6D32);
    for _ in 0..CASES {
        let rule = rng.below(256) as u8;
        let bits = rng.vec_below(8, 2);
        let steps = rng.range_i64(0, 16);
        let spec = MachineSpec::new(1, 8, 8, 1);
        let run = run_linear(&spec, &Rule(rule), &bits, steps);
        assert!((run.time - linear_guest_time(&spec, &Rule(rule), steps)).abs() < 1e-9);
    }
}

#[test]
fn light_cone_respected() {
    // Flipping one input cell cannot affect values farther than
    // `steps` away — information travels one hop per step.
    let mut rng = Rng64::new(0x6D33);
    for _ in 0..CASES {
        let bits = rng.vec_below(17, 2);
        let flip = rng.below(17) as usize;
        let steps = rng.range_i64(1, 8);
        let spec = MachineSpec::new(1, 17, 17, 1);
        let a = run_linear(&spec, &Rule(110), &bits, steps);
        let mut bits2 = bits.clone();
        bits2[flip] ^= 1;
        let b = run_linear(&spec, &Rule(110), &bits2, steps);
        for v in 0..17usize {
            if (v as i64 - flip as i64).abs() > steps {
                assert_eq!(
                    a.values[v], b.values[v],
                    "leak at {v} (flip {flip}, T {steps})"
                );
            }
        }
    }
}

#[test]
fn spec_arithmetic() {
    let mut rng = Rng64::new(0x6D34);
    for _ in 0..CASES {
        let ne = rng.range_u64(4, 16) as u32;
        let pe = (rng.below(5) as u32).min(ne);
        let m = rng.range_u64(1, 16);
        let n = 1u64 << ne;
        let p = 1u64 << pe;
        let s = MachineSpec::new(1, n, p, m);
        assert_eq!(s.node_mem() * s.p, n * m);
        assert_eq!(s.nodes_per_proc() * s.p, n);
        assert!((s.neighbor_distance() - (n / p) as f64).abs() < 1e-9);
        // Section 2 invariant: worst private access = neighbor distance.
        assert!((s.access_fn().f(s.node_mem() as usize) - s.neighbor_distance()).abs() < 1e-9);
    }
}

#[test]
fn stage_clock_bounds() {
    let mut rng = Rng64::new(0x6D35);
    for _ in 0..CASES {
        let stages = rng.range_u64(1, 10) as usize;
        let costs: Vec<Vec<f64>> = (0..stages)
            .map(|_| {
                let width = rng.range_u64(1, 6) as usize;
                (0..width).map(|_| rng.unit_f64() * 100.0).collect()
            })
            .collect();
        let mut c = StageClock::new();
        for stage in &costs {
            c.add_stage(stage);
        }
        let total_busy: f64 = costs.iter().flatten().sum();
        assert!((c.busy_time - total_busy).abs() < 1e-6);
        assert!(c.parallel_time <= total_busy + 1e-6);
        let max_p = costs.iter().map(Vec::len).max().unwrap() as u64;
        assert!(c.efficiency(max_p) <= 1.0 + 1e-9);
    }
}
