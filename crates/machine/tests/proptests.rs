//! Property-based tests of the machine model and guest execution.

use bsmp_hram::Word;
use bsmp_machine::{
    linear_guest_time, run_linear, LinearProgram, MachineSpec, StageClock,
};
use proptest::prelude::*;

struct Rule(u8);
impl LinearProgram for Rule {
    fn m(&self) -> usize {
        1
    }
    fn delta(&self, _v: usize, _t: i64, own: Word, _p: Word, l: Word, r: Word) -> Word {
        let idx = ((l & 1) << 2) | ((own & 1) << 1) | (r & 1);
        Word::from((self.0 >> idx) & 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn guest_execution_is_deterministic(rule in any::<u8>(),
                                        bits in prop::collection::vec(0u64..2, 12),
                                        steps in 0i64..20) {
        let spec = MachineSpec::new(1, 12, 12, 1);
        let a = run_linear(&spec, &Rule(rule), &bits, steps);
        let b = run_linear(&spec, &Rule(rule), &bits, steps);
        prop_assert_eq!(a.values, b.values);
        prop_assert_eq!(a.mem, b.mem);
        prop_assert!((a.time - b.time).abs() < 1e-12);
    }

    #[test]
    fn guest_time_matches_clock_helper(rule in any::<u8>(),
                                       bits in prop::collection::vec(0u64..2, 8),
                                       steps in 0i64..16) {
        let spec = MachineSpec::new(1, 8, 8, 1);
        let run = run_linear(&spec, &Rule(rule), &bits, steps);
        prop_assert!((run.time - linear_guest_time(&spec, &Rule(rule), steps)).abs() < 1e-9);
    }

    #[test]
    fn light_cone_respected(bits in prop::collection::vec(0u64..2, 17), flip in 0usize..17, steps in 1i64..8) {
        // Flipping one input cell cannot affect values farther than
        // `steps` away — information travels one hop per step.
        let spec = MachineSpec::new(1, 17, 17, 1);
        let a = run_linear(&spec, &Rule(110), &bits, steps);
        let mut bits2 = bits.clone();
        bits2[flip] ^= 1;
        let b = run_linear(&spec, &Rule(110), &bits2, steps);
        for v in 0..17usize {
            if (v as i64 - flip as i64).abs() > steps {
                prop_assert_eq!(a.values[v], b.values[v], "leak at {} (flip {}, T {})", v, flip, steps);
            }
        }
    }

    #[test]
    fn spec_arithmetic(ne in 4u32..16, pe in 0u32..5, m in 1u64..16) {
        let n = 1u64 << ne;
        let p = 1u64 << pe.min(ne);
        let s = MachineSpec::new(1, n, p, m);
        prop_assert_eq!(s.node_mem() * s.p, n * m);
        prop_assert_eq!(s.nodes_per_proc() * s.p, n);
        prop_assert!((s.neighbor_distance() - (n / p) as f64).abs() < 1e-9);
        // Section 2 invariant: worst private access = neighbor distance.
        prop_assert!((s.access_fn().f(s.node_mem() as usize) - s.neighbor_distance()).abs() < 1e-9);
    }

    #[test]
    fn stage_clock_bounds(costs in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 1..6), 1..10)) {
        let mut c = StageClock::new();
        for stage in &costs {
            c.add_stage(stage);
        }
        let total_busy: f64 = costs.iter().flatten().sum();
        prop_assert!((c.busy_time - total_busy).abs() < 1e-6);
        prop_assert!(c.parallel_time <= total_busy + 1e-6);
        let max_p = costs.iter().map(Vec::len).max().unwrap() as u64;
        prop_assert!(c.efficiency(max_p) <= 1.0 + 1e-9);
    }
}
