//! A fast, deterministic hasher for the executor hot paths.
//!
//! The separator executors (`exec1`–`exec3`, `multi1`/`multi2`) key
//! their liveness and placement maps by small lattice points and
//! integer ids.  `std`'s default SipHash is DoS-resistant but costs a
//! full keyed permutation per lookup; these maps never see untrusted
//! keys, so a multiply-xor hash in the FxHash family is the right
//! trade.  **Determinism discipline**: map iteration order is never
//! allowed to reach the cost meters — every charging path sorts its
//! key set first (see DESIGN.md §15) — so swapping the hasher cannot
//! perturb model outputs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash family): one rotate, one xor, one
/// multiply per word of input.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// Odd multiplier with high bit dispersion (2^64 / φ, forced odd).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.mix(i as u64);
    }
}

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_with_tuple_keys() {
        let mut m: FxHashMap<(i64, i64), usize> = FxHashMap::default();
        for i in -50i64..50 {
            m.insert((i, -i), i.unsigned_abs() as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, -7)), Some(&7));
        assert_eq!(m.get(&(-7, 7)), Some(&7));
        assert_eq!(m.get(&(51, -51)), None);
    }

    #[test]
    fn hashes_are_deterministic_across_instances() {
        let h = |x: u64| {
            let mut f = FxHasher::default();
            f.write_u64(x);
            f.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn set_behaves_like_std() {
        let mut s: FxHashSet<i64> = FxHashSet::default();
        for x in [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3] {
            s.insert(x);
        }
        let mut v: Vec<i64> = s.into_iter().collect();
        v.sort();
        assert_eq!(v, [1, 2, 3, 4, 5, 6, 9]);
    }
}
