//! Synchronous node programs — the computations whose `T`-step runs are
//! exactly the dags `G_T(H)` of Definition 3.
//!
//! Semantics (fixed for the whole reproduction; see DESIGN.md §2):
//!
//! * every node owns `m` private memory cells;
//! * the *value* of dag vertex `(v, 0)` is the initial content of cell
//!   `cell(v, 0)`;
//! * at step `t ≥ 1`, node `v` reads **one** private cell `cell(v, t)`,
//!   its own value from step `t-1` (the self-arc `(v, t-1) → (v, t)` of
//!   Definition 3), and the values its neighbors produced at step `t-1`;
//!   it applies `δ`, writes the result back into `cell(v, t)`, and makes
//!   it available to its neighbors — matching Definition 3's "the
//!   operands for vertex `(v, t)` are the value of a (unique) memory cell
//!   of `v` and the values supplied by the neighbors of `v` at step
//!   `t-1`";
//! * a missing neighbor (array/mesh border) supplies `boundary()`.
//!
//! For `m = 1` the touched cell *is* the previous value and this
//! degenerates to the classical synchronous cellular-automaton /
//! systolic semantics.
//!
//! The cell-addressing function `cell(v, t)` is data-independent, so host
//! simulations can schedule relocations without peeking at values; `δ`
//! itself is arbitrary.

use bsmp_hram::Word;

/// A synchronous program for the linear array `M_1(n, n, m)`.
pub trait LinearProgram: Sync {
    /// Private memory cells per node (the paper's `m`).
    fn m(&self) -> usize;

    /// Which private cell node `v` touches at step `t` (`< m`).
    /// Step 0 designates the cell whose initial content is the node's
    /// initial value.
    fn cell(&self, _v: usize, _t: i64) -> usize {
        0
    }

    /// Value supplied for a missing neighbor at the array border.
    fn boundary(&self) -> Word {
        0
    }

    /// The operator of vertex `(v, t)`: combines the touched private
    /// cell's current content, the node's own step-`t-1` value, and the
    /// two neighbor values from step `t-1`.
    fn delta(&self, v: usize, t: i64, own: Word, prev: Word, left: Word, right: Word) -> Word;

    /// Declare that the program never reads the clock: `cell(v, t)` and
    /// `delta(v, t, …)` must be independent of `t`.  A time-invariant
    /// node whose operands are unchanged reproduces its previous value,
    /// which is the quiescence property the event core's activity
    /// frontier relies on (DESIGN.md §16).  Defaults to `false` (the
    /// safe answer: the engines then keep the dense stage loop).
    fn time_invariant(&self) -> bool {
        false
    }
}

/// A synchronous program for the mesh `M_2(n, n, m)`.
pub trait MeshProgram: Sync {
    /// Private memory cells per node.
    fn m(&self) -> usize;

    /// Which private cell node `(i, j)` touches at step `t`.
    fn cell(&self, _i: usize, _j: usize, _t: i64) -> usize {
        0
    }

    fn boundary(&self) -> Word {
        0
    }

    /// The operator of vertex `((i, j), t)`; neighbor order is
    /// `(west, east, south, north)` = `((i-1,j), (i+1,j), (i,j-1), (i,j+1))`.
    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        i: usize,
        j: usize,
        t: i64,
        own: Word,
        prev: Word,
        west: Word,
        east: Word,
        south: Word,
        north: Word,
    ) -> Word;

    /// See [`LinearProgram::time_invariant`]: `cell(i, j, t)` and
    /// `delta(i, j, t, …)` must ignore `t`.  Defaults to `false`.
    fn time_invariant(&self) -> bool {
        false
    }
}

/// A synchronous program for the 3-D mesh `M_3(n, n, m)` — the
/// Section-6 extension (`d = 3`).
pub trait VolumeProgram: Sync {
    /// Private memory cells per node.
    fn m(&self) -> usize;

    /// Which private cell node `(x, y, z)` touches at step `t`.
    fn cell(&self, _x: usize, _y: usize, _z: usize, _t: i64) -> usize {
        0
    }

    fn boundary(&self) -> Word {
        0
    }

    /// The operator of vertex `((x,y,z), t)`; `nb` holds the six
    /// neighbor values in `(-x, +x, -y, +y, -z, +z)` order.
    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        x: usize,
        y: usize,
        z: usize,
        t: i64,
        own: Word,
        prev: Word,
        nb: [Word; 6],
    ) -> Word;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Xor;
    impl LinearProgram for Xor {
        fn m(&self) -> usize {
            1
        }
        fn delta(&self, _v: usize, _t: i64, own: Word, _p: Word, l: Word, r: Word) -> Word {
            own ^ l ^ r
        }
    }

    #[test]
    fn default_cell_is_zero() {
        let p = Xor;
        assert_eq!(p.cell(3, 7), 0);
        assert_eq!(p.boundary(), 0);
        assert_eq!(p.delta(0, 1, 1, 1, 2, 4), 7);
    }
}
