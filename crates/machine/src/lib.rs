//! # bsmp-machine
//!
//! The machines `M_d(n, p, m)` of Definition 2 and the synchronous
//! computations they run.
//!
//! * [`spec`] — machine parameters: `d`-dimensional near-neighbor
//!   interconnection of `p` `(x/m)^{1/d}`-H-RAMs, `n·m/p` cells each,
//!   near-neighbor distance `(n/p)^{1/d}`;
//! * [`program`] — the synchronous node programs whose `T`-step runs
//!   realize the dags `G_T(H)` of Definition 3;
//! * [`guest`] — direct (reference) execution of a guest machine
//!   `M_d(n, n, m)`, producing both the answer and the guest's model
//!   time `T_n`;
//! * [`stage`] — the bulk-synchronous parallel clock used by host
//!   simulations (`T_p = Σ_stages max_proc cost`), with optional
//!   wall-clock parallelism via `std::thread` scoped threads and a
//!   fault-injection entry point ([`StageClock::add_stage_faulted`]).

pub mod guest;
pub mod program;
pub mod spec;
pub mod stage;

pub use guest::{
    linear_guest_time, mesh_guest_time, run_linear, run_mesh, run_volume, volume_guest_time,
    GuestRun,
};
pub use program::{LinearProgram, MeshProgram, VolumeProgram};
pub use spec::{MachineSpec, SpecError};
pub use stage::StageClock;
