//! # bsmp-machine
//!
//! The machines `M_d(n, p, m)` of Definition 2 and the synchronous
//! computations they run.
//!
//! * [`spec`] — machine parameters: `d`-dimensional near-neighbor
//!   interconnection of `p` `(x/m)^{1/d}`-H-RAMs, `n·m/p` cells each,
//!   near-neighbor distance `(n/p)^{1/d}`;
//! * [`program`] — the synchronous node programs whose `T`-step runs
//!   realize the dags `G_T(H)` of Definition 3;
//! * [`guest`] — direct (reference) execution of a guest machine
//!   `M_d(n, n, m)`, producing both the answer and the guest's model
//!   time `T_n`;
//! * [`stage`] — the bulk-synchronous parallel clock used by host
//!   simulations (`T_p = Σ_stages max_proc cost`), with a
//!   fault-injection entry point ([`StageClock::add_stage_faulted`]);
//! * [`event`] — the discrete-event scheduling layer: the
//!   [`CoreKind`] selector and the calendar [`EventQueue`] keyed by
//!   stage number that the sparse engines drain in dense-identical
//!   order;
//! * [`sparse`] — lazily materialised node state ([`SparseState`]:
//!   copy-on-write pages over the initial image) and the activity
//!   [`Frontier`] that makes a stage's work proportional to its active
//!   points;
//! * [`pool`] — the persistent host execution layer: long-lived
//!   [`StagePool`] workers that execute a stage's independent
//!   per-processor tasks without per-stage thread spawns, plus the
//!   reusable [`StageScratch`] buffers and the [`ExecPolicy`] thread
//!   budget.  Model time is unaffected by host threading (each task
//!   returns its own metered cost into its own slot);
//! * [`hash`] — the deterministic multiply-xor hasher behind the
//!   executors' hot liveness/placement maps.

pub mod cache;
pub mod event;
pub mod guest;
pub mod hash;
pub mod pool;
pub mod program;
pub mod sparse;
pub mod spec;
pub mod stage;

pub use cache::{plan_cache, CacheStats, PlanCache, PlanKey};
pub use event::{CoreKind, EventQueue};
pub use guest::{
    linear_guest_time, mesh_guest_time, run_linear, run_mesh, run_volume, volume_guest_time,
    GuestRun,
};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use pool::{
    available_threads, init_shared_pool, lease_scratch, set_default_threads, shared_pool,
    DisjointSlice, ExecPolicy, PoolLease, ScratchLease, StagePanic, StagePool, StageScratch,
};
pub use program::{LinearProgram, MeshProgram, VolumeProgram};
pub use sparse::{Frontier, SparseState};
pub use spec::{MachineSpec, SpecError};
pub use stage::StageClock;
