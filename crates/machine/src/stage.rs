//! The bulk-synchronous parallel clock.
//!
//! Every multiprocessor simulation in the paper is organized in
//! *stages* (relocation levels of Regime 1, the `2p-1` diamond stages of
//! Regime 2, …): within a stage the `p` processors work independently,
//! and the machine advances to the next stage when the slowest finishes.
//! Parallel model time is therefore `T_p = Σ_stages max_proc cost`.
//!
//! [`StageClock`] tracks that sum (and the total *busy* work, for
//! efficiency metrics); [`run_stage`] optionally executes the
//! per-processor work of one stage on real threads — model time stays
//! deterministic because each worker returns its own model cost.
//! [`StageClock::add_stage_faulted`] routes a stage's costs through a
//! [`FaultSession`] first, so fault injection happens at the single
//! point where stage costs enter the clock.
//!
//! Engines that run many stages should hold a persistent
//! [`StagePool`](crate::pool::StagePool) instead of calling
//! [`run_stage`], which stands up (and tears down) a fresh pool per
//! call and survives only as a compatibility shim.

use bsmp_faults::{FaultSession, ScenarioExhausted};

use crate::pool::{available_threads, DisjointSlice, StagePool};

/// Deterministic parallel-time accumulator.
#[derive(Clone, Debug, Default)]
pub struct StageClock {
    /// `Σ_stages max_proc cost` — the parallel model time `T_p`.
    pub parallel_time: f64,
    /// `Σ_stages Σ_proc cost` — aggregate busy time (for efficiency =
    /// busy / (p × parallel)).
    pub busy_time: f64,
    /// `Σ_stages Σ_proc comm` — aggregate distance-weighted communication
    /// delay, as declared to [`add_stage_faulted`](Self::add_stage_faulted)
    /// (fault-free component; observability only, never fed back into
    /// model time).
    pub comm_time: f64,
    /// `Σ_stages Σ_proc` *delivered* communication charge after the
    /// scenario layer: echo-corrected, link-table-scaled, including
    /// storm-queued traffic released on heal.  Equals [`comm_time`](Self::comm_time)
    /// under `FaultPlan::none`.
    pub faulted_comm_time: f64,
    /// Number of stages closed so far.
    pub stages: u64,
}

impl StageClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Close a stage given each processor's cost in it.
    pub fn add_stage(&mut self, per_proc: &[f64]) {
        let mx = per_proc.iter().copied().fold(0.0f64, f64::max);
        self.parallel_time += mx;
        self.busy_time += per_proc.iter().sum::<f64>();
        self.stages += 1;
    }

    /// Close a stage after routing it through a fault session:
    /// `per_proc` are the fault-free costs, `per_comm` the communication
    /// components (`per_comm[i] ≤ per_proc[i]`).  With an empty plan
    /// this is exactly [`add_stage`](Self::add_stage).
    ///
    /// Errs when the scenario's churn retry budget is exhausted; the
    /// clock is left at the last fully-closed stage.
    pub fn add_stage_faulted(
        &mut self,
        per_proc: &[f64],
        per_comm: &[f64],
        session: &mut FaultSession,
    ) -> Result<(), ScenarioExhausted> {
        let outcome = session.try_apply_stage(per_proc, per_comm)?;
        self.comm_time += per_comm.iter().sum::<f64>();
        self.faulted_comm_time += outcome.faulted_comm;
        self.add_stage(&outcome.costs);
        Ok(())
    }

    /// Close the run's settlement stage, if the scenario still owes one
    /// (storm-queued traffic or churn debt outstanding at the end of the
    /// work loop).  Returns whether a stage was added.
    pub fn settle_faulted(&mut self, session: &mut FaultSession) -> bool {
        match session.settle() {
            Some(outcome) => {
                self.faulted_comm_time += outcome.faulted_comm;
                self.add_stage(&outcome.costs);
                true
            }
            None => false,
        }
    }

    /// Close a stage in which a single processor worked alone.
    pub fn add_serial_stage(&mut self, cost: f64) {
        self.parallel_time += cost;
        self.busy_time += cost;
        self.stages += 1;
    }

    /// Parallel efficiency over `p` processors (`≤ 1`).
    pub fn efficiency(&self, p: u64) -> f64 {
        if self.parallel_time == 0.0 {
            return 1.0;
        }
        self.busy_time / (p as f64 * self.parallel_time)
    }
}

/// Execute one stage's per-processor work items, each returning its model
/// cost, and return the costs in processor order.
///
/// With `parallel = true` the closures run on a throwaway
/// [`StagePool`] (wall-clock speed-up only; model time is unaffected).
/// Work items must be independent — exactly the property stages have by
/// construction.  Compatibility wrapper: engines with many stages keep
/// one pool for the whole run instead.
pub fn run_stage<W>(works: Vec<W>, parallel: bool) -> Vec<f64>
where
    W: FnOnce() -> f64 + Send,
{
    let n = works.len();
    if !parallel || n <= 1 {
        return works.into_iter().map(|w| w()).collect();
    }
    let mut out = vec![0.0f64; n];
    let mut works: Vec<Option<W>> = works.into_iter().map(Some).collect();
    let slots = DisjointSlice::new(&mut works);
    let pool = StagePool::new(available_threads().min(n));
    pool.run_stage(n, &mut out, |i| {
        // Safety: index i is claimed by exactly one thread.
        unsafe { slots.get_mut(i) }
            .take()
            .expect("work item taken twice")()
    })
    .unwrap_or_else(|e| panic!("{e}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_faults::{FaultEnv, FaultPlan};

    #[test]
    fn parallel_time_is_sum_of_maxima() {
        let mut c = StageClock::new();
        c.add_stage(&[1.0, 5.0, 2.0]);
        c.add_stage(&[4.0, 4.0, 4.0]);
        assert_eq!(c.parallel_time, 9.0);
        assert_eq!(c.busy_time, 20.0);
        assert_eq!(c.stages, 2);
    }

    #[test]
    fn efficiency_bounded_by_one() {
        let mut c = StageClock::new();
        c.add_stage(&[3.0, 3.0]);
        assert!((c.efficiency(2) - 1.0).abs() < 1e-12);
        c.add_stage(&[6.0, 0.0]);
        assert!(c.efficiency(2) < 1.0);
    }

    #[test]
    fn run_stage_sequential_and_parallel_agree() {
        let mk = || (0..8).map(|i| move || (i as f64) * 1.5).collect::<Vec<_>>();
        let a = run_stage(mk(), false);
        let b = run_stage(mk(), true);
        assert_eq!(a, b);
    }

    #[test]
    fn serial_stage_counts_fully() {
        let mut c = StageClock::new();
        c.add_serial_stage(7.0);
        assert_eq!(c.parallel_time, 7.0);
        assert_eq!(c.busy_time, 7.0);
    }

    #[test]
    fn faulted_stage_with_empty_plan_matches_add_stage() {
        let mut plain = StageClock::new();
        let mut faulted = StageClock::new();
        let mut session = FaultSession::inactive();
        plain.add_stage(&[2.0, 3.0]);
        faulted
            .add_stage_faulted(&[2.0, 3.0], &[1.0, 1.0], &mut session)
            .unwrap();
        assert_eq!(plain.parallel_time, faulted.parallel_time);
        assert_eq!(plain.busy_time, faulted.busy_time);
        assert_eq!(faulted.comm_time, 2.0);
        assert_eq!(faulted.faulted_comm_time, 2.0);
        assert!(!faulted.settle_faulted(&mut session));
    }

    #[test]
    fn faulted_stage_inflates_clock() {
        let plan = FaultPlan::uniform_slowdown(2.0);
        let env = FaultEnv {
            p: 2,
            hop: 1.0,
            checkpoint_words: 0,
            proc_side: 1,
        };
        let mut session = FaultSession::new(&plan, env);
        let mut c = StageClock::new();
        c.add_stage_faulted(&[4.0, 4.0], &[2.0, 2.0], &mut session)
            .unwrap();
        // base = 4 + (2−1)·2 = 6 on both processors.
        assert_eq!(c.parallel_time, 6.0);
        assert_eq!(c.busy_time, 12.0);
        // Delivered comm is the ν-scaled echo-corrected charge: 2·2·2.
        assert_eq!(c.faulted_comm_time, 8.0);
    }

    #[test]
    fn exhausted_churn_surfaces_as_error_not_panic() {
        let plan = FaultPlan::none().churn(1_000, 50, 0, 1.0);
        let env = FaultEnv {
            p: 1,
            hop: 1.0,
            checkpoint_words: 0,
            proc_side: 1,
        };
        let mut session = FaultSession::new(&plan, env);
        let mut c = StageClock::new();
        let err = c
            .add_stage_faulted(&[4.0], &[1.0], &mut session)
            .unwrap_err();
        assert_eq!(err.proc, 0);
        assert_eq!(c.stages, 0, "failed stage must not close the clock");
    }
}
