//! Discrete-event scheduling for the sparse execution core.
//!
//! The host engines are bulk-synchronous: every quantity they meter is
//! keyed by a *stage number* (a guest step for the naive engines, a
//! diamond/cell center time for the multi engines).  A calendar queue
//! over those keys is therefore the natural event structure: O(1)
//! schedule, O(1) bucket pop, and — because the engines emit work in
//! non-decreasing key order — draining the calendar replays exactly the
//! dense iteration order, which is what keeps the event core's meters
//! bit-identical to the dense core's (DESIGN.md §16).

use std::collections::VecDeque;

/// Which execution core an engine should use.
///
/// * [`CoreKind::Dense`] — the historical stage loop: every stage visits
///   all `n` guest nodes.
/// * [`CoreKind::Event`] — the discrete-event core: per-stage work is
///   proportional to the *active* points (plus O(p) bookkeeping), with
///   quiescent regions represented by their closed form until touched.
///   Reports are bit-identical to the dense core; engines fall back to
///   the dense loop when a run does not satisfy the event-core
///   preconditions (see `bsmp_sim::event1`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoreKind {
    /// Dense stage loop over all `n` nodes (the default).
    #[default]
    Dense,
    /// Event-driven sparse core with activity frontiers.
    Event,
}

impl CoreKind {
    /// Parse a CLI-style name (`"dense"` / `"event"`).
    pub fn parse(s: &str) -> Option<CoreKind> {
        match s {
            "dense" => Some(CoreKind::Dense),
            "event" => Some(CoreKind::Event),
            _ => None,
        }
    }
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoreKind::Dense => "dense",
            CoreKind::Event => "event",
        })
    }
}

/// A calendar (bucket) event queue keyed by stage number.
///
/// Buckets are a dense window `[base, base + buckets.len())` of stage
/// keys; scheduling below/above the window grows it at either end.
/// Within a bucket, events drain in insertion (FIFO) order, so a
/// producer that emits work in non-decreasing key order is replayed
/// verbatim by repeated [`EventQueue::pop_stage`] calls.
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: VecDeque<Vec<E>>,
    base: i64,
    events: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            buckets: VecDeque::new(),
            base: 0,
            events: 0,
        }
    }

    /// Number of scheduled (not yet drained) events.
    pub fn len(&self) -> usize {
        self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Schedule `ev` at stage `stage`.
    pub fn schedule(&mut self, stage: i64, ev: E) {
        if self.buckets.is_empty() {
            self.base = stage;
        }
        while stage < self.base {
            self.buckets.push_front(Vec::new());
            self.base -= 1;
        }
        let idx = (stage - self.base) as usize;
        while idx >= self.buckets.len() {
            self.buckets.push_back(Vec::new());
        }
        self.buckets[idx].push(ev);
        self.events += 1;
    }

    /// The earliest stage holding at least one event.
    pub fn peek_stage(&self) -> Option<i64> {
        self.buckets
            .iter()
            .position(|b| !b.is_empty())
            .map(|i| self.base + i as i64)
    }

    /// Pop the earliest non-empty bucket: `(stage, events)` in FIFO
    /// order, or `None` when the queue is empty.
    pub fn pop_stage(&mut self) -> Option<(i64, Vec<E>)> {
        while let Some(front) = self.buckets.front() {
            if front.is_empty() {
                self.buckets.pop_front();
                self.base += 1;
            } else {
                break;
            }
        }
        let bucket = self.buckets.pop_front()?;
        let stage = self.base;
        self.base += 1;
        self.events -= bucket.len();
        Some((stage, bucket))
    }

    /// Resident footprint in bytes (buckets + event payloads), for the
    /// `bench --mem` probe.
    pub fn bytes(&self) -> usize {
        let payload: usize = self
            .buckets
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<E>())
            .sum();
        payload + self.buckets.capacity() * std::mem::size_of::<Vec<E>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_kind_parses_and_displays() {
        assert_eq!(CoreKind::parse("dense"), Some(CoreKind::Dense));
        assert_eq!(CoreKind::parse("event"), Some(CoreKind::Event));
        assert_eq!(CoreKind::parse("banana"), None);
        assert_eq!(CoreKind::default(), CoreKind::Dense);
        assert_eq!(CoreKind::Event.to_string(), "event");
    }

    #[test]
    fn drains_in_stage_order_fifo_within_bucket() {
        let mut q = EventQueue::new();
        q.schedule(3, "c1");
        q.schedule(1, "a1");
        q.schedule(3, "c2");
        q.schedule(2, "b1");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_stage(), Some(1));
        assert_eq!(q.pop_stage(), Some((1, vec!["a1"])));
        assert_eq!(q.pop_stage(), Some((2, vec!["b1"])));
        assert_eq!(q.pop_stage(), Some((3, vec!["c1", "c2"])));
        assert_eq!(q.pop_stage(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn negative_and_sparse_keys_work() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        q.schedule(-5, 2);
        q.schedule(0, 3);
        assert_eq!(q.pop_stage(), Some((-5, vec![2])));
        assert_eq!(q.pop_stage(), Some((0, vec![3])));
        assert_eq!(q.pop_stage(), Some((10, vec![1])));
        assert_eq!(q.pop_stage(), None);
    }

    #[test]
    fn reusable_after_drain() {
        let mut q = EventQueue::new();
        q.schedule(7, 'x');
        assert_eq!(q.pop_stage(), Some((7, vec!['x'])));
        q.schedule(2, 'y');
        assert_eq!(q.pop_stage(), Some((2, vec!['y'])));
        assert!(q.bytes() < 1024);
    }
}
