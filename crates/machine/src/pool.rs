//! The persistent host execution layer.
//!
//! Every multiprocessor engine advances in bulk-synchronous stages; the
//! per-processor work items of one stage are independent by
//! construction.  Spawning OS threads per stage (the old
//! `std::thread::scope` path) pays thread start-up Θ(T·p) times per
//! run.  [`StagePool`] instead spins up its workers **once**, parks them
//! on a condvar between stages, and hands each stage out as a single
//! type-erased job whose tasks the workers (and the calling thread)
//! claim with an atomic index.
//!
//! Model time is unaffected by any of this: each task returns its own
//! model cost into a dedicated slot (`out[i]`), and the caller folds the
//! slots in processor order — so serial, scoped-thread, and pooled
//! execution produce bit-identical stage costs (see DESIGN.md §12).
//!
//! A panic inside a task is caught, the remaining tasks still drain, and
//! [`StagePool::run_stage`] returns the first panic's message as
//! [`StagePanic`] — no hang, no abort.
//!
//! **Re-entrancy (serving mode).**  One pool instance is safe for
//! *concurrent* callers: the publish → participate → retire protocol of
//! one stage runs under a submit lock, so two jobs sharing the pool
//! interleave at stage granularity (each stage's tasks still fan out
//! across the workers).  A long-running server initializes one
//! process-wide pool via [`init_shared_pool`]; engines lease it through
//! [`PoolLease`] — falling back to a private per-run pool when no shared
//! pool exists, which keeps one-shot CLI runs exactly as before.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// How many OS threads the host may use for stage execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Upper bound on host threads; `0` means "ask the OS"
    /// (`std::thread::available_parallelism`).
    pub threads: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::auto()
    }
}

impl ExecPolicy {
    /// Use the machine's available parallelism.
    pub fn auto() -> Self {
        ExecPolicy { threads: 0 }
    }

    /// Strictly serial host execution (no worker threads at all).
    pub fn serial() -> Self {
        ExecPolicy { threads: 1 }
    }

    /// At most `n` host threads (`0` = auto).
    pub fn threads(n: usize) -> Self {
        ExecPolicy { threads: n }
    }

    /// The concrete thread budget: `threads`, or the process default
    /// (see [`set_default_threads`]) / OS parallelism for `0`, never
    /// less than 1.
    pub fn resolved(&self) -> usize {
        if self.threads == 0 {
            let d = DEFAULT_THREADS.load(Ordering::Relaxed);
            if d > 0 {
                d
            } else {
                available_threads()
            }
        } else {
            self.threads
        }
    }
}

/// Process-wide default consulted by [`ExecPolicy::auto`]; `0` means
/// "ask the OS".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override the thread budget that [`ExecPolicy::auto`] resolves to
/// (`0` restores OS auto-detection).  This is how a CLI `--threads N`
/// flag reaches every engine without plumbing a policy through each
/// call site.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The machine's available parallelism (1 if the OS cannot tell).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A task panicked inside a [`StagePool`] stage; carries the panic
/// payload's message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagePanic(pub String);

impl std::fmt::Display for StagePanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage worker panicked: {}", self.0)
    }
}

impl std::error::Error for StagePanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A `&mut [T]` that many threads may write through **at provably
/// disjoint indices** (each index touched by at most one thread per
/// stage).  The engines' ownership maps (`proc_of`, block chunking)
/// guarantee disjointness; the wrapper only erases the borrow so the
/// closure handed to [`StagePool::run_stage`] can be `Sync`.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: hands out &mut T only through the unsafe accessors below,
// whose contract is per-index exclusivity.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// # Safety
    /// No other thread may access index `i` while the returned borrow
    /// lives.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "DisjointSlice index {i} out of {}", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }

    /// # Safety
    /// Concurrent callers must use non-overlapping `start..start + len`
    /// ranges.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start + len <= self.len,
            "DisjointSlice range {start}+{len} out of {}",
            self.len
        );
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

/// Type-erased pointer to the current stage's runner closure.  The
/// pointed-to closure lives on the stack of [`StagePool::run_stage`],
/// which never returns while a worker still holds the pointer (the
/// `active` count below), so the erased lifetime is sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync));

// Safety: the pointee is Sync; the pointer only crosses threads inside
// the pool's epoch protocol.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per published stage; workers compare against the
    /// last epoch they served.
    epoch: u64,
    /// The current stage's runner, if one is published.
    job: Option<JobPtr>,
    /// Workers currently executing the published runner.
    active: usize,
    /// Workers that joined the published runner (never decremented
    /// within an epoch — it caps participation, `active` tracks
    /// completion).
    joined: usize,
    /// Maximum workers allowed to join the published runner (the
    /// caller's thread budget minus the caller itself).
    cap: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers: new stage published, or shutdown.
    work: Condvar,
    /// Signals the caller: a worker finished its participation.
    done: Condvar,
    /// Serializes whole stages across concurrent callers: the pool has
    /// one published-job slot, so a second job waits here until the
    /// first stage retires.  Workers never take this lock.
    submit: Mutex<()>,
}

/// A pool of long-lived stage workers (plus the calling thread, which
/// always participates).  `StagePool::new(t)` spawns `t - 1` workers;
/// with `t <= 1` the pool degenerates to strictly serial execution and
/// spawns nothing.
pub struct StagePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl StagePool {
    /// Build a pool with a total thread budget of `threads` (calling
    /// thread included).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                joined: 0,
                cap: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            submit: Mutex::new(()),
        });
        let workers = (0..threads.saturating_sub(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bsmp-stage-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn stage worker")
            })
            .collect();
        StagePool { shared, workers }
    }

    /// Build a pool sized for `p` independent work items under `policy`
    /// (never more threads than items).
    pub fn for_procs(p: usize, policy: ExecPolicy) -> Self {
        StagePool::new(policy.resolved().min(p.max(1)))
    }

    /// Total thread budget (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Execute tasks `0..n` of one stage, writing `task(i)`'s model cost
    /// to `out[i]`.  The task closure is shared across threads; per-task
    /// mutable state must go through [`DisjointSlice`] (or equivalent).
    ///
    /// Deterministic by construction: slot `i` is written only by the
    /// thread that claimed index `i`, regardless of claim order.
    pub fn run_stage(
        &self,
        n: usize,
        out: &mut [f64],
        task: impl Fn(usize) -> f64 + Sync,
    ) -> Result<(), StagePanic> {
        self.run_stage_capped(n, usize::MAX, out, task)
    }

    /// [`run_stage`](Self::run_stage) with a per-call thread budget:
    /// at most `threads - 1` workers join the caller on this stage
    /// (`threads <= 1` runs strictly serially on the calling thread).
    /// This is how concurrent jobs with different [`ExecPolicy`] budgets
    /// share one pool; results are bit-identical for any budget.
    pub fn run_stage_capped(
        &self,
        n: usize,
        threads: usize,
        out: &mut [f64],
        task: impl Fn(usize) -> f64 + Sync,
    ) -> Result<(), StagePanic> {
        assert!(out.len() >= n, "out buffer shorter than task count");
        let first_panic: Mutex<Option<String>> = Mutex::new(None);
        if self.workers.is_empty() || n <= 1 || threads <= 1 {
            // Serial path — same per-index claiming semantics, one thread.
            for (i, slot) in out.iter_mut().enumerate().take(n) {
                match catch_unwind(AssertUnwindSafe(|| task(i))) {
                    Ok(cost) => *slot = cost,
                    Err(e) => {
                        let mut fp = first_panic.lock().unwrap();
                        if fp.is_none() {
                            *fp = Some(panic_message(e));
                        }
                    }
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let out_slots = DisjointSlice::new(&mut out[..n]);
            let runner = || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| task(i))) {
                        // Safety: index i was claimed by exactly this
                        // thread via fetch_add.
                        Ok(cost) => unsafe { *out_slots.get_mut(i) = cost },
                        Err(e) => {
                            let mut fp = first_panic.lock().unwrap();
                            if fp.is_none() {
                                *fp = Some(panic_message(e));
                            }
                        }
                    }
                }
            };
            let runner_ref: &(dyn Fn() + Sync) = &runner;
            // Safety: the pointer is only dereferenced by workers while
            // registered in `active`; we clear the job and wait for
            // `active == 0` under the same mutex before returning, so
            // the pointee outlives every dereference.
            let job = JobPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    runner_ref as *const _,
                )
            });
            // One stage at a time pool-wide: concurrent jobs queue here
            // and interleave at stage granularity.  Held until the stage
            // retires so a second caller can never clobber the published
            // job slot.
            let _submit = self.shared.submit.lock().unwrap();
            {
                let mut st = self.shared.state.lock().unwrap();
                st.job = Some(job);
                st.joined = 0;
                st.cap = (threads - 1).min(self.workers.len());
                st.epoch += 1;
                self.shared.work.notify_all();
            }
            // The calling thread participates too.
            runner();
            let mut st = self.shared.state.lock().unwrap();
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            // Unpublish before returning: a worker that missed this
            // epoch will find `job == None` and go back to sleep instead
            // of dereferencing a dead stack frame.
            st.job = None;
        }
        match first_panic.into_inner().unwrap() {
            Some(msg) => Err(StagePanic(msg)),
            None => Ok(()),
        }
    }
}

impl Drop for StagePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut served = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != served {
                    served = st.epoch;
                    if let Some(job) = st.job {
                        if st.joined < st.cap {
                            st.joined += 1;
                            st.active += 1;
                            break job;
                        }
                        // Over the caller's thread budget; sit this
                        // stage out.
                    }
                    // Stage already retired; keep waiting.
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // The runner catches task panics itself; catch here too so a
        // panic in the claiming loop can never strand `active`.
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// The process-wide shared pool, once a server has initialized it.
static SHARED_POOL: OnceLock<StagePool> = OnceLock::new();

/// Stand up the process-wide shared [`StagePool`] with `threads` total
/// threads (calling threads included).  Idempotent: the first call wins
/// and later calls are ignored (returns `false`).  Once initialized,
/// every engine's [`PoolLease`] routes stages through this pool instead
/// of standing up a private one per run — the serving configuration.
pub fn init_shared_pool(threads: usize) -> bool {
    let mut fresh = false;
    SHARED_POOL.get_or_init(|| {
        fresh = true;
        StagePool::new(threads.max(1))
    });
    fresh
}

/// The shared pool, if a server initialized one.
pub fn shared_pool() -> Option<&'static StagePool> {
    SHARED_POOL.get()
}

/// An engine's handle on stage execution for one run: either the
/// process-wide shared pool (capped at this run's thread budget) or a
/// private per-run pool when no shared pool exists.  Model costs are
/// identical either way.
pub enum PoolLease {
    Shared {
        pool: &'static StagePool,
        cap: usize,
    },
    Owned(StagePool),
}

impl PoolLease {
    /// Lease capacity for `p` independent work items under `policy`
    /// (never more threads than items).
    pub fn for_procs(p: usize, policy: ExecPolicy) -> Self {
        let cap = policy.resolved().min(p.max(1));
        match shared_pool() {
            Some(pool) if cap > 1 => PoolLease::Shared { pool, cap },
            _ => PoolLease::Owned(StagePool::new(cap)),
        }
    }

    /// Strictly serial execution on the calling thread.
    pub fn serial() -> Self {
        PoolLease::Owned(StagePool::new(1))
    }

    /// This lease's thread budget.
    pub fn threads(&self) -> usize {
        match self {
            PoolLease::Shared { cap, .. } => *cap,
            PoolLease::Owned(pool) => pool.threads(),
        }
    }

    /// Run one stage under this lease's thread budget (see
    /// [`StagePool::run_stage_capped`]).
    pub fn run_stage(
        &self,
        n: usize,
        out: &mut [f64],
        task: impl Fn(usize) -> f64 + Sync,
    ) -> Result<(), StagePanic> {
        match self {
            PoolLease::Shared { pool, cap } => pool.run_stage_capped(n, *cap, out, task),
            PoolLease::Owned(pool) => pool.run_stage(n, out, task),
        }
    }
}

/// Reusable per-stage buffers: the four `Θ(p)` vectors every stage-driven
/// engine needs (costs, communication deltas, and the pre-stage
/// time/comm snapshots), allocated once per run instead of once per
/// stage.
#[derive(Clone, Debug)]
pub struct StageScratch {
    /// Per-processor stage cost (the `per_proc` fed to the clock).
    pub per_proc: Vec<f64>,
    /// Per-processor communication component of the stage cost.
    pub per_comm: Vec<f64>,
    /// Meter `comm` snapshot at stage start.
    pub comm_before: Vec<f64>,
    /// Meter time snapshot at stage start.
    pub time_before: Vec<f64>,
}

impl StageScratch {
    pub fn new(p: usize) -> Self {
        StageScratch {
            per_proc: vec![0.0; p],
            per_comm: vec![0.0; p],
            comm_before: vec![0.0; p],
            time_before: vec![0.0; p],
        }
    }

    /// Resize every buffer to `p` slots and zero them — the state
    /// [`StageScratch::new`] would give, reusing the allocations.
    fn reset(&mut self, p: usize) {
        for v in [
            &mut self.per_proc,
            &mut self.per_comm,
            &mut self.comm_before,
            &mut self.time_before,
        ] {
            v.clear();
            v.resize(p, 0.0);
        }
    }
}

/// Free-list of [`StageScratch`] arenas a long-lived server recycles
/// across requests: checkout via [`lease_scratch`], automatic return on
/// drop, capped so a burst of concurrent jobs cannot pin memory forever.
struct ScratchArena {
    free: Mutex<Vec<StageScratch>>,
}

/// Parked arenas beyond this are dropped instead of returned.
const ARENA_MAX_PARKED: usize = 64;

static SCRATCH_ARENA: ScratchArena = ScratchArena {
    free: Mutex::new(Vec::new()),
};

/// A per-request scratch arena: dereferences to [`StageScratch`], and
/// returns the buffers to the process-wide free list when dropped.
pub struct ScratchLease {
    scratch: Option<StageScratch>,
}

impl Deref for ScratchLease {
    type Target = StageScratch;
    fn deref(&self) -> &StageScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for ScratchLease {
    fn deref_mut(&mut self) -> &mut StageScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchLease {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            let mut free = SCRATCH_ARENA.free.lock().unwrap();
            if free.len() < ARENA_MAX_PARKED {
                free.push(s);
            }
        }
    }
}

/// Check a zeroed `p`-slot [`StageScratch`] out of the process-wide
/// arena (allocating a fresh one only when the free list is empty).
/// Each lease is exclusively owned by its request — engines hold no
/// buffers of their own between runs, which is what makes every
/// `try_simulate_*` path re-entrant.
pub fn lease_scratch(p: usize) -> ScratchLease {
    let parked = SCRATCH_ARENA.free.lock().unwrap().pop();
    let mut scratch = parked.unwrap_or_else(|| StageScratch::new(p));
    scratch.reset(p);
    ScratchLease {
        scratch: Some(scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_resolution() {
        assert!(ExecPolicy::auto().resolved() >= 1);
        assert_eq!(ExecPolicy::serial().resolved(), 1);
        assert_eq!(ExecPolicy::threads(7).resolved(), 7);
        assert_eq!(ExecPolicy::default(), ExecPolicy::auto());
    }

    #[test]
    fn default_threads_override() {
        set_default_threads(3);
        assert_eq!(ExecPolicy::auto().resolved(), 3);
        // Explicit settings are unaffected by the process default.
        assert_eq!(ExecPolicy::serial().resolved(), 1);
        assert_eq!(ExecPolicy::threads(5).resolved(), 5);
        set_default_threads(0);
        assert!(ExecPolicy::auto().resolved() >= 1);
    }

    #[test]
    fn serial_pool_runs_everything_in_order() {
        let pool = StagePool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0.0; 8];
        pool.run_stage(8, &mut out, |i| i as f64 * 1.5).unwrap();
        assert_eq!(out, (0..8).map(|i| i as f64 * 1.5).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_matches_serial_bitwise() {
        let pool = StagePool::new(4);
        let task = |i: usize| ((i * 37 + 11) as f64).sqrt() * 0.33;
        let mut serial = vec![0.0; 100];
        StagePool::new(1).run_stage(100, &mut serial, task).unwrap();
        for _ in 0..10 {
            let mut pooled = vec![0.0; 100];
            pool.run_stage(100, &mut pooled, task).unwrap();
            assert_eq!(serial, pooled);
        }
    }

    #[test]
    fn more_tasks_than_workers_and_fewer() {
        let pool = StagePool::new(2);
        for n in [0usize, 1, 2, 3, 64] {
            let mut out = vec![-1.0; n];
            pool.run_stage(n, &mut out, |i| i as f64).unwrap();
            assert_eq!(out, (0..n).map(|i| i as f64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_survives_many_stages() {
        let pool = StagePool::new(3);
        let mut acc = 0.0;
        let mut out = vec![0.0; 5];
        for _ in 0..500 {
            pool.run_stage(5, &mut out, |i| i as f64).unwrap();
            acc += out.iter().sum::<f64>();
        }
        assert_eq!(acc, 500.0 * 10.0);
    }

    #[test]
    fn panic_in_task_reported_not_hung() {
        let pool = StagePool::new(4);
        let mut out = vec![0.0; 16];
        let err = pool
            .run_stage(16, &mut out, |i| {
                if i == 7 {
                    panic!("task seven exploded");
                }
                i as f64
            })
            .unwrap_err();
        assert!(err.0.contains("task seven exploded"), "{err}");
        // Pool still usable afterwards.
        pool.run_stage(16, &mut out, |i| i as f64).unwrap();
        assert_eq!(out[15], 15.0);
    }

    #[test]
    fn panic_in_serial_path_reported() {
        let pool = StagePool::new(1);
        let mut out = vec![0.0; 4];
        let err = pool
            .run_stage(4, &mut out, |i| {
                if i == 2 {
                    panic!("serial boom");
                }
                0.0
            })
            .unwrap_err();
        assert!(err.0.contains("serial boom"));
    }

    #[test]
    fn disjoint_slice_partitions() {
        let mut data = vec![0u64; 64];
        let ds = DisjointSlice::new(&mut data);
        assert_eq!(ds.len(), 64);
        assert!(!ds.is_empty());
        let pool = StagePool::new(4);
        let mut out = vec![0.0; 4];
        pool.run_stage(4, &mut out, |i| {
            // Safety: per-task chunks are disjoint by construction.
            let chunk = unsafe { ds.slice_mut(i * 16, 16) };
            for (k, w) in chunk.iter_mut().enumerate() {
                *w = (i * 16 + k) as u64;
            }
            0.0
        })
        .unwrap();
        assert_eq!(data, (0..64u64).collect::<Vec<_>>());
    }

    #[test]
    fn for_procs_caps_at_item_count() {
        let pool = StagePool::for_procs(2, ExecPolicy::threads(16));
        assert_eq!(pool.threads(), 2);
        let pool1 = StagePool::for_procs(0, ExecPolicy::threads(16));
        assert_eq!(pool1.threads(), 1);
    }

    #[test]
    fn scratch_sizes() {
        let s = StageScratch::new(6);
        assert_eq!(s.per_proc.len(), 6);
        assert_eq!(s.per_comm.len(), 6);
        assert_eq!(s.comm_before.len(), 6);
        assert_eq!(s.time_before.len(), 6);
    }

    #[test]
    fn concurrent_callers_share_one_pool() {
        // Two jobs hammer the same pool from different threads; every
        // stage of each job must come back bit-identical to its serial
        // twin (stage-granularity interleaving, no cross-talk).
        let pool = StagePool::new(4);
        let task_a = |i: usize| ((i * 13 + 5) as f64).sqrt();
        let task_b = |i: usize| ((i * 7 + 3) as f64).ln_1p();
        let mut want_a = vec![0.0; 64];
        let mut want_b = vec![0.0; 64];
        StagePool::new(1)
            .run_stage(64, &mut want_a, task_a)
            .unwrap();
        StagePool::new(1)
            .run_stage(64, &mut want_b, task_b)
            .unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut out = vec![0.0; 64];
                for _ in 0..200 {
                    pool.run_stage(64, &mut out, task_a).unwrap();
                    assert_eq!(out, want_a);
                }
            });
            s.spawn(|| {
                let mut out = vec![0.0; 64];
                for _ in 0..200 {
                    pool.run_stage(64, &mut out, task_b).unwrap();
                    assert_eq!(out, want_b);
                }
            });
        });
    }

    #[test]
    fn capped_stage_matches_uncapped_bitwise() {
        let pool = StagePool::new(8);
        let task = |i: usize| ((i * 31 + 7) as f64).sqrt() * 0.5;
        let mut want = vec![0.0; 96];
        StagePool::new(1).run_stage(96, &mut want, task).unwrap();
        for cap in [1usize, 2, 3, 8, usize::MAX] {
            let mut out = vec![0.0; 96];
            pool.run_stage_capped(96, cap, &mut out, task).unwrap();
            assert_eq!(out, want, "cap = {cap}");
        }
    }

    #[test]
    fn scratch_lease_recycles_zeroed() {
        {
            let mut lease = lease_scratch(4);
            lease.per_proc[2] = 7.5;
            lease.comm_before[0] = 1.0;
        }
        // Whatever we get back (possibly the same buffers) is zeroed and
        // sized to the new request.
        let lease = lease_scratch(6);
        assert_eq!(lease.per_proc, vec![0.0; 6]);
        assert_eq!(lease.comm_before, vec![0.0; 6]);
        let small = lease_scratch(2);
        assert_eq!(small.per_proc.len(), 2);
    }

    #[test]
    fn owned_lease_without_shared_pool() {
        // Tests must not initialize the process-wide pool (other tests
        // assert per-run behavior), so only the fallback path is
        // exercised here; serve's integration tests cover the shared
        // path end to end.
        let lease = PoolLease::for_procs(4, ExecPolicy::threads(2));
        if shared_pool().is_none() {
            assert!(matches!(lease, PoolLease::Owned(_)));
        }
        let mut out = vec![0.0; 8];
        lease.run_stage(8, &mut out, |i| i as f64).unwrap();
        assert_eq!(out, (0..8).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(PoolLease::serial().threads(), 1);
    }
}
