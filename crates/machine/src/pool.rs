//! The persistent host execution layer.
//!
//! Every multiprocessor engine advances in bulk-synchronous stages; the
//! per-processor work items of one stage are independent by
//! construction.  Spawning OS threads per stage (the old
//! `std::thread::scope` path) pays thread start-up Θ(T·p) times per
//! run.  [`StagePool`] instead spins up its workers **once**, parks them
//! on a condvar between stages, and hands each stage out as a single
//! type-erased job whose tasks the workers (and the calling thread)
//! claim with an atomic index.
//!
//! Model time is unaffected by any of this: each task returns its own
//! model cost into a dedicated slot (`out[i]`), and the caller folds the
//! slots in processor order — so serial, scoped-thread, and pooled
//! execution produce bit-identical stage costs (see DESIGN.md §12).
//!
//! A panic inside a task is caught, the remaining tasks still drain, and
//! [`StagePool::run_stage`] returns the first panic's message as
//! [`StagePanic`] — no hang, no abort.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How many OS threads the host may use for stage execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Upper bound on host threads; `0` means "ask the OS"
    /// (`std::thread::available_parallelism`).
    pub threads: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::auto()
    }
}

impl ExecPolicy {
    /// Use the machine's available parallelism.
    pub fn auto() -> Self {
        ExecPolicy { threads: 0 }
    }

    /// Strictly serial host execution (no worker threads at all).
    pub fn serial() -> Self {
        ExecPolicy { threads: 1 }
    }

    /// At most `n` host threads (`0` = auto).
    pub fn threads(n: usize) -> Self {
        ExecPolicy { threads: n }
    }

    /// The concrete thread budget: `threads`, or the process default
    /// (see [`set_default_threads`]) / OS parallelism for `0`, never
    /// less than 1.
    pub fn resolved(&self) -> usize {
        if self.threads == 0 {
            let d = DEFAULT_THREADS.load(Ordering::Relaxed);
            if d > 0 {
                d
            } else {
                available_threads()
            }
        } else {
            self.threads
        }
    }
}

/// Process-wide default consulted by [`ExecPolicy::auto`]; `0` means
/// "ask the OS".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override the thread budget that [`ExecPolicy::auto`] resolves to
/// (`0` restores OS auto-detection).  This is how a CLI `--threads N`
/// flag reaches every engine without plumbing a policy through each
/// call site.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The machine's available parallelism (1 if the OS cannot tell).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A task panicked inside a [`StagePool`] stage; carries the panic
/// payload's message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagePanic(pub String);

impl std::fmt::Display for StagePanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage worker panicked: {}", self.0)
    }
}

impl std::error::Error for StagePanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A `&mut [T]` that many threads may write through **at provably
/// disjoint indices** (each index touched by at most one thread per
/// stage).  The engines' ownership maps (`proc_of`, block chunking)
/// guarantee disjointness; the wrapper only erases the borrow so the
/// closure handed to [`StagePool::run_stage`] can be `Sync`.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: hands out &mut T only through the unsafe accessors below,
// whose contract is per-index exclusivity.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// # Safety
    /// No other thread may access index `i` while the returned borrow
    /// lives.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "DisjointSlice index {i} out of {}", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }

    /// # Safety
    /// Concurrent callers must use non-overlapping `start..start + len`
    /// ranges.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start + len <= self.len,
            "DisjointSlice range {start}+{len} out of {}",
            self.len
        );
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

/// Type-erased pointer to the current stage's runner closure.  The
/// pointed-to closure lives on the stack of [`StagePool::run_stage`],
/// which never returns while a worker still holds the pointer (the
/// `active` count below), so the erased lifetime is sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync));

// Safety: the pointee is Sync; the pointer only crosses threads inside
// the pool's epoch protocol.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per published stage; workers compare against the
    /// last epoch they served.
    epoch: u64,
    /// The current stage's runner, if one is published.
    job: Option<JobPtr>,
    /// Workers currently executing the published runner.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers: new stage published, or shutdown.
    work: Condvar,
    /// Signals the caller: a worker finished its participation.
    done: Condvar,
}

/// A pool of long-lived stage workers (plus the calling thread, which
/// always participates).  `StagePool::new(t)` spawns `t - 1` workers;
/// with `t <= 1` the pool degenerates to strictly serial execution and
/// spawns nothing.
pub struct StagePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl StagePool {
    /// Build a pool with a total thread budget of `threads` (calling
    /// thread included).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..threads.saturating_sub(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bsmp-stage-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn stage worker")
            })
            .collect();
        StagePool { shared, workers }
    }

    /// Build a pool sized for `p` independent work items under `policy`
    /// (never more threads than items).
    pub fn for_procs(p: usize, policy: ExecPolicy) -> Self {
        StagePool::new(policy.resolved().min(p.max(1)))
    }

    /// Total thread budget (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Execute tasks `0..n` of one stage, writing `task(i)`'s model cost
    /// to `out[i]`.  The task closure is shared across threads; per-task
    /// mutable state must go through [`DisjointSlice`] (or equivalent).
    ///
    /// Deterministic by construction: slot `i` is written only by the
    /// thread that claimed index `i`, regardless of claim order.
    pub fn run_stage(
        &self,
        n: usize,
        out: &mut [f64],
        task: impl Fn(usize) -> f64 + Sync,
    ) -> Result<(), StagePanic> {
        assert!(out.len() >= n, "out buffer shorter than task count");
        let first_panic: Mutex<Option<String>> = Mutex::new(None);
        if self.workers.is_empty() || n <= 1 {
            // Serial path — same per-index claiming semantics, one thread.
            for (i, slot) in out.iter_mut().enumerate().take(n) {
                match catch_unwind(AssertUnwindSafe(|| task(i))) {
                    Ok(cost) => *slot = cost,
                    Err(e) => {
                        let mut fp = first_panic.lock().unwrap();
                        if fp.is_none() {
                            *fp = Some(panic_message(e));
                        }
                    }
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let out_slots = DisjointSlice::new(&mut out[..n]);
            let runner = || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| task(i))) {
                        // Safety: index i was claimed by exactly this
                        // thread via fetch_add.
                        Ok(cost) => unsafe { *out_slots.get_mut(i) = cost },
                        Err(e) => {
                            let mut fp = first_panic.lock().unwrap();
                            if fp.is_none() {
                                *fp = Some(panic_message(e));
                            }
                        }
                    }
                }
            };
            let runner_ref: &(dyn Fn() + Sync) = &runner;
            // Safety: the pointer is only dereferenced by workers while
            // registered in `active`; we clear the job and wait for
            // `active == 0` under the same mutex before returning, so
            // the pointee outlives every dereference.
            let job = JobPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    runner_ref as *const _,
                )
            });
            {
                let mut st = self.shared.state.lock().unwrap();
                st.job = Some(job);
                st.epoch += 1;
                self.shared.work.notify_all();
            }
            // The calling thread participates too.
            runner();
            let mut st = self.shared.state.lock().unwrap();
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            // Unpublish before returning: a worker that missed this
            // epoch will find `job == None` and go back to sleep instead
            // of dereferencing a dead stack frame.
            st.job = None;
        }
        match first_panic.into_inner().unwrap() {
            Some(msg) => Err(StagePanic(msg)),
            None => Ok(()),
        }
    }
}

impl Drop for StagePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut served = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != served {
                    served = st.epoch;
                    if let Some(job) = st.job {
                        st.active += 1;
                        break job;
                    }
                    // Stage already retired; keep waiting.
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // The runner catches task panics itself; catch here too so a
        // panic in the claiming loop can never strand `active`.
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Reusable per-stage buffers: the four `Θ(p)` vectors every stage-driven
/// engine needs (costs, communication deltas, and the pre-stage
/// time/comm snapshots), allocated once per run instead of once per
/// stage.
#[derive(Clone, Debug)]
pub struct StageScratch {
    /// Per-processor stage cost (the `per_proc` fed to the clock).
    pub per_proc: Vec<f64>,
    /// Per-processor communication component of the stage cost.
    pub per_comm: Vec<f64>,
    /// Meter `comm` snapshot at stage start.
    pub comm_before: Vec<f64>,
    /// Meter time snapshot at stage start.
    pub time_before: Vec<f64>,
}

impl StageScratch {
    pub fn new(p: usize) -> Self {
        StageScratch {
            per_proc: vec![0.0; p],
            per_comm: vec![0.0; p],
            comm_before: vec![0.0; p],
            time_before: vec![0.0; p],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_resolution() {
        assert!(ExecPolicy::auto().resolved() >= 1);
        assert_eq!(ExecPolicy::serial().resolved(), 1);
        assert_eq!(ExecPolicy::threads(7).resolved(), 7);
        assert_eq!(ExecPolicy::default(), ExecPolicy::auto());
    }

    #[test]
    fn default_threads_override() {
        set_default_threads(3);
        assert_eq!(ExecPolicy::auto().resolved(), 3);
        // Explicit settings are unaffected by the process default.
        assert_eq!(ExecPolicy::serial().resolved(), 1);
        assert_eq!(ExecPolicy::threads(5).resolved(), 5);
        set_default_threads(0);
        assert!(ExecPolicy::auto().resolved() >= 1);
    }

    #[test]
    fn serial_pool_runs_everything_in_order() {
        let pool = StagePool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0.0; 8];
        pool.run_stage(8, &mut out, |i| i as f64 * 1.5).unwrap();
        assert_eq!(out, (0..8).map(|i| i as f64 * 1.5).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_matches_serial_bitwise() {
        let pool = StagePool::new(4);
        let task = |i: usize| ((i * 37 + 11) as f64).sqrt() * 0.33;
        let mut serial = vec![0.0; 100];
        StagePool::new(1).run_stage(100, &mut serial, task).unwrap();
        for _ in 0..10 {
            let mut pooled = vec![0.0; 100];
            pool.run_stage(100, &mut pooled, task).unwrap();
            assert_eq!(serial, pooled);
        }
    }

    #[test]
    fn more_tasks_than_workers_and_fewer() {
        let pool = StagePool::new(2);
        for n in [0usize, 1, 2, 3, 64] {
            let mut out = vec![-1.0; n];
            pool.run_stage(n, &mut out, |i| i as f64).unwrap();
            assert_eq!(out, (0..n).map(|i| i as f64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_survives_many_stages() {
        let pool = StagePool::new(3);
        let mut acc = 0.0;
        let mut out = vec![0.0; 5];
        for _ in 0..500 {
            pool.run_stage(5, &mut out, |i| i as f64).unwrap();
            acc += out.iter().sum::<f64>();
        }
        assert_eq!(acc, 500.0 * 10.0);
    }

    #[test]
    fn panic_in_task_reported_not_hung() {
        let pool = StagePool::new(4);
        let mut out = vec![0.0; 16];
        let err = pool
            .run_stage(16, &mut out, |i| {
                if i == 7 {
                    panic!("task seven exploded");
                }
                i as f64
            })
            .unwrap_err();
        assert!(err.0.contains("task seven exploded"), "{err}");
        // Pool still usable afterwards.
        pool.run_stage(16, &mut out, |i| i as f64).unwrap();
        assert_eq!(out[15], 15.0);
    }

    #[test]
    fn panic_in_serial_path_reported() {
        let pool = StagePool::new(1);
        let mut out = vec![0.0; 4];
        let err = pool
            .run_stage(4, &mut out, |i| {
                if i == 2 {
                    panic!("serial boom");
                }
                0.0
            })
            .unwrap_err();
        assert!(err.0.contains("serial boom"));
    }

    #[test]
    fn disjoint_slice_partitions() {
        let mut data = vec![0u64; 64];
        let ds = DisjointSlice::new(&mut data);
        assert_eq!(ds.len(), 64);
        assert!(!ds.is_empty());
        let pool = StagePool::new(4);
        let mut out = vec![0.0; 4];
        pool.run_stage(4, &mut out, |i| {
            // Safety: per-task chunks are disjoint by construction.
            let chunk = unsafe { ds.slice_mut(i * 16, 16) };
            for (k, w) in chunk.iter_mut().enumerate() {
                *w = (i * 16 + k) as u64;
            }
            0.0
        })
        .unwrap();
        assert_eq!(data, (0..64u64).collect::<Vec<_>>());
    }

    #[test]
    fn for_procs_caps_at_item_count() {
        let pool = StagePool::for_procs(2, ExecPolicy::threads(16));
        assert_eq!(pool.threads(), 2);
        let pool1 = StagePool::for_procs(0, ExecPolicy::threads(16));
        assert_eq!(pool1.threads(), 1);
    }

    #[test]
    fn scratch_sizes() {
        let s = StageScratch::new(6);
        assert_eq!(s.per_proc.len(), 6);
        assert_eq!(s.per_comm.len(), 6);
        assert_eq!(s.comm_before.len(), 6);
        assert_eq!(s.time_before.len(), 6);
    }
}
