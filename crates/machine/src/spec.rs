//! `M_d(n, p, m)` — Definition 2.

use std::error::Error;
use std::fmt;

use bsmp_hram::{AccessFn, CostModel};

/// Rejected machine parameters (Definition 2 preconditions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Engines support layout dimensions 1 and 2 only.
    UnsupportedDimension { d: u8 },
    /// `n ≥ 1` and `m ≥ 1` are required.
    ZeroExtent { n: u64, m: u64 },
    /// `1 ≤ p ≤ n` is required.
    ProcessorsOutOfRange { n: u64, p: u64 },
    /// `d = 2` requires `n` to be a perfect square.
    VolumeNotSquare { n: u64 },
    /// `d = 2` requires `p` to be a perfect square.
    ProcessorsNotSquare { p: u64 },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SpecError::UnsupportedDimension { d } => {
                write!(f, "engines support d ∈ {{1, 2}}, got d = {d}")
            }
            SpecError::ZeroExtent { n, m } => {
                write!(f, "need n ≥ 1 and m ≥ 1, got n = {n}, m = {m}")
            }
            SpecError::ProcessorsOutOfRange { n, p } => {
                write!(f, "need 1 ≤ p ≤ n, got p = {p} with n = {n}")
            }
            SpecError::VolumeNotSquare { n } => {
                write!(f, "d = 2 requires n to be a perfect square, got n = {n}")
            }
            SpecError::ProcessorsNotSquare { p } => {
                write!(f, "d = 2 requires p to be a perfect square, got p = {p}")
            }
        }
    }
}

impl Error for SpecError {}

/// Parameters of a machine `M_d(n, p, m)`: a `d`-dimensional
/// near-neighbor interconnection of `p` `(x/m)^{1/d}`-H-RAMs, each with
/// `n·m/p` memory cells, near neighbors at geometric distance
/// `(n/p)^{1/d}`.
///
/// `n` is the machine's `d`-dimensional volume; `n·m` its total memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineSpec {
    /// Layout dimension (1 = linear array, 2 = square mesh).
    pub d: u8,
    /// Machine volume (number of guest-scale node slots).
    pub n: u64,
    /// Number of processors (`1 ≤ p ≤ n`).
    pub p: u64,
    /// Memory cells per unit volume.
    pub m: u64,
    /// Cost regime (bounded-speed vs. the instantaneous baseline).
    pub model: CostModel,
}

impl MachineSpec {
    /// A bounded-speed machine, with the Definition 2 preconditions
    /// checked up front.
    pub fn try_new(d: u8, n: u64, p: u64, m: u64) -> Result<Self, SpecError> {
        if !(1..=2).contains(&d) {
            return Err(SpecError::UnsupportedDimension { d });
        }
        if n < 1 || m < 1 {
            return Err(SpecError::ZeroExtent { n, m });
        }
        if p < 1 || p > n {
            return Err(SpecError::ProcessorsOutOfRange { n, p });
        }
        if d == 2 {
            let sn = (n as f64).sqrt() as u64;
            if sn * sn != n {
                return Err(SpecError::VolumeNotSquare { n });
            }
            let sp = (p as f64).sqrt() as u64;
            if sp * sp != p {
                return Err(SpecError::ProcessorsNotSquare { p });
            }
        }
        Ok(MachineSpec {
            d,
            n,
            p,
            m,
            model: CostModel::BoundedSpeed,
        })
    }

    /// A bounded-speed machine; panics on invalid parameters (see
    /// [`try_new`](Self::try_new) for the checked variant).
    pub fn new(d: u8, n: u64, p: u64, m: u64) -> Self {
        Self::try_new(d, n, p, m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The same machine under instantaneous propagation (Brent
    /// baseline), with checked parameters.
    pub fn try_instantaneous(d: u8, n: u64, p: u64, m: u64) -> Result<Self, SpecError> {
        Ok(MachineSpec {
            model: CostModel::Instantaneous,
            ..Self::try_new(d, n, p, m)?
        })
    }

    /// The same machine under instantaneous propagation (Brent baseline).
    pub fn instantaneous(d: u8, n: u64, p: u64, m: u64) -> Self {
        Self::try_instantaneous(d, n, p, m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The guest configuration `M_d(n, n, m)` this host simulates.
    pub fn guest_of(&self) -> MachineSpec {
        MachineSpec { p: self.n, ..*self }
    }

    /// Memory cells per processor: `n·m/p`.
    pub fn node_mem(&self) -> u64 {
        self.n * self.m / self.p
    }

    /// Guest-scale nodes hosted per processor: `n/p`.
    pub fn nodes_per_proc(&self) -> u64 {
        self.n / self.p
    }

    /// Near-neighbor distance `(n/p)^{1/d}` (0 under the instantaneous
    /// model — propagation is free there).
    pub fn neighbor_distance(&self) -> f64 {
        match self.model {
            CostModel::Instantaneous => 0.0,
            CostModel::BoundedSpeed => {
                let v = (self.n / self.p) as f64;
                match self.d {
                    1 => v,
                    _ => v.sqrt(),
                }
            }
        }
    }

    /// The access function of each node's private H-RAM.
    pub fn access_fn(&self) -> AccessFn {
        match self.model {
            CostModel::BoundedSpeed => AccessFn::new(self.d, self.m),
            CostModel::Instantaneous => AccessFn::instantaneous(self.d, self.m),
        }
    }

    /// Communication charge for sending `words` words over `hops`
    /// near-neighbor links: `words × hops × neighbor_distance` (the
    /// paper's items-×-distance accounting, e.g. the `O(s·n/p)` exchanges
    /// of Section 4.2).
    pub fn comm_cost(&self, words: u64, hops: u64) -> f64 {
        words as f64 * hops as f64 * self.neighbor_distance()
    }

    /// Side of the processor grid for `d = 2` (`√p`).
    pub fn proc_side(&self) -> u64 {
        debug_assert_eq!(self.d, 2);
        (self.p as f64).sqrt().round() as u64
    }

    /// Side of the guest mesh for `d = 2` (`√n`).
    pub fn mesh_side(&self) -> u64 {
        debug_assert_eq!(self.d, 2);
        (self.n as f64).sqrt().round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_2_quantities() {
        let s = MachineSpec::new(1, 1024, 16, 8);
        assert_eq!(s.node_mem(), 512);
        assert_eq!(s.nodes_per_proc(), 64);
        assert_eq!(s.neighbor_distance(), 64.0);
        // Worst private access time equals neighbor distance (Section 2).
        assert_eq!(s.access_fn().f(s.node_mem() as usize), 64.0);
    }

    #[test]
    fn mesh_distances_use_square_roots() {
        let s = MachineSpec::new(2, 1024, 16, 4);
        assert_eq!(s.neighbor_distance(), 8.0);
        assert_eq!(s.mesh_side(), 32);
        assert_eq!(s.proc_side(), 4);
    }

    #[test]
    fn comm_cost_is_words_times_distance() {
        let s = MachineSpec::new(1, 256, 4, 2);
        assert_eq!(s.comm_cost(10, 1), 10.0 * 64.0);
        assert_eq!(s.comm_cost(3, 2), 3.0 * 2.0 * 64.0);
    }

    #[test]
    fn instantaneous_model_flattens() {
        let s = MachineSpec::instantaneous(1, 256, 4, 2);
        assert_eq!(s.neighbor_distance(), 0.0);
        assert_eq!(s.comm_cost(10, 3), 0.0);
        assert_eq!(s.access_fn().f(100), 0.0);
    }

    #[test]
    fn guest_of_has_full_parallelism() {
        let s = MachineSpec::new(1, 64, 4, 2);
        let g = s.guest_of();
        assert_eq!(g.p, 64);
        assert_eq!(g.node_mem(), 2);
        assert_eq!(g.neighbor_distance(), 1.0);
    }

    #[test]
    fn try_new_reports_each_precondition() {
        assert_eq!(
            MachineSpec::try_new(3, 8, 2, 1),
            Err(SpecError::UnsupportedDimension { d: 3 })
        );
        assert_eq!(
            MachineSpec::try_new(1, 0, 1, 1),
            Err(SpecError::ZeroExtent { n: 0, m: 1 })
        );
        assert_eq!(
            MachineSpec::try_new(1, 4, 8, 1),
            Err(SpecError::ProcessorsOutOfRange { n: 4, p: 8 })
        );
        assert_eq!(
            MachineSpec::try_new(2, 1000, 4, 1),
            Err(SpecError::VolumeNotSquare { n: 1000 })
        );
        assert_eq!(
            MachineSpec::try_new(2, 1024, 8, 1),
            Err(SpecError::ProcessorsNotSquare { p: 8 })
        );
        assert_eq!(
            MachineSpec::try_new(1, 64, 4, 2),
            Ok(MachineSpec::new(1, 64, 4, 2))
        );
        assert_eq!(
            MachineSpec::try_instantaneous(1, 64, 4, 2),
            Ok(MachineSpec::instantaneous(1, 64, 4, 2))
        );
        assert!(MachineSpec::try_instantaneous(1, 4, 8, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn mesh_requires_square_n() {
        MachineSpec::new(2, 1000, 4, 1);
    }

    #[test]
    #[should_panic(expected = "1 ≤ p ≤ n")]
    fn p_cannot_exceed_n() {
        MachineSpec::new(1, 4, 8, 1);
    }
}
