//! Direct (reference) execution of guest machines `M_d(n, n, m)`.
//!
//! This is the ground truth the simulation engines are validated against,
//! and the source of the guest model time `T_n` in every slowdown
//! measurement.  One guest step costs, per node: one private-cell read,
//! the receipt of each neighbor's value over a unit-distance link, one
//! `δ` application, and one private-cell write; nodes run in lock-step,
//! so the step's duration is the maximum over nodes.

use crate::program::{LinearProgram, MeshProgram};
use crate::spec::MachineSpec;
use bsmp_hram::Word;

/// Result of a guest run.
#[derive(Clone, Debug)]
pub struct GuestRun {
    /// Final private memories, node-major (`node·m + cell`).
    pub mem: Vec<Word>,
    /// The values produced at the last step (one per node).
    pub values: Vec<Word>,
    /// Guest model time `T_n`.
    pub time: f64,
    /// Number of steps executed.
    pub steps: i64,
}

/// Execute `steps` steps of `prog` on the linear array `M_1(n, n, m)`
/// whose initial memory image is `init` (length `n·m`, node-major).
///
/// `spec` supplies the cost regime (its `p` is ignored; the guest is the
/// fully parallel configuration).
pub fn run_linear(
    spec: &MachineSpec,
    prog: &impl LinearProgram,
    init: &[Word],
    steps: i64,
) -> GuestRun {
    let n = spec.n as usize;
    let m = prog.m();
    assert_eq!(m as u64, spec.m, "program density must match machine");
    assert_eq!(init.len(), n * m, "initial image must be n·m words");
    let guest = spec.guest_of();
    let access = guest.access_fn();
    let hop = guest.neighbor_distance();

    let mut mem = init.to_vec();
    let mut values: Vec<Word> = (0..n).map(|v| mem[v * m + prog.cell(v, 0)]).collect();
    let mut next = vec![0 as Word; n];
    let mut time = 0.0;

    for t in 1..=steps {
        let mut step_max = 0.0f64;
        for v in 0..n {
            let c = prog.cell(v, t);
            let own = mem[v * m + c];
            let left = if v > 0 {
                values[v - 1]
            } else {
                prog.boundary()
            };
            let right = if v + 1 < n {
                values[v + 1]
            } else {
                prog.boundary()
            };
            let out = prog.delta(v, t, own, values[v], left, right);
            next[v] = out;
            mem[v * m + c] = out;
            // read own + write own + 2 receives + 1 δ.
            let cost = 2.0 * access.charge(c) + 2.0 * hop + 1.0;
            if cost > step_max {
                step_max = cost;
            }
        }
        std::mem::swap(&mut values, &mut next);
        time += step_max;
    }
    GuestRun {
        mem,
        values,
        time,
        steps,
    }
}

/// Execute `steps` steps of `prog` on the mesh `M_2(n, n, m)` (side
/// `√n`), initial image `init` (length `n·m`, node-major with node index
/// `j·side + i`).
pub fn run_mesh(
    spec: &MachineSpec,
    prog: &impl MeshProgram,
    init: &[Word],
    steps: i64,
) -> GuestRun {
    let side = spec.mesh_side() as usize;
    let n = side * side;
    let m = prog.m();
    assert_eq!(m as u64, spec.m, "program density must match machine");
    assert_eq!(init.len(), n * m, "initial image must be n·m words");
    let guest = spec.guest_of();
    let access = guest.access_fn();
    let hop = guest.neighbor_distance();

    let idx = |i: usize, j: usize| j * side + i;
    let mut mem = init.to_vec();
    let mut values: Vec<Word> = (0..n)
        .map(|v| mem[v * m + prog.cell(v % side, v / side, 0)])
        .collect();
    let mut next = vec![0 as Word; n];
    let mut time = 0.0;

    for t in 1..=steps {
        let mut step_max = 0.0f64;
        for j in 0..side {
            for i in 0..side {
                let c = prog.cell(i, j, t);
                let own = mem[idx(i, j) * m + c];
                let b = prog.boundary();
                let west = if i > 0 { values[idx(i - 1, j)] } else { b };
                let east = if i + 1 < side {
                    values[idx(i + 1, j)]
                } else {
                    b
                };
                let south = if j > 0 { values[idx(i, j - 1)] } else { b };
                let north = if j + 1 < side {
                    values[idx(i, j + 1)]
                } else {
                    b
                };
                let out = prog.delta(i, j, t, own, values[idx(i, j)], west, east, south, north);
                next[idx(i, j)] = out;
                mem[idx(i, j) * m + c] = out;
                let cost = 2.0 * access.charge(c) + 4.0 * hop + 1.0;
                if cost > step_max {
                    step_max = cost;
                }
            }
        }
        std::mem::swap(&mut values, &mut next);
        time += step_max;
    }
    GuestRun {
        mem,
        values,
        time,
        steps,
    }
}

/// Execute `steps` steps of `prog` on the 3-D mesh `M_3(n, n, m)`
/// (side `n^{1/3}`), initial image `init` (node-major, node index
/// `(z·side + y)·side + x`) — the Section-6 extension.
pub fn run_volume(
    side: usize,
    m_density: u64,
    prog: &impl crate::program::VolumeProgram,
    init: &[Word],
    steps: i64,
) -> GuestRun {
    let n = side * side * side;
    let m = prog.m();
    assert_eq!(m as u64, m_density);
    assert_eq!(init.len(), n * m);
    let access = bsmp_hram::AccessFn::new(3, m_density);
    let hop = 1.0;

    let idx = |x: usize, y: usize, z: usize| (z * side + y) * side + x;
    let mut mem = init.to_vec();
    let mut values: Vec<Word> = (0..n)
        .map(|v| {
            let (x, y, z) = (v % side, (v / side) % side, v / (side * side));
            mem[v * m + prog.cell(x, y, z, 0)]
        })
        .collect();
    let mut next = vec![0 as Word; n];
    let mut time = 0.0;

    for t in 1..=steps {
        let mut step_max = 0.0f64;
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    let c = prog.cell(x, y, z, t);
                    let own = mem[idx(x, y, z) * m + c];
                    let b = prog.boundary();
                    let nb = [
                        if x > 0 { values[idx(x - 1, y, z)] } else { b },
                        if x + 1 < side {
                            values[idx(x + 1, y, z)]
                        } else {
                            b
                        },
                        if y > 0 { values[idx(x, y - 1, z)] } else { b },
                        if y + 1 < side {
                            values[idx(x, y + 1, z)]
                        } else {
                            b
                        },
                        if z > 0 { values[idx(x, y, z - 1)] } else { b },
                        if z + 1 < side {
                            values[idx(x, y, z + 1)]
                        } else {
                            b
                        },
                    ];
                    let out = prog.delta(x, y, z, t, own, values[idx(x, y, z)], nb);
                    next[idx(x, y, z)] = out;
                    mem[idx(x, y, z) * m + c] = out;
                    let cost = 2.0 * access.charge(c) + 6.0 * hop + 1.0;
                    if cost > step_max {
                        step_max = cost;
                    }
                }
            }
        }
        std::mem::swap(&mut values, &mut next);
        time += step_max;
    }
    GuestRun {
        mem,
        values,
        time,
        steps,
    }
}

/// Guest model time of a `steps`-step 3-D mesh run.
pub fn volume_guest_time(
    side: usize,
    m_density: u64,
    prog: &impl crate::program::VolumeProgram,
    steps: i64,
) -> f64 {
    let access = bsmp_hram::AccessFn::new(3, m_density);
    let mut time = 0.0;
    for t in 1..=steps {
        let mut mx = 0.0f64;
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    let c = prog.cell(x, y, z, t);
                    let cost = 2.0 * access.charge(c) + 6.0 + 1.0;
                    if cost > mx {
                        mx = cost;
                    }
                }
            }
        }
        time += mx;
    }
    time
}

/// The guest model time `T_n` of a `steps`-step linear run, without
/// executing it (costs depend only on the cell-addressing trace).
pub fn linear_guest_time(spec: &MachineSpec, prog: &impl LinearProgram, steps: i64) -> f64 {
    let n = spec.n as usize;
    let guest = spec.guest_of();
    let access = guest.access_fn();
    let hop = guest.neighbor_distance();
    let mut time = 0.0;
    for t in 1..=steps {
        let mut mx = 0.0f64;
        for v in 0..n {
            let c = prog.cell(v, t);
            let cost = 2.0 * access.charge(c) + 2.0 * hop + 1.0;
            if cost > mx {
                mx = cost;
            }
        }
        time += mx;
    }
    time
}

/// The guest model time of a `steps`-step mesh run.
pub fn mesh_guest_time(spec: &MachineSpec, prog: &impl MeshProgram, steps: i64) -> f64 {
    let side = spec.mesh_side() as usize;
    let guest = spec.guest_of();
    let access = guest.access_fn();
    let hop = guest.neighbor_distance();
    let mut time = 0.0;
    for t in 1..=steps {
        let mut mx = 0.0f64;
        for j in 0..side {
            for i in 0..side {
                let c = prog.cell(i, j, t);
                let cost = 2.0 * access.charge(c) + 4.0 * hop + 1.0;
                if cost > mx {
                    mx = cost;
                }
            }
        }
        time += mx;
    }
    time
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rule-90-like XOR automaton (own value ignored for m = 1 parity).
    struct Rule90;
    impl LinearProgram for Rule90 {
        fn m(&self) -> usize {
            1
        }
        fn delta(&self, _v: usize, _t: i64, _own: Word, _p: Word, l: Word, r: Word) -> Word {
            l ^ r
        }
    }

    #[test]
    fn single_impulse_spreads_like_pascal_mod_2() {
        let n = 16u64;
        let spec = MachineSpec::new(1, n, n, 1);
        let mut init = vec![0; n as usize];
        init[8] = 1;
        let run = run_linear(&spec, &Rule90, &init, 4);
        // After 4 steps the impulse sits at distance 4 (rows of Pascal's
        // triangle mod 2: row 4 = 1 0 0 0 1).
        let expect: Vec<Word> = (0..16).map(|x| u64::from(x == 4 || x == 12)).collect();
        assert_eq!(run.values, expect);
    }

    #[test]
    fn guest_time_is_linear_in_steps() {
        let spec = MachineSpec::new(1, 8, 8, 1);
        let r1 = run_linear(&spec, &Rule90, &[1; 8], 10);
        let r2 = run_linear(&spec, &Rule90, &[1; 8], 20);
        assert!((r2.time - 2.0 * r1.time).abs() < 1e-9);
        assert!(r1.time >= 10.0);
    }

    /// m = 2 program: alternates between its two cells.
    struct TwoCell;
    impl LinearProgram for TwoCell {
        fn m(&self) -> usize {
            2
        }
        fn cell(&self, _v: usize, t: i64) -> usize {
            (t % 2) as usize
        }
        fn delta(&self, _v: usize, _t: i64, own: Word, _p: Word, l: Word, r: Word) -> Word {
            own.wrapping_add(l).wrapping_add(r)
        }
    }

    #[test]
    fn multi_cell_memory_is_updated_in_place() {
        let spec = MachineSpec::new(1, 4, 4, 2);
        let init: Vec<Word> = (0..8).collect();
        let run = run_linear(&spec, &TwoCell, &init, 3);
        // Cells not touched at the final step keep their step-2 values;
        // just check the run is deterministic and memory has both cells.
        let run2 = run_linear(&spec, &TwoCell, &init, 3);
        assert_eq!(run.mem, run2.mem);
        assert_eq!(run.mem.len(), 8);
    }

    struct Life;
    impl MeshProgram for Life {
        fn m(&self) -> usize {
            1
        }
        fn delta(
            &self,
            _i: usize,
            _j: usize,
            _t: i64,
            own: Word,
            _p: Word,
            w: Word,
            e: Word,
            s: Word,
            n: Word,
        ) -> Word {
            // von Neumann majority-ish toy rule.
            u64::from(w + e + s + n + own >= 3)
        }
    }

    #[test]
    fn mesh_runs_and_meters() {
        let spec = MachineSpec::new(2, 16, 16, 1);
        let init = vec![1; 16];
        let run = run_mesh(&spec, &Life, &init, 3);
        assert_eq!(run.values, vec![1; 16], "all-ones is a fixed point");
        assert!(run.time >= 3.0);
    }

    #[test]
    fn instantaneous_guest_is_cheaper() {
        let b = MachineSpec::new(1, 8, 8, 1);
        let i = MachineSpec::instantaneous(1, 8, 8, 1);
        let rb = run_linear(&b, &Rule90, &[1; 8], 5);
        let ri = run_linear(&i, &Rule90, &[1; 8], 5);
        assert!(ri.time < rb.time);
        assert_eq!(ri.values, rb.values, "cost model cannot change values");
    }
}
