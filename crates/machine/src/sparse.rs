//! Sparse node state and activity frontiers for the event core.
//!
//! For an `m = 1`, time-invariant guest program, a node whose
//! neighborhood produced no new value at step `t - 1` reproduces its own
//! step-`t - 1` value at step `t` (its operands are unchanged and `δ`
//! does not read the clock).  Quiescent regions therefore have a trivial
//! analytic closed form — the last value written, which for a
//! never-touched node is its *initial* value.  [`SparseState`] exploits
//! this: it overlays copy-on-write pages on the borrowed initial image
//! and materialises a page only when a node inside it first changes, so
//! the resident footprint tracks the touched region, not `n`.
//!
//! [`Frontier`] is the activity side: a calendar queue of candidate
//! nodes keyed by the stage at which they must be re-evaluated.  A node
//! is scheduled for stage `t + 1` exactly when one of its neighborhood
//! members changed at stage `t`; everything else is quiescent and is
//! neither visited nor stored.
//!
//! Neither structure touches the cost model: the engines meter stages
//! from input-independent charge streams (DESIGN.md §16), so how values
//! are stored cannot change any meter.

use crate::event::EventQueue;
use bsmp_hram::Word;

/// Words per copy-on-write page.
const PAGE_WORDS: usize = 1024;

/// A lazily materialised value array overlaying a borrowed backing
/// image: reads fall through to the backing until the page holding the
/// address is first written.
#[derive(Debug)]
pub struct SparseState<'a> {
    backing: &'a [Word],
    pages: Vec<Option<Box<[Word]>>>,
    resident_pages: usize,
}

impl<'a> SparseState<'a> {
    /// Overlay on `backing` (the initial value image); no pages are
    /// materialised until the first [`SparseState::set`].
    pub fn new(backing: &'a [Word]) -> Self {
        let n_pages = backing.len().div_ceil(PAGE_WORDS);
        SparseState {
            backing,
            pages: (0..n_pages).map(|_| None).collect(),
            resident_pages: 0,
        }
    }

    /// Number of overlaid nodes.
    pub fn len(&self) -> usize {
        self.backing.len()
    }

    pub fn is_empty(&self) -> bool {
        self.backing.is_empty()
    }

    /// Current value of node `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Word {
        match &self.pages[i / PAGE_WORDS] {
            Some(page) => page[i % PAGE_WORDS],
            None => self.backing[i],
        }
    }

    /// Write node `i`, materialising its page from the backing on first
    /// touch.
    #[inline]
    pub fn set(&mut self, i: usize, w: Word) {
        let pi = i / PAGE_WORDS;
        let page = self.pages[pi].get_or_insert_with(|| {
            self.resident_pages += 1;
            let lo = pi * PAGE_WORDS;
            let hi = (lo + PAGE_WORDS).min(self.backing.len());
            let mut page = vec![0 as Word; PAGE_WORDS].into_boxed_slice();
            page[..hi - lo].copy_from_slice(&self.backing[lo..hi]);
            page
        });
        page[i % PAGE_WORDS] = w;
    }

    /// Pages currently materialised.
    pub fn resident_pages(&self) -> usize {
        self.resident_pages
    }

    /// Resident footprint in bytes: materialised pages plus the page
    /// table (the borrowed backing is the problem statement, not state).
    pub fn bytes_resident(&self) -> usize {
        self.resident_pages * PAGE_WORDS * std::mem::size_of::<Word>()
            + self.pages.capacity() * std::mem::size_of::<Option<Box<[Word]>>>()
    }

    /// Full dense snapshot (result extraction).
    pub fn materialize(&self) -> Vec<Word> {
        (0..self.backing.len()).map(|i| self.get(i)).collect()
    }
}

/// Activity frontier: candidate nodes per stage, deduplicated at drain.
#[derive(Debug, Default)]
pub struct Frontier {
    queue: EventQueue<usize>,
}

impl Frontier {
    pub fn new() -> Self {
        Frontier {
            queue: EventQueue::new(),
        }
    }

    /// Schedule node `v` for re-evaluation at `stage`.  Duplicates are
    /// fine; [`Frontier::drain`] collapses them.
    #[inline]
    pub fn mark(&mut self, stage: i64, v: usize) {
        self.queue.schedule(stage, v);
    }

    /// The candidate set for `stage`, ascending and deduplicated.
    /// Returns an empty set when nothing is scheduled at `stage`;
    /// buckets are consumed in order, so `stage` must not go backwards.
    pub fn drain(&mut self, stage: i64) -> Vec<usize> {
        match self.queue.peek_stage() {
            Some(s) if s == stage => {
                let (_, mut nodes) = self.queue.pop_stage().expect("peeked bucket");
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            }
            _ => Vec::new(),
        }
    }

    /// Scheduled (undrained) candidate count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Resident footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.queue.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fall_through_until_first_write() {
        let backing: Vec<Word> = (0..3000).collect();
        let mut s = SparseState::new(&backing);
        assert_eq!(s.get(0), 0);
        assert_eq!(s.get(2999), 2999);
        assert_eq!(s.resident_pages(), 0);
        s.set(1500, 77);
        assert_eq!(s.get(1500), 77);
        assert_eq!(s.get(1499), 1499, "same page, untouched index preserved");
        assert_eq!(s.resident_pages(), 1);
        s.set(1501, 78);
        assert_eq!(s.resident_pages(), 1, "same page reused");
    }

    #[test]
    fn materialize_matches_pointwise_reads() {
        let backing: Vec<Word> = (0..2500).map(|i| i * 3).collect();
        let mut s = SparseState::new(&backing);
        s.set(0, 9);
        s.set(2499, 10);
        let dense = s.materialize();
        assert_eq!(dense.len(), 2500);
        assert_eq!(dense[0], 9);
        assert_eq!(dense[1], 3);
        assert_eq!(dense[2499], 10);
    }

    #[test]
    fn bytes_resident_tracks_touched_pages_not_n() {
        let backing = vec![0 as Word; 1 << 20];
        let mut s = SparseState::new(&backing);
        let table_only = s.bytes_resident();
        s.set(42, 1);
        let one_page = s.bytes_resident();
        assert_eq!(one_page - table_only, PAGE_WORDS * 8);
        assert!(one_page < backing.len()); // far below 8 bytes/node
    }

    #[test]
    fn frontier_dedups_and_sorts() {
        let mut f = Frontier::new();
        f.mark(2, 5);
        f.mark(2, 3);
        f.mark(2, 5);
        f.mark(2, 4);
        f.mark(3, 9);
        assert_eq!(f.pending(), 5);
        assert_eq!(f.drain(2), vec![3, 4, 5]);
        assert_eq!(f.drain(3), vec![9]);
        assert_eq!(f.drain(4), Vec::<usize>::new());
    }
}
