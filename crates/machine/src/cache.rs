//! The process-wide plan cache behind "simulation-as-a-service".
//!
//! Every plan artifact the engines build — diamond shape memos, cell
//! tilings, π-rearrangement layouts, plan-time cost tables, analytic
//! envelopes, and the service layer's cost capsules — is a pure function
//! of `(engine, n, p, m, d, core)` plus engine-specific tuning (leaf
//! radius, strip width) and, for faulted runs, the canonical fault-plan
//! document.  None of it depends on the guest *values*, so repeated
//! traffic of one shape should pay the plan cost once.
//!
//! [`PlanCache`] memoizes those artifacts behind `Arc`s:
//!
//! * **sharded** — keys hash to one of [`SHARDS`] independently locked
//!   shards, so concurrent jobs of different shapes never contend on one
//!   mutex;
//! * **bounded** — each shard holds at most `capacity / SHARDS` bytes
//!   (caller-estimated, see [`PlanCache::insert`]) and evicts its
//!   least-recently-used entries past that (`--plan-cache-bytes`
//!   configures the total; `0` disables caching entirely);
//! * **type-erased** — artifacts are `Arc<dyn Any + Send + Sync>`; each
//!   engine downcasts to its own plan type.  A key therefore must never
//!   be shared by two artifact types (the `engine` field namespaces
//!   them).
//!
//! Correctness note: a cache *hit* can only substitute data that a cold
//! run would have recomputed to identical values (the artifacts are
//! deterministic functions of the key), so hits never perturb model
//! costs — the bit-identity invariant (DESIGN.md §12) is preserved by
//! construction.  Two racing cold runs of one shape may both compute the
//! artifact; whichever insert lands last wins, and both computed values
//! are identical, so the race is benign.

use std::any::Any;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hash::FxHasher;

/// A type-erased, shareable plan artifact.
pub type PlanArtifact = Arc<dyn Any + Send + Sync>;

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 8;

/// Default total capacity: plans are tens of KiB each, so this holds
/// thousands of distinct shapes.
pub const DEFAULT_PLAN_CACHE_BYTES: usize = 256 << 20;

/// What a plan artifact is a function of.  `engine` namespaces the
/// artifact type (`"exec1-plan"`, `"capsule"`, …); `extra` carries
/// engine-specific tuning (leaf radius, strip width); `salt` carries the
/// canonical fault-plan JSON for cost capsules (empty when the artifact
/// is fault-independent).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub engine: &'static str,
    pub d: u8,
    pub n: u64,
    pub p: u64,
    pub m: u64,
    pub steps: i64,
    pub core: u8,
    pub extra: u64,
    pub salt: String,
}

impl PlanKey {
    /// A fault-free, default-tuning key.
    pub fn shape(engine: &'static str, d: u8, n: u64, p: u64, m: u64, steps: i64) -> Self {
        PlanKey {
            engine,
            d,
            n,
            p,
            m,
            steps,
            core: 0,
            extra: 0,
            salt: String::new(),
        }
    }
}

/// A snapshot of the cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub bytes: usize,
    pub capacity: usize,
}

struct Entry {
    val: PlanArtifact,
    bytes: usize,
    /// Logical LRU timestamp (from the cache-wide clock).
    stamp: u64,
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[derive(Default)]
struct Shard {
    map: FxMap<PlanKey, Entry>,
    bytes: usize,
}

/// Sharded, byte-bounded, LRU plan cache.  See the module docs.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity: AtomicUsize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity: AtomicUsize::new(capacity),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // High bits: FxHasher's final multiply mixes upward.
        &self.shards[(h.finish() >> 57) as usize % SHARDS]
    }

    /// Look up an artifact, bumping its LRU stamp.  Counts a hit or a
    /// miss either way (a disabled cache counts only misses).
    pub fn get(&self, key: &PlanKey) -> Option<PlanArtifact> {
        if self.capacity.load(Ordering::Relaxed) == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        match shard.map.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.val))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Typed lookup: [`get`](Self::get) plus a downcast to the caller's
    /// plan type.  A downcast failure (a key collision across artifact
    /// types — a bug by the key contract) is treated as a miss.
    pub fn get_as<T: Any + Send + Sync>(&self, key: &PlanKey) -> Option<Arc<T>> {
        self.get(key).and_then(|a| a.downcast::<T>().ok())
    }

    /// Insert an artifact with a caller-estimated byte size, evicting
    /// this shard's least-recently-used entries past its byte budget.
    /// An artifact alone exceeding the shard budget is not cached.  A
    /// `capacity` of zero disables insertion.
    pub fn insert(&self, key: PlanKey, val: PlanArtifact, bytes: usize) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let budget = (cap / SHARDS).max(1);
        if bytes > budget {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().unwrap();
        if let Some(old) = shard.map.insert(key, Entry { val, bytes, stamp }) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        while shard.bytes > budget {
            let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = shard.map.remove(&victim) {
                shard.bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop every entry (counters are kept — they describe traffic, not
    /// contents).  The cold side of warm-vs-cold benchmarks.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            s.map.clear();
            s.bytes = 0;
        }
    }

    /// Reset the traffic counters (hits / misses / evictions) without
    /// touching the contents.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Change the total byte capacity; `0` disables the cache and drops
    /// its contents.
    pub fn set_capacity(&self, bytes: usize) {
        self.capacity.store(bytes, Ordering::Relaxed);
        if bytes == 0 {
            self.clear();
            return;
        }
        // Shrink each shard under the new budget.
        let budget = (bytes / SHARDS).max(1);
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            while s.bytes > budget {
                let Some(victim) = s
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                if let Some(e) = s.map.remove(&victim) {
                    s.bytes -= e.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity: self.capacity.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide plan cache every engine and the serve layer consult.
pub fn plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| PlanCache::new(DEFAULT_PLAN_CACHE_BYTES))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> PlanKey {
        PlanKey::shape("test", 1, n, 1, 1, 8)
    }

    #[test]
    fn hit_miss_and_downcast() {
        let c = PlanCache::new(1 << 20);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), Arc::new(42usize), 64);
        let got: Arc<usize> = c.get_as(&key(1)).unwrap();
        assert_eq!(*got, 42);
        // Wrong type at the same key: treated as a miss, not a panic.
        assert!(c.get_as::<String>(&key(1)).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 2, "both typed lookups found the entry");
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 64);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let c = PlanCache::new(SHARDS * 100);
        // All keys in this test may land in different shards; drive one
        // shard over budget by inserting many entries of one size and
        // checking global byte accounting stays bounded.
        for n in 0..64 {
            c.insert(key(n), Arc::new(n), 60);
        }
        let s = c.stats();
        assert!(s.bytes <= SHARDS * 100, "bytes {} over budget", s.bytes);
        assert!(s.evictions > 0);
    }

    #[test]
    fn recently_used_survives_eviction() {
        let c = PlanCache::new(SHARDS * 128);
        // Two entries of 60 bytes fit a 128-byte shard; a third evicts
        // the least recently *used*.  Force same-shard keys by retrying
        // until three keys collide — deterministic given the hasher.
        let mut same = Vec::new();
        let probe = |k: &PlanKey, c: &PlanCache| {
            use std::hash::{Hash, Hasher};
            let mut h = FxHasher::default();
            k.hash(&mut h);
            let _ = c;
            (h.finish() >> 57) as usize % SHARDS
        };
        let shard0 = probe(&key(0), &c);
        for n in 0..1000 {
            if probe(&key(n), &c) == shard0 {
                same.push(n);
                if same.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(same.len(), 3);
        c.insert(key(same[0]), Arc::new(0usize), 60);
        c.insert(key(same[1]), Arc::new(1usize), 60);
        // Touch the first so the second is the LRU victim.
        assert!(c.get(&key(same[0])).is_some());
        c.insert(key(same[2]), Arc::new(2usize), 60);
        assert!(c.get(&key(same[0])).is_some(), "recently used survives");
        assert!(c.get(&key(same[1])).is_none(), "LRU entry evicted");
        assert!(c.get(&key(same[2])).is_some(), "new entry present");
    }

    #[test]
    fn zero_capacity_disables() {
        let c = PlanCache::new(0);
        c.insert(key(1), Arc::new(1usize), 8);
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().entries, 0);
        // And set_capacity(0) drops existing contents.
        let c2 = PlanCache::new(1 << 20);
        c2.insert(key(1), Arc::new(1usize), 8);
        c2.set_capacity(0);
        assert_eq!(c2.stats().entries, 0);
    }

    #[test]
    fn oversized_artifact_is_not_cached() {
        let c = PlanCache::new(SHARDS * 64);
        c.insert(key(1), Arc::new(1usize), 1 << 20);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn clear_keeps_counters_reset_counters_keeps_contents() {
        let c = PlanCache::new(1 << 20);
        c.insert(key(1), Arc::new(1usize), 8);
        assert!(c.get(&key(1)).is_some());
        c.clear();
        assert!(c.get(&key(1)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.entries, 0);
        c.insert(key(1), Arc::new(1usize), 8);
        c.reset_counters();
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = Arc::new(PlanCache::new(1 << 20));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = key((t * 37 + i) % 50);
                        match c.get_as::<u64>(&k) {
                            Some(v) => assert_eq!(*v, k.n),
                            None => c.insert(k.clone(), Arc::new(k.n), 100),
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert!(s.hits > 0 && s.misses > 0);
        assert!(s.entries <= 50);
    }
}
