//! Systolic matrix multiplication on the mesh — the introduction's
//! motivating example ("two `√n × √n` matrices can be multiplied in
//! `Θ(√n)` steps by a `√n × √n` mesh of processors").
//!
//! This is a boundary-fed systolic algorithm in the Kung–Leiserson
//! style, expressed as a pure [`MeshProgram`] (no torus wrap-around
//! needed, matching Definition 2's mesh):
//!
//! * `A`-entries flow east along the rows, `B`-entries flow north-to-…
//!   precisely: along increasing `j`; `C` is stationary;
//! * the west edge (`i = 0`) holds row `r`'s `A`-entries in its private
//!   cells, skewed so `A[r, k]` is emitted at step `k + r + 1`;
//!   the `j = 0` edge holds `B`'s columns, skewed so `B[k, q]` is
//!   emitted at step `k + q + 1`;
//! * every node's communicated value packs `(a, b, c)` into one word
//!   (16 + 16 + 32 bits); node `(q, r)` accumulates
//!   `c += A[r, k] · B[k, q]` at step `k + r + q + 1`, so after
//!   `3·side` steps the `c`-fields hold `C = A·B`.
//!
//! Private memory per node is `m = side + 1` cells (cell 0 is scratch;
//! cells `1 ..= side` stage the boundary entries) — giving the machine a
//! density `m ≈ √n`, squarely in the interesting regimes of Theorem 1.

use bsmp_hram::Word;
use bsmp_machine::MeshProgram;

/// Field packing helpers for the systolic value word.
#[inline]
pub fn pack(a: u64, b: u64, c: u64) -> Word {
    debug_assert!(a < (1 << 16) && b < (1 << 16) && c < (1 << 32));
    (a << 48) | (b << 32) | c
}

#[inline]
pub fn a_field(w: Word) -> u64 {
    w >> 48
}

#[inline]
pub fn b_field(w: Word) -> u64 {
    (w >> 32) & 0xFFFF
}

#[inline]
pub fn c_field(w: Word) -> u64 {
    w & 0xFFFF_FFFF
}

/// The systolic matrix-multiplication program for a `side × side` mesh.
#[derive(Clone, Copy, Debug)]
pub struct SystolicMatmul {
    pub side: usize,
}

impl SystolicMatmul {
    pub fn new(side: usize) -> Self {
        assert!(side >= 1);
        SystolicMatmul { side }
    }

    /// Steps needed for all products to land: the last product
    /// `k = side-1` reaches node `(side-1, side-1)` at step `3·side - 2`.
    pub fn steps(&self) -> i64 {
        (3 * self.side) as i64
    }

    /// Build the initial memory image for multiplying `a × b`
    /// (row-major `side × side` matrices with entries `< 2^16`).
    ///
    /// Layout (node-major, `m = side + 1` cells per node, node index
    /// `j·side + i`): cell 0 is zeroed scratch; for west-edge node
    /// `(0, r)`, cell `k+1` holds `pack(A[r][k], ·, 0)`; for edge
    /// `(q, 0)`, cell `k+1` holds `pack(·, B[k][q], 0)`; the corner holds
    /// both fields.
    pub fn stage_inputs(&self, a: &[Vec<u64>], b: &[Vec<u64>]) -> Vec<Word> {
        let s = self.side;
        assert_eq!(a.len(), s);
        assert_eq!(b.len(), s);
        let m = s + 1;
        let mut init = vec![0 as Word; s * s * m];
        for (r, arow) in a.iter().enumerate() {
            // West edge node (i=0, j=r).
            let base = (r * s) * m;
            for (k, &av) in arow.iter().enumerate() {
                init[base + k + 1] |= pack(av, 0, 0);
            }
        }
        for (k, brow) in b.iter().enumerate() {
            // j = 0 edge node (i=q, j=0).
            for (q, &bv) in brow.iter().enumerate() {
                init[q * m + k + 1] |= pack(0, bv, 0);
            }
        }
        init
    }

    /// Extract `C = A·B` from the final values of a run.
    pub fn extract_c(&self, values: &[Word]) -> Vec<Vec<u64>> {
        let s = self.side;
        (0..s)
            .map(|r| (0..s).map(|q| c_field(values[r * s + q])).collect())
            .collect()
    }
}

impl MeshProgram for SystolicMatmul {
    fn m(&self) -> usize {
        self.side + 1
    }

    fn cell(&self, i: usize, j: usize, t: i64) -> usize {
        let s = self.side as i64;
        if i == 0 || j == 0 {
            // The staging index of this step's boundary entry.
            let delay = if i == 0 { j as i64 } else { i as i64 };
            let u = t - 1 - delay;
            if (0..s).contains(&u) {
                return (u + 1) as usize;
            }
        }
        0
    }

    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        i: usize,
        j: usize,
        _t: i64,
        own: Word,
        prev: Word,
        west: Word,
        _east: Word,
        south: Word,
        _north: Word,
    ) -> Word {
        let a = if i == 0 { a_field(own) } else { a_field(west) };
        let b = if j == 0 { b_field(own) } else { b_field(south) };
        let c = (c_field(prev) + a * b) & 0xFFFF_FFFF;
        pack(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_mesh, MachineSpec};

    fn matmul_oracle(a: &[Vec<u64>], b: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let s = a.len();
        (0..s)
            .map(|r| {
                (0..s)
                    .map(|q| (0..s).map(|k| a[r][k] * b[k][q]).sum())
                    .collect()
            })
            .collect()
    }

    fn run_systolic(a: &[Vec<u64>], b: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let s = a.len();
        let prog = SystolicMatmul::new(s);
        let n = (s * s) as u64;
        let spec = MachineSpec::new(2, n, n, (s + 1) as u64);
        let init = prog.stage_inputs(a, b);
        let run = run_mesh(&spec, &prog, &init, prog.steps());
        prog.extract_c(&run.values)
    }

    #[test]
    fn two_by_two() {
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![vec![5, 6], vec![7, 8]];
        assert_eq!(run_systolic(&a, &b), matmul_oracle(&a, &b));
    }

    #[test]
    fn identity_is_neutral() {
        let s = 4;
        let a: Vec<Vec<u64>> = (0..s)
            .map(|r| (0..s).map(|q| (r * s + q + 1) as u64).collect())
            .collect();
        let id: Vec<Vec<u64>> = (0..s)
            .map(|r| (0..s).map(|q| u64::from(r == q)).collect())
            .collect();
        assert_eq!(run_systolic(&a, &id), a);
        assert_eq!(run_systolic(&id, &a), a);
    }

    #[test]
    fn random_matrices_match_oracle() {
        use bsmp_faults::rng::Rng64;
        let mut rng = Rng64::new(7);
        for s in [3usize, 5, 8] {
            let mk = |rng: &mut Rng64| -> Vec<Vec<u64>> {
                (0..s)
                    .map(|_| (0..s).map(|_| rng.below(256)).collect())
                    .collect()
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            assert_eq!(run_systolic(&a, &b), matmul_oracle(&a, &b), "side {s}");
        }
    }

    #[test]
    fn completes_in_linear_steps() {
        // Θ(√n) steps — the introduction's claim.
        assert_eq!(SystolicMatmul::new(16).steps(), 48);
    }
}
