//! 3-D mesh workloads — guests for the Section-6 `d = 3` extension.

use bsmp_hram::Word;
use bsmp_machine::VolumeProgram;

/// Parity (Fredkin-style) rule on the 3-D von Neumann neighborhood:
/// alive iff the 6-neighbor live count is odd — linear over GF(2), so
/// single impulses replicate, giving exactly predictable patterns.
#[derive(Clone, Copy, Debug)]
pub struct Parity3d;

impl VolumeProgram for Parity3d {
    fn m(&self) -> usize {
        1
    }

    fn delta(
        &self,
        _x: usize,
        _y: usize,
        _z: usize,
        _t: i64,
        _own: Word,
        _prev: Word,
        nb: [Word; 6],
    ) -> Word {
        nb.iter().fold(0, |a, b| a ^ (b & 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::run_volume;

    #[test]
    fn impulse_moves_to_six_neighbors() {
        let side = 5usize;
        let n = side * side * side;
        let mut init = vec![0; n];
        let idx = |x: usize, y: usize, z: usize| (z * side + y) * side + x;
        init[idx(2, 2, 2)] = 1;
        let run = run_volume(side, 1, &Parity3d, &init, 1);
        let live: usize = run.values.iter().map(|&v| v as usize).sum();
        assert_eq!(live, 6);
        assert_eq!(run.values[idx(1, 2, 2)], 1);
        assert_eq!(run.values[idx(2, 2, 3)], 1);
        assert_eq!(run.values[idx(2, 2, 2)], 0);
    }

    #[test]
    fn linearity_over_gf2() {
        let side = 4usize;
        let n = side * side * side;
        let a: Vec<Word> = (0..n as u64).map(|i| (i * 7 + 1) % 2).collect();
        let b: Vec<Word> = (0..n as u64).map(|i| (i * 5 + 2) % 2).collect();
        let ab: Vec<Word> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ra = run_volume(side, 1, &Parity3d, &a, 3).values;
        let rb = run_volume(side, 1, &Parity3d, &b, 3).values;
        let rab = run_volume(side, 1, &Parity3d, &ab, 3).values;
        let xor: Vec<Word> = ra.iter().zip(&rb).map(|(x, y)| x ^ y).collect();
        assert_eq!(rab, xor);
    }
}
