//! Integer heat diffusion on the mesh — a numerically flavored `m = 1`
//! mesh workload (fixed-point arithmetic keeps it exact and
//! order-independent within a step).

use bsmp_hram::Word;
use bsmp_machine::MeshProgram;

/// `u' = (4·own + w + e + s + n) / 8` in fixed point (values are
/// temperatures scaled by 256).  The border is held at `ambient`.
#[derive(Clone, Copy, Debug)]
pub struct HeatDiffusion {
    /// Border temperature (scaled).
    pub ambient: Word,
}

impl HeatDiffusion {
    pub fn new(ambient: Word) -> Self {
        HeatDiffusion { ambient }
    }
}

impl MeshProgram for HeatDiffusion {
    fn m(&self) -> usize {
        1
    }

    fn boundary(&self) -> Word {
        self.ambient
    }

    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        _i: usize,
        _j: usize,
        _t: i64,
        own: Word,
        _prev: Word,
        w: Word,
        e: Word,
        s: Word,
        n: Word,
    ) -> Word {
        (4 * own + w + e + s + n) / 8
    }

    fn time_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_mesh, MachineSpec};

    #[test]
    fn uniform_field_is_stationary() {
        let spec = MachineSpec::new(2, 16, 16, 1);
        let run = run_mesh(&spec, &HeatDiffusion::new(1024), &[1024; 16], 6);
        assert_eq!(run.values, vec![1024; 16]);
    }

    #[test]
    fn hot_spot_spreads_and_decays() {
        let side = 5usize;
        let mut init = vec![0; side * side];
        init[2 * side + 2] = 80_000;
        let spec = MachineSpec::new(2, 25, 25, 1);
        let r1 = run_mesh(&spec, &HeatDiffusion::new(0), &init, 1);
        assert!(r1.values[2 * side + 2] < 80_000, "center cools");
        assert!(r1.values[2 * side + 1] > 0, "neighbor warms");
        let r5 = run_mesh(&spec, &HeatDiffusion::new(0), &init, 5);
        let total: u64 = r5.values.iter().sum();
        assert!(total < 80_000, "heat leaks through the cold border");
        assert!(
            r5.values[0] < r5.values[2 * side + 2],
            "gradient towards center"
        );
    }
}
