//! Elementary cellular automata — the `m = 1` guests of Theorem 2
//! ("the guest system is either a systolic network or a cellular
//! automaton").

use bsmp_hram::Word;
use bsmp_machine::LinearProgram;

/// A Wolfram elementary cellular automaton.  Cell values are 0/1; the
/// next value is bit `(l·4 + own·2 + r)` of the rule byte.
#[derive(Clone, Copy, Debug)]
pub struct Eca {
    /// Wolfram rule number.
    pub rule: u8,
}

impl Eca {
    pub fn new(rule: u8) -> Self {
        Eca { rule }
    }

    /// Rule 90 — XOR of the neighbors (linear over GF(2), Pascal
    /// triangle mod 2).
    pub fn rule90() -> Self {
        Eca::new(90)
    }

    /// Rule 110 — Turing-complete, thoroughly non-linear.
    pub fn rule110() -> Self {
        Eca::new(110)
    }
}

impl LinearProgram for Eca {
    fn m(&self) -> usize {
        1
    }

    fn delta(&self, _v: usize, _t: i64, own: Word, _prev: Word, l: Word, r: Word) -> Word {
        let idx = ((l & 1) << 2) | ((own & 1) << 1) | (r & 1);
        Word::from((self.rule >> idx) & 1)
    }

    fn time_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_linear, MachineSpec};

    fn run(rule: u8, init: &[Word], steps: i64) -> Vec<Word> {
        let spec = MachineSpec::new(1, init.len() as u64, init.len() as u64, 1);
        run_linear(&spec, &Eca::new(rule), init, steps).values
    }

    #[test]
    fn rule90_is_neighbor_xor() {
        let out = run(90, &[0, 0, 1, 0, 0], 1);
        assert_eq!(out, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn rule110_known_evolution() {
        // One step of 00010011011111 (classic rule-110 test vector).
        let init = [0, 0, 0, 1, 0, 0, 1, 1, 0, 1, 1, 1, 1, 1];
        let out = run(110, &init, 1);
        // Compute expected with an independent oracle.
        let expect: Vec<Word> = (0..init.len())
            .map(|i| {
                let l = if i > 0 { init[i - 1] } else { 0 };
                let c = init[i];
                let r = if i + 1 < init.len() { init[i + 1] } else { 0 };
                Word::from((110u8 >> ((l << 2) | (c << 1) | r)) & 1)
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn rule204_is_identity() {
        // Rule 204 maps every pattern to the center bit.
        let init = [1, 0, 1, 1, 0, 0, 1];
        assert_eq!(run(204, &init, 5), init.to_vec());
    }

    #[test]
    fn rule90_is_linear_over_gf2() {
        // Rule 90 is XOR-linear: evolving a ⊕ b equals evolving a and b
        // separately and XOR-ing the results.
        let a: Vec<Word> = vec![1, 0, 0, 1, 1, 0, 1, 0];
        let b: Vec<Word> = vec![0, 1, 1, 0, 1, 0, 0, 1];
        let ab: Vec<Word> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ra = run(90, &a, 5);
        let rb = run(90, &b, 5);
        let rab = run(90, &ab, 5);
        let xor: Vec<Word> = ra.iter().zip(&rb).map(|(x, y)| x ^ y).collect();
        assert_eq!(rab, xor);
    }
}
