//! Odd-even transposition sort as a cellular computation — a classical
//! linear-array workload whose dag has full data dependence.

use bsmp_hram::Word;
use bsmp_machine::LinearProgram;

/// Odd-even transposition sort on an `n`-node array: after `n` steps the
/// values are sorted ascending.  At odd steps, pairs `(0,1), (2,3), …`
/// compare-exchange; at even steps, pairs `(1,2), (3,4), …`.
#[derive(Clone, Copy, Debug)]
pub struct OddEvenSort {
    /// Array length (needed to recognize unpaired border nodes).
    pub n: usize,
}

impl OddEvenSort {
    pub fn new(n: usize) -> Self {
        OddEvenSort { n }
    }
}

impl LinearProgram for OddEvenSort {
    fn m(&self) -> usize {
        1
    }

    fn delta(&self, v: usize, t: i64, own: Word, _prev: Word, l: Word, r: Word) -> Word {
        // Pair starts at even v on odd steps, at odd v on even steps.
        let start_parity = if t % 2 == 1 { 0 } else { 1 };
        if v % 2 == start_parity {
            // Left element of its pair; border nodes without a partner
            // keep their value.
            if v + 1 < self.n {
                own.min(r)
            } else {
                own
            }
        } else if v > 0 {
            own.max(l)
        } else {
            own
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_linear, MachineSpec};

    fn sort_with_network(vals: &[Word]) -> Vec<Word> {
        let n = vals.len() as u64;
        let spec = MachineSpec::new(1, n, n, 1);
        run_linear(
            &spec,
            &OddEvenSort::new(vals.len()),
            vals,
            vals.len() as i64,
        )
        .values
    }

    #[test]
    fn sorts_reverse_order() {
        let input: Vec<Word> = (0..16).rev().collect();
        let mut expect = input.clone();
        expect.sort();
        assert_eq!(sort_with_network(&input), expect);
    }

    #[test]
    fn sorts_random_inputs() {
        use bsmp_faults::rng::Rng64;
        let mut rng = Rng64::new(42);
        for trial in 0..10 {
            let n = 2 * rng.range_u64(2, 20);
            let input: Vec<Word> = (0..n).map(|_| rng.below(1000)).collect();
            let mut expect = input.clone();
            expect.sort();
            assert_eq!(sort_with_network(&input), expect, "trial {trial}");
        }
    }

    #[test]
    fn already_sorted_is_fixed_point() {
        let input: Vec<Word> = (0..8).collect();
        assert_eq!(sort_with_network(&input), input);
    }
}
