//! A pure data shift — the simplest fully-dependent workload, with
//! exactly predictable output (used as an engine sanity check: any
//! misordered execution scrambles it immediately).

use bsmp_hram::Word;
use bsmp_machine::LinearProgram;

/// Every step, each node adopts its left neighbor's value (tokens march
/// right); the border injects `fill`.
#[derive(Clone, Copy, Debug)]
pub struct TokenShift {
    /// Value injected at the left border.
    pub fill: Word,
}

impl TokenShift {
    pub fn new(fill: Word) -> Self {
        TokenShift { fill }
    }
}

impl LinearProgram for TokenShift {
    fn m(&self) -> usize {
        1
    }

    fn boundary(&self) -> Word {
        self.fill
    }

    fn delta(&self, _v: usize, _t: i64, _own: Word, _prev: Word, l: Word, _r: Word) -> Word {
        l
    }

    fn time_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_linear, MachineSpec};

    #[test]
    fn tokens_march_right() {
        let init: Vec<Word> = vec![10, 20, 30, 40, 50];
        let spec = MachineSpec::new(1, 5, 5, 1);
        let run = run_linear(&spec, &TokenShift::new(99), &init, 2);
        assert_eq!(run.values, vec![99, 99, 10, 20, 30]);
    }

    #[test]
    fn after_n_steps_everything_is_fill() {
        let init: Vec<Word> = (1..=6).collect();
        let spec = MachineSpec::new(1, 6, 6, 1);
        let run = run_linear(&spec, &TokenShift::new(7), &init, 6);
        assert_eq!(run.values, vec![7; 6]);
    }
}
