//! # bsmp-workloads
//!
//! Concrete guest computations for the simulation experiments — the
//! "wide class of important applications" with `n`-fold parallelism and
//! full locality that Section 6 appeals to.  Every workload is a
//! synchronous node program realizing exactly the dag `G_T(H)` of
//! Definition 3, with full data dependence on every arc (so no simulation
//! strategy can shortcut it).
//!
//! Linear-array (`d = 1`) workloads:
//! * [`eca::Eca`] — elementary cellular automata (rule 90, rule 110, …);
//! * [`sort::OddEvenSort`] — odd-even transposition sort;
//! * [`wave::CyclicWave`] — an order-`m` space-time recurrence that
//!   cycles through all `m` private cells (exercises `m > 1` addressing);
//! * [`shift::TokenShift`] — a data shift with exactly predictable
//!   output (engine sanity checks);
//! * [`fir::FirPipeline`] — a systolic FIR filter whose private cells
//!   hold persistent tap coefficients (read-mostly `m > 1` pattern).
//!
//! Mesh (`d = 2`) workloads:
//! * [`life::VonNeumannLife`] — a Life-like rule on the von Neumann
//!   neighborhood;
//! * [`heat::HeatDiffusion`] — integer heat diffusion;
//! * [`cannon::SystolicMatmul`] — a genuine systolic matrix
//!   multiplication on the mesh (boundary-fed, `m = side + 1`), the
//!   introduction's motivating example;
//! * [`plane::PlaneWave`] — the mesh analogue of `CyclicWave`: an
//!   order-`m` recurrence cycling through all `m` private cells.

pub mod cannon;
pub mod eca;
pub mod fir;
pub mod heat;
pub mod inputs;
pub mod life;
pub mod plane;
pub mod shift;
pub mod sort;
pub mod wave;

pub use cannon::SystolicMatmul;
pub use eca::Eca;
pub use fir::FirPipeline;
pub use heat::HeatDiffusion;
pub use life::VonNeumannLife;
pub use plane::PlaneWave;
pub use shift::TokenShift;
pub use sort::OddEvenSort;
pub use wave::CyclicWave;

pub mod volume;
pub use volume::Parity3d;
