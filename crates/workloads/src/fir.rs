//! A systolic FIR filter — a DSP-flavored `m > 1` workload whose private
//! memory holds tap coefficients, exercising the cyclic cell-addressing
//! pattern with *persistent* per-cell data.
//!
//! Node `v` holds `m` coefficients; samples stream in from the left
//! border and march right one node per step.  At step `t` node `v`
//! touches cell `t mod m`; Definition-3 semantics overwrite the touched
//! cell with the produced value, so the coefficient is carried inside
//! the packed word (sample 24 bits | accumulator 24 bits | coefficient
//! 16 bits) — the first touch of a cell reads the raw coefficient laid
//! out by [`FirPipeline::coefficients`], later touches recover it from
//! the packed field.  The accumulator forms
//!
//! ```text
//! acc(v, t) = acc(v-1, t-1) + w_{t mod m}(v) · sample(v-1, t-1)
//! ```
//!
//! so after `v` hops every output carries a genuine weighted pipeline of
//! the input stream, with full dag dependence on both the stream and all
//! touched cells.

use bsmp_hram::Word;
use bsmp_machine::LinearProgram;

/// Field packing: sample 24 high bits, accumulator 24 middle bits,
/// coefficient 16 low bits.
#[inline]
pub fn pack(sample: u64, acc: u64, coef: u64) -> Word {
    debug_assert!(sample < (1 << 24) && acc < (1 << 24) && coef < (1 << 16));
    (sample << 40) | (acc << 16) | coef
}

#[inline]
pub fn sample_of(w: Word) -> u64 {
    w >> 40
}

#[inline]
pub fn acc_of(w: Word) -> u64 {
    (w >> 16) & 0xFF_FFFF
}

#[inline]
pub fn coef_of(w: Word) -> u64 {
    w & 0xFFFF
}

/// The FIR pipeline program.
#[derive(Clone, Debug)]
pub struct FirPipeline {
    /// Taps per node (the machine density `m`).
    pub taps: usize,
    /// The input stream injected at the left border (sample `i` enters
    /// node 0 at step `i + 1`; zeros after the stream ends).
    pub stream: Vec<u64>,
}

impl FirPipeline {
    pub fn new(taps: usize, stream: Vec<u64>) -> Self {
        assert!(taps >= 1);
        assert!(
            stream.iter().all(|&s| s < 1 << 10),
            "samples must stay in range"
        );
        FirPipeline { taps, stream }
    }

    /// The coefficient of node `v`, cell `c`: small, deterministic.
    pub fn weight(&self, v: usize, c: usize) -> u64 {
        ((v + c) % 4 + 1) as u64
    }

    /// Initial memory image: node `v`'s raw coefficients at cells `0..m`.
    pub fn coefficients(&self, n: usize) -> Vec<Word> {
        let mut init = vec![0 as Word; n * self.taps];
        for v in 0..n {
            for c in 0..self.taps {
                init[v * self.taps + c] = self.weight(v, c);
            }
        }
        init
    }

    /// Is step `t`'s touch of its cell the first one (raw coefficient
    /// still in place)?
    fn first_touch(&self, t: i64) -> bool {
        // Cell c = t mod m is first touched at t = c (c ≥ 1) or t = m (c = 0).
        let m = self.taps as i64;
        (1..=m).contains(&t)
    }

    /// Direct oracle for the expected `(sample, acc)` at node `v` after
    /// step `t` (tests).
    pub fn oracle(&self, n: usize, steps: i64) -> Vec<(u64, u64)> {
        let mut cur: Vec<(u64, u64)> = vec![(0, 0); n];
        for t in 1..=steps {
            let mut nxt = vec![(0, 0); n];
            for v in 0..n {
                let (s_in, a_in) = if v == 0 {
                    (self.stream.get((t - 1) as usize).copied().unwrap_or(0), 0)
                } else {
                    cur[v - 1]
                };
                let c = t.rem_euclid(self.taps as i64) as usize;
                nxt[v] = (s_in, (a_in + self.weight(v, c) * s_in) & 0xFF_FFFF);
            }
            cur = nxt;
        }
        cur
    }
}

impl LinearProgram for FirPipeline {
    fn m(&self) -> usize {
        self.taps
    }

    fn cell(&self, _v: usize, t: i64) -> usize {
        t.rem_euclid(self.taps as i64) as usize
    }

    fn boundary(&self) -> Word {
        0
    }

    fn delta(&self, v: usize, t: i64, own: Word, _prev: Word, left: Word, _right: Word) -> Word {
        let coef = if self.first_touch(t) {
            own
        } else {
            coef_of(own)
        };
        let inbound = if v == 0 {
            let s = self.stream.get((t - 1) as usize).copied().unwrap_or(0);
            pack(s, 0, 0)
        } else {
            left
        };
        let sample = sample_of(inbound);
        let acc = (acc_of(inbound) + coef * sample) & 0xFF_FFFF;
        pack(sample, acc, coef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_linear, MachineSpec};

    fn run(prog: &FirPipeline, n: usize, steps: i64) -> Vec<Word> {
        let init = prog.coefficients(n);
        let spec = MachineSpec::new(1, n as u64, n as u64, prog.taps as u64);
        run_linear(&spec, prog, &init, steps).values
    }

    #[test]
    fn matches_oracle() {
        let prog = FirPipeline::new(3, vec![5, 9, 3, 7, 2, 8]);
        let n = 6usize;
        for steps in [1i64, 3, 6, 10] {
            let vals = run(&prog, n, steps);
            let oracle = prog.oracle(n, steps);
            for v in 0..n {
                assert_eq!(
                    (sample_of(vals[v]), acc_of(vals[v])),
                    oracle[v],
                    "node {v} at T={steps}"
                );
            }
        }
    }

    #[test]
    fn samples_propagate_one_hop_per_step() {
        let prog = FirPipeline::new(2, vec![5, 9, 3]);
        let vals = run(&prog, 4, 4);
        assert_eq!(sample_of(vals[3]), 5);
        assert_eq!(sample_of(vals[2]), 9);
        assert_eq!(sample_of(vals[1]), 3);
        assert_eq!(sample_of(vals[0]), 0, "stream exhausted");
    }

    #[test]
    fn coefficients_survive_cell_reuse() {
        // After t > m, cells are on their second+ touch; the oracle
        // agreement over 3 full cycles proves coefficient persistence.
        let prog = FirPipeline::new(2, (0..12).map(|i| (i % 7) + 1).collect());
        let n = 4usize;
        let vals = run(&prog, n, 12);
        let oracle = prog.oracle(n, 12);
        for v in 0..n {
            assert_eq!((sample_of(vals[v]), acc_of(vals[v])), oracle[v]);
        }
    }
}
