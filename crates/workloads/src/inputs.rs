//! Deterministic, seeded input generators for the experiments.

use bsmp_faults::rng::Rng64;
use bsmp_hram::Word;

/// `count` random words below `bound`, from a fixed seed.
pub fn random_words(seed: u64, count: usize, bound: u64) -> Vec<Word> {
    let mut rng = Rng64::new(seed);
    (0..count).map(|_| rng.below(bound)).collect()
}

/// `count` random bits (0/1 words).
pub fn random_bits(seed: u64, count: usize) -> Vec<Word> {
    random_words(seed, count, 2)
}

/// A random `side × side` matrix with entries in `[0, bound)`.
pub fn random_matrix(seed: u64, side: usize, bound: u64) -> Vec<Vec<u64>> {
    let mut rng = Rng64::new(seed);
    (0..side)
        .map(|_| (0..side).map(|_| rng.below(bound)).collect())
        .collect()
}

/// A single impulse in a zero field.
pub fn impulse(count: usize, at: usize) -> Vec<Word> {
    let mut v = vec![0; count];
    v[at] = 1;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_words(1, 10, 100), random_words(1, 10, 100));
        assert_ne!(random_words(1, 10, 100), random_words(2, 10, 100));
        assert_eq!(random_matrix(3, 4, 10), random_matrix(3, 4, 10));
    }

    #[test]
    fn bounds_respected() {
        assert!(random_words(5, 1000, 7).iter().all(|&w| w < 7));
        assert!(random_bits(5, 100).iter().all(|&w| w <= 1));
    }

    #[test]
    fn impulse_shape() {
        let v = impulse(5, 2);
        assert_eq!(v, vec![0, 0, 1, 0, 0]);
    }
}
