//! A Life-like rule on the von Neumann neighborhood — the `m = 1` mesh
//! guest for Theorem 5.

use bsmp_hram::Word;
use bsmp_machine::MeshProgram;

/// Birth/survival rule over the 4-neighbor count: a dead cell becomes
/// alive if the neighbor count is in `birth`; a live cell stays alive if
/// the count is in `survive` (bit masks over counts 0..=4).
#[derive(Clone, Copy, Debug)]
pub struct VonNeumannLife {
    pub birth: u8,
    pub survive: u8,
}

impl VonNeumannLife {
    /// Birth on exactly 2 neighbors, survival on 1 or 2 — a lively
    /// von Neumann variant.
    pub fn b2s12() -> Self {
        VonNeumannLife {
            birth: 0b00100,
            survive: 0b00110,
        }
    }

    /// Parity rule (Fredkin): alive iff neighbor count is odd — linear,
    /// self-replicating patterns.
    pub fn fredkin() -> Self {
        VonNeumannLife {
            birth: 0b01010,
            survive: 0b01010,
        }
    }
}

impl MeshProgram for VonNeumannLife {
    fn m(&self) -> usize {
        1
    }

    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        _i: usize,
        _j: usize,
        _t: i64,
        own: Word,
        _prev: Word,
        w: Word,
        e: Word,
        s: Word,
        n: Word,
    ) -> Word {
        let count = ((w & 1) + (e & 1) + (s & 1) + (n & 1)) as u8;
        let mask = if own & 1 == 1 {
            self.survive
        } else {
            self.birth
        };
        Word::from((mask >> count) & 1)
    }

    fn time_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_mesh, MachineSpec};

    #[test]
    fn fredkin_replicates_single_cell() {
        // A single live cell under the parity rule becomes its 4 neighbors.
        let side = 5usize;
        let mut init = vec![0; side * side];
        init[2 * side + 2] = 1;
        let spec = MachineSpec::new(2, (side * side) as u64, (side * side) as u64, 1);
        let run = run_mesh(&spec, &VonNeumannLife::fredkin(), &init, 1);
        let live: Vec<usize> = run
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == 1)
            .map(|(i, _)| i)
            .collect();
        let c = |i: usize, j: usize| j * side + i;
        assert_eq!(live, vec![c(2, 1), c(1, 2), c(3, 2), c(2, 3)]);
    }

    #[test]
    fn dead_mesh_stays_dead() {
        let spec = MachineSpec::new(2, 16, 16, 1);
        let run = run_mesh(&spec, &VonNeumannLife::b2s12(), &[0; 16], 5);
        assert!(run.values.iter().all(|&v| v == 0));
    }

    #[test]
    fn rules_differ() {
        let side = 4usize;
        let init: Vec<Word> = (0..16).map(|i| u64::from(i % 3 == 0)).collect();
        let spec = MachineSpec::new(2, 16, 16, 1);
        let a = run_mesh(&spec, &VonNeumannLife::b2s12(), &init, 4);
        let b = run_mesh(&spec, &VonNeumannLife::fredkin(), &init, 4);
        assert_ne!(a.values, b.values);
        let _ = side;
    }
}
