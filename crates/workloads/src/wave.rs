//! An order-`m` space-time recurrence exercising all `m` private cells —
//! the `m > 1` workload for Theorems 3 and 4.
//!
//! Node `v` keeps a cyclic buffer of its last `m` values; at step `t` it
//! touches cell `t mod m`, whose content is the node's value from `m`
//! steps ago.  The update combines that delayed value with the fresh
//! neighbor values — a discretized wave/delay equation with genuine
//! dependence on the whole private memory.

use bsmp_hram::Word;
use bsmp_machine::LinearProgram;

/// `value(v, t) = delayed + left − right + prev` (wrapping), where
/// `delayed = value(v, t − m)`.
#[derive(Clone, Copy, Debug)]
pub struct CyclicWave {
    /// Buffer depth — the machine density `m`.
    pub m: usize,
}

impl CyclicWave {
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        CyclicWave { m }
    }
}

impl LinearProgram for CyclicWave {
    fn m(&self) -> usize {
        self.m
    }

    fn cell(&self, _v: usize, t: i64) -> usize {
        (t.rem_euclid(self.m as i64)) as usize
    }

    fn delta(&self, _v: usize, _t: i64, own: Word, prev: Word, l: Word, r: Word) -> Word {
        own.wrapping_add(l).wrapping_sub(r).wrapping_add(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_linear, MachineSpec};

    /// Oracle: simulate the recurrence directly on a value history.
    fn oracle(init: &[Word], n: usize, m: usize, steps: i64) -> Vec<Word> {
        // history[t][v]; t = 0 values are init cell (v, cell(v,0)=0).
        let mut hist: Vec<Vec<Word>> = vec![(0..n).map(|v| init[v * m]).collect()];
        // Private memories.
        let mut mem = init.to_vec();
        for t in 1..=steps {
            let c = (t % m as i64) as usize;
            let prev_row = hist.last().unwrap().clone();
            let mut row = vec![0; n];
            for v in 0..n {
                let own = mem[v * m + c];
                let l = if v > 0 { prev_row[v - 1] } else { 0 };
                let r = if v + 1 < n { prev_row[v + 1] } else { 0 };
                let out = own
                    .wrapping_add(l)
                    .wrapping_sub(r)
                    .wrapping_add(prev_row[v]);
                row[v] = out;
                mem[v * m + c] = out;
            }
            hist.push(row);
        }
        hist.pop().unwrap()
    }

    #[test]
    fn matches_oracle() {
        let (n, m, steps) = (8usize, 3usize, 10i64);
        let init: Vec<Word> = (0..(n * m) as u64).map(|i| i * 7 + 1).collect();
        let spec = MachineSpec::new(1, n as u64, n as u64, m as u64);
        let run = run_linear(&spec, &CyclicWave::new(m), &init, steps);
        assert_eq!(run.values, oracle(&init, n, m, steps));
    }

    #[test]
    fn delayed_feedback_matters() {
        // With m = 2 vs m = 1 the trajectories differ (the delayed cell
        // really is read).
        let n = 6usize;
        let init1: Vec<Word> = (1..=6).collect();
        let init2: Vec<Word> = (1..=12).collect();
        let s1 = MachineSpec::new(1, 6, 6, 1);
        let s2 = MachineSpec::new(1, 6, 6, 2);
        let r1 = run_linear(&s1, &CyclicWave::new(1), &init1, 6);
        let r2 = run_linear(&s2, &CyclicWave::new(2), &init2, 6);
        assert_ne!(r1.values, r2.values);
        let _ = n;
    }

    #[test]
    fn touches_every_cell() {
        let w = CyclicWave::new(4);
        let touched: std::collections::HashSet<usize> = (0..8).map(|t| w.cell(0, t)).collect();
        assert_eq!(touched.len(), 4);
    }
}
