//! An order-`m` space-time recurrence on the mesh — the `m > 1` mesh
//! workload, mirroring [`crate::wave::CyclicWave`] in two dimensions.
//!
//! Cell `(i, j)` keeps a cyclic buffer of its last `m` values; at step
//! `t` it touches cell `t mod m`, whose content is the node's value
//! from `m` steps ago.  The update combines that delayed value with all
//! four fresh neighbor values, so the recurrence genuinely depends on
//! the whole private memory and on the full von Neumann neighborhood.

use bsmp_hram::Word;
use bsmp_machine::MeshProgram;

/// `value(i, j, t) = delayed + w − e + s − n + prev` (wrapping), where
/// `delayed = value(i, j, t − m)`.
#[derive(Clone, Copy, Debug)]
pub struct PlaneWave {
    /// Buffer depth — the machine density `m`.
    pub m: usize,
}

impl PlaneWave {
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        PlaneWave { m }
    }
}

impl MeshProgram for PlaneWave {
    fn m(&self) -> usize {
        self.m
    }

    fn cell(&self, _i: usize, _j: usize, t: i64) -> usize {
        (t.rem_euclid(self.m as i64)) as usize
    }

    #[allow(clippy::too_many_arguments)]
    fn delta(
        &self,
        _i: usize,
        _j: usize,
        _t: i64,
        own: Word,
        prev: Word,
        w: Word,
        e: Word,
        s: Word,
        n: Word,
    ) -> Word {
        own.wrapping_add(w)
            .wrapping_sub(e)
            .wrapping_add(s)
            .wrapping_sub(n)
            .wrapping_add(prev)
    }

    fn time_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsmp_machine::{run_mesh, MachineSpec};

    /// Oracle: simulate the recurrence directly on a value history.
    fn oracle(init: &[Word], side: usize, m: usize, steps: i64) -> Vec<Word> {
        let n = side * side;
        let mut hist: Vec<Word> = (0..n).map(|v| init[v * m]).collect();
        let mut mem = init.to_vec();
        for t in 1..=steps {
            let c = (t % m as i64) as usize;
            let prev_row = hist.clone();
            let at = |i: isize, j: isize| -> Word {
                if i < 0 || j < 0 || i >= side as isize || j >= side as isize {
                    0
                } else {
                    prev_row[j as usize * side + i as usize]
                }
            };
            for j in 0..side {
                for i in 0..side {
                    let v = j * side + i;
                    let own = mem[v * m + c];
                    let (i, j) = (i as isize, j as isize);
                    let out = own
                        .wrapping_add(at(i - 1, j))
                        .wrapping_sub(at(i + 1, j))
                        .wrapping_add(at(i, j - 1))
                        .wrapping_sub(at(i, j + 1))
                        .wrapping_add(prev_row[v]);
                    hist[v] = out;
                    mem[v * m + c] = out;
                }
            }
        }
        hist
    }

    #[test]
    fn matches_oracle() {
        let (side, m, steps) = (6usize, 3usize, 9i64);
        let n = side * side;
        let init: Vec<Word> = (0..(n * m) as u64).map(|i| i * 7 + 1).collect();
        let spec = MachineSpec::new(2, n as u64, n as u64, m as u64);
        let run = run_mesh(&spec, &PlaneWave::new(m), &init, steps);
        assert_eq!(run.values, oracle(&init, side, m, steps));
    }

    #[test]
    fn touches_every_cell() {
        let w = PlaneWave::new(4);
        let touched: std::collections::HashSet<usize> = (0..8).map(|t| w.cell(0, 0, t)).collect();
        assert_eq!(touched.len(), 4);
    }
}
