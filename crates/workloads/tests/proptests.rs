//! Property-based tests of the workload semantics.

use bsmp_machine::{run_linear, run_mesh, MachineSpec};
use bsmp_workloads::{cannon, inputs, OddEvenSort, SystolicMatmul, TokenShift};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn odd_even_sort_sorts_anything(vals in prop::collection::vec(0u64..10_000, 2..24)) {
        let n = vals.len() as u64;
        let spec = MachineSpec::new(1, n, n, 1);
        let run = run_linear(&spec, &OddEvenSort::new(vals.len()), &vals, vals.len() as i64);
        let mut expect = vals.clone();
        expect.sort();
        prop_assert_eq!(run.values, expect);
    }

    #[test]
    fn sort_is_idempotent_after_n_steps(vals in prop::collection::vec(0u64..100, 4..16), extra in 0i64..8) {
        let n = vals.len() as u64;
        let spec = MachineSpec::new(1, n, n, 1);
        let a = run_linear(&spec, &OddEvenSort::new(vals.len()), &vals, vals.len() as i64);
        let b = run_linear(&spec, &OddEvenSort::new(vals.len()), &vals, vals.len() as i64 + extra);
        prop_assert_eq!(a.values, b.values, "sorted is a fixed point");
    }

    #[test]
    fn token_shift_is_a_shift(vals in prop::collection::vec(any::<u64>(), 3..20), k in 1i64..10) {
        let n = vals.len();
        let spec = MachineSpec::new(1, n as u64, n as u64, 1);
        let run = run_linear(&spec, &TokenShift::new(0), &vals, k);
        for v in 0..n {
            let expect = if (v as i64) < k { 0 } else { vals[v - k as usize] };
            prop_assert_eq!(run.values[v], expect);
        }
    }

    #[test]
    fn systolic_matmul_equals_oracle(side in 2usize..6, seed in any::<u64>()) {
        let prog = SystolicMatmul::new(side);
        let a = inputs::random_matrix(seed, side, 64);
        let b = inputs::random_matrix(seed.wrapping_add(1), side, 64);
        let init = prog.stage_inputs(&a, &b);
        let n = (side * side) as u64;
        let spec = MachineSpec::new(2, n, n, (side + 1) as u64);
        let run = run_mesh(&spec, &prog, &init, prog.steps());
        let c = prog.extract_c(&run.values);
        for r in 0..side {
            for q in 0..side {
                let expect: u64 = (0..side).map(|k| a[r][k] * b[k][q]).sum();
                prop_assert_eq!(c[r][q], expect, "C[{}][{}]", r, q);
            }
        }
    }

    #[test]
    fn pack_fields_roundtrip(a in 0u64..65536, b in 0u64..65536, c in 0u64..0x1_0000_0000) {
        let w = cannon::pack(a, b, c);
        prop_assert_eq!(cannon::a_field(w), a);
        prop_assert_eq!(cannon::b_field(w), b);
        prop_assert_eq!(cannon::c_field(w), c);
    }

    #[test]
    fn generators_bound_and_deterministic(seed in any::<u64>(), count in 1usize..200, bound in 1u64..1000) {
        let v = inputs::random_words(seed, count, bound);
        prop_assert_eq!(v.len(), count);
        prop_assert!(v.iter().all(|&w| w < bound));
        prop_assert_eq!(v, inputs::random_words(seed, count, bound));
    }
}
