//! Property-based tests of the workload semantics, driven by the
//! in-repo seeded [`Rng64`] case generator.

use bsmp_faults::rng::Rng64;
use bsmp_machine::{run_linear, run_mesh, MachineSpec};
use bsmp_workloads::{cannon, inputs, OddEvenSort, SystolicMatmul, TokenShift};

const CASES: u64 = 32;

#[test]
fn odd_even_sort_sorts_anything() {
    let mut rng = Rng64::new(0x0E50);
    for _ in 0..CASES {
        let len = rng.range_u64(2, 24) as usize;
        let vals: Vec<u64> = rng.vec_below(len, 10_000);
        let n = vals.len() as u64;
        let spec = MachineSpec::new(1, n, n, 1);
        let run = run_linear(
            &spec,
            &OddEvenSort::new(vals.len()),
            &vals,
            vals.len() as i64,
        );
        let mut expect = vals.clone();
        expect.sort();
        assert_eq!(run.values, expect);
    }
}

#[test]
fn sort_is_idempotent_after_n_steps() {
    let mut rng = Rng64::new(0x1DE9);
    for _ in 0..CASES {
        let len = rng.range_u64(4, 16) as usize;
        let vals: Vec<u64> = rng.vec_below(len, 100);
        let extra = rng.range_i64(0, 8);
        let n = vals.len() as u64;
        let spec = MachineSpec::new(1, n, n, 1);
        let a = run_linear(
            &spec,
            &OddEvenSort::new(vals.len()),
            &vals,
            vals.len() as i64,
        );
        let b = run_linear(
            &spec,
            &OddEvenSort::new(vals.len()),
            &vals,
            vals.len() as i64 + extra,
        );
        assert_eq!(a.values, b.values, "sorted is a fixed point");
    }
}

#[test]
fn token_shift_is_a_shift() {
    let mut rng = Rng64::new(0x70CE);
    for _ in 0..CASES {
        let len = rng.range_u64(3, 20) as usize;
        let vals: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let k = rng.range_i64(1, 10);
        let n = vals.len();
        let spec = MachineSpec::new(1, n as u64, n as u64, 1);
        let run = run_linear(&spec, &TokenShift::new(0), &vals, k);
        for v in 0..n {
            let expect = if (v as i64) < k {
                0
            } else {
                vals[v - k as usize]
            };
            assert_eq!(run.values[v], expect);
        }
    }
}

#[test]
fn systolic_matmul_equals_oracle() {
    let mut rng = Rng64::new(0x5757);
    for _ in 0..CASES {
        let side = rng.range_u64(2, 6) as usize;
        let seed = rng.next_u64();
        let prog = SystolicMatmul::new(side);
        let a = inputs::random_matrix(seed, side, 64);
        let b = inputs::random_matrix(seed.wrapping_add(1), side, 64);
        let init = prog.stage_inputs(&a, &b);
        let n = (side * side) as u64;
        let spec = MachineSpec::new(2, n, n, (side + 1) as u64);
        let run = run_mesh(&spec, &prog, &init, prog.steps());
        let c = prog.extract_c(&run.values);
        for r in 0..side {
            for q in 0..side {
                let expect: u64 = (0..side).map(|k| a[r][k] * b[k][q]).sum();
                assert_eq!(c[r][q], expect, "C[{r}][{q}]");
            }
        }
    }
}

#[test]
fn pack_fields_roundtrip() {
    let mut rng = Rng64::new(0x9AC4);
    for _ in 0..CASES {
        let a = rng.below(65536);
        let b = rng.below(65536);
        let c = rng.below(0x1_0000_0000);
        let w = cannon::pack(a, b, c);
        assert_eq!(cannon::a_field(w), a);
        assert_eq!(cannon::b_field(w), b);
        assert_eq!(cannon::c_field(w), c);
    }
}

#[test]
fn generators_bound_and_deterministic() {
    let mut rng = Rng64::new(0x6E4E);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let count = rng.range_u64(1, 200) as usize;
        let bound = rng.range_u64(1, 1000);
        let v = inputs::random_words(seed, count, bound);
        assert_eq!(v.len(), count);
        assert!(v.iter().all(|&w| w < bound));
        assert_eq!(v, inputs::random_words(seed, count, bound));
    }
}
