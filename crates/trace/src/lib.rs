//! `bsmp-trace`: a structured tracing and certification layer for the
//! BSMP simulation engines (dependency-free apart from the
//! `bsmp-analytic` closed forms that [`certify`] sandwiches runs with).
//!
//! The paper's central object is an accounting identity: measured slowdown
//! `T_p / T_n` factors into the Brent term `n/p` and the locality slowdown
//! `A(n, m, p)` of Theorem 1.  This crate records where that time actually
//! goes — one [`StageRecord`] per bulk-synchronous stage, carrying the points
//! visited, messages sent, distance-weighted communication delay charged by
//! the stage clock, fault events consumed, wall time, and worker-thread
//! occupancy — and closes the run with a [`Summary`] that performs the
//! Brent × locality split explicitly.
//!
//! Two design rules keep the layer out of the hot path:
//!
//! 1. **Disabled mode is free.**  [`Tracer::off`] holds no state; every
//!    method starts with an `Option` check on a `None` that the optimizer
//!    sees through, so untraced runs stay bit-identical to pre-trace builds.
//! 2. **Per-worker accumulation is lock-free.**  During a pooled stage each
//!    worker adds its point/message counts to its own [`StageTally`] slot
//!    with relaxed atomics; the slots are drained and merged once, at stage
//!    close, after the pool barrier.
//!
//! Logs serialize to a hand-rolled JSON format tagged [`SCHEMA`]
//! (`bsmp-trace/v1`); [`RunTrace::validate`] checks the structural
//! invariants that `bsmp-repro trace-validate` enforces.

pub mod certify;
pub mod json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use json::Val;

/// Schema tag written into every trace log.
pub const SCHEMA: &str = "bsmp-trace/v1";

/// One bulk-synchronous stage as observed by the tracer.
#[derive(Clone, Debug, PartialEq)]
pub struct StageRecord {
    /// Stage index, strictly increasing from 0 within a run.
    pub stage: u64,
    /// Engine-assigned label (e.g. `"step"`, `"rearrange"`, `"scatter"`).
    pub label: String,
    /// Guest points visited during the stage (summed over processors).
    pub points: u64,
    /// Words communicated between processors during the stage.
    pub messages: u64,
    /// Parallel model time charged (the stage's max-over-processors cost).
    pub cost: f64,
    /// Busy model time charged (summed over processors).
    pub busy: f64,
    /// Distance-weighted communication delay charged by the stage clock.
    pub comm_delay: f64,
    /// Fault-injected delay consumed during the stage.
    pub injected_delay: f64,
    /// Fault retries consumed during the stage.
    pub retries: u64,
    /// Stages recovered from transient faults during the stage.
    pub recovered: u64,
    /// Processor-stages spent inside an active partition-storm window.
    pub outages: u64,
    /// Churn events (departures + rejoins) during the stage.
    pub churn: u64,
    /// Churn redelivery backoff retries consumed during the stage.
    pub backoffs: u64,
    /// Host wall-clock time spent executing the stage, in nanoseconds.
    pub wall_ns: u64,
    /// Worker threads that executed the stage (1 for serial stages).
    pub workers: u64,
}

/// End-of-run roll-up, including the Theorem 1 slowdown split.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Host parallel model time `T_p`.
    pub host_time: f64,
    /// Guest model time `T_n`.
    pub guest_time: f64,
    /// Measured slowdown `T_p / T_n`.
    pub slowdown: f64,
    /// Brent (parallelism-loss) term `n/p`.
    pub brent_term: f64,
    /// Locality term: `slowdown / (n/p)` — the empirical `A(n, m, p)`.
    pub locality_term: f64,
    /// Theorem 1 regime tag (`"R1"`…`"R4"`), filled by the façade.
    pub regime: String,
    /// Number of stages recorded.
    pub stages: u64,
    /// Total points visited.
    pub points: u64,
    /// Total messages.
    pub messages: u64,
    /// Total distance-weighted communication delay.
    pub comm_delay: f64,
    /// Total fault-injected delay.
    pub injected_delay: f64,
    /// Total fault retries.
    pub retries: u64,
    /// Total processor-stages spent inside partition-storm windows.
    pub outages: u64,
    /// Total churn events (departures + rejoins).
    pub churn: u64,
    /// Total churn backoff retries.
    pub backoffs: u64,
    /// Total wall time across stages, nanoseconds.
    pub wall_ns: u64,
    /// Busy / (p · parallel) utilization over the whole run.
    pub efficiency: f64,
}

/// A complete trace of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunTrace {
    /// Engine name (`"naive1"`, `"multi1"`, …).
    pub engine: String,
    /// Mesh dimensionality.
    pub d: u32,
    /// Guest machine size.
    pub n: u64,
    /// Words of memory per guest node.
    pub m: u64,
    /// Host processor count.
    pub p: u64,
    /// Guest steps simulated.
    pub steps: u64,
    /// Per-stage records, in execution order.
    pub stages: Vec<StageRecord>,
    /// End-of-run roll-up.
    pub summary: Summary,
}

/// Static description of the run, supplied when the trace is closed.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    pub engine: &'static str,
    pub d: u32,
    pub n: u64,
    pub m: u64,
    pub p: u64,
    pub steps: u64,
}

/// Cumulative counters sampled from the engine's clock and fault session at
/// a stage boundary.  The tracer differences consecutive samples itself, so
/// engines hand over running totals and never track "previous" state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTotals {
    /// Cumulative parallel model time (`StageClock::parallel_time`).
    pub parallel: f64,
    /// Cumulative busy model time (`StageClock::busy_time`).
    pub busy: f64,
    /// Cumulative communication delay (`StageClock::comm_time`).
    pub comm: f64,
    /// Cumulative fault-injected delay (`FaultStats::injected_delay`).
    pub injected_delay: f64,
    /// Cumulative fault retries.
    pub retries: u64,
    /// Cumulative recovered stages.
    pub recovered: u64,
    /// Cumulative storm processor-stages (`FaultStats::outage_stages`).
    pub outages: u64,
    /// Cumulative churn events (`FaultStats::departures + rejoins`).
    pub churn: u64,
    /// Cumulative backoff retries (`FaultStats::backoff_retries`).
    pub backoffs: u64,
}

/// Lock-free per-processor point/message counters for one stage.  Each
/// worker touches only its own slot, so relaxed ordering suffices; the pool
/// barrier at stage close publishes the values to the draining thread.
pub struct StageTally {
    points: Vec<AtomicU64>,
    messages: Vec<AtomicU64>,
}

impl StageTally {
    fn with_procs(p: usize) -> Self {
        Self {
            points: (0..p).map(|_| AtomicU64::new(0)).collect(),
            messages: (0..p).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Credit `points` visited and `messages` sent to processor `pi`.
    #[inline]
    pub fn add(&self, pi: usize, points: u64, messages: u64) {
        self.points[pi].fetch_add(points, Ordering::Relaxed);
        self.messages[pi].fetch_add(messages, Ordering::Relaxed);
    }

    fn drain(&self) -> (u64, u64) {
        let points = self
            .points
            .iter()
            .map(|c| c.swap(0, Ordering::Relaxed))
            .sum();
        let messages = self
            .messages
            .iter()
            .map(|c| c.swap(0, Ordering::Relaxed))
            .sum();
        (points, messages)
    }
}

struct TraceState {
    stages: Vec<StageRecord>,
    tally: StageTally,
    open_label: String,
    start: Option<Instant>,
    prev: StageTotals,
    run: Option<RunTrace>,
}

/// The recording handle threaded through the engines.
///
/// Construct with [`Tracer::off`] (the default, a true no-op) or
/// [`Tracer::recording`].  Engines call [`Tracer::begin_stage`] /
/// [`Tracer::end_stage`] around each bulk-synchronous stage, add counts via
/// [`Tracer::tally`] inside worker closures, and the caller closes the run
/// with [`Tracer::finish_run`] and collects it with [`Tracer::take`].
#[derive(Default)]
pub struct Tracer {
    state: Option<Box<TraceState>>,
}

impl Tracer {
    /// A disabled tracer: every method is a no-op behind one `None` check.
    #[inline]
    pub fn off() -> Self {
        Self { state: None }
    }

    /// A recording tracer.
    pub fn recording() -> Self {
        Self {
            state: Some(Box::new(TraceState {
                stages: Vec::new(),
                tally: StageTally::with_procs(0),
                open_label: String::new(),
                start: None,
                prev: StageTotals::default(),
                run: None,
            })),
        }
    }

    /// Whether this tracer records anything.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.state.is_some()
    }

    /// Size the per-processor tally for `p` processors.  Engines call this
    /// once, before their stage loop.
    pub fn ensure_procs(&mut self, p: usize) {
        if let Some(st) = &mut self.state {
            if st.tally.points.len() < p {
                st.tally = StageTally::with_procs(p);
            }
        }
    }

    /// The shared per-stage tally, for worker closures to add into.
    /// `None` when tracing is disabled — engines keep local counters and
    /// skip the atomic adds entirely in that case.
    #[inline]
    pub fn tally(&self) -> Option<&StageTally> {
        self.state.as_ref().map(|st| &st.tally)
    }

    /// Open a stage.  `label` names the engine's phase for the log.
    #[inline]
    pub fn begin_stage(&mut self, label: &str) {
        if let Some(st) = &mut self.state {
            st.open_label.clear();
            st.open_label.push_str(label);
            st.start = Some(Instant::now());
        }
    }

    /// Close the open stage.  `totals` are *cumulative* counters; the tracer
    /// differences them against the previous close so per-stage figures
    /// telescope exactly to the run totals.
    pub fn end_stage(&mut self, totals: StageTotals, workers: usize) {
        if let Some(st) = &mut self.state {
            let wall_ns = st
                .start
                .take()
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            let (points, messages) = st.tally.drain();
            let stage = st.stages.len() as u64;
            st.stages.push(StageRecord {
                stage,
                label: std::mem::take(&mut st.open_label),
                points,
                messages,
                cost: totals.parallel - st.prev.parallel,
                busy: totals.busy - st.prev.busy,
                comm_delay: totals.comm - st.prev.comm,
                injected_delay: totals.injected_delay - st.prev.injected_delay,
                retries: totals.retries - st.prev.retries,
                recovered: totals.recovered - st.prev.recovered,
                outages: totals.outages - st.prev.outages,
                churn: totals.churn - st.prev.churn,
                backoffs: totals.backoffs - st.prev.backoffs,
                wall_ns,
                workers: workers.max(1) as u64,
            });
            st.prev = totals;
        }
    }

    /// Close the run: compute the summary (Brent × locality split) and make
    /// the finished [`RunTrace`] available to [`Tracer::take`].  The regime
    /// tag is left empty here — the façade stamps it from Theorem 1, since
    /// this crate deliberately knows nothing about the analytic bounds.
    pub fn finish_run(&mut self, meta: RunMeta, host_time: f64, guest_time: f64) {
        if let Some(st) = &mut self.state {
            let slowdown = if guest_time == 0.0 {
                if host_time == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                host_time / guest_time
            };
            let brent = meta.n as f64 / meta.p as f64;
            // Float totals come straight from the cumulative ledger
            // (`st.prev` holds the running totals after the last stage
            // close), NOT from re-summing the per-stage diffs: each
            // diff loses an ulp against the ledger it telescoped from,
            // and at thousands of stages the naive re-sum can drift
            // away from the figures the certifier checks against.
            // Integer counters are exact either way; the ledger is
            // still the single source of truth for all of them.
            let totals = st.prev;
            let denom = meta.p as f64 * host_time;
            let summary = Summary {
                host_time,
                guest_time,
                slowdown,
                brent_term: brent,
                locality_term: slowdown / brent,
                regime: String::new(),
                stages: st.stages.len() as u64,
                points: st.stages.iter().map(|s| s.points).sum(),
                messages: st.stages.iter().map(|s| s.messages).sum(),
                comm_delay: totals.comm,
                injected_delay: totals.injected_delay,
                retries: totals.retries,
                outages: totals.outages,
                churn: totals.churn,
                backoffs: totals.backoffs,
                wall_ns: st.stages.iter().map(|s| s.wall_ns).sum(),
                efficiency: if denom > 0.0 {
                    totals.busy / denom
                } else {
                    1.0
                },
            };
            st.run = Some(RunTrace {
                engine: meta.engine.to_string(),
                d: meta.d,
                n: meta.n,
                m: meta.m,
                p: meta.p,
                steps: meta.steps,
                stages: std::mem::take(&mut st.stages),
                summary,
            });
        }
    }

    /// Collect the finished trace (after [`Tracer::finish_run`]).
    pub fn take(&mut self) -> Option<RunTrace> {
        self.state.as_mut().and_then(|st| st.run.take())
    }
}

/// Relative tolerance for telescoped float sums in [`RunTrace::validate`].
/// Per-stage diffs each round once, so the telescoped total drifts from the
/// cumulative clock by at most a few ulps per stage.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

impl RunTrace {
    /// Check the structural invariants of the log: strictly monotone stage
    /// ids, non-negative finite per-stage figures, `busy ≥ cost`, messages
    /// present wherever communication delay was charged, summary totals
    /// matching the per-stage sums, `Σ cost` matching the reported host
    /// time, and the Brent × locality split multiplying back to the
    /// measured slowdown.  Regime-tag *semantics* (Theorem 1 consistency)
    /// are checked by the façade, which owns the analytic bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.p == 0 {
            return Err("n and p must be positive".to_string());
        }
        if self.stages.is_empty() {
            return Err("trace has no stages".to_string());
        }
        let mut prev: Option<u64> = None;
        for s in &self.stages {
            if let Some(q) = prev {
                if s.stage <= q {
                    return Err(format!(
                        "stage ids not strictly increasing: {} after {}",
                        s.stage, q
                    ));
                }
            }
            prev = Some(s.stage);
            for (what, x) in [
                ("cost", s.cost),
                ("busy", s.busy),
                ("comm_delay", s.comm_delay),
                ("injected_delay", s.injected_delay),
            ] {
                if !x.is_finite() || x < -REL_TOL {
                    return Err(format!("stage {}: {} = {} is degenerate", s.stage, what, x));
                }
            }
            if s.busy + REL_TOL * s.busy.abs().max(1.0) < s.cost {
                return Err(format!(
                    "stage {}: busy time {} below parallel cost {}",
                    s.stage, s.busy, s.cost
                ));
            }
            if s.comm_delay > REL_TOL && s.messages == 0 {
                return Err(format!(
                    "stage {}: comm delay {} charged with zero messages",
                    s.stage, s.comm_delay
                ));
            }
            if s.workers == 0 {
                return Err(format!("stage {}: zero workers", s.stage));
            }
        }
        let sm = &self.summary;
        if sm.stages != self.stages.len() as u64 {
            return Err(format!(
                "summary counts {} stages, log has {}",
                sm.stages,
                self.stages.len()
            ));
        }
        let points: u64 = self.stages.iter().map(|s| s.points).sum();
        let messages: u64 = self.stages.iter().map(|s| s.messages).sum();
        let retries: u64 = self.stages.iter().map(|s| s.retries).sum();
        let outages: u64 = self.stages.iter().map(|s| s.outages).sum();
        let churn: u64 = self.stages.iter().map(|s| s.churn).sum();
        let backoffs: u64 = self.stages.iter().map(|s| s.backoffs).sum();
        if points != sm.points
            || messages != sm.messages
            || retries != sm.retries
            || outages != sm.outages
            || churn != sm.churn
            || backoffs != sm.backoffs
        {
            return Err("summary counters diverge from per-stage sums".to_string());
        }
        let comm: f64 = self.stages.iter().map(|s| s.comm_delay).sum();
        let injected: f64 = self.stages.iter().map(|s| s.injected_delay).sum();
        if !close(comm, sm.comm_delay) || !close(injected, sm.injected_delay) {
            return Err("summary delay totals diverge from per-stage sums".to_string());
        }
        let cost: f64 = self.stages.iter().map(|s| s.cost).sum();
        if !close(cost, sm.host_time) {
            return Err(format!(
                "stage costs sum to {} but summary host_time is {}",
                cost, sm.host_time
            ));
        }
        if !sm.slowdown.is_finite() || !sm.host_time.is_finite() || !sm.guest_time.is_finite() {
            return Err("summary times are degenerate".to_string());
        }
        if !close(sm.brent_term * sm.locality_term, sm.slowdown) {
            return Err(format!(
                "Brent term {} × locality term {} does not recover slowdown {}",
                sm.brent_term, sm.locality_term, sm.slowdown
            ));
        }
        if !matches!(sm.regime.as_str(), "R1" | "R2" | "R3" | "R4") {
            return Err(format!("regime tag '{}' is not one of R1..R4", sm.regime));
        }
        Ok(())
    }

    /// Serialize to the `bsmp-trace/v1` JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.stages.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"engine\": \"{}\",\n",
            json::escape(&self.engine)
        ));
        out.push_str(&format!("  \"d\": {},\n", self.d));
        out.push_str(&format!("  \"n\": {},\n", self.n));
        out.push_str(&format!("  \"m\": {},\n", self.m));
        out.push_str(&format!("  \"p\": {},\n", self.p));
        out.push_str(&format!("  \"steps\": {},\n", self.steps));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": {}, \"label\": \"{}\", \"points\": {}, \"messages\": {}, \
                 \"cost\": {}, \"busy\": {}, \"comm_delay\": {}, \"injected_delay\": {}, \
                 \"retries\": {}, \"recovered\": {}, \"outages\": {}, \"churn\": {}, \
                 \"backoffs\": {}, \"wall_ns\": {}, \"workers\": {}}}{}\n",
                s.stage,
                json::escape(&s.label),
                s.points,
                s.messages,
                json::num(s.cost),
                json::num(s.busy),
                json::num(s.comm_delay),
                json::num(s.injected_delay),
                s.retries,
                s.recovered,
                s.outages,
                s.churn,
                s.backoffs,
                s.wall_ns,
                s.workers,
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let sm = &self.summary;
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"host_time\": {},\n",
            json::num(sm.host_time)
        ));
        out.push_str(&format!(
            "    \"guest_time\": {},\n",
            json::num(sm.guest_time)
        ));
        out.push_str(&format!("    \"slowdown\": {},\n", json::num(sm.slowdown)));
        out.push_str(&format!(
            "    \"brent_term\": {},\n",
            json::num(sm.brent_term)
        ));
        out.push_str(&format!(
            "    \"locality_term\": {},\n",
            json::num(sm.locality_term)
        ));
        out.push_str(&format!(
            "    \"regime\": \"{}\",\n",
            json::escape(&sm.regime)
        ));
        out.push_str(&format!("    \"stages\": {},\n", sm.stages));
        out.push_str(&format!("    \"points\": {},\n", sm.points));
        out.push_str(&format!("    \"messages\": {},\n", sm.messages));
        out.push_str(&format!(
            "    \"comm_delay\": {},\n",
            json::num(sm.comm_delay)
        ));
        out.push_str(&format!(
            "    \"injected_delay\": {},\n",
            json::num(sm.injected_delay)
        ));
        out.push_str(&format!("    \"retries\": {},\n", sm.retries));
        out.push_str(&format!("    \"outages\": {},\n", sm.outages));
        out.push_str(&format!("    \"churn\": {},\n", sm.churn));
        out.push_str(&format!("    \"backoffs\": {},\n", sm.backoffs));
        out.push_str(&format!("    \"wall_ns\": {},\n", sm.wall_ns));
        out.push_str(&format!(
            "    \"efficiency\": {}\n",
            json::num(sm.efficiency)
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Parse a `bsmp-trace/v1` JSON document.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        let schema = field_str(&doc, "schema")?;
        if schema != SCHEMA {
            return Err(format!("schema '{schema}' is not '{SCHEMA}'"));
        }
        let stages_val = doc
            .get("stages")
            .and_then(Val::as_arr)
            .ok_or_else(|| "missing 'stages' array".to_string())?;
        let mut stages = Vec::with_capacity(stages_val.len());
        for v in stages_val {
            stages.push(StageRecord {
                stage: field_u64(v, "stage")?,
                label: field_str(v, "label")?.to_string(),
                points: field_u64(v, "points")?,
                messages: field_u64(v, "messages")?,
                cost: field_f64(v, "cost")?,
                busy: field_f64(v, "busy")?,
                comm_delay: field_f64(v, "comm_delay")?,
                injected_delay: field_f64(v, "injected_delay")?,
                retries: field_u64(v, "retries")?,
                recovered: field_u64(v, "recovered")?,
                outages: field_u64_or0(v, "outages")?,
                churn: field_u64_or0(v, "churn")?,
                backoffs: field_u64_or0(v, "backoffs")?,
                wall_ns: field_u64(v, "wall_ns")?,
                workers: field_u64(v, "workers")?,
            });
        }
        let sv = doc
            .get("summary")
            .ok_or_else(|| "missing 'summary' object".to_string())?;
        let summary = Summary {
            host_time: field_f64(sv, "host_time")?,
            guest_time: field_f64(sv, "guest_time")?,
            slowdown: field_f64(sv, "slowdown")?,
            brent_term: field_f64(sv, "brent_term")?,
            locality_term: field_f64(sv, "locality_term")?,
            regime: field_str(sv, "regime")?.to_string(),
            stages: field_u64(sv, "stages")?,
            points: field_u64(sv, "points")?,
            messages: field_u64(sv, "messages")?,
            comm_delay: field_f64(sv, "comm_delay")?,
            injected_delay: field_f64(sv, "injected_delay")?,
            retries: field_u64(sv, "retries")?,
            outages: field_u64_or0(sv, "outages")?,
            churn: field_u64_or0(sv, "churn")?,
            backoffs: field_u64_or0(sv, "backoffs")?,
            wall_ns: field_u64(sv, "wall_ns")?,
            efficiency: field_f64(sv, "efficiency")?,
        };
        Ok(RunTrace {
            engine: field_str(&doc, "engine")?.to_string(),
            d: field_u64(&doc, "d")? as u32,
            n: field_u64(&doc, "n")?,
            m: field_u64(&doc, "m")?,
            p: field_u64(&doc, "p")?,
            steps: field_u64(&doc, "steps")?,
            stages,
            summary,
        })
    }
}

fn field_f64(v: &Val, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Val::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn field_u64(v: &Val, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Val::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// Like [`field_u64`] but defaulting to 0 when the field is absent —
/// used for the scenario counters added after the first `bsmp-trace/v1`
/// logs were written, so old documents still parse.
fn field_u64_or0(v: &Val, key: &str) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(0),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| format!("non-integer field '{key}'")),
    }
}

fn field_str<'a>(v: &'a Val, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Val::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        let mut t = Tracer::recording();
        t.ensure_procs(2);
        t.begin_stage("step");
        t.tally().unwrap().add(0, 8, 2);
        t.tally().unwrap().add(1, 8, 3);
        t.end_stage(
            StageTotals {
                parallel: 10.0,
                busy: 18.0,
                comm: 4.0,
                ..StageTotals::default()
            },
            2,
        );
        t.begin_stage("step");
        t.tally().unwrap().add(0, 8, 1);
        t.end_stage(
            StageTotals {
                parallel: 25.0,
                busy: 40.0,
                comm: 6.0,
                injected_delay: 3.0,
                retries: 1,
                recovered: 1,
                outages: 2,
                churn: 1,
                backoffs: 3,
            },
            2,
        );
        t.finish_run(
            RunMeta {
                engine: "test",
                d: 1,
                n: 16,
                m: 1,
                p: 2,
                steps: 2,
            },
            25.0,
            4.0,
        );
        let mut run = t.take().unwrap();
        run.summary.regime = "R4".to_string();
        run
    }

    #[test]
    fn totals_match_ledger_at_t4096() {
        // Regression: summary float totals must come from the
        // cumulative ledger, not a re-sum of the per-stage diffs.  With
        // an increment of 0.1 (not representable in binary) every diff
        // loses an ulp against the ledger, and at T = 4096 the naive
        // re-sum visibly drifts from the cumulative total.
        let steps = 4096u64;
        let mut t = Tracer::recording();
        t.ensure_procs(1);
        let mut ledger = StageTotals::default();
        for _ in 0..steps {
            t.begin_stage("step");
            t.tally().unwrap().add(0, 1, 1);
            ledger.parallel += 0.1;
            ledger.busy += 0.1;
            ledger.comm += 0.1;
            ledger.injected_delay += 0.1;
            t.end_stage(ledger, 1);
        }
        t.finish_run(
            RunMeta {
                engine: "test",
                d: 1,
                n: 1,
                m: 1,
                p: 1,
                steps,
            },
            ledger.parallel,
            steps as f64,
        );
        let mut run = t.take().unwrap();
        run.summary.regime = "R1".to_string();
        // Bit-exact against the ledger, no tolerance.
        assert_eq!(run.summary.comm_delay.to_bits(), ledger.comm.to_bits());
        assert_eq!(
            run.summary.injected_delay.to_bits(),
            ledger.injected_delay.to_bits()
        );
        // The per-stage re-sum is close but NOT bit-identical here —
        // that is exactly the drift the ledger read sidesteps.
        let resum: f64 = run.stages.iter().map(|s| s.comm_delay).sum();
        assert!((resum - ledger.comm).abs() / ledger.comm < 1e-9);
        run.validate().expect("drift-free totals validate");
    }

    #[test]
    fn off_tracer_is_inert() {
        let mut t = Tracer::off();
        assert!(!t.is_on());
        t.ensure_procs(8);
        assert!(t.tally().is_none());
        t.begin_stage("x");
        t.end_stage(StageTotals::default(), 4);
        t.finish_run(
            RunMeta {
                engine: "x",
                d: 1,
                n: 1,
                m: 1,
                p: 1,
                steps: 0,
            },
            0.0,
            0.0,
        );
        assert!(t.take().is_none());
    }

    #[test]
    fn stage_diffs_telescope() {
        let run = sample_trace();
        assert_eq!(run.stages.len(), 2);
        assert_eq!(run.stages[0].points, 16);
        assert_eq!(run.stages[0].messages, 5);
        assert_eq!(run.stages[0].cost, 10.0);
        assert_eq!(run.stages[1].cost, 15.0);
        assert_eq!(run.stages[1].comm_delay, 2.0);
        assert_eq!(run.stages[1].retries, 1);
        assert_eq!(run.summary.points, 24);
        assert_eq!(run.summary.slowdown, 6.25);
        assert_eq!(run.summary.brent_term, 8.0);
        assert_eq!(run.summary.brent_term * run.summary.locality_term, 6.25);
        // Tally was drained at stage close: second stage saw only proc 0.
        assert_eq!(run.stages[1].points, 8);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let run = sample_trace();
        run.validate().unwrap();

        let mut bad = run.clone();
        bad.stages[1].stage = 0;
        assert!(bad.validate().unwrap_err().contains("strictly increasing"));

        let mut bad = run.clone();
        bad.summary.host_time = 99.0;
        assert!(bad.validate().unwrap_err().contains("host_time"));

        let mut bad = run.clone();
        bad.summary.regime = "R9".to_string();
        assert!(bad.validate().unwrap_err().contains("regime"));

        let mut bad = run.clone();
        bad.stages[0].messages = 0;
        bad.summary.messages -= 5;
        assert!(bad.validate().unwrap_err().contains("zero messages"));

        let mut bad = run.clone();
        bad.summary.locality_term *= 2.0;
        assert!(bad.validate().unwrap_err().contains("Brent"));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let run = sample_trace();
        let doc = run.to_json();
        let back = RunTrace::from_json(&doc).unwrap();
        assert_eq!(back, run);
        back.validate().unwrap();
    }

    #[test]
    fn scenario_counters_telescope_and_survive_round_trip() {
        let run = sample_trace();
        assert_eq!(run.stages[1].outages, 2);
        assert_eq!(run.stages[1].churn, 1);
        assert_eq!(run.stages[1].backoffs, 3);
        assert_eq!(run.summary.outages, 2);
        assert_eq!(run.summary.churn, 1);
        assert_eq!(run.summary.backoffs, 3);

        let mut bad = run.clone();
        bad.summary.backoffs += 1;
        assert!(bad.validate().unwrap_err().contains("counters diverge"));
    }

    #[test]
    fn pre_scenario_documents_still_parse() {
        // Strip the new counters to emulate a log written before the
        // scenario engine existed; they must default to zero.
        let mut doc = sample_trace().to_json();
        for key in ["outages", "churn", "backoffs"] {
            doc = doc
                .lines()
                .map(|l| {
                    let mut l = l.to_string();
                    while let Some(i) = l.find(&format!("\"{key}\":")) {
                        let end = l[i..]
                            .find(',')
                            .map(|j| (i + j + 2).min(l.len()))
                            .unwrap_or(l.len());
                        l.replace_range(i..end, "");
                    }
                    l
                })
                .collect::<Vec<_>>()
                .join("\n");
        }
        let back = RunTrace::from_json(&doc).unwrap();
        assert_eq!(back.summary.outages, 0);
        assert_eq!(back.stages[1].churn, 0);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let doc = sample_trace()
            .to_json()
            .replace("bsmp-trace/v1", "other/v9");
        assert!(RunTrace::from_json(&doc).is_err());
    }
}
