//! Two-sided bound certification for recorded runs.
//!
//! A [`RunTrace`] carries everything needed to sandwich a run between
//! the paper's envelopes: the measured slowdown `host_time/guest_time`
//! must sit between the Gunther/Brent critical-path floor
//! ([`bsmp_analytic::lower::brent_floor`]) and the engine's own upper
//! form from Theorems 1–5 (with a documented slack constant), and the
//! distance-weighted communication total must sit between the
//! Scquizzato–Silvestri-style cut floor
//! ([`bsmp_analytic::lower::comm_floor`]) and the run's busy time
//! (every unit of communication delay is charged to some processor's
//! clock, so `comm ≤ Σ busy` whenever no churn rescheduled work).
//!
//! [`certify`] distinguishes two failure classes:
//!
//! * [`CertifyError`] — the trace cannot be certified *at all*
//!   (structurally invalid, parameters outside the bounds' domain,
//!   regime stamp disagrees with the recomputed Theorem 1 range,
//!   unknown engine).  CLI exit code 2.
//! * `verdict: Violated` in the returned [`Certificate`] — the trace is
//!   well-formed but a measured figure escapes its envelope, which
//!   means either the trace was tampered with or the reporting path is
//!   broken.  CLI exit code 1.
//!
//! ### Fault adjustment
//!
//! Injected fault delay inflates `host_time` above what the clean
//! engine would report, so the *upper* checks use the fault-adjusted
//! time `host_time − injected_delay`.  The fault session accumulates
//! `injected_delay` as `Σ_stages (faulted_max − raw_max)⁺`, so the
//! adjusted time never exceeds the clean host time and the upper
//! envelope stays sound under every fault plan.  The *lower* checks use
//! the raw measured figures (faults only add time, never remove it).
//! When a plan involves churn (processors leaving and rejoining), work
//! can be deferred across stage boundaries and the fault-free busy
//! ledger is no longer an upper bound for the fault-free comm ledger of
//! the same stages, so the `comm ≤ Σ busy` check is skipped (the floor
//! still applies: settlement repays deferred work before the run ends).
//!
//! Traces recorded under [`CostModel::Instantaneous`] price every hop
//! at 0; the schema does not record the cost model, so `certify`
//! assumes bounded-speed propagation and the façade refuses to certify
//! instantaneous runs.

use crate::json::{escape, num};
use crate::RunTrace;
use bsmp_analytic::lower::{brent_floor, check_params, comm_floor, BoundError};
use bsmp_analytic::{logp2, theorem1, theorem4};

/// Relative tolerance for envelope comparisons: measured figures are
/// telescoped f64 ledgers, so exact comparisons would flag honest
/// rounding as violations.
const REL_TOL: f64 = 1e-6;

/// Slack constant applied to the naive engines' upper form
/// `q·((m+2)q)^{1/d}` (per-step constants: six sub-phases per guest
/// step plus tiling overheads).
const SLACK_NAIVE: f64 = 16.0;
/// Slack for the `d = 1` D&C engine.  Its recursion relocates the
/// block private memories at every level (the Section 4.1 variant), so
/// its cost carries both Theorem 3's combined form and an `m·log n`
/// relocation term; calibration at n = 64 puts the worst measured/form
/// ratio near 69 (shrinking with n), so 128 leaves ~2× headroom.
const SLACK_DNC1: f64 = 128.0;
/// Slack for the `d ≥ 2` D&C engines' Theorem 1/5 forms (recursion
/// constants and the leaf-size rounding; worst calibrated ratio ~10).
const SLACK_DNC: f64 = 32.0;
/// Slack for the Theorem 4 strip scheme: the engine picks the closest
/// *admissible* strip (power of two, dividing n, a multiple of p
/// strips) and pays non-amortized relocation constants on top of λ.
/// The measured/`q·λ(s*)` ratio is flat in n (≈187 at m = 1, less for
/// m > 1), so 512 leaves ~2.7× headroom at the worst calibrated point.
const SLACK_MULTI1: f64 = 512.0;
/// Slack for the d = 2 honeycomb scheme (Theorem 1 form plus the
/// naive-priced setup/drain stages).
const SLACK_MULTI2: f64 = 32.0;
/// Slack for the Section 6 pipelined-memory machine (batch constants).
const SLACK_PIPELINED: f64 = 32.0;

/// Outcome of a certification pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every measured figure sits inside its envelope.
    Certified,
    /// A measured figure escaped an envelope; see
    /// [`Certificate::failures`].
    Violated,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Certified => write!(f, "Certified"),
            Verdict::Violated => write!(f, "Violated"),
        }
    }
}

/// The per-stage sandwich `busy/p ≤ cost ≤ busy`: a stage's parallel
/// cost (max over processors) is bracketed by the average and the sum
/// of the per-processor busy times.
#[derive(Clone, Debug, PartialEq)]
pub struct StageCheck {
    /// Stage index.
    pub stage: u64,
    /// `busy / p` — the balance floor.
    pub lower: f64,
    /// The stage's recorded parallel cost.
    pub measured: f64,
    /// The stage's recorded busy total.
    pub upper: f64,
    /// Whether the sandwich holds (within [`REL_TOL`]).
    pub ok: bool,
}

/// A certified (or refuted) sandwich for one traced run.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// Engine that produced the trace.
    pub engine: String,
    /// Theorem 1 regime (validated against the recomputed range).
    pub regime: String,
    /// Slowdown floor: `max(n/p, 1)` (Gunther/Brent).
    pub lower: f64,
    /// Measured slowdown, recomputed as `host_time / guest_time`.
    pub measured: f64,
    /// Engine-specific upper envelope (Theorem 1–5 form × slack).
    pub upper: f64,
    /// Distance-weighted communication floor (Scquizzato–Silvestri).
    pub comm_lower: f64,
    /// Measured communication delay total.
    pub comm_measured: f64,
    /// Communication ceiling: the run's busy-time total.
    pub comm_upper: f64,
    /// Per-stage sandwiches (one per recorded stage).
    pub stages: Vec<StageCheck>,
    /// Smallest headroom ratio across all active checks; `< 1` exactly
    /// when some check failed.  A margin of 2 means the tightest
    /// envelope still had 2× headroom.
    pub margin: f64,
    /// Human-readable description of every failed check.
    pub failures: Vec<String>,
    /// [`Verdict::Certified`] iff `failures` is empty.
    pub verdict: Verdict,
}

/// The trace could not be certified at all (as opposed to certifying
/// with [`Verdict::Violated`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CertifyError {
    /// `RunTrace::validate` failed: the trace is structurally invalid.
    Malformed(String),
    /// The stamped regime disagrees with the Theorem 1 range recomputed
    /// from `(d, n, m, p)` — certifying against it would sandwich the
    /// run between the wrong envelopes.
    RegimeMismatch { stamped: String, expected: String },
    /// No upper form is known for this engine name.
    UnknownEngine(String),
    /// The trace parameters fall outside the bounds' domain.
    Bound(BoundError),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
            CertifyError::RegimeMismatch { stamped, expected } => write!(
                f,
                "regime stamp {stamped} disagrees with recomputed range {expected}"
            ),
            CertifyError::UnknownEngine(e) => write!(f, "no upper envelope for engine {e:?}"),
            CertifyError::Bound(e) => write!(f, "parameters outside bound domain: {e}"),
        }
    }
}

impl std::error::Error for CertifyError {}

impl From<BoundError> for CertifyError {
    fn from(e: BoundError) -> Self {
        CertifyError::Bound(e)
    }
}

/// The engine-specific upper envelope on measured slowdown, from the
/// theorem each engine implements.  Using the per-engine form (rather
/// than the regime's Theorem 1 form) matters: a naive engine run in
/// Range 1 or the strip scheme run in Range 4 legitimately exceeds the
/// *optimal* scheme's bound while staying inside its own.
fn upper_slowdown(engine: &str, d: u8, n: f64, m: f64, p: f64) -> Result<f64, CertifyError> {
    let q = n / p;
    Ok(match engine {
        // Naive simulation: q points per guest step, each access priced
        // up to f((m+2)q) = ((m+2)q)^{1/d} (Proposition 1 generalized
        // to m > 1 host cells per node).
        "naive1" | "naive2" | "naive3" => SLACK_NAIVE * q * ((m + 2.0) * q).powf(1.0 / d as f64),
        // Theorem 3's combined form, plus the block-relocation term
        // n·m·log n that the implemented recursion (which relocates
        // whole private memories at every level) actually pays — for
        // m > n/log n the relocation term exceeds the combined form's
        // naive ceiling.
        "dnc1" => {
            let combined = bsmp_analytic::bounds::try_thm3_locality(n, m)?;
            SLACK_DNC1 * n * combined.max(m * logp2(n))
        }
        // Theorem 1's d = 2 uniprocessor form (Theorem 5 at m = 1).
        "dnc2" => SLACK_DNC * n * theorem1::try_locality_slowdown(2, n, m, 1.0)?,
        // The d = 3 analogue of Theorem 2 (Conjecture 1 form); the
        // volume engine only supports m = 1.
        "dnc3" => SLACK_DNC * n * logp2(n),
        // Theorem 4's strip scheme at the optimal strip width.
        "multi1" => {
            let s = theorem4::optimal_s(n, m, p);
            SLACK_MULTI1 * q * theorem4::try_lambda(n, m, p, s)?
        }
        // The d = 2 honeycomb scheme: Theorem 1's A(n, m, p) plus a
        // naive-priced term for the setup/drain stages.
        "multi2" => {
            let a = theorem1::try_locality_slowdown(2, n, m, p)?;
            SLACK_MULTI2 * q * (a + ((m + 2.0) * q).sqrt())
        }
        // Section 6 pipelined-memory machine: one batch of q accesses
        // per guest step, priced f(X) + k ≤ ((m+2)q)^{1/d} + q.
        "pipelined1" => SLACK_PIPELINED * (q + ((m + 2.0) * q).powf(1.0 / d as f64)),
        other => return Err(CertifyError::UnknownEngine(other.to_string())),
    })
}

/// Certify one traced run against the two-sided envelopes.
///
/// Returns `Err` when the trace cannot be certified (malformed,
/// mis-stamped regime, unknown engine, parameters outside the bound
/// domain) and `Ok` with a [`Certificate`] otherwise; the certificate's
/// [`Verdict`] says whether every measured figure stayed inside its
/// envelope.
pub fn certify(trace: &RunTrace) -> Result<Certificate, CertifyError> {
    trace.validate().map_err(CertifyError::Malformed)?;
    let d = u8::try_from(trace.d)
        .map_err(|_| CertifyError::Bound(BoundError::UnsupportedDimension { d: u8::MAX }))?;
    let (n, m, p) = (trace.n as f64, trace.m as f64, trace.p as f64);
    check_params(d, n, m, p)?;
    if trace.steps == 0 {
        return Err(CertifyError::Malformed("zero guest steps".into()));
    }
    let expected = format!("{:?}", theorem1::range(d, n, m, p));
    if trace.summary.regime != expected {
        return Err(CertifyError::RegimeMismatch {
            stamped: trace.summary.regime.clone(),
            expected,
        });
    }
    let s = &trace.summary;
    if s.guest_time <= 0.0 {
        return Err(CertifyError::Malformed("non-positive guest time".into()));
    }

    let mut failures = Vec::new();
    let mut margin = f64::INFINITY;
    // Track headroom: ratio ≥ 1 means the check passed with that much
    // room; ratio < 1 is a failure.
    let mut check = |ratio: f64, failures: &mut Vec<String>, msg: &dyn Fn() -> String| {
        if ratio < margin {
            margin = ratio;
        }
        if ratio < 1.0 - REL_TOL {
            failures.push(msg());
        }
    };

    // --- Slowdown sandwich -------------------------------------------
    let measured = s.host_time / s.guest_time;
    // The stored slowdown must agree with the times it claims to
    // summarize — `RunTrace::validate` never cross-checks this, so a
    // trace with a doctored summary field lands here.
    if !close(s.slowdown, measured) {
        failures.push(format!(
            "stored slowdown {} disagrees with host/guest = {}",
            num(s.slowdown),
            num(measured)
        ));
    }
    let lower = brent_floor(n, p)?;
    check(measured / lower, &mut failures, &|| {
        format!(
            "measured slowdown {} below Brent floor {}",
            num(measured),
            num(lower)
        )
    });
    let upper = upper_slowdown(&trace.engine, d, n, m, p)?;
    // Injected fault delay inflates host time; subtract it before the
    // upper check (see module docs for why this never over-corrects).
    let adjusted = (s.host_time - s.injected_delay).max(0.0) / s.guest_time;
    check(
        upper / adjusted.max(f64::MIN_POSITIVE),
        &mut failures,
        &|| {
            format!(
                "fault-adjusted slowdown {} above {} envelope {}",
                num(adjusted),
                trace.engine,
                num(upper)
            )
        },
    );

    // --- Communication sandwich --------------------------------------
    let comm_lower = comm_floor(d, n, m, p, trace.steps as f64)?;
    let comm_measured = s.comm_delay;
    if comm_lower > 0.0 {
        check(comm_measured / comm_lower, &mut failures, &|| {
            format!(
                "communication total {} below cut floor {}",
                num(comm_measured),
                num(comm_lower)
            )
        });
    }
    // Every unit of comm delay is charged to some processor's busy
    // time, so Σ busy bounds it — unless churn deferred work across
    // stages, which decouples the two fault-free ledgers.
    let comm_upper: f64 = trace.stages.iter().map(|st| st.busy).sum();
    if s.churn == 0 && comm_measured > 0.0 {
        check(comm_upper / comm_measured, &mut failures, &|| {
            format!(
                "communication total {} exceeds busy-time ceiling {}",
                num(comm_measured),
                num(comm_upper)
            )
        });
    }

    // --- Per-stage sandwich (the trace telescopes) -------------------
    let mut stages = Vec::with_capacity(trace.stages.len());
    for st in &trace.stages {
        let lo = st.busy / p;
        let ok = st.cost >= lo * (1.0 - REL_TOL) && st.cost <= st.busy * (1.0 + REL_TOL);
        if !ok {
            failures.push(format!(
                "stage {}: cost {} outside [busy/p, busy] = [{}, {}]",
                st.stage,
                num(st.cost),
                num(lo),
                num(st.busy)
            ));
        }
        stages.push(StageCheck {
            stage: st.stage,
            lower: lo,
            measured: st.cost,
            upper: st.busy,
            ok,
        });
    }

    let verdict = if failures.is_empty() {
        Verdict::Certified
    } else {
        Verdict::Violated
    };
    Ok(Certificate {
        engine: trace.engine.clone(),
        regime: s.regime.clone(),
        lower,
        measured,
        upper,
        comm_lower,
        comm_measured,
        comm_upper,
        stages,
        margin,
        failures,
        verdict,
    })
}

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= REL_TOL * scale
}

impl Certificate {
    /// Serialize the run-level certificate (per-stage checks are
    /// summarized by their count and any failures they contributed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"engine\": \"{}\", ", escape(&self.engine)));
        out.push_str(&format!("\"regime\": \"{}\", ", escape(&self.regime)));
        out.push_str(&format!("\"lower\": {}, ", num(self.lower)));
        out.push_str(&format!("\"measured\": {}, ", num(self.measured)));
        out.push_str(&format!("\"upper\": {}, ", num(self.upper)));
        out.push_str(&format!("\"comm_lower\": {}, ", num(self.comm_lower)));
        out.push_str(&format!("\"comm_measured\": {}, ", num(self.comm_measured)));
        out.push_str(&format!("\"comm_upper\": {}, ", num(self.comm_upper)));
        out.push_str(&format!("\"stages_checked\": {}, ", self.stages.len()));
        out.push_str(&format!("\"margin\": {}, ", num(self.margin)));
        out.push_str(&format!("\"verdict\": \"{}\", ", self.verdict));
        out.push_str("\"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape(f)));
        }
        out.push_str("]}");
        out
    }
}
