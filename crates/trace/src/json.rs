//! Minimal hand-rolled JSON support for the `bsmp-trace/v1` log format.
//!
//! The workspace is dependency-free by policy, so both the emitter and the
//! parser live here.  The parser is a small recursive-descent reader that
//! covers exactly the JSON subset the emitter produces (objects, arrays,
//! strings, finite numbers, `null`, booleans); numbers are held as `f64`,
//! which is lossless for every integer field we emit (all < 2^53).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric field (JSON `null` maps to NaN so degenerate values survive
    /// a round-trip without inventing a finite number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(x) => Some(*x),
            Val::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Non-negative integer field.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.007_199_254_740_992e15 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` so it round-trips through `str::parse::<f64>` exactly.
/// Non-finite values (degenerate reports) become JSON `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Parse a complete JSON document.
pub fn parse(src: &str) -> Result<Val, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!("expected '{}' at byte {}", char::from(b), self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Val::Str(self.string()?)),
            b't' => self.literal("true", Val::Bool(true)),
            b'f' => self.literal("false", Val::Bool(false)),
            b'n' => self.literal("null", Val::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences from the raw bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| "truncated UTF-8".to_string())?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(format!("expected a value at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Val::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn utf8_width(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_numbers() {
        for x in [0.0, 1.5, -2.25, 1e-7, 123456789.125, f64::MAX] {
            let v = parse(&num(x)).unwrap();
            assert_eq!(v.as_f64().unwrap(), x);
        }
        assert_eq!(num(f64::INFINITY), "null");
        assert!(parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x\ny"], "b": {"c": true}, "d": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Val::Bool(true)));
        assert_eq!(v.get("d"), Some(&Val::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" back\\slash \ttab ünïcode";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
