//! Wall-clock benchmarks of the simulation engines themselves — how fast
//! the *instrumented model* runs on the host CPU (model time is what the
//! E-experiments report; this is implementation throughput).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bsmp::machine::MachineSpec;
use bsmp::sim::{
    dnc1::simulate_dnc1, dnc2::simulate_dnc2, multi1::simulate_multi1, naive1::simulate_naive1,
};
use bsmp::workloads::{inputs, Eca, VonNeumannLife};

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");
    g.sample_size(10);

    let n = 128u64;
    let init = inputs::random_bits(1, n as usize);

    g.bench_function("naive1_n128_T128", |b| {
        let spec = MachineSpec::new(1, n, 1, 1);
        b.iter(|| black_box(simulate_naive1(&spec, &Eca::rule110(), &init, n as i64).host_time))
    });

    g.bench_function("dnc1_n128_T128", |b| {
        let spec = MachineSpec::new(1, n, 1, 1);
        b.iter(|| black_box(simulate_dnc1(&spec, &Eca::rule110(), &init, n as i64).host_time))
    });

    g.bench_function("multi1_n128_p4_T128", |b| {
        let spec = MachineSpec::new(1, n, 4, 1);
        b.iter(|| black_box(simulate_multi1(&spec, &Eca::rule110(), &init, n as i64).host_time))
    });

    g.bench_function("dnc2_16x16_T16", |b| {
        let spec = MachineSpec::new(2, 256, 1, 1);
        let init2 = inputs::random_bits(2, 256);
        b.iter(|| {
            black_box(simulate_dnc2(&spec, &VonNeumannLife::fredkin(), &init2, 16).host_time)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
