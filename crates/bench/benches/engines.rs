//! Wall-clock benchmarks of the simulation engines themselves — how fast
//! the *instrumented model* runs on the host CPU (model time is what the
//! E-experiments report; this is implementation throughput).

use std::hint::black_box;

use bsmp::machine::MachineSpec;
use bsmp::sim::{
    dnc1::simulate_dnc1, dnc2::simulate_dnc2, multi1::simulate_multi1, naive1::simulate_naive1,
};
use bsmp::workloads::{inputs, Eca, VonNeumannLife};
use bsmp_bench::timing::bench;

fn main() {
    let n = 128u64;
    let init = inputs::random_bits(1, n as usize);

    {
        let spec = MachineSpec::new(1, n, 1, 1);
        bench("engines/naive1_n128_T128", 10, || {
            black_box(simulate_naive1(&spec, &Eca::rule110(), &init, n as i64).host_time)
        });
        bench("engines/dnc1_n128_T128", 10, || {
            black_box(simulate_dnc1(&spec, &Eca::rule110(), &init, n as i64).host_time)
        });
    }

    {
        let spec = MachineSpec::new(1, n, 4, 1);
        bench("engines/multi1_n128_p4_T128", 10, || {
            black_box(simulate_multi1(&spec, &Eca::rule110(), &init, n as i64).host_time)
        });
    }

    {
        let spec = MachineSpec::new(2, 256, 1, 1);
        let init2 = inputs::random_bits(2, 256);
        bench("engines/dnc2_16x16_T16", 10, || {
            black_box(simulate_dnc2(&spec, &VonNeumannLife::fredkin(), &init2, 16).host_time)
        });
    }
}
