//! Wall-clock benchmarks of direct guest execution (the reference
//! semantics every engine is validated against).

use std::hint::black_box;

use bsmp::machine::{run_linear, run_mesh, MachineSpec};
use bsmp::workloads::{inputs, Eca, SystolicMatmul, VonNeumannLife};
use bsmp_bench::timing::bench;

fn main() {
    {
        let n = 256u64;
        let spec = MachineSpec::new(1, n, n, 1);
        let init = inputs::random_bits(1, n as usize);
        bench("machine/guest_rule110_256x256", 20, || {
            black_box(run_linear(&spec, &Eca::rule110(), &init, 256).values.len())
        });
    }

    {
        let spec = MachineSpec::new(2, 1024, 1024, 1);
        let init = inputs::random_bits(2, 1024);
        bench("machine/guest_life_32x32x32", 20, || {
            black_box(
                run_mesh(&spec, &VonNeumannLife::fredkin(), &init, 32)
                    .values
                    .len(),
            )
        });
    }

    {
        let side = 16usize;
        let prog = SystolicMatmul::new(side);
        let a = inputs::random_matrix(3, side, 100);
        let bm = inputs::random_matrix(4, side, 100);
        let init = prog.stage_inputs(&a, &bm);
        let spec = MachineSpec::new(
            2,
            (side * side) as u64,
            (side * side) as u64,
            (side + 1) as u64,
        );
        bench("machine/guest_systolic_matmul_16", 10, || {
            black_box(run_mesh(&spec, &prog, &init, prog.steps()).values.len())
        });
    }
}
